//! The trigger runtime: deployment, polling, filtering, invocation,
//! retries, dead-lettering, worker pools, and pressure evaluation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use octopus_broker::{AckLevel, Cluster};
use octopus_pattern::Pattern;
use octopus_types::obs::{now_ns, Stage, TraceContext};
use octopus_types::{DeliveredEvent, OctoError, OctoResult, PartitionId, RetryPolicy, Uid};

use crate::autoscaler::{Autoscaler, AutoscalerConfig};
use crate::billing::BillingMeter;
use crate::function::{FunctionConfig, FunctionContext, InvocationOutcome, TriggerFunction};

/// A trigger deployment request (the body of `PUT /trigger/`, §IV-D:
/// "Deploy a trigger using a specified function, target topic, and
/// configuration").
#[derive(Clone)]
pub struct TriggerSpec {
    /// Unique trigger name.
    pub name: String,
    /// Source topic.
    pub topic: String,
    /// Optional EventBridge-style filter; only matching events are
    /// passed to the function (non-matching events are consumed and
    /// skipped, as EventBridge filtering does).
    pub pattern: Option<Pattern>,
    /// Execution environment.
    pub config: FunctionConfig,
    /// The function.
    pub function: TriggerFunction,
    /// Identity the trigger acts on behalf of.
    pub acting_as: Uid,
    /// Autoscaler tuning.
    pub autoscaler: AutoscalerConfig,
}

/// One invocation's log record (the CloudWatch log-group analogue).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvocationRecord {
    /// Invocation counter value.
    pub invocation: u64,
    /// Events in the batch (after filtering).
    pub batch_size: usize,
    /// Wall-clock duration in milliseconds.
    pub duration_ms: u64,
    /// Outcome of the final attempt.
    pub outcome: InvocationOutcome,
    /// Attempts used (1 = first try succeeded).
    pub attempts: u32,
}

/// Point-in-time view of a trigger (the `GET /triggers/` listing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriggerStatus {
    /// Trigger name.
    pub name: String,
    /// Source topic.
    pub topic: String,
    /// Current autoscaler concurrency decision.
    pub concurrency: u32,
    /// Live worker threads.
    pub active_workers: usize,
    /// Total invocations.
    pub invocations: u64,
    /// Events delivered to the function.
    pub events_processed: u64,
    /// Events consumed but filtered out by the pattern.
    pub events_filtered: u64,
    /// Invocations that exhausted retries.
    pub failures: u64,
    /// Events dead-lettered.
    pub dead_lettered: u64,
}

struct TriggerState {
    spec: TriggerSpec,
    autoscaler: Mutex<Autoscaler>,
    invocations: AtomicU64,
    events_processed: AtomicU64,
    events_filtered: AtomicU64,
    failures: AtomicU64,
    dead_lettered: AtomicU64,
    records: Mutex<Vec<InvocationRecord>>,
    billing: Mutex<BillingMeter>,
    stop: AtomicBool,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl TriggerState {
    fn group(&self) -> String {
        format!("__trigger-{}", self.spec.name)
    }
}

/// The runtime hosting all triggers of a deployment.
#[derive(Clone)]
pub struct TriggerRuntime {
    cluster: Cluster,
    triggers: Arc<RwLock<HashMap<String, Arc<TriggerState>>>>,
}

impl TriggerRuntime {
    /// A runtime bound to a cluster.
    pub fn new(cluster: Cluster) -> Self {
        TriggerRuntime { cluster, triggers: Arc::new(RwLock::new(HashMap::new())) }
    }

    /// Deploy a trigger. The source topic must exist; the DLQ topic, if
    /// named, must exist too. Idempotent for an identical name+topic.
    pub fn deploy(&self, spec: TriggerSpec) -> OctoResult<()> {
        if !self.cluster.topic_exists(&spec.topic) {
            return Err(OctoError::UnknownTopic(spec.topic.clone()));
        }
        if let Some(dlq) = &spec.config.dlq_topic {
            if !self.cluster.topic_exists(dlq) {
                return Err(OctoError::UnknownTopic(dlq.clone()));
            }
        }
        let mut triggers = self.triggers.write();
        if let Some(existing) = triggers.get(&spec.name) {
            if existing.spec.topic == spec.topic {
                return Ok(()); // idempotent re-deploy
            }
            return Err(OctoError::Conflict(format!("trigger {} exists", spec.name)));
        }
        let partitions = self.cluster.partition_count(&spec.topic)?;
        let state = Arc::new(TriggerState {
            autoscaler: Mutex::new(Autoscaler::new(spec.autoscaler.clone(), partitions)),
            spec,
            invocations: AtomicU64::new(0),
            events_processed: AtomicU64::new(0),
            events_filtered: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            dead_lettered: AtomicU64::new(0),
            records: Mutex::new(Vec::new()),
            billing: Mutex::new(BillingMeter::new()),
            stop: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
        });
        triggers.insert(state.spec.name.clone(), state);
        Ok(())
    }

    /// Remove a trigger, stopping its workers.
    pub fn remove(&self, name: &str) -> OctoResult<()> {
        let state = self
            .triggers
            .write()
            .remove(name)
            .ok_or_else(|| OctoError::NotFound(format!("trigger {name}")))?;
        state.stop.store(true, Ordering::Release);
        let workers = std::mem::take(&mut *state.workers.lock());
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }

    /// Describe all triggers (the `GET /triggers/` route).
    pub fn list(&self) -> Vec<TriggerStatus> {
        let mut out: Vec<TriggerStatus> =
            self.triggers.read().values().map(|s| self.status_of(s)).collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Describe one trigger.
    pub fn status(&self, name: &str) -> OctoResult<TriggerStatus> {
        let triggers = self.triggers.read();
        let s = triggers
            .get(name)
            .ok_or_else(|| OctoError::NotFound(format!("trigger {name}")))?;
        Ok(self.status_of(s))
    }

    fn status_of(&self, s: &TriggerState) -> TriggerStatus {
        TriggerStatus {
            name: s.spec.name.clone(),
            topic: s.spec.topic.clone(),
            concurrency: s.autoscaler.lock().concurrency(),
            active_workers: s.workers.lock().len(),
            invocations: s.invocations.load(Ordering::Relaxed),
            events_processed: s.events_processed.load(Ordering::Relaxed),
            events_filtered: s.events_filtered.load(Ordering::Relaxed),
            failures: s.failures.load(Ordering::Relaxed),
            dead_lettered: s.dead_lettered.load(Ordering::Relaxed),
        }
    }

    /// Invocation log of a trigger (CloudWatch log-group analogue).
    pub fn invocation_log(&self, name: &str) -> OctoResult<Vec<InvocationRecord>> {
        let triggers = self.triggers.read();
        let s = triggers
            .get(name)
            .ok_or_else(|| OctoError::NotFound(format!("trigger {name}")))?;
        let records = s.records.lock().clone();
        Ok(records)
    }

    /// The billing meter of a trigger.
    pub fn billing(&self, name: &str) -> OctoResult<BillingMeter> {
        let triggers = self.triggers.read();
        let s = triggers
            .get(name)
            .ok_or_else(|| OctoError::NotFound(format!("trigger {name}")))?;
        let billing = s.billing.lock().clone();
        Ok(billing)
    }

    /// Synchronously process all currently pending events of a trigger
    /// (a deterministic single-worker pass; tests and simulations use
    /// this, production uses [`TriggerRuntime::start_workers`]).
    /// Returns the number of events consumed.
    pub fn poll_once(&self, name: &str) -> OctoResult<usize> {
        let state = {
            let triggers = self.triggers.read();
            triggers
                .get(name)
                .ok_or_else(|| OctoError::NotFound(format!("trigger {name}")))?
                .clone()
        };
        let partitions = self.cluster.partition_count(&state.spec.topic)?;
        let mut consumed = 0usize;
        for p in 0..partitions {
            loop {
                let n = self.process_partition(&state, p, None)?;
                if n == 0 {
                    break;
                }
                consumed += n;
            }
        }
        Ok(consumed)
    }

    /// Process one batch from one partition. `generation` of `Some(g)`
    /// uses fenced offset commits (worker mode); `None` commits
    /// unchecked (single-poller mode). Returns events consumed.
    fn process_partition(
        &self,
        state: &TriggerState,
        partition: PartitionId,
        generation: Option<u64>,
    ) -> OctoResult<usize> {
        let topic = &state.spec.topic;
        let group = state.group();
        let start_offset = match self.cluster.coordinator().committed(&group, topic, partition) {
            Some(o) => o,
            None => self.cluster.earliest_offset(topic, partition)?,
        };
        let mut records =
            self.cluster.fetch(topic, partition, start_offset, state.spec.config.batch_size)?;
        // enforce the byte limit too
        let mut bytes = 0usize;
        let mut cut = records.len();
        for (i, r) in records.iter().enumerate() {
            bytes += r.wire_size();
            if bytes > state.spec.config.batch_bytes && i > 0 {
                cut = i;
                break;
            }
        }
        records.truncate(cut);
        if records.is_empty() {
            return Ok(0);
        }
        let next_offset = records.last().expect("non-empty").offset + 1;
        let consumed = records.len();

        // filter
        let obs = self.cluster.stage_metrics();
        let delivery_ns = now_ns();
        let delivered: Vec<DeliveredEvent> = records
            .into_iter()
            .map(|r| DeliveredEvent {
                topic: topic.clone(),
                partition,
                offset: r.offset,
                append_time: r.append_time,
                event: r.to_event(),
            })
            .inspect(|d| {
                // producer-stamped trace header → end-to-end delivery latency
                if let Some(tc) = TraceContext::from_headers(&d.event.headers) {
                    obs.record(Stage::Deliver, tc.elapsed_ns(delivery_ns));
                }
            })
            .collect();
        let (matched, filtered): (Vec<DeliveredEvent>, Vec<DeliveredEvent>) =
            delivered.into_iter().partition(|d| match &state.spec.pattern {
                Some(p) => p.matches_bytes(&d.event.payload),
                None => true,
            });
        state.events_filtered.fetch_add(filtered.len() as u64, Ordering::Relaxed);

        if !matched.is_empty() {
            self.invoke_with_retries(state, &matched);
        }

        // at-least-once: commit only after processing
        match generation {
            Some(g) => {
                self.cluster.coordinator().commit(&group, g, topic, partition, next_offset)?
            }
            None => self.cluster.coordinator().commit_unchecked(&group, topic, partition, next_offset),
        }
        Ok(consumed)
    }

    fn invoke_with_retries(&self, state: &TriggerState, batch: &[DeliveredEvent]) {
        let invocation = state.invocations.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let max_attempts = state.spec.config.retries + 1;
        // shared backoff schedule between failed attempts (Lambda-style
        // retry pacing; attempt counting is unchanged)
        let backoff = RetryPolicy::new(state.spec.config.retries, Duration::from_millis(1))
            .with_max_delay(Duration::from_millis(20))
            .delays();
        let mut outcome = InvocationOutcome::Failure("never ran".into());
        let mut attempts = 0;
        for attempt in 0..max_attempts {
            attempts = attempt + 1;
            let ctx = FunctionContext {
                trigger: state.spec.name.clone(),
                acting_as: state.spec.acting_as,
                invocation,
                attempt,
            };
            let attempt_start = Instant::now();
            let result = (state.spec.function)(&ctx, batch);
            let elapsed = attempt_start.elapsed();
            // every attempt lands in the histogram, so retried/timed-out
            // runs show up in the p99 tail rather than disappearing
            self.cluster.stage_metrics().record(Stage::TriggerRun, elapsed.as_nanos() as u64);
            if elapsed > Duration::from_millis(state.spec.config.timeout_ms) {
                outcome = InvocationOutcome::TimedOut;
                if let Some(d) = backoff.get(attempt as usize) {
                    std::thread::sleep(*d);
                }
                continue;
            }
            match result {
                Ok(()) => {
                    outcome = InvocationOutcome::Success;
                    break;
                }
                Err(msg) => {
                    outcome = InvocationOutcome::Failure(msg);
                    if let Some(d) = backoff.get(attempt as usize) {
                        std::thread::sleep(*d);
                    }
                }
            }
        }
        let duration_ms = started.elapsed().as_millis() as u64;
        state
            .billing
            .lock()
            .record_invocation(state.spec.config.memory_mb, duration_ms.max(1));
        if outcome == InvocationOutcome::Success {
            state.events_processed.fetch_add(batch.len() as u64, Ordering::Relaxed);
        } else {
            state.failures.fetch_add(1, Ordering::Relaxed);
            if let Some(dlq) = &state.spec.config.dlq_topic {
                // losing a dead letter loses the only trace of the
                // failure, so the DLQ write itself is retried
                let dlq_policy = RetryPolicy::new(3, Duration::from_millis(2));
                for d in batch {
                    let dlq_start = Instant::now();
                    let _ = dlq_policy
                        .run(|_| self.cluster.produce(dlq, d.event.clone(), AckLevel::Leader));
                    self.cluster
                        .stage_metrics()
                        .record(Stage::Dlq, dlq_start.elapsed().as_nanos() as u64);
                }
                state.dead_lettered.fetch_add(batch.len() as u64, Ordering::Relaxed);
            }
        }
        state.records.lock().push(InvocationRecord {
            invocation,
            batch_size: batch.len(),
            duration_ms,
            outcome,
            attempts,
        });
    }

    /// Evaluate processing pressure for a trigger (the 1-minute Lambda
    /// evaluation) and return the new concurrency decision. In worker
    /// mode this also resizes the worker pool.
    pub fn evaluate_pressure(&self, name: &str) -> OctoResult<u32> {
        let state = {
            let triggers = self.triggers.read();
            triggers
                .get(name)
                .ok_or_else(|| OctoError::NotFound(format!("trigger {name}")))?
                .clone()
        };
        let lag = self.cluster.group_lag(&state.group(), &state.spec.topic)?;
        let target = state.autoscaler.lock().evaluate(lag);
        // resize a running pool
        let running = state.workers.lock().len();
        if running > 0 && (target as usize) > running {
            self.spawn_workers(&state, target as usize - running);
        }
        Ok(target)
    }

    /// Start the trigger's worker pool at the current concurrency.
    pub fn start_workers(&self, name: &str) -> OctoResult<()> {
        let state = {
            let triggers = self.triggers.read();
            triggers
                .get(name)
                .ok_or_else(|| OctoError::NotFound(format!("trigger {name}")))?
                .clone()
        };
        let n = state.autoscaler.lock().concurrency() as usize;
        self.spawn_workers(&state, n);
        Ok(())
    }

    fn spawn_workers(&self, state: &Arc<TriggerState>, n: usize) {
        // Join every member *before* any worker thread processes a
        // record: the group generation then settles up front, so a
        // fast first worker cannot invoke a batch under a generation a
        // slower sibling's join is about to fence off (which would
        // fail the commit and redeliver the already-invoked batch).
        let group = state.group();
        let topic = state.spec.topic.clone();
        let counts: HashMap<String, u32> =
            [(topic.clone(), self.cluster.partition_count(&topic).unwrap_or(1))]
                .into_iter()
                .collect();
        let base = state.workers.lock().len();
        let members: Vec<String> = (base..base + n).map(|i| format!("{group}-w{i}")).collect();
        for member in &members {
            self.cluster.coordinator().join(&group, member, vec![topic.clone()], &counts);
        }
        for member in members {
            let worker_state = state.clone();
            let rt = self.clone();
            let handle = std::thread::spawn(move || rt.worker_loop(worker_state, member));
            state.workers.lock().push(handle);
        }
    }

    fn worker_loop(&self, state: Arc<TriggerState>, member: String) {
        let group = state.group();
        let topic = state.spec.topic.clone();
        let counts: HashMap<String, u32> = [(
            topic.clone(),
            self.cluster.partition_count(&topic).unwrap_or(1),
        )]
        .into_iter()
        .collect();
        // already joined by spawn_workers; a vanished membership (e.g.
        // coordinator state reset) re-joins below
        let mut assignment = match self.cluster.coordinator().assignment_of(&group, &member) {
            Some(a) => a,
            None => self.cluster.coordinator().join(&group, &member, vec![topic.clone()], &counts),
        };
        while !state.stop.load(Ordering::Acquire) {
            // pick up external rebalances (another worker joined or
            // left) *before* processing, to shrink the window where a
            // stale assignment's commit gets fenced and redelivered
            if let Some(current) = self.cluster.coordinator().assignment_of(&group, &member) {
                if current.generation != assignment.generation {
                    assignment = current;
                }
            }
            let mut did_work = false;
            for (t, p) in assignment.partitions.clone() {
                debug_assert_eq!(t, topic);
                match self.process_partition(&state, p, Some(assignment.generation)) {
                    Ok(n) if n > 0 => did_work = true,
                    Ok(_) => {}
                    Err(OctoError::RebalanceInProgress(_)) => {
                        assignment = self.cluster.coordinator().join(
                            &group,
                            &member,
                            vec![topic.clone()],
                            &counts,
                        );
                    }
                    Err(_) => {}
                }
            }
            if !did_work {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        self.cluster.coordinator().leave(&group, &member, &counts);
    }

    /// Stop all workers of a trigger and wait for them.
    pub fn stop_workers(&self, name: &str) -> OctoResult<()> {
        let state = {
            let triggers = self.triggers.read();
            triggers
                .get(name)
                .ok_or_else(|| OctoError::NotFound(format!("trigger {name}")))?
                .clone()
        };
        state.stop.store(true, Ordering::Release);
        let workers = std::mem::take(&mut *state.workers.lock());
        for w in workers {
            let _ = w.join();
        }
        state.stop.store(false, Ordering::Release);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_broker::TopicConfig;
    use octopus_types::Event;
    use serde_json::json;
    use std::sync::atomic::AtomicUsize;

    fn setup() -> (Cluster, TriggerRuntime) {
        let c = Cluster::new(2);
        c.create_topic("events", TopicConfig::default().with_partitions(2)).unwrap();
        let rt = TriggerRuntime::new(c.clone());
        (c, rt)
    }

    fn json_event(v: serde_json::Value) -> Event {
        Event::from_json(&v).unwrap()
    }

    fn counting_spec(name: &str, count: Arc<AtomicUsize>) -> TriggerSpec {
        TriggerSpec {
            name: name.into(),
            topic: "events".into(),
            pattern: None,
            config: FunctionConfig::default(),
            function: Arc::new(move |_ctx, batch| {
                count.fetch_add(batch.len(), Ordering::SeqCst);
                Ok(())
            }),
            acting_as: Uid(1),
            autoscaler: AutoscalerConfig::default(),
        }
    }

    #[test]
    fn trigger_processes_all_events() {
        let (c, rt) = setup();
        let count = Arc::new(AtomicUsize::new(0));
        rt.deploy(counting_spec("t1", count.clone())).unwrap();
        for i in 0..25 {
            c.produce("events", json_event(json!({"i": i})), AckLevel::Leader).unwrap();
        }
        let consumed = rt.poll_once("t1").unwrap();
        assert_eq!(consumed, 25);
        assert_eq!(count.load(Ordering::SeqCst), 25);
        // nothing left
        assert_eq!(rt.poll_once("t1").unwrap(), 0);
        let st = rt.status("t1").unwrap();
        assert_eq!(st.events_processed, 25);
        assert_eq!(st.failures, 0);
        assert!(st.invocations >= 1);
    }

    #[test]
    fn pattern_filters_events_listing1() {
        let (c, rt) = setup();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        rt.deploy(TriggerSpec {
            name: "created-only".into(),
            topic: "events".into(),
            pattern: Some(Pattern::parse(&json!({"event_type": ["created"]})).unwrap()),
            config: FunctionConfig::default(),
            function: Arc::new(move |_ctx, batch| {
                for d in batch {
                    seen2.lock().push(d.json().unwrap()["path"].as_str().unwrap().to_string());
                }
                Ok(())
            }),
            acting_as: Uid(1),
            autoscaler: AutoscalerConfig::default(),
        })
        .unwrap();
        c.produce("events", json_event(json!({"event_type": "created", "path": "/a"})), AckLevel::Leader).unwrap();
        c.produce("events", json_event(json!({"event_type": "deleted", "path": "/b"})), AckLevel::Leader).unwrap();
        c.produce("events", json_event(json!({"event_type": "created", "path": "/c"})), AckLevel::Leader).unwrap();
        rt.poll_once("created-only").unwrap();
        let mut got = seen.lock().clone();
        got.sort();
        assert_eq!(got, vec!["/a", "/c"]);
        let st = rt.status("created-only").unwrap();
        assert_eq!(st.events_filtered, 1);
        assert_eq!(st.events_processed, 2);
    }

    #[test]
    fn retries_then_dead_letter() {
        let (c, rt) = setup();
        c.create_topic("dlq", TopicConfig::default().with_partitions(1)).unwrap();
        let attempts = Arc::new(AtomicUsize::new(0));
        let attempts2 = attempts.clone();
        rt.deploy(TriggerSpec {
            name: "poison".into(),
            topic: "events".into(),
            pattern: None,
            config: FunctionConfig { retries: 2, dlq_topic: Some("dlq".into()), ..Default::default() },
            function: Arc::new(move |_ctx, _batch| {
                attempts2.fetch_add(1, Ordering::SeqCst);
                Err("boom".into())
            }),
            acting_as: Uid(1),
            autoscaler: AutoscalerConfig::default(),
        })
        .unwrap();
        c.produce("events", json_event(json!({"x": 1})), AckLevel::Leader).unwrap();
        rt.poll_once("poison").unwrap();
        assert_eq!(attempts.load(Ordering::SeqCst), 3, "1 try + 2 retries");
        let st = rt.status("poison").unwrap();
        assert_eq!(st.failures, 1);
        assert_eq!(st.dead_lettered, 1);
        // the event landed in the DLQ
        let dlq_events = c.fetch("dlq", 0, 0, 10).unwrap();
        assert_eq!(dlq_events.len(), 1);
        // the log records the failed attempts
        let log = rt.invocation_log("poison").unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].attempts, 3);
        assert!(matches!(log[0].outcome, InvocationOutcome::Failure(_)));
        // every attempt and the DLQ write are visible in the registry
        let snap = c.metrics().snapshot();
        assert_eq!(snap.histograms["octopus_stage_trigger_run_ns"].count(), 3);
        assert_eq!(snap.histograms["octopus_stage_dlq_ns"].count(), 1);
    }

    #[test]
    fn transient_failure_recovers_within_retries() {
        let (c, rt) = setup();
        let tries = Arc::new(AtomicUsize::new(0));
        let tries2 = tries.clone();
        rt.deploy(TriggerSpec {
            name: "flaky".into(),
            topic: "events".into(),
            pattern: None,
            config: FunctionConfig { retries: 3, ..Default::default() },
            function: Arc::new(move |_ctx, _batch| {
                if tries2.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err("transient".into())
                } else {
                    Ok(())
                }
            }),
            acting_as: Uid(1),
            autoscaler: AutoscalerConfig::default(),
        })
        .unwrap();
        c.produce("events", json_event(json!({})), AckLevel::Leader).unwrap();
        rt.poll_once("flaky").unwrap();
        let st = rt.status("flaky").unwrap();
        assert_eq!(st.failures, 0);
        assert_eq!(st.events_processed, 1);
        let log = rt.invocation_log("flaky").unwrap();
        assert_eq!(log[0].attempts, 3);
        assert_eq!(log[0].outcome, InvocationOutcome::Success);
    }

    #[test]
    fn batch_size_limits_invocations() {
        let (c, rt) = setup();
        let batches = Arc::new(Mutex::new(Vec::new()));
        let batches2 = batches.clone();
        rt.deploy(TriggerSpec {
            name: "batchy".into(),
            topic: "events".into(),
            pattern: None,
            config: FunctionConfig { batch_size: 10, ..Default::default() },
            function: Arc::new(move |_ctx, batch| {
                batches2.lock().push(batch.len());
                Ok(())
            }),
            acting_as: Uid(1),
            autoscaler: AutoscalerConfig::default(),
        })
        .unwrap();
        // all to one partition for a deterministic count
        for i in 0..35 {
            let e = Event::builder().key("same").json(&json!({"i": i})).unwrap().build();
            c.produce("events", e, AckLevel::Leader).unwrap();
        }
        rt.poll_once("batchy").unwrap();
        let sizes = batches.lock().clone();
        assert_eq!(sizes.iter().sum::<usize>(), 35);
        assert!(sizes.iter().all(|s| *s <= 10));
        assert_eq!(sizes.iter().filter(|s| **s == 10).count(), 3);
    }

    #[test]
    fn deploy_guards() {
        let (_c, rt) = setup();
        let count = Arc::new(AtomicUsize::new(0));
        let mut spec = counting_spec("t", count.clone());
        spec.topic = "missing".into();
        assert!(matches!(rt.deploy(spec), Err(OctoError::UnknownTopic(_))));
        let mut spec = counting_spec("t", count.clone());
        spec.config.dlq_topic = Some("missing-dlq".into());
        assert!(matches!(rt.deploy(spec), Err(OctoError::UnknownTopic(_))));
        // idempotent redeploy
        rt.deploy(counting_spec("t", count.clone())).unwrap();
        rt.deploy(counting_spec("t", count)).unwrap();
        assert_eq!(rt.list().len(), 1);
        assert!(rt.status("ghost").is_err());
        assert!(rt.poll_once("ghost").is_err());
        rt.remove("t").unwrap();
        assert!(rt.remove("t").is_err());
    }

    #[test]
    fn pressure_evaluation_scales_with_lag() {
        let (c, rt) = setup();
        let count = Arc::new(AtomicUsize::new(0));
        rt.deploy(counting_spec("scaly", count)).unwrap();
        // no lag: stays at floor (min(3, partitions=2) = 2)
        assert_eq!(rt.evaluate_pressure("scaly").unwrap(), 2);
        for _ in 0..1000 {
            c.produce("events", json_event(json!({})), AckLevel::Leader).unwrap();
        }
        // big backlog but only 2 partitions: capped at 2
        assert_eq!(rt.evaluate_pressure("scaly").unwrap(), 2);
        let st = rt.status("scaly").unwrap();
        assert_eq!(st.concurrency, 2);
    }

    #[test]
    fn worker_pool_drains_topic_concurrently() {
        let (c, rt) = setup();
        let count = Arc::new(AtomicUsize::new(0));
        rt.deploy(counting_spec("workers", count.clone())).unwrap();
        for i in 0..200 {
            c.produce("events", json_event(json!({"i": i})), AckLevel::Leader).unwrap();
        }
        rt.start_workers("workers").unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while count.load(Ordering::SeqCst) < 200 {
            assert!(Instant::now() < deadline, "workers did not drain the topic");
            std::thread::sleep(Duration::from_millis(5));
        }
        rt.stop_workers("workers").unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 200);
        assert_eq!(rt.status("workers").unwrap().active_workers, 0);
    }

    #[test]
    fn billing_meters_invocations() {
        let (c, rt) = setup();
        let count = Arc::new(AtomicUsize::new(0));
        rt.deploy(counting_spec("billed", count)).unwrap();
        for _ in 0..5 {
            c.produce("events", json_event(json!({})), AckLevel::Leader).unwrap();
        }
        rt.poll_once("billed").unwrap();
        let meter = rt.billing("billed").unwrap();
        assert!(meter.invocations() >= 1);
    }
}
