//! The segmented partition log.
//!
//! A partition is an append-only sequence of records with dense offsets,
//! stored as a list of *segments* (Kafka's on-disk layout, kept in
//! memory here). Segments bound the granularity of retention: time- and
//! size-based retention drop whole segments from the front; compaction
//! rewrites closed segments keeping only the latest record per key
//! (§IV-F: "Users can also configure the compaction and retention
//! policy").

use std::collections::HashMap;

use bytes::Bytes;
use octopus_types::{OctoError, OctoResult, Offset, Timestamp};

use crate::config::{CleanupPolicy, RetentionConfig};
use crate::record::{Record, RecordBatch};
use crate::store::{FlushPolicy, PartitionStore, RecoveryStats, StoreMetrics};

/// Default maximum segment size before rolling (1 MiB here; Kafka's
/// default is 1 GiB — scaled down for in-memory use).
pub const DEFAULT_SEGMENT_BYTES: usize = 1 << 20;

#[derive(Debug, Clone)]
struct Segment {
    base_offset: Offset,
    records: Vec<Record>,
    size_bytes: usize,
    max_timestamp: Timestamp,
}

impl Segment {
    fn new(base_offset: Offset) -> Self {
        Segment {
            base_offset,
            records: Vec::new(),
            size_bytes: 0,
            max_timestamp: Timestamp::from_millis(0),
        }
    }

    fn next_offset(&self) -> Offset {
        self.base_offset + self.records.len() as u64
    }

    /// Rebuild a segment from recovered records (sizes and timestamps
    /// recomputed from the records themselves).
    fn from_records(base_offset: Offset, records: Vec<Record>) -> Self {
        let size_bytes = records.iter().map(|r| r.wire_size()).sum();
        let max_timestamp = records
            .iter()
            .map(|r| r.append_time)
            .max()
            .unwrap_or(Timestamp::from_millis(0));
        Segment { base_offset, records, size_bytes, max_timestamp }
    }
}

/// A segmented log for one partition: always present in memory (the
/// fabric serves reads from the "page cache"), optionally backed by a
/// durable [`PartitionStore`] that survives crashes and power loss.
#[derive(Debug)]
pub struct PartitionLog {
    segments: Vec<Segment>,
    segment_bytes: usize,
    /// Offset of the first retained record.
    log_start: Offset,
    total_bytes: usize,
    /// Durable backing store, if the cluster was built with a data dir.
    store: Option<PartitionStore>,
}

impl Clone for PartitionLog {
    /// Clones are *in-memory snapshots*: the durable store handle stays
    /// with the original. Two writers appending to one set of segment
    /// files would corrupt them — and every clone site (ISR resync
    /// snapshots, tests) wants the record contents, not the disk.
    fn clone(&self) -> Self {
        PartitionLog {
            segments: self.segments.clone(),
            segment_bytes: self.segment_bytes,
            log_start: self.log_start,
            total_bytes: self.total_bytes,
            store: None,
        }
    }
}

impl Default for PartitionLog {
    fn default() -> Self {
        Self::new()
    }
}

impl PartitionLog {
    /// Empty log with the default segment size.
    pub fn new() -> Self {
        Self::with_segment_bytes(DEFAULT_SEGMENT_BYTES)
    }

    /// Empty log with a custom segment roll size (small values make
    /// retention tests cheap).
    pub fn with_segment_bytes(segment_bytes: usize) -> Self {
        PartitionLog {
            segments: vec![Segment::new(0)],
            segment_bytes: segment_bytes.max(1),
            log_start: 0,
            total_bytes: 0,
            store: None,
        }
    }

    /// Open a durable log rooted at `dir`, recovering whatever a
    /// previous incarnation persisted (truncating any torn tail on
    /// disk). Returns the log plus the recovery stats.
    pub fn open_durable(
        segment_bytes: usize,
        dir: impl Into<std::path::PathBuf>,
        policy: FlushPolicy,
        metrics: StoreMetrics,
    ) -> OctoResult<(Self, RecoveryStats)> {
        let (store, recovered, stats) = PartitionStore::open(dir, policy, metrics)?;
        let mut log = PartitionLog::with_segment_bytes(segment_bytes);
        log.store = Some(store);
        log.adopt_recovered(recovered);
        Ok((log, stats))
    }

    /// Whether this log writes through to disk.
    pub fn is_durable(&self) -> bool {
        self.store.is_some()
    }

    /// Replace in-memory state with segments recovered from disk.
    fn adopt_recovered(&mut self, recovered: Vec<(Offset, Vec<Record>)>) {
        if recovered.is_empty() {
            self.segments = vec![Segment::new(0)];
            self.log_start = 0;
            self.total_bytes = 0;
            return;
        }
        self.segments = recovered
            .into_iter()
            .map(|(base, records)| Segment::from_records(base, records))
            .collect();
        self.log_start = self.segments[0].base_offset;
        self.total_bytes = self.segments.iter().map(|s| s.size_bytes).sum();
    }

    /// Restart-time recovery. Durable logs reload authoritative state
    /// from disk (rescanning segment files and truncating the torn
    /// tail there); volatile logs fall back to the in-memory
    /// [`PartitionLog::verify_and_truncate`].
    pub fn recover(&mut self) -> OctoResult<RecoveryStats> {
        if let Some(store) = self.store.as_mut() {
            let (recovered, stats) = store.recover()?;
            self.adopt_recovered(recovered);
            Ok(stats)
        } else {
            let dropped = self.verify_and_truncate();
            Ok(RecoveryStats { records_truncated: dropped as u64, ..RecoveryStats::default() })
        }
    }

    /// Adopt another log's contents (ISR resync copying the leader).
    /// Keeps this log's own durable store, rewriting its files to match
    /// the adopted snapshot.
    pub fn replace_from(&mut self, snapshot: &PartitionLog) -> OctoResult<()> {
        self.segments = snapshot.segments.clone();
        self.segment_bytes = snapshot.segment_bytes;
        self.log_start = snapshot.log_start;
        self.total_bytes = snapshot.total_bytes;
        if let Some(store) = self.store.as_mut() {
            store.reset_with(
                self.segments.iter().map(|s| (s.base_offset, s.records.as_slice())),
            )?;
        }
        Ok(())
    }

    /// Simulate power loss: RAM is gone; the disk keeps closed segments,
    /// the fsynced prefix of the active segment, and an `entropy`-chosen
    /// slice of its unflushed suffix. The in-memory state is wiped —
    /// only [`PartitionLog::recover`] (the restart path) brings the
    /// partition back. Returns bytes torn from disk (`0` for volatile
    /// logs, where a crash loses nothing by construction).
    pub fn power_loss(&mut self, entropy: u64) -> OctoResult<u64> {
        let Some(store) = self.store.as_mut() else { return Ok(0) };
        let torn = store.power_loss(entropy)?;
        self.segments = vec![Segment::new(0)];
        self.log_start = 0;
        self.total_bytes = 0;
        Ok(torn)
    }

    /// Force-fsync the durable store (graceful shutdown / flush-all).
    pub fn sync_store(&mut self) -> OctoResult<()> {
        match self.store.as_mut() {
            Some(store) => store.sync(),
            None => Ok(()),
        }
    }

    /// Bytes appended but not yet known to be on stable storage.
    pub fn unflushed_bytes(&self) -> u64 {
        self.store.as_ref().map(|s| s.unflushed_bytes()).unwrap_or(0)
    }

    /// Change the segment roll size for future appends (topic config
    /// updates propagate here). Existing segments are untouched.
    pub fn set_segment_bytes(&mut self, segment_bytes: usize) {
        self.segment_bytes = segment_bytes.max(1);
    }

    /// Offset the next appended record will get.
    pub fn end_offset(&self) -> Offset {
        self.segments.last().map(|s| s.next_offset()).unwrap_or(self.log_start)
    }

    /// Offset of the earliest retained record.
    pub fn start_offset(&self) -> Offset {
        self.log_start
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.records.len()).sum()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Retained bytes.
    pub fn size_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Append a verified batch at `now`; returns the base offset
    /// assigned to the first record.
    pub fn append(&mut self, batch: &RecordBatch, now: Timestamp) -> OctoResult<Offset> {
        if !batch.verify() {
            return Err(OctoError::Invalid("record batch failed CRC check".into()));
        }
        let base = self.end_offset();
        for (i, event) in batch.events.iter().enumerate() {
            let mut rec = Record {
                offset: base + i as u64,
                append_time: now,
                key: event.key.clone(),
                value: event.payload.clone(),
                headers: event.headers.clone(),
                producer_time: event.timestamp,
                crc: 0,
            };
            rec.crc = rec.compute_crc();
            let size = rec.wire_size();
            let roll = {
                let seg = self.segments.last().expect("log always has a segment");
                !seg.records.is_empty() && seg.size_bytes + size > self.segment_bytes
            };
            if roll {
                let next = self.segments.last().expect("nonempty").next_offset();
                self.segments.push(Segment::new(next));
            }
            let seg = self.segments.last_mut().expect("nonempty");
            seg.size_bytes += size;
            seg.max_timestamp = seg.max_timestamp.max(rec.append_time);
            seg.records.push(rec);
            self.total_bytes += size;
        }
        if self.store.is_some() {
            if let Err(e) = self.write_through(base) {
                // disk refused the batch: roll the in-memory tail back so
                // RAM never claims records the store could not keep
                self.truncate_from_offset(base);
                if let Some(store) = self.store.as_mut() {
                    let _ = store.truncate_to(base);
                }
                return Err(e);
            }
        }
        Ok(base)
    }

    /// Persist every record at `offset >= from` to the store, mirroring
    /// the in-memory segment layout, then apply the flush policy.
    fn write_through(&mut self, from: Offset) -> OctoResult<()> {
        let store = self.store.as_mut().expect("caller checked");
        let seg_idx = match self.segments.binary_search_by(|s| s.base_offset.cmp(&from)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        for seg in &self.segments[seg_idx..] {
            for rec in &seg.records {
                if rec.offset < from {
                    continue;
                }
                store.append(rec, seg.base_offset)?;
            }
        }
        store.commit_batch()
    }

    /// Remove every in-memory record at `offset >= from`, dropping
    /// trailing segments that end up empty (but always keeping one).
    fn truncate_from_offset(&mut self, from: Offset) {
        for seg in &mut self.segments {
            let keep = seg.records.partition_point(|r| r.offset < from);
            if keep < seg.records.len() {
                for rec in seg.records.drain(keep..) {
                    let size = rec.wire_size();
                    seg.size_bytes -= size;
                    self.total_bytes -= size;
                }
            }
        }
        while self.segments.len() > 1
            && self.segments.last().map(|s| s.records.is_empty()).unwrap_or(false)
        {
            self.segments.pop();
        }
    }

    /// Read up to `max_records` records starting at `offset`.
    ///
    /// `offset == end_offset()` returns an empty vec (caller is caught
    /// up); offsets below `start_offset` or above the end are
    /// `OffsetOutOfRange`, matching Kafka's fetch semantics.
    pub fn read(&self, offset: Offset, max_records: usize) -> OctoResult<Vec<Record>> {
        let end = self.end_offset();
        if offset == end {
            return Ok(Vec::new());
        }
        if offset < self.log_start || offset > end {
            return Err(OctoError::OffsetOutOfRange {
                requested: offset,
                earliest: self.log_start,
                latest: end,
            });
        }
        let mut out = Vec::new();
        // binary search for the segment containing `offset`
        let seg_idx = match self
            .segments
            .binary_search_by(|s| s.base_offset.cmp(&offset))
        {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        'outer: for seg in &self.segments[seg_idx..] {
            for rec in &seg.records {
                if rec.offset < offset {
                    continue;
                }
                if out.len() >= max_records {
                    break 'outer;
                }
                out.push(rec.clone());
            }
        }
        Ok(out)
    }

    /// The smallest offset whose append time is `>= ts` (the
    /// "consume after a certain timestamp" mode of §IV-F), or the end
    /// offset if no such record is retained.
    pub fn offset_for_timestamp(&self, ts: Timestamp) -> Offset {
        for seg in &self.segments {
            if seg.max_timestamp < ts {
                continue;
            }
            for rec in &seg.records {
                if rec.append_time >= ts {
                    return rec.offset;
                }
            }
        }
        self.end_offset()
    }

    /// Apply retention at `now`: drop whole closed segments older than
    /// `retention.ms` or beyond `retention.bytes`. The active (last)
    /// segment is never dropped. Returns the number of records removed.
    pub fn enforce_retention(&mut self, retention: &RetentionConfig, now: Timestamp) -> usize {
        let mut removed = 0usize;
        // time-based: drop closed segments whose newest record is older
        // than the retention window
        while self.segments.len() > 1 {
            let seg = &self.segments[0];
            let expired = retention
                .retention_ms
                .map(|ms| now.since(seg.max_timestamp).as_millis() as u64 > ms)
                .unwrap_or(false);
            let over_size = retention
                .retention_bytes
                .map(|limit| self.total_bytes as u64 > limit)
                .unwrap_or(false);
            if !(expired || over_size) {
                break;
            }
            let seg = self.segments.remove(0);
            removed += seg.records.len();
            self.total_bytes -= seg.size_bytes;
            self.log_start = self.segments[0].base_offset;
            if let Some(store) = self.store.as_mut() {
                // best-effort: a failed delete only means recovery may
                // resurrect an already-expired segment, never data loss
                let _ = store.remove_front_segment(seg.base_offset);
            }
        }
        removed
    }

    /// Compact closed segments: keep only the newest record per key
    /// (records without a key are always kept, as in Kafka, where
    /// compaction requires keyed topics — unkeyed records cannot be
    /// superseded). The active segment is left alone. Offsets are
    /// preserved (compaction never renumbers). Returns records removed.
    pub fn compact(&mut self) -> usize {
        if self.segments.len() <= 1 {
            return 0;
        }
        // newest offset per key across *all* retained records (later
        // segments supersede earlier ones)
        let mut newest: HashMap<Bytes, Offset> = HashMap::new();
        for seg in &self.segments {
            for rec in &seg.records {
                if let Some(k) = &rec.key {
                    newest.insert(k.clone(), rec.offset);
                }
            }
        }
        let mut removed = 0usize;
        let last = self.segments.len() - 1;
        for seg in &mut self.segments[..last] {
            let before = seg.records.len();
            seg.records.retain(|rec| match &rec.key {
                Some(k) => newest.get(k) == Some(&rec.offset),
                None => true,
            });
            removed += before - seg.records.len();
            let new_size: usize = seg.records.iter().map(|r| r.wire_size()).sum();
            self.total_bytes -= seg.size_bytes - new_size;
            seg.size_bytes = new_size;
            if before != seg.records.len() {
                if let Some(store) = self.store.as_mut() {
                    // atomic rewrite (tmp + rename); best-effort like
                    // retention — recovery resurrecting superseded keys
                    // only costs space, not correctness
                    let _ = store.rewrite_segment(seg.base_offset, &seg.records);
                }
            }
        }
        removed
    }

    /// Corrupt the payload bytes of the last `n` retained records
    /// *without* updating their checksums — the shape a torn or
    /// bit-rotted tail write leaves on disk. Fault-injection only.
    /// Returns how many records were actually corrupted.
    pub fn corrupt_tail(&mut self, n: usize) -> usize {
        let mut corrupted = 0usize;
        'outer: for seg in self.segments.iter_mut().rev() {
            for rec in seg.records.iter_mut().rev() {
                if corrupted >= n {
                    break 'outer;
                }
                let mut bytes = rec.value.to_vec();
                if bytes.is_empty() {
                    bytes.push(0xff);
                } else {
                    let last = bytes.len() - 1;
                    bytes[last] ^= 0xa5;
                }
                rec.value = Bytes::from(bytes);
                corrupted += 1;
            }
        }
        corrupted
    }

    /// Log recovery: scan records in offset order and truncate
    /// everything from the first CRC mismatch onward (a corrupt record
    /// makes the rest of the tail untrustworthy, as in Kafka's
    /// restart-time log recovery). Returns the number of records
    /// dropped.
    pub fn verify_and_truncate(&mut self) -> usize {
        let mut bad: Option<(usize, usize)> = None;
        'scan: for (si, seg) in self.segments.iter().enumerate() {
            for (ri, rec) in seg.records.iter().enumerate() {
                if !rec.verify() {
                    bad = Some((si, ri));
                    break 'scan;
                }
            }
        }
        let Some((si, ri)) = bad else { return 0 };
        let mut removed = 0usize;
        for seg in self.segments.drain(si + 1..) {
            removed += seg.records.len();
            self.total_bytes -= seg.size_bytes;
        }
        let seg = &mut self.segments[si];
        removed += seg.records.len() - ri;
        for rec in seg.records.drain(ri..) {
            let size = rec.wire_size();
            seg.size_bytes -= size;
            self.total_bytes -= size;
        }
        removed
    }

    /// Run the configured cleanup policy.
    pub fn cleanup(&mut self, policy: &CleanupPolicy, retention: &RetentionConfig, now: Timestamp) -> usize {
        match policy {
            CleanupPolicy::Delete => self.enforce_retention(retention, now),
            CleanupPolicy::Compact => self.compact(),
            CleanupPolicy::CompactAndDelete => {
                self.compact() + self.enforce_retention(retention, now)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_types::Event;

    fn ev(payload: &str) -> Event {
        Event::from_bytes(payload.as_bytes().to_vec())
    }

    fn kev(key: &str, payload: &str) -> Event {
        Event::builder().key(key).payload(payload.as_bytes().to_vec()).build()
    }

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn offsets_are_dense_and_increasing() {
        let mut log = PartitionLog::new();
        let b0 = log.append(&RecordBatch::new(vec![ev("a"), ev("b")]), t(1)).unwrap();
        let b1 = log.append(&RecordBatch::new(vec![ev("c")]), t(2)).unwrap();
        assert_eq!(b0, 0);
        assert_eq!(b1, 2);
        assert_eq!(log.end_offset(), 3);
        let recs = log.read(0, 100).unwrap();
        assert_eq!(recs.iter().map(|r| r.offset).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(&recs[2].value[..], b"c");
    }

    #[test]
    fn read_semantics_at_boundaries() {
        let mut log = PartitionLog::new();
        log.append(&RecordBatch::new(vec![ev("a"), ev("b"), ev("c")]), t(1)).unwrap();
        // caught-up read is empty, not an error
        assert!(log.read(3, 10).unwrap().is_empty());
        // beyond the end errors
        assert!(matches!(log.read(4, 10), Err(OctoError::OffsetOutOfRange { .. })));
        // max_records respected
        assert_eq!(log.read(0, 2).unwrap().len(), 2);
        // mid-log read
        assert_eq!(log.read(1, 10).unwrap()[0].offset, 1);
    }

    #[test]
    fn corrupt_batch_rejected() {
        let mut log = PartitionLog::new();
        let mut batch = RecordBatch::new(vec![ev("a")]);
        batch.crc ^= 1;
        assert!(matches!(log.append(&batch, t(1)), Err(OctoError::Invalid(_))));
        assert!(log.is_empty());
    }

    #[test]
    fn segments_roll_by_size() {
        let mut log = PartitionLog::with_segment_bytes(10);
        for i in 0..10 {
            log.append(&RecordBatch::new(vec![ev(&format!("{i:06}"))]), t(i)).unwrap();
        }
        // 6-byte records, 10-byte segments -> one record rolls the next
        assert!(log.segments.len() >= 5, "got {} segments", log.segments.len());
        // reads still span segments seamlessly
        let recs = log.read(0, 100).unwrap();
        assert_eq!(recs.len(), 10);
        assert_eq!(recs[9].offset, 9);
    }

    #[test]
    fn time_retention_drops_old_segments() {
        let mut log = PartitionLog::with_segment_bytes(8);
        for i in 0..8u64 {
            log.append(&RecordBatch::new(vec![ev(&format!("{i:06}"))]), t(i * 1000)).unwrap();
        }
        let retention =
            RetentionConfig { retention_ms: Some(3_000), retention_bytes: None };
        let removed = log.enforce_retention(&retention, t(8_000));
        assert!(removed > 0);
        assert!(log.start_offset() > 0);
        // old offsets now out of range
        assert!(matches!(log.read(0, 10), Err(OctoError::OffsetOutOfRange { .. })));
        // newest data still readable
        assert_eq!(log.read(log.start_offset(), 100).unwrap().len(), log.len());
        // the active segment survives even if expired
        let removed_again = log.enforce_retention(
            &RetentionConfig { retention_ms: Some(0), retention_bytes: None },
            t(1_000_000),
        );
        assert!(!log.is_empty(), "active segment never dropped (removed {removed_again})");
    }

    #[test]
    fn size_retention_bounds_total_bytes() {
        let mut log = PartitionLog::with_segment_bytes(100);
        for i in 0..100 {
            log.append(&RecordBatch::new(vec![ev(&format!("{i:050}"))]), t(i)).unwrap();
        }
        let retention = RetentionConfig { retention_ms: None, retention_bytes: Some(500) };
        log.enforce_retention(&retention, t(1000));
        assert!(log.size_bytes() <= 600, "size {} not bounded", log.size_bytes());
    }

    #[test]
    fn offset_for_timestamp_lookup() {
        let mut log = PartitionLog::new();
        log.append(&RecordBatch::new(vec![ev("a")]), t(100)).unwrap();
        log.append(&RecordBatch::new(vec![ev("b")]), t(200)).unwrap();
        log.append(&RecordBatch::new(vec![ev("c")]), t(300)).unwrap();
        assert_eq!(log.offset_for_timestamp(t(0)), 0);
        assert_eq!(log.offset_for_timestamp(t(150)), 1);
        assert_eq!(log.offset_for_timestamp(t(200)), 1);
        assert_eq!(log.offset_for_timestamp(t(201)), 2);
        assert_eq!(log.offset_for_timestamp(t(999)), 3); // end offset
    }

    #[test]
    fn compaction_keeps_latest_per_key() {
        let mut log = PartitionLog::with_segment_bytes(4);
        log.append(&RecordBatch::new(vec![kev("k1", "v1")]), t(1)).unwrap();
        log.append(&RecordBatch::new(vec![kev("k2", "v1")]), t(2)).unwrap();
        log.append(&RecordBatch::new(vec![kev("k1", "v2")]), t(3)).unwrap();
        log.append(&RecordBatch::new(vec![ev("nk")]), t(4)).unwrap();
        log.append(&RecordBatch::new(vec![kev("k1", "v3")]), t(5)).unwrap();
        let removed = log.compact();
        assert_eq!(removed, 2, "k1@0 and k1@2 removed");
        let recs = log.read(log.start_offset(), 100).unwrap();
        let k1: Vec<&Record> =
            recs.iter().filter(|r| r.key.as_deref() == Some(&b"k1"[..])).collect();
        assert_eq!(k1.len(), 1);
        assert_eq!(&k1[0].value[..], b"v3");
        // unkeyed record survives
        assert!(recs.iter().any(|r| r.key.is_none()));
        // offsets preserved (no renumbering)
        assert_eq!(k1[0].offset, 4);
    }

    #[test]
    fn tail_corruption_detected_and_truncated() {
        let mut log = PartitionLog::with_segment_bytes(12);
        for i in 0..6u64 {
            log.append(&RecordBatch::new(vec![ev(&format!("{i:06}"))]), t(i)).unwrap();
        }
        let bytes_before = log.size_bytes();
        assert_eq!(log.corrupt_tail(2), 2);
        // reads still serve the corrupt records (the fabric trusts the
        // page cache while running) — recovery happens on restart
        assert_eq!(log.read(0, 100).unwrap().len(), 6);
        let dropped = log.verify_and_truncate();
        assert_eq!(dropped, 2);
        assert_eq!(log.end_offset(), 4);
        assert_eq!(log.len(), 4);
        assert!(log.size_bytes() < bytes_before);
        // surviving prefix is intact and re-appendable
        assert!(log.read(0, 100).unwrap().iter().all(|r| r.verify()));
        let next = log.append(&RecordBatch::new(vec![ev("fresh!")]), t(10)).unwrap();
        assert_eq!(next, 4);
    }

    #[test]
    fn verify_and_truncate_is_noop_on_clean_log() {
        let mut log = PartitionLog::new();
        log.append(&RecordBatch::new(vec![ev("a"), ev("b")]), t(1)).unwrap();
        assert_eq!(log.verify_and_truncate(), 0);
        assert_eq!(log.len(), 2);
        assert_eq!(PartitionLog::new().verify_and_truncate(), 0);
    }

    #[test]
    fn cleanup_policy_dispatch() {
        let retention = RetentionConfig { retention_ms: Some(10), retention_bytes: None };
        let mut log = PartitionLog::with_segment_bytes(4);
        for i in 0..5u64 {
            log.append(&RecordBatch::new(vec![kev("k", &format!("v{i}"))]), t(i)).unwrap();
        }
        let mut l2 = log.clone();
        assert!(log.cleanup(&CleanupPolicy::Compact, &retention, t(100)) > 0);
        assert!(l2.cleanup(&CleanupPolicy::CompactAndDelete, &retention, t(100)) > 0);
    }
}
