//! Elastic scale-out smoke: grow a 3-broker cluster to 6 brokers
//! mid-traffic while a broker crash lands during the balancer's
//! reassignments, then print one machine-readable JSON summary.
//! `scripts/ci.sh` gates on `moved_partitions >= 1`, `acked_loss == 0`
//! and `duplicates == 0`.
//!
//! Run with: `cargo run --example elastic_smoke`

use octopus::chaos::{ChaosConfig, ChaosHarness, FaultKind, FaultPlan};

fn main() {
    // A crash in the middle of the growth window, so at least some
    // moves race a dead source or target and must abort + retry.
    let plan = FaultPlan::new(0xE1A5)
        .at(15, FaultKind::BrokerCrash { broker: 1 })
        .at(70, FaultKind::BrokerRestart { broker: 1 });

    let report = ChaosHarness::new(plan)
        .with_config(ChaosConfig {
            brokers: 3,
            partitions: 4,
            strict_eos: true,
            scale_to: Some(6),
            drain_timeout: std::time::Duration::from_secs(15),
            ..ChaosConfig::default()
        })
        .run();

    let acked_loss = report
        .violations
        .iter()
        .filter(|v| v.contains("lost") || v.contains("never delivered"))
        .count();
    let summary = serde_json::json!({
        "brokers_initial": 3,
        "brokers_final": report.final_brokers,
        "moved_partitions": report.moved_partitions,
        "acked": report.acked.len(),
        "delivered_unique": report.delivered_unique(),
        "acked_loss": acked_loss,
        "duplicates": report.duplicates(),
        "final_isr": report.final_isr,
        "replication_factor": report.replication_factor,
        "violations": report.violations,
        "ok": report.violations.is_empty()
            && report.moved_partitions >= 1
            && report.final_brokers == 6,
    });
    println!("{}", serde_json::to_string_pretty(&summary).unwrap());

    report.assert_invariants();
    assert!(report.moved_partitions >= 1, "balancer committed no moves");
    assert_eq!(report.final_brokers, 6, "fleet did not reach the elastic target");
}
