//! Hermetic stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable, immutable, contiguous byte
//! buffer backed by `Arc<[u8]>`. It covers the slice-like surface
//! this workspace uses; the zero-copy split/advance API of the real
//! crate is intentionally omitted.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Wrap a static byte slice (copied into the shared buffer; the
    /// real crate's zero-copy behaviour is an optimisation, not a
    /// semantic difference).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copy an arbitrary slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// View as a byte slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Return a buffer holding `self[begin..end]`.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self.data[range])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == &other.data[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Matches Borrow<[u8]>: hash as a slice.
        self.data[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    use super::Bytes;
    use serde::{DeError, Deserialize, Serialize, Value};

    impl Serialize for Bytes {
        fn serialize_value(&self) -> Value {
            Value::Array(self.iter().map(|&b| Value::from(b as u64)).collect())
        }
    }

    impl Deserialize for Bytes {
        fn deserialize_value(v: &Value) -> Result<Self, DeError> {
            let arr = v.as_array().ok_or_else(|| DeError::new("expected byte array"))?;
            let mut out = Vec::with_capacity(arr.len());
            for item in arr {
                let n = item
                    .as_u64()
                    .filter(|&n| n <= u8::MAX as u64)
                    .ok_or_else(|| DeError::new("expected byte value 0..=255"))?;
                out.push(n as u8);
            }
            Ok(Bytes::from(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn construction_and_deref() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(&b[..], b"hello");
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        let v: Vec<u8> = b.to_vec();
        assert_eq!(v, b"hello");
    }

    #[test]
    fn equality_and_hash_as_map_key() {
        let mut m: HashMap<Bytes, u32> = HashMap::new();
        m.insert(Bytes::from_static(b"k"), 1);
        assert_eq!(m.get(&Bytes::from(b"k".to_vec())), Some(&1));
    }

    #[test]
    fn cheap_clone_shares_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }
}
