//! A Globus-Transfer-like data replication service.
//!
//! The data-automation trigger "makes a request to the Globus Transfer
//! service to initiate a transfer from the source to the destination
//! FS" (§VI-B). The substitute models the parts the EDA interacts with:
//! asynchronous submission, bandwidth-paced completion, status polling,
//! and optional completion events published back to the fabric (so a
//! second rule can chain off transfer completion, per the §I example).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use octopus_broker::{AckLevel, Cluster};
use octopus_types::{Clock, Event, OctoError, OctoResult, Timestamp, Uid, WallClock};

/// A transfer submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferRequest {
    /// Source path (on the source FS).
    pub source: String,
    /// Destination path.
    pub destination: String,
    /// Bytes to move.
    pub bytes: u64,
}

/// Transfer state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferStatus {
    /// Moving data; completes at the embedded time.
    Active,
    /// Done.
    Succeeded,
}

#[derive(Debug, Clone)]
struct TransferRecord {
    request: TransferRequest,
    completes_at: Timestamp,
    acting_as: Uid,
}

/// The transfer service.
#[derive(Clone)]
pub struct TransferService {
    transfers: Arc<Mutex<HashMap<Uid, TransferRecord>>>,
    clock: Arc<dyn Clock>,
    /// Modelled end-to-end bandwidth, bytes/second.
    bandwidth: f64,
    /// Completion events go here when configured.
    completion_sink: Option<(Cluster, String)>,
}

impl TransferService {
    /// A service moving data at `bandwidth` bytes/second.
    pub fn new(bandwidth: f64) -> Self {
        Self::with_clock(bandwidth, Arc::new(WallClock))
    }

    /// With an injected clock (simulated time in experiments).
    pub fn with_clock(bandwidth: f64, clock: Arc<dyn Clock>) -> Self {
        assert!(bandwidth > 0.0);
        TransferService {
            transfers: Arc::new(Mutex::new(HashMap::new())),
            clock,
            bandwidth,
            completion_sink: None,
        }
    }

    /// Publish a completion event to `topic` on `cluster` when each
    /// transfer finishes (chaining rules, §I).
    pub fn with_completion_events(mut self, cluster: Cluster, topic: &str) -> Self {
        self.completion_sink = Some((cluster, topic.to_string()));
        self
    }

    /// Submit a transfer on behalf of `acting_as` (the delegated
    /// identity from the trigger context). Returns the transfer id.
    pub fn submit(&self, acting_as: Uid, request: TransferRequest) -> OctoResult<Uid> {
        if request.bytes == 0 {
            return Err(OctoError::Invalid("empty transfer".into()));
        }
        let id = Uid::fresh();
        let now = self.clock.now();
        let duration_ms = (request.bytes as f64 / self.bandwidth * 1000.0).ceil() as u64;
        self.transfers.lock().insert(
            id,
            TransferRecord {
                request,
                completes_at: Timestamp::from_millis(now.as_millis() + duration_ms),
                acting_as,
            },
        );
        Ok(id)
    }

    /// Poll a transfer's status. Completion publishes the completion
    /// event (once).
    pub fn status(&self, id: Uid) -> OctoResult<TransferStatus> {
        let now = self.clock.now();
        let mut transfers = self.transfers.lock();
        let rec = transfers
            .get(&id)
            .ok_or_else(|| OctoError::NotFound(format!("transfer {id}")))?
            .clone();
        if now >= rec.completes_at {
            transfers.remove(&id);
            drop(transfers);
            if let Some((cluster, topic)) = &self.completion_sink {
                let event = Event::builder()
                    .key(rec.request.destination.clone())
                    .json(&serde_json::json!({
                        "event_type": "transfer_complete",
                        "transfer_id": id.to_string(),
                        "source": rec.request.source,
                        "destination": rec.request.destination,
                        "bytes": rec.request.bytes,
                        "acting_as": rec.acting_as.to_string(),
                    }))?
                    .build();
                cluster.produce(topic, event, AckLevel::Leader)?;
            }
            Ok(TransferStatus::Succeeded)
        } else {
            Ok(TransferStatus::Active)
        }
    }

    /// Number of in-flight transfers.
    pub fn active_count(&self) -> usize {
        self.transfers.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_broker::TopicConfig;
    use octopus_types::ManualClock;
    use std::time::Duration;

    fn service() -> (TransferService, ManualClock) {
        let clock = ManualClock::new(Timestamp::from_millis(0));
        (TransferService::with_clock(1_000_000.0, Arc::new(clock.clone())), clock)
    }

    fn req(bytes: u64) -> TransferRequest {
        TransferRequest { source: "/pfs0/a.h5".into(), destination: "/pfs1/a.h5".into(), bytes }
    }

    #[test]
    fn transfer_takes_bandwidth_time() {
        let (svc, clock) = service();
        // 2 MB at 1 MB/s = 2 seconds
        let id = svc.submit(Uid(1), req(2_000_000)).unwrap();
        assert_eq!(svc.status(id).unwrap(), TransferStatus::Active);
        clock.advance(Duration::from_millis(1999));
        assert_eq!(svc.status(id).unwrap(), TransferStatus::Active);
        clock.advance(Duration::from_millis(2));
        assert_eq!(svc.status(id).unwrap(), TransferStatus::Succeeded);
        assert_eq!(svc.active_count(), 0);
    }

    #[test]
    fn unknown_and_empty_transfers() {
        let (svc, _clock) = service();
        assert!(matches!(svc.status(Uid(99)), Err(OctoError::NotFound(_))));
        assert!(matches!(svc.submit(Uid(1), req(0)), Err(OctoError::Invalid(_))));
    }

    #[test]
    fn completion_event_chains_to_fabric() {
        let clock = ManualClock::new(Timestamp::from_millis(0));
        let cloud = Cluster::new(2);
        cloud.create_topic("transfers.done", TopicConfig::default()).unwrap();
        let svc = TransferService::with_clock(1e6, Arc::new(clock.clone()))
            .with_completion_events(cloud.clone(), "transfers.done");
        let id = svc.submit(Uid(7), req(1_000_000)).unwrap();
        clock.advance(Duration::from_secs(2));
        assert_eq!(svc.status(id).unwrap(), TransferStatus::Succeeded);
        let events: usize = (0..2)
            .map(|p| cloud.fetch("transfers.done", p, 0, 100).unwrap().len())
            .sum();
        assert_eq!(events, 1);
        // re-polling a finished transfer is NotFound, so the completion
        // event is published exactly once
        assert!(svc.status(id).is_err());
    }

    #[test]
    fn many_concurrent_transfers() {
        let (svc, clock) = service();
        let ids: Vec<Uid> = (0..50).map(|_| svc.submit(Uid(1), req(500_000)).unwrap()).collect();
        assert_eq!(svc.active_count(), 50);
        clock.advance(Duration::from_secs(1));
        for id in ids {
            assert_eq!(svc.status(id).unwrap(), TransferStatus::Succeeded);
        }
        assert_eq!(svc.active_count(), 0);
    }
}
