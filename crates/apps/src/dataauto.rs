//! Scientific data automation (§VI-B, Fig. 6 left, Fig. 7).
//!
//! The full hierarchical EDA: a synthetic parallel FS feeds FSMon; the
//! local aggregator distills the firehose into the cloud `fsmon.events`
//! topic; an Octopus trigger filtered with Listing 1's pattern
//! (`event_type == "created"`) submits a Globus-Transfer-like request
//! replicating each new file to the destination filesystem. The
//! pipeline records the Fig. 7 timeline: events accumulating in the
//! monitor topic vs trigger invocations spawning transfers.

use std::sync::Arc;

use parking_lot::Mutex;
use serde_json::json;

use octopus_broker::{Cluster, TopicConfig};
use octopus_fsmon::{
    Aggregator, AggregatorConfig, FsMonitor, SyntheticFs, TransferRequest, TransferService,
    WorkloadProfile,
};
use octopus_pattern::Pattern;
use octopus_trigger::{AutoscalerConfig, FunctionConfig, TriggerRuntime, TriggerSpec};
use octopus_types::{OctoResult, Timestamp, Uid};

/// One sample of the Fig. 7 activity timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivitySample {
    /// Sample time (ms of simulated campaign time).
    pub t_ms: u64,
    /// Cumulative raw events seen by the FS monitor.
    pub monitor_events: u64,
    /// Cumulative events forwarded to the cloud topic.
    pub cloud_events: u64,
    /// Cumulative trigger invocations.
    pub trigger_invocations: u64,
    /// Cumulative transfers submitted.
    pub transfers: u64,
}

/// The assembled pipeline.
pub struct DataAutomationPipeline {
    fs: SyntheticFs,
    monitor: FsMonitor,
    aggregator: Aggregator,
    triggers: TriggerRuntime,
    transfers: Arc<Mutex<Vec<TransferRequest>>>,
    transfer_service: TransferService,
    timeline: Vec<ActivitySample>,
    cloud: Cluster,
}

impl DataAutomationPipeline {
    /// Build the pipeline: local cluster + cloud cluster + trigger +
    /// transfer service.
    pub fn new(local: Cluster, cloud: Cluster, seed: u64) -> OctoResult<Self> {
        Self::with_aggregation(local, cloud, seed, AggregatorConfig::default())
    }

    /// As [`DataAutomationPipeline::new`] with a custom aggregation
    /// policy (`AggregatorConfig::passthrough()` is the no-hierarchy
    /// ablation).
    pub fn with_aggregation(
        local: Cluster,
        cloud: Cluster,
        seed: u64,
        aggregation: AggregatorConfig,
    ) -> OctoResult<Self> {
        cloud.create_topic("fsmon.events", TopicConfig::default().with_partitions(4))?;
        let fs = SyntheticFs::new("pfs0", WorkloadProfile::default(), seed);
        let monitor = FsMonitor::new(local.clone(), "fsmon.raw")?;
        let aggregator =
            Aggregator::new(local, "fsmon.raw", cloud.clone(), "fsmon.events", aggregation);
        let transfer_service = TransferService::new(10e9); // 10 GB/s backbone
        let transfers: Arc<Mutex<Vec<TransferRequest>>> = Arc::new(Mutex::new(Vec::new()));
        let triggers = TriggerRuntime::new(cloud.clone());
        let log = transfers.clone();
        let svc = transfer_service.clone();
        triggers.deploy(TriggerSpec {
            name: "replicate-created-files".into(),
            topic: "fsmon.events".into(),
            // Listing 1: only creation events invoke the action
            pattern: Some(Pattern::parse(&json!({"event_type": ["created"]})).expect("static")),
            config: FunctionConfig { batch_size: 100, ..Default::default() },
            function: Arc::new(move |ctx, batch| {
                for d in batch {
                    let e = d.json().map_err(|e| e.to_string())?;
                    let src = e["path"].as_str().ok_or("missing path")?.to_string();
                    let req = TransferRequest {
                        destination: src.replace("/pfs/pfs0/", "/pfs/pfs1/"),
                        source: src,
                        bytes: e["size"].as_u64().unwrap_or(1).max(1),
                    };
                    svc.submit(ctx.acting_as, req.clone()).map_err(|e| e.to_string())?;
                    log.lock().push(req);
                }
                Ok(())
            }),
            acting_as: Uid(1),
            autoscaler: AutoscalerConfig::default(),
        })?;
        Ok(DataAutomationPipeline {
            fs,
            monitor,
            aggregator,
            triggers,
            transfers,
            transfer_service,
            timeline: Vec::new(),
            cloud,
        })
    }

    /// Simulate one campaign step at `t_ms`: a compute job finishes, its
    /// burst flows through the hierarchy, the trigger fires, transfers
    /// start. Appends a timeline sample.
    pub fn step(&mut self, t_ms: u64) -> OctoResult<ActivitySample> {
        let burst = self.fs.job_burst(Timestamp::from_millis(t_ms));
        self.monitor.publish(&burst)?;
        self.aggregator.run_once()?;
        self.triggers.poll_once("replicate-created-files")?;
        let status = self.triggers.status("replicate-created-files")?;
        let (_seen, forwarded) = self.aggregator.totals();
        let sample = ActivitySample {
            t_ms,
            monitor_events: self.monitor.published(),
            cloud_events: forwarded,
            trigger_invocations: status.invocations,
            transfers: self.transfers.lock().len() as u64,
        };
        self.timeline.push(sample);
        Ok(sample)
    }

    /// The recorded Fig. 7 timeline.
    pub fn timeline(&self) -> &[ActivitySample] {
        &self.timeline
    }

    /// The hierarchical reduction factor achieved so far.
    pub fn reduction_factor(&self) -> f64 {
        self.aggregator.reduction_factor()
    }

    /// Submitted transfer requests (test/report inspection).
    pub fn transfers(&self) -> Vec<TransferRequest> {
        self.transfers.lock().clone()
    }

    /// The transfer service (status polling).
    pub fn transfer_service(&self) -> &TransferService {
        &self.transfer_service
    }

    /// Traffic the cloud topic absorbed (egress/ingress accounting for
    /// the §VII-C cost comparison).
    pub fn cloud_stats(&self) -> octopus_broker::TopicStats {
        self.cloud.topic_stats("fsmon.events")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline() -> DataAutomationPipeline {
        DataAutomationPipeline::new(Cluster::new(2), Cluster::new(2), 11).unwrap()
    }

    #[test]
    fn created_files_spawn_transfers() {
        let mut p = pipeline();
        let s = p.step(0).unwrap();
        assert!(s.monitor_events > 0);
        assert!(s.cloud_events > 0);
        assert!(s.cloud_events < s.monitor_events, "hierarchy reduces volume");
        assert!(s.transfers > 0);
        // transfers mirror source→destination across filesystems
        for t in p.transfers() {
            assert!(t.source.starts_with("/pfs/pfs0/"));
            assert!(t.destination.starts_with("/pfs/pfs1/"));
            assert!(!t.source.contains("/tmp/"), "scratch never transferred");
            assert!(t.bytes > 0);
        }
    }

    #[test]
    fn only_created_events_trigger_transfers() {
        let mut p = pipeline();
        p.step(0).unwrap();
        let status = p.triggers.status("replicate-created-files").unwrap();
        // modifications reach the cloud topic but are filtered by the
        // Listing 1 pattern
        assert!(status.events_filtered > 0, "modified events filtered at the trigger");
        assert_eq!(status.failures, 0);
        assert_eq!(p.transfers().len() as u64, status.events_processed);
    }

    #[test]
    fn timeline_is_monotone_and_ordered() {
        let mut p = pipeline();
        for i in 0..5 {
            p.step(i * 60_000).unwrap();
        }
        let tl = p.timeline();
        assert_eq!(tl.len(), 5);
        for w in tl.windows(2) {
            assert!(w[1].monitor_events >= w[0].monitor_events);
            assert!(w[1].transfers >= w[0].transfers);
            assert!(w[1].trigger_invocations >= w[0].trigger_invocations);
        }
        // hierarchical aggregation: an order-of-magnitude style reduction
        assert!(p.reduction_factor() > 1.5, "factor {}", p.reduction_factor());
    }

    #[test]
    fn transfers_complete_through_the_service() {
        let mut p = pipeline();
        p.step(0).unwrap();
        assert!(p.transfer_service().active_count() > 0);
    }
}
