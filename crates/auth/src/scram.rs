//! SCRAM-SHA-256-style salted challenge-response authentication.
//!
//! This is the password mechanism the wire protocol carries in its
//! handshake (RFC 5802 shaped, simplified field syntax): the server
//! stores only a salted, iterated hash of the password, the password
//! itself never crosses the wire, and the final exchange proves to
//! *both* sides that the other knows it — the client sends a proof the
//! server can check against its stored key, and the server answers
//! with a signature only a party knowing the salted password could
//! compute (mutual authentication).
//!
//! The key derivation is `Hi()` from the RFC — PBKDF2-HMAC-SHA256 with
//! a configurable iteration count — built on the crate's own
//! [`crate::sha`] primitives, so nothing new is vendored.

use std::collections::HashMap;

use parking_lot::RwLock;
use rand::RngCore;

use octopus_types::{OctoError, OctoResult, Uid};

use crate::sha::{ct_eq, hmac_sha256, sha256};

/// Default PBKDF2 iteration count offered in challenges.
pub const SCRAM_ITERATIONS: u32 = 4096;

/// `Hi(str, salt, i)` from RFC 5802: PBKDF2-HMAC-SHA256, one block.
pub fn hi(password: &[u8], salt: &[u8], iterations: u32) -> [u8; 32] {
    // U1 = HMAC(password, salt || INT(1))
    let mut msg = salt.to_vec();
    msg.extend_from_slice(&1u32.to_be_bytes());
    let mut u = hmac_sha256(password, &msg);
    let mut out = u;
    for _ in 1..iterations.max(1) {
        u = hmac_sha256(password, &u);
        for (o, b) in out.iter_mut().zip(u.iter()) {
            *o ^= b;
        }
    }
    out
}

/// The canonical auth-message both sides MAC over: every negotiated
/// parameter is bound into the proof, so a middleman cannot swap the
/// salt, nonce, or iteration count without breaking both signatures.
pub fn auth_message(
    username: &str,
    client_nonce: &str,
    combined_nonce: &str,
    salt: &[u8],
    iterations: u32,
) -> Vec<u8> {
    let mut m = Vec::new();
    m.extend_from_slice(b"n=");
    m.extend_from_slice(username.as_bytes());
    m.extend_from_slice(b",r=");
    m.extend_from_slice(client_nonce.as_bytes());
    m.extend_from_slice(b",r=");
    m.extend_from_slice(combined_nonce.as_bytes());
    m.extend_from_slice(b",s=");
    m.extend_from_slice(salt);
    m.extend_from_slice(b",i=");
    m.extend_from_slice(&iterations.to_be_bytes());
    m
}

/// Client-side proof computation.
///
/// `ClientProof = ClientKey XOR HMAC(StoredKey, AuthMessage)`.
pub fn client_proof(password: &str, salt: &[u8], iterations: u32, auth_msg: &[u8]) -> [u8; 32] {
    let salted = hi(password.as_bytes(), salt, iterations);
    let client_key = hmac_sha256(&salted, b"Client Key");
    let stored_key = sha256(&client_key);
    let signature = hmac_sha256(&stored_key, auth_msg);
    let mut proof = client_key;
    for (p, s) in proof.iter_mut().zip(signature.iter()) {
        *p ^= s;
    }
    proof
}

/// Client-side check of the server's signature (mutual auth).
pub fn verify_server_signature(
    password: &str,
    salt: &[u8],
    iterations: u32,
    auth_msg: &[u8],
    server_signature: &[u8; 32],
) -> bool {
    let salted = hi(password.as_bytes(), salt, iterations);
    let server_key = hmac_sha256(&salted, b"Server Key");
    let expected = hmac_sha256(&server_key, auth_msg);
    ct_eq(&expected, server_signature)
}

/// What the server stores per user: no password, only derived keys.
#[derive(Debug, Clone)]
struct ScramCredential {
    salt: Vec<u8>,
    iterations: u32,
    stored_key: [u8; 32],
    server_key: [u8; 32],
    principal: Uid,
}

/// Server-side credential store.
///
/// Thread-safe and cheaply cloneable-by-reference (wrap in `Arc` to
/// share between the wire server's connection threads).
#[derive(Debug, Default)]
pub struct ScramStore {
    users: RwLock<HashMap<String, ScramCredential>>,
}

impl ScramStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Enroll (or re-enroll) a user. A fresh random salt is drawn per
    /// enrollment; the password is discarded after key derivation.
    pub fn add_user(&self, username: &str, password: &str, principal: Uid) {
        use rand::SeedableRng;
        let mut salt = vec![0u8; 16];
        rand::rngs::StdRng::from_entropy().fill_bytes(&mut salt);
        self.add_user_salted(username, password, principal, salt, SCRAM_ITERATIONS);
    }

    /// Enrollment with an explicit salt and iteration count, for
    /// deterministic tests and cross-process fixtures.
    pub fn add_user_salted(
        &self,
        username: &str,
        password: &str,
        principal: Uid,
        salt: Vec<u8>,
        iterations: u32,
    ) {
        let salted = hi(password.as_bytes(), &salt, iterations);
        let client_key = hmac_sha256(&salted, b"Client Key");
        let cred = ScramCredential {
            stored_key: sha256(&client_key),
            server_key: hmac_sha256(&salted, b"Server Key"),
            salt,
            iterations,
            principal,
        };
        self.users.write().insert(username.to_string(), cred);
    }

    /// Drop a user; subsequent handshakes fail authentication.
    pub fn remove_user(&self, username: &str) {
        self.users.write().remove(username);
    }

    /// Server step 1: produce the challenge parameters for a user.
    ///
    /// Unknown users get the same opaque `Unauthenticated` error that a
    /// bad password does; the wire layer surfaces both as `AuthFailed`
    /// so the handshake does not leak which usernames exist.
    pub fn challenge(&self, username: &str) -> OctoResult<(Vec<u8>, u32)> {
        let users = self.users.read();
        let cred = users
            .get(username)
            .ok_or_else(|| OctoError::Unauthenticated("scram authentication failed".into()))?;
        Ok((cred.salt.clone(), cred.iterations))
    }

    /// Server step 2: verify the client's proof over `auth_msg`.
    ///
    /// On success returns the principal plus the server signature to
    /// send back for mutual authentication. All failures collapse to
    /// the same `Unauthenticated` error.
    pub fn verify(
        &self,
        username: &str,
        auth_msg: &[u8],
        proof: &[u8; 32],
    ) -> OctoResult<(Uid, [u8; 32])> {
        let users = self.users.read();
        let cred = users
            .get(username)
            .ok_or_else(|| OctoError::Unauthenticated("scram authentication failed".into()))?;
        let signature = hmac_sha256(&cred.stored_key, auth_msg);
        let mut client_key = *proof;
        for (k, s) in client_key.iter_mut().zip(signature.iter()) {
            *k ^= s;
        }
        if !ct_eq(&sha256(&client_key), &cred.stored_key) {
            return Err(OctoError::Unauthenticated("scram authentication failed".into()));
        }
        Ok((cred.principal, hmac_sha256(&cred.server_key, auth_msg)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ScramStore {
        let s = ScramStore::new();
        s.add_user_salted("alice", "correct horse", Uid::from_parts(1, 1), vec![9; 16], 256);
        s
    }

    #[test]
    fn full_exchange_succeeds() {
        let s = store();
        let (salt, iters) = s.challenge("alice").unwrap();
        let msg = auth_message("alice", "cn", "cn.sn", &salt, iters);
        let proof = client_proof("correct horse", &salt, iters, &msg);
        let (principal, server_sig) = s.verify("alice", &msg, &proof).unwrap();
        assert_eq!(principal, Uid::from_parts(1, 1));
        assert!(verify_server_signature("correct horse", &salt, iters, &msg, &server_sig));
    }

    #[test]
    fn wrong_password_is_rejected() {
        let s = store();
        let (salt, iters) = s.challenge("alice").unwrap();
        let msg = auth_message("alice", "cn", "cn.sn", &salt, iters);
        let proof = client_proof("wrong horse", &salt, iters, &msg);
        assert!(matches!(s.verify("alice", &msg, &proof), Err(OctoError::Unauthenticated(_))));
    }

    #[test]
    fn unknown_user_is_rejected() {
        let s = store();
        assert!(s.challenge("mallory").is_err());
    }

    #[test]
    fn tampered_auth_message_breaks_the_proof() {
        // a middleman downgrading the iteration count changes the
        // auth-message, which invalidates the client proof
        let s = store();
        let (salt, iters) = s.challenge("alice").unwrap();
        let msg = auth_message("alice", "cn", "cn.sn", &salt, iters);
        let proof = client_proof("correct horse", &salt, iters, &msg);
        let tampered = auth_message("alice", "cn", "cn.sn", &salt, 1);
        assert!(s.verify("alice", &tampered, &proof).is_err());
    }

    #[test]
    fn removed_user_fails_subsequent_handshakes() {
        let s = store();
        s.remove_user("alice");
        assert!(s.challenge("alice").is_err());
    }

    #[test]
    fn hi_is_iteration_sensitive() {
        assert_ne!(hi(b"pw", b"salt", 1), hi(b"pw", b"salt", 2));
        assert_eq!(hi(b"pw", b"salt", 100), hi(b"pw", b"salt", 100));
    }

    #[test]
    fn server_signature_is_not_the_client_proof() {
        let s = store();
        let (salt, iters) = s.challenge("alice").unwrap();
        let msg = auth_message("alice", "cn", "cn.sn", &salt, iters);
        let proof = client_proof("correct horse", &salt, iters, &msg);
        let (_, server_sig) = s.verify("alice", &msg, &proof).unwrap();
        assert_ne!(proof, server_sig);
    }
}
