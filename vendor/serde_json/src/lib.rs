//! Hermetic stand-in for `serde_json`.
//!
//! Re-exports the vendored value tree ([`Value`], [`Map`],
//! [`Number`]) and provides the JSON text layer: [`from_str`],
//! [`from_slice`], [`to_string`], [`to_vec`], [`to_value`],
//! [`from_value`], and the [`json!`] macro.

mod parse;

pub use serde::value::{Map, Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.message())
    }
}

/// Namespaced value module, mirroring `serde_json::value`.
pub mod value {
    pub use serde::value::{Map, Number, Value};
}

/// Render any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Rebuild a deserializable type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::deserialize_value(&value).map_err(Error::from)
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_value().to_json_string())
}

/// Serialize to pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    fn pretty(v: &Value, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match v {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    pretty(item, indent + 1, out);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, val)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    out.push_str(&Value::String(k.clone()).to_json_string());
                    out.push_str(": ");
                    pretty(val, indent + 1, out);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
            other => out.push_str(&other.to_json_string()),
        }
    }
    let mut out = String::new();
    pretty(&value.serialize_value(), 0, &mut out);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    T::deserialize_value(&value).map_err(Error::from)
}

/// Parse JSON bytes into any deserializable type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Build a [`Value`] from JSON-like literal syntax, mirroring
/// `serde_json::json!`. Supports nested objects/arrays, expression
/// interpolation for both keys and values, and trailing commas.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal_array!([] $($tt)+))
    };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_internal_object!(object () $($tt)+);
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::to_json_value(&$other) };
}

/// Array-element muncher for [`json!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_array {
    // Done.
    ([$($elems:expr,)*]) => { vec![$($elems,)*] };
    ([$($elems:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([$($elems,)* $crate::json!(null),] $($($rest)*)?)
    };
    ([$($elems:expr,)*] true $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([$($elems,)* $crate::json!(true),] $($($rest)*)?)
    };
    ([$($elems:expr,)*] false $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([$($elems,)* $crate::json!(false),] $($($rest)*)?)
    };
    ([$($elems:expr,)*] [$($arr:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([$($elems,)* $crate::json!([$($arr)*]),] $($($rest)*)?)
    };
    ([$($elems:expr,)*] {$($obj:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([$($elems,)* $crate::json!({$($obj)*}),] $($($rest)*)?)
    };
    ([$($elems:expr,)*] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([$($elems,)* $crate::json!($next),] $($($rest)*)?)
    };
}

/// Object-entry muncher for [`json!`]. Accumulates key tokens before
/// the `:` in parentheses. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_object {
    // Done.
    ($object:ident ()) => {};
    // Key complete, value is a nested array.
    ($object:ident ($($key:tt)+) : [$($arr:tt)*] $(, $($rest:tt)*)?) => {
        $object.insert($crate::json_key!($($key)+), $crate::json!([$($arr)*]));
        $crate::json_internal_object!($object () $($($rest)*)?);
    };
    // Key complete, value is a nested object.
    ($object:ident ($($key:tt)+) : {$($obj:tt)*} $(, $($rest:tt)*)?) => {
        $object.insert($crate::json_key!($($key)+), $crate::json!({$($obj)*}));
        $crate::json_internal_object!($object () $($($rest)*)?);
    };
    // Key complete, value is null/true/false.
    ($object:ident ($($key:tt)+) : null $(, $($rest:tt)*)?) => {
        $object.insert($crate::json_key!($($key)+), $crate::json!(null));
        $crate::json_internal_object!($object () $($($rest)*)?);
    };
    ($object:ident ($($key:tt)+) : true $(, $($rest:tt)*)?) => {
        $object.insert($crate::json_key!($($key)+), $crate::json!(true));
        $crate::json_internal_object!($object () $($($rest)*)?);
    };
    ($object:ident ($($key:tt)+) : false $(, $($rest:tt)*)?) => {
        $object.insert($crate::json_key!($($key)+), $crate::json!(false));
        $crate::json_internal_object!($object () $($($rest)*)?);
    };
    // Key complete, value is a general expression.
    ($object:ident ($($key:tt)+) : $value:expr , $($rest:tt)*) => {
        $object.insert($crate::json_key!($($key)+), $crate::json!($value));
        $crate::json_internal_object!($object () $($rest)*);
    };
    ($object:ident ($($key:tt)+) : $value:expr) => {
        $object.insert($crate::json_key!($($key)+), $crate::json!($value));
    };
    // Still accumulating key tokens.
    ($object:ident ($($key:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal_object!($object ($($key)* $next) $($rest)*);
    };
}

/// Convert accumulated key tokens into a `String` key. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_key {
    ($key:literal) => { ::std::string::String::from($key) };
    ($key:expr) => { ::std::string::String::from($key) };
}

/// Runtime helper behind `json!($expr)`. Not public API.
#[doc(hidden)]
pub fn to_json_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "a": 1,
            "nested": { "b": [1, 2, 3], "c": null },
            "flag": true,
            "list": ["x", { "y": 2.5 }],
        });
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["nested"]["b"][2].as_u64(), Some(3));
        assert!(v["nested"]["c"].is_null());
        assert_eq!(v["flag"], true);
        assert_eq!(v["list"][0], "x");
        assert_eq!(v["list"][1]["y"].as_f64(), Some(2.5));
    }

    #[test]
    fn json_macro_interpolation() {
        let n = 42u64;
        let s = String::from("hello");
        let v = json!({ "n": n, "s": s, "sum": 1 + 2 });
        assert_eq!(v["n"].as_u64(), Some(42));
        assert_eq!(v["s"], "hello");
        assert_eq!(v["sum"].as_u64(), Some(3));
    }

    #[test]
    fn roundtrip_text() {
        let v = json!({"k": [1, "two", 3.5, null, {"deep": true}]});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn from_str_typed() {
        let xs: Vec<u64> = from_str("[1,2,3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
        let err = from_str::<Vec<u64>>("[1,\"x\"]").unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({"a": {"b": [1, 2]}, "c": "text"});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }
}
