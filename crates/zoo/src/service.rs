//! The client-facing coordination service: ZooKeeper-style operations,
//! one-shot watches, and sessions with ephemeral-node cleanup, backed by
//! the replicated [`Ensemble`].

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::Sender;
use parking_lot::Mutex;

use octopus_types::{OctoError, OctoResult};

use crate::zab::{Ensemble, NodeId};
use crate::znode::{CreateMode, Stat, Txn, TxnResult};

/// A client session. Ephemeral nodes created under a session vanish when
/// it closes (or expires).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub u64);

/// What a watch observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchKind {
    /// The node was created.
    Created,
    /// The node's data changed.
    DataChanged,
    /// The node was deleted.
    Deleted,
    /// The node's child list changed.
    ChildrenChanged,
}

/// A fired watch notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    /// The watched path.
    pub path: String,
    /// What happened.
    pub kind: WatchKind,
}

struct Inner {
    ensemble: Ensemble,
    next_session: u64,
    data_watches: HashMap<String, Vec<Sender<WatchEvent>>>,
    child_watches: HashMap<String, Vec<Sender<WatchEvent>>>,
}

/// Thread-safe coordination service handle. Clones share state.
#[derive(Clone)]
pub struct ZooService {
    inner: Arc<Mutex<Inner>>,
}

fn map_error(msg: String) -> OctoError {
    if msg.contains("no node") || msg.contains("does not exist") {
        OctoError::NotFound(msg)
    } else if msg.contains("exists") || msg.contains("version mismatch") {
        OctoError::Conflict(msg)
    } else {
        OctoError::Invalid(msg)
    }
}

impl ZooService {
    /// A service backed by `replicas` ZAB nodes (3 or 5 in production
    /// ZooKeeper deployments; 1 is fine for tests).
    pub fn new(replicas: usize) -> Self {
        ZooService {
            inner: Arc::new(Mutex::new(Inner {
                ensemble: Ensemble::new(replicas),
                next_session: 1,
                data_watches: HashMap::new(),
                child_watches: HashMap::new(),
            })),
        }
    }

    /// Open a session.
    pub fn create_session(&self) -> SessionId {
        let mut inner = self.inner.lock();
        let id = inner.next_session;
        inner.next_session += 1;
        SessionId(id)
    }

    /// Close a session, removing its ephemeral nodes and firing watches.
    pub fn close_session(&self, session: SessionId) -> OctoResult<()> {
        let mut inner = self.inner.lock();
        let r = inner.ensemble.propose(Txn::CloseSession { session: session.0 })?;
        if let TxnResult::SessionClosed(paths) = r {
            for p in paths {
                fire_data(&mut inner, &p, WatchKind::Deleted);
                fire_parent(&mut inner, &p);
            }
        }
        Ok(())
    }

    /// Create a node; returns the final path (sequence-suffixed for
    /// sequential modes).
    pub fn create(
        &self,
        path: &str,
        data: &[u8],
        mode: CreateMode,
        session: Option<SessionId>,
    ) -> OctoResult<String> {
        let mut inner = self.inner.lock();
        let r = inner.ensemble.propose(Txn::Create {
            path: path.to_string(),
            data: data.to_vec(),
            mode,
            session: session.map(|s| s.0).unwrap_or(0),
        })?;
        match r {
            TxnResult::Created(final_path) => {
                fire_data(&mut inner, &final_path, WatchKind::Created);
                fire_parent(&mut inner, &final_path);
                Ok(final_path)
            }
            TxnResult::Error(msg) => Err(map_error(msg)),
            other => Err(OctoError::Internal(format!("unexpected result {other:?}"))),
        }
    }

    /// Create `path` and any missing ancestors (persistent, no data).
    pub fn ensure_path(&self, path: &str) -> OctoResult<()> {
        let mut cur = String::new();
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            cur.push('/');
            cur.push_str(seg);
            match self.create(&cur, &[], CreateMode::Persistent, None) {
                Ok(_) => {}
                Err(OctoError::Conflict(_)) => {} // already exists
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Read a node's data and stat.
    pub fn get(&self, path: &str) -> OctoResult<(Vec<u8>, Stat)> {
        let mut inner = self.inner.lock();
        let path = path.to_string();
        inner.ensemble.read(move |t| t.get(&path).map(|n| (n.data.clone(), n.stat)))?
    }

    /// Set a node's data; `expected_version` of `Some(v)` is a CAS.
    /// Returns the new version.
    pub fn set(&self, path: &str, data: &[u8], expected_version: Option<u32>) -> OctoResult<u32> {
        let mut inner = self.inner.lock();
        let r = inner.ensemble.propose(Txn::SetData {
            path: path.to_string(),
            data: data.to_vec(),
            expected_version,
        })?;
        match r {
            TxnResult::Set(v) => {
                fire_data(&mut inner, path, WatchKind::DataChanged);
                Ok(v)
            }
            TxnResult::Error(msg) => Err(map_error(msg)),
            other => Err(OctoError::Internal(format!("unexpected result {other:?}"))),
        }
    }

    /// Delete a node.
    pub fn delete(&self, path: &str, expected_version: Option<u32>) -> OctoResult<()> {
        let mut inner = self.inner.lock();
        let r = inner
            .ensemble
            .propose(Txn::Delete { path: path.to_string(), expected_version })?;
        match r {
            TxnResult::Deleted => {
                fire_data(&mut inner, path, WatchKind::Deleted);
                fire_parent(&mut inner, path);
                Ok(())
            }
            TxnResult::Error(msg) => Err(map_error(msg)),
            other => Err(OctoError::Internal(format!("unexpected result {other:?}"))),
        }
    }

    /// Child names of a node, sorted.
    pub fn children(&self, path: &str) -> OctoResult<Vec<String>> {
        let mut inner = self.inner.lock();
        let path = path.to_string();
        inner.ensemble.read(move |t| t.children(&path))?
    }

    /// Whether a node exists.
    pub fn exists(&self, path: &str) -> OctoResult<bool> {
        let mut inner = self.inner.lock();
        let path = path.to_string();
        inner.ensemble.read(move |t| t.exists(&path))
    }

    /// Register a one-shot watch on a node's data (created / changed /
    /// deleted). Events are delivered on `tx`.
    pub fn watch_data(&self, path: &str, tx: Sender<WatchEvent>) {
        self.inner.lock().data_watches.entry(path.to_string()).or_default().push(tx);
    }

    /// Register a one-shot watch on a node's child list.
    pub fn watch_children(&self, path: &str, tx: Sender<WatchEvent>) {
        self.inner.lock().child_watches.entry(path.to_string()).or_default().push(tx);
    }

    // ----- failure injection (tests, resilience experiments) -----

    /// Crash a replica.
    pub fn kill_replica(&self, id: usize) {
        self.inner.lock().ensemble.kill(NodeId(id));
    }

    /// Restart a crashed replica (resyncs from the leader).
    pub fn restart_replica(&self, id: usize) -> OctoResult<()> {
        self.inner.lock().ensemble.restart(NodeId(id))
    }

    /// Current leader index.
    pub fn leader_index(&self) -> usize {
        self.inner.lock().ensemble.leader().0
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.inner.lock().ensemble.len()
    }

    /// The ZAB safety invariant, checkable from outside: every pair of
    /// replicas must agree on their common committed prefix (one log is
    /// always a prefix of the other). Returns each replica's committed
    /// zxid on success; diverging replicas are an `Internal` error
    /// naming the pair. Chaos harnesses call this after replica flaps.
    pub fn committed_prefix_agreement(&self) -> OctoResult<Vec<u64>> {
        let inner = self.inner.lock();
        let e = &inner.ensemble;
        let logs: Vec<Vec<(u64, Txn)>> =
            (0..e.len()).map(|i| e.node(NodeId(i)).committed_log()).collect();
        for i in 0..logs.len() {
            for j in i + 1..logs.len() {
                let n = logs[i].len().min(logs[j].len());
                if logs[i][..n] != logs[j][..n] {
                    return Err(OctoError::Internal(format!(
                        "ZAB committed prefixes diverge between replicas {i} and {j}"
                    )));
                }
            }
        }
        Ok(logs.iter().map(|l| l.last().map(|(z, _)| *z).unwrap_or(0)).collect())
    }
}

fn fire_data(inner: &mut Inner, path: &str, kind: WatchKind) {
    if let Some(watchers) = inner.data_watches.remove(path) {
        for w in watchers {
            let _ = w.send(WatchEvent { path: path.to_string(), kind });
        }
    }
}

fn fire_parent(inner: &mut Inner, child_path: &str) {
    let parent = match child_path.rfind('/') {
        Some(0) => "/".to_string(),
        Some(i) => child_path[..i].to_string(),
        None => return,
    };
    if let Some(watchers) = inner.child_watches.remove(&parent) {
        for w in watchers {
            let _ = w.send(WatchEvent { path: parent.clone(), kind: WatchKind::ChildrenChanged });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn crud_roundtrip() {
        let zk = ZooService::new(3);
        zk.create("/topics", b"", CreateMode::Persistent, None).unwrap();
        let p = zk.create("/topics/sdl", b"cfg-v1", CreateMode::Persistent, None).unwrap();
        assert_eq!(p, "/topics/sdl");
        let (data, stat) = zk.get("/topics/sdl").unwrap();
        assert_eq!(data, b"cfg-v1");
        assert_eq!(stat.version, 0);
        let v = zk.set("/topics/sdl", b"cfg-v2", Some(0)).unwrap();
        assert_eq!(v, 1);
        assert!(matches!(zk.set("/topics/sdl", b"x", Some(0)), Err(OctoError::Conflict(_))));
        assert_eq!(zk.children("/topics").unwrap(), vec!["sdl"]);
        zk.delete("/topics/sdl", None).unwrap();
        assert!(!zk.exists("/topics/sdl").unwrap());
        assert!(matches!(zk.get("/topics/sdl"), Err(OctoError::NotFound(_))));
    }

    #[test]
    fn ensure_path_is_idempotent() {
        let zk = ZooService::new(1);
        zk.ensure_path("/a/b/c").unwrap();
        zk.ensure_path("/a/b/c").unwrap();
        assert!(zk.exists("/a/b/c").unwrap());
        assert_eq!(zk.children("/a").unwrap(), vec!["b"]);
    }

    #[test]
    fn duplicate_create_conflicts() {
        let zk = ZooService::new(1);
        zk.create("/x", b"", CreateMode::Persistent, None).unwrap();
        assert!(matches!(
            zk.create("/x", b"", CreateMode::Persistent, None),
            Err(OctoError::Conflict(_))
        ));
    }

    #[test]
    fn sequential_create_returns_final_path() {
        let zk = ZooService::new(1);
        zk.ensure_path("/q").unwrap();
        let p0 = zk.create("/q/item-", b"", CreateMode::PersistentSequential, None).unwrap();
        let p1 = zk.create("/q/item-", b"", CreateMode::PersistentSequential, None).unwrap();
        assert_eq!(p0, "/q/item-0000000000");
        assert_eq!(p1, "/q/item-0000000001");
    }

    #[test]
    fn session_cleanup_removes_ephemerals() {
        let zk = ZooService::new(3);
        zk.ensure_path("/brokers").unwrap();
        let s1 = zk.create_session();
        let s2 = zk.create_session();
        zk.create("/brokers/b0", b"", CreateMode::Ephemeral, Some(s1)).unwrap();
        zk.create("/brokers/b1", b"", CreateMode::Ephemeral, Some(s2)).unwrap();
        zk.close_session(s1).unwrap();
        assert_eq!(zk.children("/brokers").unwrap(), vec!["b1"]);
    }

    #[test]
    fn ephemeral_requires_session() {
        let zk = ZooService::new(1);
        assert!(zk.create("/e", b"", CreateMode::Ephemeral, None).is_err());
    }

    #[test]
    fn data_watch_fires_once() {
        let zk = ZooService::new(1);
        zk.create("/w", b"", CreateMode::Persistent, None).unwrap();
        let (tx, rx) = unbounded();
        zk.watch_data("/w", tx);
        zk.set("/w", b"1", None).unwrap();
        assert_eq!(
            rx.try_recv().unwrap(),
            WatchEvent { path: "/w".into(), kind: WatchKind::DataChanged }
        );
        // one-shot: a second change does not fire
        zk.set("/w", b"2", None).unwrap();
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn child_watch_fires_on_create_and_delete() {
        let zk = ZooService::new(1);
        zk.ensure_path("/parent").unwrap();
        let (tx, rx) = unbounded();
        zk.watch_children("/parent", tx.clone());
        zk.create("/parent/c", b"", CreateMode::Persistent, None).unwrap();
        assert_eq!(rx.try_recv().unwrap().kind, WatchKind::ChildrenChanged);
        // re-register (one-shot semantics)
        zk.watch_children("/parent", tx);
        zk.delete("/parent/c", None).unwrap();
        assert_eq!(rx.try_recv().unwrap().kind, WatchKind::ChildrenChanged);
    }

    #[test]
    fn deletion_watch_on_session_close() {
        let zk = ZooService::new(1);
        zk.ensure_path("/svc").unwrap();
        let s = zk.create_session();
        zk.create("/svc/worker", b"", CreateMode::Ephemeral, Some(s)).unwrap();
        let (tx, rx) = unbounded();
        zk.watch_data("/svc/worker", tx);
        zk.close_session(s).unwrap();
        assert_eq!(rx.try_recv().unwrap().kind, WatchKind::Deleted);
    }

    #[test]
    fn service_survives_replica_failures() {
        let zk = ZooService::new(3);
        zk.create("/a", b"", CreateMode::Persistent, None).unwrap();
        let leader = zk.leader_index();
        zk.kill_replica(leader);
        zk.create("/b", b"", CreateMode::Persistent, None).unwrap();
        assert!(zk.exists("/a").unwrap());
        assert!(zk.exists("/b").unwrap());
        assert_ne!(zk.leader_index(), leader);
        zk.restart_replica(leader).unwrap();
        zk.create("/c", b"", CreateMode::Persistent, None).unwrap();
        assert_eq!(zk.replica_count(), 3);
    }

    #[test]
    fn concurrent_clients_share_state() {
        let zk = ZooService::new(1);
        zk.ensure_path("/shared").unwrap();
        let mut handles = Vec::new();
        for i in 0..8 {
            let zk = zk.clone();
            handles.push(std::thread::spawn(move || {
                zk.create(&format!("/shared/n{i}"), b"", CreateMode::Persistent, None).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(zk.children("/shared").unwrap().len(), 8);
    }
}
