//! Dynamic workflow management (§VI-E): consuming the Parsl/Octopus
//! monitoring stream for live workflow state, straggler detection, and
//! failure surfacing — the signals that drive "adaptive healing actions
//! before they escalate into failures" (§III-A).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use octopus_broker::Cluster;
use octopus_flow::MonitorEvent;
use octopus_sdk::{Consumer, ConsumerConfig};
use octopus_types::OctoResult;

/// Live state of one task, folded from its monitoring events.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskState {
    /// Dispatched, not yet running.
    Launched,
    /// Executing on a worker.
    Running,
    /// Finished successfully.
    Done,
    /// Failed.
    Failed,
}

/// A straggler or failure finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Anomaly {
    /// Task name.
    pub task: String,
    /// Worker involved.
    pub worker: usize,
    /// What was detected.
    pub kind: String,
}

/// A dashboard folding the monitoring topic into live workflow state.
pub struct WorkflowDashboard {
    consumer: Consumer,
    states: HashMap<String, TaskState>,
    start_ms: HashMap<String, u64>,
    durations_ms: Vec<(String, usize, u64)>, // task, worker, duration
    failures: Vec<Anomaly>,
    /// Events consumed.
    pub events_seen: u64,
}

impl WorkflowDashboard {
    /// Subscribe to a monitoring topic.
    pub fn new(cluster: Cluster, topic: &str) -> OctoResult<Self> {
        let mut consumer = Consumer::new(
            cluster,
            ConsumerConfig { group: "workflow-dashboard".into(), ..Default::default() },
        );
        consumer.subscribe(&[topic])?;
        Ok(WorkflowDashboard {
            consumer,
            states: HashMap::new(),
            start_ms: HashMap::new(),
            durations_ms: Vec::new(),
            failures: Vec::new(),
            events_seen: 0,
        })
    }

    /// Fold newly published monitoring events; returns how many arrived.
    pub fn sync(&mut self) -> OctoResult<usize> {
        let mut n = 0;
        loop {
            let batch = self.consumer.poll()?;
            if batch.is_empty() {
                break;
            }
            for d in batch {
                let ev: MonitorEvent = d.event.parse()?;
                n += 1;
                self.events_seen += 1;
                match ev.phase.as_str() {
                    "launched" => {
                        self.states.insert(ev.task.clone(), TaskState::Launched);
                    }
                    "running" => {
                        self.states.insert(ev.task.clone(), TaskState::Running);
                        self.start_ms.insert(ev.task.clone(), ev.timestamp.as_millis());
                    }
                    "done" | "failed" => {
                        let done = ev.phase == "done";
                        self.states.insert(
                            ev.task.clone(),
                            if done { TaskState::Done } else { TaskState::Failed },
                        );
                        if let Some(start) = self.start_ms.get(&ev.task) {
                            self.durations_ms.push((
                                ev.task.clone(),
                                ev.worker,
                                ev.timestamp.as_millis().saturating_sub(*start),
                            ));
                        }
                        if !done {
                            self.failures.push(Anomaly {
                                task: ev.task.clone(),
                                worker: ev.worker,
                                kind: "task_failed".into(),
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(n)
    }

    /// Current state of a task.
    pub fn state(&self, task: &str) -> Option<&TaskState> {
        self.states.get(task)
    }

    /// Count of tasks in each state.
    pub fn state_counts(&self) -> HashMap<String, usize> {
        let mut out = HashMap::new();
        for s in self.states.values() {
            *out.entry(format!("{s:?}").to_lowercase()).or_insert(0) += 1;
        }
        out
    }

    /// Failures observed (candidate retries).
    pub fn failures(&self) -> &[Anomaly] {
        &self.failures
    }

    /// Straggler detection: completed tasks whose duration exceeded
    /// `factor` × the median duration. These are the "assign less work
    /// to stragglers / blacklist under-performing nodes" inputs.
    pub fn stragglers(&self, factor: f64) -> Vec<Anomaly> {
        if self.durations_ms.len() < 4 {
            return Vec::new();
        }
        let mut ds: Vec<u64> = self.durations_ms.iter().map(|(_, _, d)| *d).collect();
        ds.sort_unstable();
        let median = ds[ds.len() / 2].max(1);
        self.durations_ms
            .iter()
            .filter(|(_, _, d)| *d as f64 > median as f64 * factor)
            .map(|(task, worker, d)| Anomaly {
                task: task.clone(),
                worker: *worker,
                kind: format!("straggler ({d}ms vs median {median}ms)"),
            })
            .collect()
    }

    /// Workers ranked by mean task duration, slowest first — the
    /// blacklisting candidates list.
    pub fn slowest_workers(&self) -> Vec<(usize, f64)> {
        let mut sums: HashMap<usize, (u64, u64)> = HashMap::new();
        for (_, w, d) in &self.durations_ms {
            let e = sums.entry(*w).or_insert((0, 0));
            e.0 += d;
            e.1 += 1;
        }
        let mut out: Vec<(usize, f64)> =
            sums.into_iter().map(|(w, (sum, n))| (w, sum as f64 / n as f64)).collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_broker::TopicConfig;
    use octopus_flow::{HtexConfig, HtexExecutor, OctopusMonitor};
    use std::sync::Arc;
    use std::time::Duration;

    fn run_workflow(
        fail_task: Option<usize>,
        straggler_task: Option<usize>,
    ) -> (Cluster, WorkflowDashboard) {
        let cluster = Cluster::new(2);
        cluster.create_topic("parsl.monitoring", TopicConfig::default()).unwrap();
        let monitor = Arc::new(OctopusMonitor::new(cluster.clone(), "parsl.monitoring"));
        let mut b = octopus_flow::TaskGraph::builder();
        for i in 0..12usize {
            let fail = Some(i) == fail_task;
            let slow = Some(i) == straggler_task;
            b.add(&format!("task-{i}"), &[], move |_| {
                if slow {
                    std::thread::sleep(Duration::from_millis(80));
                } else {
                    std::thread::sleep(Duration::from_millis(5));
                }
                if fail {
                    Err("boom".into())
                } else {
                    Ok(serde_json::json!(1))
                }
            });
        }
        let g = b.build().unwrap();
        HtexExecutor::new(HtexConfig::new(4), monitor).run(&g);
        let mut dash = WorkflowDashboard::new(cluster.clone(), "parsl.monitoring").unwrap();
        dash.sync().unwrap();
        (cluster, dash)
    }

    #[test]
    fn dashboard_reaches_terminal_states() {
        let (_c, dash) = run_workflow(None, None);
        assert_eq!(dash.events_seen, 36); // 12 tasks x 3 phases
        let counts = dash.state_counts();
        assert_eq!(counts.get("done"), Some(&12));
        assert!(dash.failures().is_empty());
        assert_eq!(dash.state("task-0"), Some(&TaskState::Done));
        assert!(dash.state("nope").is_none());
    }

    #[test]
    fn failures_are_surfaced() {
        let (_c, dash) = run_workflow(Some(3), None);
        assert_eq!(dash.failures().len(), 1);
        assert_eq!(dash.failures()[0].task, "task-3");
        assert_eq!(dash.state("task-3"), Some(&TaskState::Failed));
        assert_eq!(dash.state_counts().get("done"), Some(&11));
    }

    #[test]
    fn stragglers_are_detected() {
        let (_c, dash) = run_workflow(None, Some(7));
        let stragglers = dash.stragglers(3.0);
        assert_eq!(stragglers.len(), 1, "{stragglers:?}");
        assert_eq!(stragglers[0].task, "task-7");
        assert!(stragglers[0].kind.contains("straggler"));
        // the worker that ran the straggler tops the slow list
        let slowest = dash.slowest_workers();
        assert_eq!(slowest[0].0, stragglers[0].worker);
    }

    #[test]
    fn straggler_detection_needs_samples() {
        let cluster = Cluster::new(2);
        cluster.create_topic("parsl.monitoring", TopicConfig::default()).unwrap();
        let dash = WorkflowDashboard::new(cluster, "parsl.monitoring").unwrap();
        assert!(dash.stragglers(2.0).is_empty());
        assert!(dash.slowest_workers().is_empty());
    }
}
