//! Table I: characteristics of events for the Octopus use cases.
//!
//! Each row parameterizes a workload generator: events/hour scale with
//! the number of managed resources R; sizes, topic counts, and
//! producer/consumer fan-in match the table. The `table1` bench binary
//! prints the table; the generators feed capacity tests.

use serde::{Deserialize, Serialize};

/// Who consumes a use case's events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsumerKind {
    /// A fixed number of consumer processes.
    Fixed(u32),
    /// One consumer per managed resource.
    PerResource,
    /// An Octopus trigger.
    Trigger,
}

/// One Table I row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UseCaseWorkload {
    /// Use case name as printed in the paper.
    pub name: &'static str,
    /// Events per hour per managed resource.
    pub events_per_hour_per_resource: u64,
    /// Mean event size in bytes.
    pub mean_event_size: usize,
    /// Topics: fixed count, or one per resource.
    pub topics_per_resource: bool,
    /// Fixed topic count when not per-resource.
    pub fixed_topics: u32,
    /// Producers: one per resource in every row.
    pub producers_per_resource: bool,
    /// Consumer side.
    pub consumers: ConsumerKind,
}

impl UseCaseWorkload {
    /// Aggregate event rate (events/hour) for `resources` managed
    /// resources.
    pub fn events_per_hour(&self, resources: u32) -> u64 {
        self.events_per_hour_per_resource * resources as u64
    }

    /// Aggregate byte rate (bytes/second).
    pub fn bytes_per_second(&self, resources: u32) -> f64 {
        self.events_per_hour(resources) as f64 * self.mean_event_size as f64 / 3600.0
    }

    /// Topic count for `resources`.
    pub fn topics(&self, resources: u32) -> u32 {
        if self.topics_per_resource {
            resources
        } else {
            self.fixed_topics
        }
    }

    /// Mean inter-event gap in milliseconds at `resources`.
    pub fn mean_gap_ms(&self, resources: u32) -> f64 {
        3_600_000.0 / self.events_per_hour(resources) as f64
    }
}

/// The five Table I rows.
pub fn table1_rows() -> Vec<UseCaseWorkload> {
    vec![
        UseCaseWorkload {
            name: "SDL",
            events_per_hour_per_resource: 100,
            mean_event_size: 512,
            topics_per_resource: false,
            fixed_topics: 1,
            producers_per_resource: true,
            consumers: ConsumerKind::Fixed(1),
        },
        UseCaseWorkload {
            name: "Data Auto.",
            events_per_hour_per_resource: 1_000,
            mean_event_size: 4 * 1024,
            topics_per_resource: false,
            fixed_topics: 1,
            producers_per_resource: true,
            consumers: ConsumerKind::Trigger,
        },
        UseCaseWorkload {
            name: "Scheduling",
            events_per_hour_per_resource: 10_000,
            mean_event_size: 1024,
            topics_per_resource: true,
            fixed_topics: 0,
            producers_per_resource: true,
            consumers: ConsumerKind::Fixed(1),
        },
        UseCaseWorkload {
            name: "Epidemic",
            events_per_hour_per_resource: 10,
            mean_event_size: 1024,
            topics_per_resource: true,
            fixed_topics: 0,
            producers_per_resource: true,
            consumers: ConsumerKind::Trigger,
        },
        UseCaseWorkload {
            name: "Workflow",
            events_per_hour_per_resource: 5_000,
            mean_event_size: 1024,
            topics_per_resource: true,
            fixed_topics: 0,
            producers_per_resource: true,
            consumers: ConsumerKind::PerResource,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_rows_matching_the_paper() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 5);
        let sdl = &rows[0];
        assert_eq!(sdl.events_per_hour_per_resource, 100);
        assert_eq!(sdl.mean_event_size, 512); // 0.5 KB
        assert_eq!(sdl.topics(10), 1);
        let sched = &rows[2];
        assert_eq!(sched.events_per_hour_per_resource, 10_000);
        assert_eq!(sched.topics(10), 10); // R topics
        assert_eq!(rows[1].mean_event_size, 4096);
        assert_eq!(rows[1].consumers, ConsumerKind::Trigger);
        assert_eq!(rows[4].consumers, ConsumerKind::PerResource);
    }

    #[test]
    fn rates_scale_with_resources() {
        let sched = &table1_rows()[2];
        assert_eq!(sched.events_per_hour(10), 100_000);
        // "peak data rates exceeding 10,000 events per minute" (§III-B)
        assert!(sched.events_per_hour(100) / 60 > 10_000);
        // the paper's cost example: 10,000 ev/h x 10 resources
        assert_eq!(sched.events_per_hour(10) * 24, 2_400_000); // lambdas/day
    }

    #[test]
    fn byte_rates_and_gaps() {
        let epi = &table1_rows()[3];
        assert!((epi.bytes_per_second(1) - 1024.0 * 10.0 / 3600.0).abs() < 1e-9);
        assert_eq!(epi.mean_gap_ms(1), 360_000.0); // one event / 6 min
        let sdl = &table1_rows()[0];
        assert_eq!(sdl.mean_gap_ms(1), 36_000.0);
    }
}
