//! The five scientific EDA use cases of the paper (§III, §VI), built on
//! the Octopus fabric:
//!
//! - [`sdl`]: **Self-driving laboratories** — a global log of robot /
//!   instrument / compute actions with provenance tracing and a live
//!   dashboard (§VI-A).
//! - [`dataauto`]: **Scientific data automation** — FSMon → local
//!   aggregator → Octopus trigger → transfer service, the hierarchical
//!   EDA of Fig. 6 (left) and the activity timeline of Fig. 7 (§VI-B).
//! - [`sched`]: **Online task scheduling** — RAPL-style power /
//!   utilization telemetry feeding an energy-aware FaaS scheduler
//!   (§VI-C).
//! - [`epidemic`]: **Epidemic modeling and response** — source
//!   monitoring, ingest/clean/validate, R-number estimation, and
//!   decision-maker alerts (§VI-D).
//! - [`workflow`]: **Dynamic workflow management** — consuming the
//!   Parsl/Octopus monitoring stream for live state, straggler
//!   detection, and failure surfacing (§VI-E).
//! - [`table1`]: the Table I workload characterization: event rates,
//!   sizes, and topic/producer/consumer fan-in per use case.

pub mod dataauto;
pub mod epidemic;
pub mod sched;
pub mod sdl;
pub mod table1;
pub mod workflow;

pub use dataauto::DataAutomationPipeline;
pub use epidemic::EpidemicPlatform;
pub use sched::{FaasScheduler, Resource, SchedulingPolicy};
pub use sdl::{LabRunner, ProvenanceLog};
pub use table1::{table1_rows, UseCaseWorkload};
pub use workflow::WorkflowDashboard;
