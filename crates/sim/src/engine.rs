//! The simulation engine: a time-ordered event queue and a virtual clock.
//!
//! The engine is generic over a user-supplied world state `S`. Scheduled
//! events are closures receiving `(&mut Simulation<S>, &mut S)` so they
//! can both mutate the world and schedule follow-up events. This
//! "callback DES" style keeps the kernel tiny while supporting every
//! pattern the fabric model needs (request/response chains, periodic
//! evaluators, autoscaler ticks).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::time::{SimDuration, SimTime};

type EventFn<S> = Box<dyn FnOnce(&mut Simulation<S>, &mut S)>;

/// Identifies a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

struct Scheduled<S> {
    time: SimTime,
    seq: u64,
    f: EventFn<S>,
}

// Ordering on (time, seq) only; the closure is irrelevant.
impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic discrete-event simulation.
///
/// ```
/// use octopus_sim::{Simulation, SimDuration};
///
/// let mut sim = Simulation::new(0u32);
/// sim.schedule_in(SimDuration::from_millis(5), |sim, count| {
///     *count += 1;
///     sim.schedule_in(SimDuration::from_millis(5), |_, count| *count += 10);
/// });
/// let world = sim.run();
/// assert_eq!(world, 11);
/// ```
pub struct Simulation<S> {
    now: SimTime,
    queue: BinaryHeap<Reverse<Scheduled<S>>>,
    next_seq: u64,
    cancelled: HashSet<u64>,
    executed: u64,
    world: Option<S>,
}

impl<S> Simulation<S> {
    /// Create a simulation owning `world`.
    pub fn new(world: S) -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            cancelled: HashSet::new(),
            executed: 0,
            world: Some(world),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn events_pending(&self) -> usize {
        self.queue.len() - self.cancelled.len().min(self.queue.len())
    }

    /// Schedule `f` at absolute time `at`. Panics if `at` is in the past.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut Simulation<S>, &mut S) + 'static,
    ) -> EventHandle {
        assert!(at >= self.now, "cannot schedule into the past ({at} < {})", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Scheduled { time: at, seq, f: Box::new(f) }));
        EventHandle(seq)
    }

    /// Schedule `f` to run `delay` from now.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut Simulation<S>, &mut S) + 'static,
    ) -> EventHandle {
        self.schedule_at(self.now + delay, f)
    }

    /// Cancel a previously scheduled event. Cancelling an event that has
    /// already fired is a no-op.
    pub fn cancel(&mut self, handle: EventHandle) {
        self.cancelled.insert(handle.0);
    }

    /// Run until the queue drains, returning the world.
    pub fn run(mut self) -> S {
        self.drain(None, None);
        self.world.take().expect("world present")
    }

    /// Run until virtual time reaches `until` (events at exactly `until`
    /// are executed) or the queue drains. Returns the world.
    pub fn run_until(mut self, until: SimTime) -> S {
        self.drain(Some(until), None);
        self.world.take().expect("world present")
    }

    /// Like [`Simulation::run_until`] but keeps the simulation alive so
    /// the caller can inspect state and continue. Returns `&mut` world.
    pub fn step_until(&mut self, until: SimTime) -> &mut S {
        self.drain(Some(until), None);
        self.world.as_mut().expect("world present")
    }

    /// Execute at most one event; returns false if the queue was empty.
    pub fn step(&mut self) -> bool {
        let before = self.executed;
        self.drain(None, Some(1));
        self.executed > before
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &S {
        self.world.as_ref().expect("world present")
    }

    /// Mutable access to the world.
    pub fn world_mut(&mut self) -> &mut S {
        self.world.as_mut().expect("world present")
    }

    fn drain(&mut self, until: Option<SimTime>, max_events: Option<u64>) {
        let mut ran = 0u64;
        while let Some(Reverse(head)) = self.queue.peek() {
            if let Some(limit) = until {
                if head.time > limit {
                    self.now = limit.max(self.now);
                    return;
                }
            }
            if let Some(m) = max_events {
                if ran >= m {
                    return;
                }
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            self.executed += 1;
            ran += 1;
            let mut world = self.world.take().expect("world present");
            (ev.f)(self, &mut world);
            self.world = Some(world);
        }
        if let Some(limit) = until {
            self.now = limit.max(self.now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(Vec::new());
        sim.schedule_in(SimDuration::from_millis(30), |_, v: &mut Vec<u32>| v.push(3));
        sim.schedule_in(SimDuration::from_millis(10), |_, v| v.push(1));
        sim.schedule_in(SimDuration::from_millis(20), |_, v| v.push(2));
        assert_eq!(sim.run(), vec![1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut sim = Simulation::new(Vec::new());
        for i in 0..100u32 {
            sim.schedule_at(SimTime(500), move |_, v: &mut Vec<u32>| v.push(i));
        }
        assert_eq!(sim.run(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = Simulation::new(0u32);
        sim.schedule_in(SimDuration::from_secs(1), |_, n| *n += 1);
        sim.schedule_in(SimDuration::from_secs(3), |_, n| *n += 100);
        let n = sim.step_until(SimTime::from_secs_f64(2.0));
        assert_eq!(*n, 1);
        assert_eq!(sim.now(), SimTime::from_secs_f64(2.0));
        // continue to completion
        let n = sim.run();
        assert_eq!(n, 101);
    }

    #[test]
    fn events_at_exactly_until_are_executed() {
        let mut sim = Simulation::new(0u32);
        sim.schedule_at(SimTime(1000), |_, n| *n += 1);
        let world = sim.run_until(SimTime(1000));
        assert_eq!(world, 1);
    }

    #[test]
    fn cancellation() {
        let mut sim = Simulation::new(0u32);
        let h = sim.schedule_in(SimDuration::from_millis(1), |_, n| *n += 1);
        sim.schedule_in(SimDuration::from_millis(2), |_, n| *n += 10);
        sim.cancel(h);
        assert_eq!(sim.run(), 10);
    }

    #[test]
    fn nested_scheduling_chain() {
        // a periodic process implemented by self-rescheduling
        fn tick(sim: &mut Simulation<u32>, n: &mut u32) {
            *n += 1;
            if *n < 5 {
                sim.schedule_in(SimDuration::from_secs(60), tick);
            }
        }
        let mut sim = Simulation::new(0u32);
        sim.schedule_in(SimDuration::from_secs(60), tick);
        let mut s = sim;
        let n = s.step_until(SimTime::from_secs_f64(3600.0));
        assert_eq!(*n, 5);
        assert_eq!(s.events_executed(), 5);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new(());
        sim.schedule_in(SimDuration::from_secs(1), |sim, _| {
            sim.schedule_at(SimTime::ZERO, |_, _| {});
        });
        sim.run();
    }
}
