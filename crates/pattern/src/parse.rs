//! Pattern parsing and validation.

use std::fmt;

use serde_json::Value;

use crate::ast::{CmpOp, Matcher, Node, Pattern};
use crate::cidr::Cidr;

/// An error describing why a pattern failed to compile. The `path` names
/// the offending location in the pattern document, e.g. `detail.size`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError {
    /// Dotted path to the offending pattern element.
    pub path: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "invalid pattern: {}", self.message)
        } else {
            write!(f, "invalid pattern at `{}`: {}", self.path, self.message)
        }
    }
}

impl std::error::Error for PatternError {}

fn err<T>(path: &str, message: impl Into<String>) -> Result<T, PatternError> {
    Err(PatternError { path: path.to_string(), message: message.into() })
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

impl Pattern {
    /// Compile a JSON pattern document. Validation is strict: unknown
    /// matcher keywords, empty arrays, and non-array leaves are rejected,
    /// mirroring EventBridge behaviour.
    pub fn parse(doc: &Value) -> Result<Pattern, PatternError> {
        let obj = match doc {
            Value::Object(m) if !m.is_empty() => m,
            Value::Object(_) => return err("", "pattern must contain at least one field"),
            _ => return err("", "pattern must be a JSON object"),
        };
        let root = parse_object(obj, "")?;
        Ok(Pattern { root, source: doc.clone() })
    }

    /// Parse from a JSON string.
    pub fn parse_str(s: &str) -> Result<Pattern, PatternError> {
        let doc: Value = serde_json::from_str(s)
            .map_err(|e| PatternError { path: String::new(), message: format!("not JSON: {e}") })?;
        Pattern::parse(&doc)
    }
}

fn parse_object(
    obj: &serde_json::Map<String, Value>,
    path: &str,
) -> Result<Node, PatternError> {
    // `$or` must be the only key at its level.
    if let Some(alts) = obj.get("$or") {
        if obj.len() != 1 {
            return err(path, "`$or` cannot be combined with sibling fields");
        }
        let arr = match alts {
            Value::Array(a) if a.len() >= 2 => a,
            _ => return err(&join(path, "$or"), "`$or` requires an array of >= 2 patterns"),
        };
        let mut nodes = Vec::with_capacity(arr.len());
        for (i, alt) in arr.iter().enumerate() {
            let p = format!("{}[{}]", join(path, "$or"), i);
            match alt {
                Value::Object(m) if !m.is_empty() => nodes.push(parse_object(m, &p)?),
                _ => return err(&p, "each `$or` alternative must be a non-empty object"),
            }
        }
        return Ok(Node::Or(nodes));
    }

    let mut fields = Vec::with_capacity(obj.len());
    for (key, val) in obj {
        let p = join(path, key);
        let node = match val {
            Value::Object(m) => {
                if m.is_empty() {
                    return err(&p, "nested pattern object must not be empty");
                }
                parse_object(m, &p)?
            }
            Value::Array(items) => {
                if items.is_empty() {
                    return err(&p, "leaf array must not be empty");
                }
                let mut matchers = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    matchers.push(parse_matcher(item, &format!("{p}[{i}]"))?);
                }
                Node::Leaf(matchers)
            }
            _ => {
                return err(
                    &p,
                    "leaf values must be arrays, e.g. {\"event_type\": [\"created\"]}",
                )
            }
        };
        fields.push((key.clone(), node));
    }
    Ok(Node::Object(fields))
}

fn parse_matcher(item: &Value, path: &str) -> Result<Matcher, PatternError> {
    match item {
        Value::String(_) | Value::Number(_) | Value::Bool(_) | Value::Null => {
            Ok(Matcher::Exact(item.clone()))
        }
        Value::Array(_) => err(path, "nested arrays are not valid matchers"),
        Value::Object(m) => {
            if m.len() != 1 {
                return err(path, "a matcher object must have exactly one keyword");
            }
            let (kw, arg) = m.iter().next().expect("len checked");
            match kw.as_str() {
                "prefix" => match arg {
                    Value::String(s) => Ok(Matcher::Prefix(s.clone())),
                    _ => err(path, "`prefix` takes a string"),
                },
                "suffix" => match arg {
                    Value::String(s) => Ok(Matcher::Suffix(s.clone())),
                    _ => err(path, "`suffix` takes a string"),
                },
                "equals-ignore-case" => match arg {
                    Value::String(s) => Ok(Matcher::EqualsIgnoreCase(s.clone())),
                    _ => err(path, "`equals-ignore-case` takes a string"),
                },
                "anything-but" => parse_anything_but(arg, path),
                "numeric" => parse_numeric(arg, path),
                "exists" => match arg {
                    Value::Bool(b) => Ok(Matcher::Exists(*b)),
                    _ => err(path, "`exists` takes a boolean"),
                },
                "wildcard" => match arg {
                    Value::String(s) => Ok(Matcher::Wildcard(s.clone())),
                    _ => err(path, "`wildcard` takes a string"),
                },
                "cidr" => match arg {
                    Value::String(s) => Cidr::parse(s)
                        .map(Matcher::Cidr)
                        .ok_or_else(|| PatternError {
                            path: path.to_string(),
                            message: format!("invalid CIDR block: {s}"),
                        }),
                    _ => err(path, "`cidr` takes a string"),
                },
                other => err(path, format!("unknown matcher keyword `{other}`")),
            }
        }
    }
}

fn parse_anything_but(arg: &Value, path: &str) -> Result<Matcher, PatternError> {
    match arg {
        Value::String(_) | Value::Number(_) | Value::Bool(_) => {
            Ok(Matcher::AnythingBut(vec![arg.clone()]))
        }
        Value::Array(items) => {
            if items.is_empty() {
                return err(path, "`anything-but` list must not be empty");
            }
            for it in items {
                if !matches!(it, Value::String(_) | Value::Number(_) | Value::Bool(_)) {
                    return err(path, "`anything-but` list elements must be scalars");
                }
            }
            Ok(Matcher::AnythingBut(items.clone()))
        }
        Value::Object(m) if m.len() == 1 && m.contains_key("prefix") => {
            match m.get("prefix").expect("checked") {
                Value::String(s) => Ok(Matcher::AnythingButPrefix(s.clone())),
                _ => err(path, "`anything-but.prefix` takes a string"),
            }
        }
        _ => err(path, "`anything-but` takes a scalar, a list of scalars, or {\"prefix\": ...}"),
    }
}

fn parse_numeric(arg: &Value, path: &str) -> Result<Matcher, PatternError> {
    let items = match arg {
        Value::Array(a) if !a.is_empty() && a.len() % 2 == 0 => a,
        _ => return err(path, "`numeric` takes a non-empty even-length array of op/value pairs"),
    };
    let mut cmps = Vec::with_capacity(items.len() / 2);
    for pair in items.chunks(2) {
        let op = match &pair[0] {
            Value::String(s) => CmpOp::parse(s).ok_or_else(|| PatternError {
                path: path.to_string(),
                message: format!("unknown numeric operator `{s}`"),
            })?,
            _ => return err(path, "numeric operator must be a string"),
        };
        let rhs = match &pair[1] {
            Value::Number(n) => n.as_f64().expect("json numbers are f64-representable"),
            _ => return err(path, "numeric comparand must be a number"),
        };
        cmps.push((op, rhs));
    }
    Ok(Matcher::Numeric(cmps))
}
