//! Property-based tests for the shared types: codec totality and
//! round-trips, event builder invariants, timestamp arithmetic, and
//! histogram quantile/merge accuracy against a sorted-sample reference.

use proptest::prelude::*;

use octopus_types::{codec, Codec, Event, Histogram, Timestamp};

/// Exact quantile from raw samples, mirroring the histogram's rank rule
/// (`ceil(q·n)` clamped to `[1, n]`).
fn reference_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let n = sorted.len() as u64;
    let target = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(target - 1) as usize]
}

/// The log-linear buckets use 64 sub-buckets per power of two and a
/// midpoint representative, so any reported quantile lands within half
/// a bucket of the true sample: relative error ≤ 1/64, exact below 64.
fn within_bucket_error(observed: u64, exact: u64) -> bool {
    let tolerance = exact / 64 + 1;
    observed.abs_diff(exact) <= tolerance
}

proptest! {
    /// Compression round-trips arbitrary bytes under every codec.
    #[test]
    fn codec_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
        for c in [Codec::None, Codec::Lzss] {
            let framed = codec::compress(c, &data);
            prop_assert_eq!(codec::decompress(&framed).unwrap(), data.clone());
        }
    }

    /// Highly repetitive inputs always shrink under LZSS.
    #[test]
    fn codec_shrinks_repetition(unit in proptest::collection::vec(any::<u8>(), 1..16), reps in 20usize..100) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let framed = codec::compress(Codec::Lzss, &data);
        prop_assert!(framed.len() < data.len(), "{} !< {}", framed.len(), data.len());
        prop_assert_eq!(codec::decompress(&framed).unwrap(), data);
    }

    /// Decompression never panics on arbitrary (possibly garbage) input.
    #[test]
    fn decompress_is_total(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let _ = codec::decompress(&data);
    }

    /// Event wire size equals the sum of its parts, and JSON payloads
    /// round-trip through the builder.
    #[test]
    fn event_wire_size_and_json(
        key in proptest::option::of("[a-z]{1,10}"),
        n in 0usize..500,
        header_val in proptest::collection::vec(any::<u8>(), 0..50),
    ) {
        let mut b = Event::builder().payload(vec![7u8; n]).header("h", &header_val);
        let key_len = key.as_ref().map(|k| k.len()).unwrap_or(0);
        if let Some(k) = key {
            b = b.key(k);
        }
        let e = b.build();
        prop_assert_eq!(e.wire_size(), key_len + n + 1 + header_val.len());
    }

    /// Timestamp plus/since are inverses and never panic.
    #[test]
    fn timestamp_arithmetic(start in 0u64..u64::MAX / 4, delta_ms in 0u64..1_000_000_000) {
        let t0 = Timestamp::from_millis(start);
        let t1 = t0.plus(std::time::Duration::from_millis(delta_ms));
        prop_assert_eq!(t1.since(t0).as_millis() as u64, delta_ms);
        prop_assert_eq!(t0.since(t1), std::time::Duration::ZERO);
    }

    /// Every quantile of a recorded histogram lands within one bucket
    /// (≤ 1/64 relative) of the exact sorted-sample quantile, across
    /// seven decades of value magnitude.
    #[test]
    fn histogram_quantile_tracks_sorted_reference(
        samples in proptest::collection::vec(1u64..10_000_000, 1..400),
        q_pcts in proptest::collection::vec(0u32..=100, 1..8),
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in q_pcts.into_iter().map(|p| p as f64 / 100.0) {
            let exact = reference_quantile(&sorted, q);
            let observed = h.quantile(q);
            prop_assert!(
                within_bucket_error(observed, exact),
                "q={q}: observed {observed} vs exact {exact} (n={})",
                sorted.len(),
            );
        }
        // min/max are tracked exactly; the extreme quantiles stay
        // inside the recorded range and within bucket error of it
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        prop_assert!(h.quantile(0.0) >= sorted[0]);
        prop_assert!(h.quantile(1.0) <= *sorted.last().unwrap());
        prop_assert!(within_bucket_error(h.quantile(0.0), sorted[0]));
        prop_assert!(within_bucket_error(h.quantile(1.0), *sorted.last().unwrap()));
    }

    /// Merging histograms is equivalent to recording the concatenated
    /// sample set: count/min/max/mean exactly, quantiles to bucket
    /// resolution. Merge order must not matter.
    #[test]
    fn histogram_merge_matches_concatenation(
        a in proptest::collection::vec(1u64..5_000_000, 0..200),
        b in proptest::collection::vec(1u64..5_000_000, 0..200),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        for &s in &a { ha.record(s); }
        for &s in &b { hb.record(s); }

        let mut merged = ha.clone();
        merged.merge(&hb);
        let mut merged_rev = hb.clone();
        merged_rev.merge(&ha);

        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.sort_unstable();

        prop_assert_eq!(merged.count(), all.len() as u64);
        prop_assert_eq!(merged_rev.count(), all.len() as u64);
        if all.is_empty() {
            prop_assert_eq!(merged.quantile(0.5), 0);
        } else {
            prop_assert_eq!(merged.min(), all[0]);
            prop_assert_eq!(merged.max(), *all.last().unwrap());
            prop_assert_eq!(merged_rev.min(), all[0]);
            let exact_mean = all.iter().map(|&v| v as f64).sum::<f64>() / all.len() as f64;
            prop_assert!((merged.mean() - exact_mean).abs() < 1e-6 * exact_mean.max(1.0));
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                let exact = reference_quantile(&all, q);
                prop_assert!(
                    within_bucket_error(merged.quantile(q), exact),
                    "q={q}: merged {} vs exact {exact}", merged.quantile(q),
                );
                prop_assert_eq!(merged.quantile(q), merged_rev.quantile(q));
            }
        }
    }

    /// `count_below` brackets the exact rank: it can only overshoot by
    /// samples sharing the threshold's bucket (≤ 1/64 above it), never
    /// undershoot.
    #[test]
    fn histogram_count_below_brackets_exact_rank(
        samples in proptest::collection::vec(1u64..1_000_000, 0..300),
        threshold in 1u64..1_000_000,
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let exact = samples.iter().filter(|&&s| s <= threshold).count() as u64;
        let loose = samples
            .iter()
            .filter(|&&s| s <= threshold + threshold / 64 + 1)
            .count() as u64;
        let observed = h.count_below(threshold);
        prop_assert!(observed >= exact, "undershoot: {observed} < {exact}");
        prop_assert!(observed <= loose, "overshoot past bucket: {observed} > {loose}");
    }
}
