//! Elastic cluster drills (tier-1): online membership, throttled
//! partition reassignment, and the auto-balancer under fire.
//!
//! Two scenarios:
//!
//! 1. **Rolling restart** — every broker restarted one at a time under
//!    sustained idempotent-producer traffic; zero acked loss, zero
//!    duplicate appends, and the cluster health rollup back to Green
//!    after each step.
//! 2. **Scale-out under chaos** — the headline drill: grow 3 → 9
//!    brokers mid-traffic while broker kills and power loss land
//!    during active reassignments, on three fixed seeds. The
//!    strict-EOS oracle must stay green (no acked loss, no
//!    duplicates), every partition must end at full replication
//!    factor, and the health rollup must close Green.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use octopus::broker::{AckLevel, BrokerId, FlushPolicy, HealthStatus, TempDir, TopicConfig};
use octopus::chaos::{ChaosConfig, ChaosHarness, FaultKind, FaultPlan};
use octopus::prelude::*;
use octopus::sdk::{Producer, ProducerConfig};
use parking_lot::Mutex;

const TOPIC: &str = "elastic.events";

fn wait_for_green(cluster: &octopus::broker::Cluster, context: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        cluster.refresh_health(context);
        if cluster.health_report().status == HealthStatus::Green {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "health never returned to Green after {context}: {:?}",
            cluster.health_report()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn rolling_restart_loses_nothing_and_returns_green() {
    let cluster = octopus::broker::Cluster::new(3);
    cluster
        .create_topic(
            TOPIC,
            TopicConfig::default().with_partitions(2).with_replication(3).with_min_insync(2),
        )
        .expect("topic");

    let stop = Arc::new(AtomicBool::new(false));
    let acked = Arc::new(Mutex::new(Vec::<u64>::new()));
    let producer_thread = {
        let cluster = cluster.clone();
        let stop = stop.clone();
        let acked = acked.clone();
        std::thread::spawn(move || {
            let producer = Producer::new(
                cluster,
                ProducerConfig {
                    acks: AckLevel::All,
                    retries: 30,
                    retry_backoff: Duration::from_millis(2),
                    idempotent: true,
                    client_id: Some("rolling-restart-producer".to_string()),
                    ..ProducerConfig::default()
                },
            );
            let mut seq = 0u64;
            while !stop.load(Ordering::Acquire) {
                if let Ok(receipt) =
                    producer.send_sync(TOPIC, Event::from_bytes(seq.to_le_bytes().to_vec()))
                {
                    if receipt.persisted {
                        acked.lock().push(seq);
                    }
                }
                seq += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            producer.close();
        })
    };

    // Let traffic establish, then roll every broker, one at a time.
    std::thread::sleep(Duration::from_millis(50));
    for broker in 0..3u32 {
        cluster.kill_broker(BrokerId(broker)).expect("kill");
        std::thread::sleep(Duration::from_millis(40));
        cluster.restart_broker(BrokerId(broker)).expect("restart");
        cluster.resync_broker(BrokerId(broker)).expect("resync");
        wait_for_green(&cluster, &format!("rolling_restart({broker})"));
        // hold a window of healthy traffic before the next roll step
        std::thread::sleep(Duration::from_millis(100));
    }

    stop.store(true, Ordering::Release);
    producer_thread.join().expect("producer thread");
    let acked: Vec<u64> = acked.lock().clone();
    assert!(acked.len() > 50, "producer kept acking through the roll: {}", acked.len());

    // Scan every partition's log: each acked sequence must survive
    // exactly once (idempotent producer — restarts must not have
    // manufactured duplicate appends).
    let mut seen: HashMap<u64, usize> = HashMap::new();
    for p in 0..cluster.partition_count(TOPIC).expect("partitions") {
        let mut offset = cluster.earliest_offset(TOPIC, p).unwrap_or(0);
        while let Ok(records) = cluster.fetch(TOPIC, p, offset, 512) {
            if records.is_empty() {
                break;
            }
            offset = records.last().expect("non-empty").offset + 1;
            for r in &records {
                if let Some(b) = r.value.get(..8) {
                    *seen.entry(u64::from_le_bytes(b.try_into().expect("8 bytes"))).or_default() +=
                        1;
                }
            }
        }
    }
    for seq in &acked {
        match seen.get(seq) {
            None => panic!("acked record {seq} lost during the rolling restart"),
            Some(1) => {}
            Some(n) => panic!("acked record {seq} appended {n} times (duplicate)"),
        }
    }
    assert_eq!(cluster.health_report().status, HealthStatus::Green);
}

/// Broker kills and a power loss landing while the elastic mover is
/// growing the fleet and relocating partitions.
fn elastic_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .at(10, FaultKind::BrokerCrash { broker: 1 })
        .at(30, FaultKind::PowerLoss { broker: 2, entropy: seed ^ 0xE1A5_71C0 })
        .at(60, FaultKind::BrokerRestart { broker: 1 })
        .at(80, FaultKind::BrokerRestart { broker: 2 })
}

#[test]
fn scale_three_to_nine_under_chaos_stays_exactly_once() {
    for seed in [0xA11CEu64, 0x0B0B, 0x5CA1E] {
        let tmp = TempDir::new("octopus-elastic-drill");
        let plan = elastic_plan(seed);
        let report = ChaosHarness::new(plan.clone())
            .with_config(ChaosConfig {
                brokers: 3,
                partitions: 4,
                strict_eos: true,
                scale_to: Some(9),
                data_dir: Some(tmp.path().to_path_buf()),
                flush_policy: FlushPolicy::PerBatch,
                drain_timeout: Duration::from_secs(20),
                ..ChaosConfig::default()
            })
            .run();
        report.assert_invariants();
        assert_eq!(
            report.trace.signature(),
            plan.signature(),
            "seed {seed:#x}: trace deterministic"
        );
        assert!(!report.acked.is_empty(), "seed {seed:#x}: producer made progress");
        assert_eq!(report.duplicates(), 0, "seed {seed:#x}: strict mode saw duplicates");
        assert_eq!(report.final_brokers, 9, "seed {seed:#x}: fleet grew to 9");
        assert!(
            report.moved_partitions >= 1,
            "seed {seed:#x}: balancer never moved a partition onto the new brokers"
        );
        assert_eq!(
            report.final_isr, report.replication_factor,
            "seed {seed:#x}: every partition back at full rf"
        );
        assert_eq!(
            report.health.status,
            octopus::broker::HealthStatus::Green,
            "seed {seed:#x}: health closed Green"
        );
    }
}
