//! The durable storage engine: on-disk segmented logs, sparse indexes,
//! per-batch compression, tiered cold storage, flush policies,
//! crash/power-loss recovery, and offset checkpoints.
//!
//! The paper's durability story rests on Kafka/MSK's persistent commit
//! log (§IV): topics are replicated, acks-governed, and configured with
//! retention/compaction, and the event log *outlives process crashes*.
//! This module gives [`crate::PartitionLog`] that property: each
//! partition is persisted as Kafka-style segment files under a data
//! directory, one file per segment, named by base offset
//! (`00000000000000000000.seg`).
//!
//! # On-disk frame formats
//!
//! A segment file is a stream of self-describing frames. A plain frame
//! carries one record:
//!
//! ```text
//! +------+-----------+-----------+------------------+
//! | 0xA7 | len: u32  | crc: u32  | payload (len B)  |
//! +------+-----------+-----------+------------------+
//! ```
//!
//! and a *batch frame* carries a whole produced batch, compressed with
//! the in-repo LZ4-style block codec ([`octopus_compression`]):
//!
//! ```text
//! +------+----------+----------+------------+-----------+------------+--------------+------------+
//! | 0xA8 | len: u32 | crc: u32 | first: u64 | last: u64 | count: u32 | raw_len: u32 | lz4 block  |
//! +------+----------+----------+------------+-----------+------------+--------------+------------+
//! ```
//!
//! The block decompresses to `count` concatenated `[plen: u32][record
//! payload]` entries with dense offsets `first..=last`. Both magics
//! coexist in one file, so flipping a topic's compression on or off
//! never requires a rewrite. `crc` is CRC32C over the frame payload
//! ([`crc32c`], the same Castagnoli checksum Kafka stamps on record
//! batches); record payloads additionally carry the record-level CRC,
//! so recovery detects torn frames *and* bit rot inside intact frames.
//!
//! # Sparse indexes and tiering
//!
//! Every segment pairs with `<base>.index` / `<base>.timeindex`
//! sidecars (see [`crate::index`]): sparse offset/time entries written
//! as data is appended, sealed with a CRC'd footer when the segment
//! rolls. Fetches binary search segments by base, then index entries,
//! and decode from within one `index_interval_bytes` of the target —
//! never from the segment head. Reopen adopts sealed segments from
//! their footers without reading data files; only the active tail pays
//! a full CRC scan. Sealed segments past `cold_after_bytes` offload
//! their data file to a [`ColdStore`] (see [`crate::tier`]), leaving
//! the index and a `<base>.tier` marker hot; a fetch that lands there
//! hydrates the file back, single-flight.
//!
//! # Recovery
//!
//! [`PartitionStore::recover`] walks segments in base-offset order.
//! Sealed segments with a valid footer and whole data (hot file of the
//! footer's exact length, or a tier marker agreeing with it) are
//! adopted as [`RecoveredSegment::Sealed`] without touching their
//! bytes. Anything else — the active tail, a missing or corrupt index —
//! falls back to the full frame walk, stopping at the first framing
//! error, CRC mismatch, or offset-monotonicity violation; everything
//! from that point on is truncated and the sidecars are rebuilt from
//! the data (the index is never load-bearing for durability).
//!
//! # Flush policies
//!
//! Writes always reach the file (a `write(2)` per batch); [`FlushPolicy`]
//! only governs *fsync* — the boundary that matters under power loss.
//! Segment rolls always fsync the closed file, so only the active
//! segment's unflushed suffix is ever at risk. Index sidecar writes are
//! advisory until seal and bypass the sync gate entirely.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex as StdMutex, Weak};
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use octopus_compression::{compress, decompress, Compression};
use octopus_types::obs::{AtomicHistogram, Counter, MetricsRegistry};
use octopus_types::{Header, OctoError, OctoResult, Offset, Timestamp};

use crate::index::{self, IndexBuilder, SealedMeta, DEFAULT_INDEX_INTERVAL_BYTES};
use crate::record::{crc32c, ControlMarker, Record, RecordEos};
use crate::tier::{self, ColdStore, TierMarker};
use bytes::Bytes;
use std::sync::Arc;

/// Frame lead-in byte; anything else at a frame boundary is a torn tail.
const FRAME_MAGIC: u8 = 0xA7;
/// Compressed-batch frame lead-in byte.
const BATCH_MAGIC: u8 = 0xA8;
/// Magic + length + frame CRC.
const FRAME_HEADER: usize = 1 + 4 + 4;
/// first + last + count + raw_len, before the compressed block.
const BATCH_HEADER: usize = 8 + 8 + 4 + 4;
/// Upper bound on a batch's decompressed size (64 MiB): a corrupt
/// header can waste time, never memory.
const MAX_RAW: usize = 64 << 20;
/// Batches below this raw size are never worth compressing.
const MIN_COMPRESS_RAW: usize = 64;
/// Key-length sentinel for records without a key.
const NO_KEY: u32 = u32::MAX;

/// When (not whether) appended records are fsync'd to stable storage.
///
/// Every append is written to the segment file immediately; the policy
/// decides how much of the suffix a power loss may tear off:
///
/// * [`FlushPolicy::PerBatch`] — `fsync` after every produced batch.
///   acks=all records are on stable storage before the producer is
///   acknowledged; power loss loses nothing committed.
/// * [`FlushPolicy::IntervalMs`] — `fsync` at most every `n` ms of
///   appends. Power loss may tear up to one interval's worth of tail.
/// * [`FlushPolicy::OsManaged`] — never fsync explicitly (Kafka's
///   default posture: trust replication, let the OS write back).
///   Power loss may tear the whole unflushed suffix of the active
///   segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlushPolicy {
    /// fsync after every appended batch (strongest, slowest).
    #[default]
    PerBatch,
    /// fsync when at least this many milliseconds passed since the last.
    IntervalMs(u64),
    /// Never fsync explicitly; the OS page cache decides (weakest).
    OsManaged,
}

/// Counters and histograms the storage engine publishes to the shared
/// [`MetricsRegistry`] (`octopus_store_*` family).
#[derive(Clone)]
pub struct StoreMetrics {
    flush_ns: Arc<AtomicHistogram>,
    flushes: Arc<Counter>,
    bytes_written: Arc<Counter>,
    records_recovered: Arc<Counter>,
    records_truncated: Arc<Counter>,
    bytes_truncated: Arc<Counter>,
    checkpoints_written: Arc<Counter>,
    checkpoint_offsets_restored: Arc<Counter>,
    index_sealed_skips: Arc<Counter>,
    index_rebuilds: Arc<Counter>,
    tier_offloads: Arc<Counter>,
    tier_hydrations: Arc<Counter>,
    tier_offloaded_bytes: Arc<Counter>,
    tier_hydrated_bytes: Arc<Counter>,
    compressed_batches: Arc<Counter>,
    compressed_raw_bytes: Arc<Counter>,
    compressed_stored_bytes: Arc<Counter>,
}

impl StoreMetrics {
    /// Register (or re-attach to) the `octopus_store_*` instruments.
    pub fn new(registry: &MetricsRegistry) -> Self {
        StoreMetrics {
            flush_ns: registry.histogram("octopus_store_flush_ns"),
            flushes: registry.counter("octopus_store_flushes_total"),
            bytes_written: registry.counter("octopus_store_bytes_written_total"),
            records_recovered: registry.counter("octopus_store_records_recovered_total"),
            records_truncated: registry.counter("octopus_store_records_truncated_total"),
            bytes_truncated: registry.counter("octopus_store_bytes_truncated_total"),
            checkpoints_written: registry.counter("octopus_store_checkpoints_written_total"),
            checkpoint_offsets_restored: registry
                .counter("octopus_store_checkpoint_offsets_restored_total"),
            index_sealed_skips: registry.counter("octopus_store_index_sealed_skips_total"),
            index_rebuilds: registry.counter("octopus_store_index_rebuilds_total"),
            tier_offloads: registry.counter("octopus_store_tier_offloads_total"),
            tier_hydrations: registry.counter("octopus_store_tier_hydrations_total"),
            tier_offloaded_bytes: registry.counter("octopus_store_tier_offloaded_bytes_total"),
            tier_hydrated_bytes: registry.counter("octopus_store_tier_hydrated_bytes_total"),
            compressed_batches: registry.counter("octopus_store_compressed_batches_total"),
            compressed_raw_bytes: registry.counter("octopus_store_compressed_raw_bytes_total"),
            compressed_stored_bytes: registry
                .counter("octopus_store_compressed_stored_bytes_total"),
        }
    }

    /// Total fsyncs issued by this registry's stores.
    pub fn flush_count(&self) -> u64 {
        self.flushes.get()
    }

    /// Sealed segments adopted from their index footer (data not read).
    pub fn sealed_skip_count(&self) -> u64 {
        self.index_sealed_skips.get()
    }

    /// Sealed segments whose index was missing/corrupt and got rebuilt
    /// from the data file.
    pub fn index_rebuild_count(&self) -> u64 {
        self.index_rebuilds.get()
    }

    /// Segment data files offloaded to the cold tier.
    pub fn tier_offload_count(&self) -> u64 {
        self.tier_offloads.get()
    }

    /// Segment data files hydrated back from the cold tier.
    pub fn tier_hydration_count(&self) -> u64 {
        self.tier_hydrations.get()
    }

    /// Compressed batch frames written.
    pub fn compressed_batch_count(&self) -> u64 {
        self.compressed_batches.get()
    }

    /// Uncompressed bytes that went into compressed batch frames.
    pub fn compressed_raw_bytes_total(&self) -> u64 {
        self.compressed_raw_bytes.get()
    }

    /// On-disk bytes those batch frames occupy.
    pub fn compressed_stored_bytes_total(&self) -> u64 {
        self.compressed_stored_bytes.get()
    }
}

impl std::fmt::Debug for StoreMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreMetrics").field("flushes", &self.flushes.get()).finish()
    }
}

/// What a recovery scan found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Segment files fully scanned (surviving files, not deleted ones).
    pub segments_scanned: u64,
    /// Sealed segments adopted from their index footer without reading
    /// the data file (the reopen fast path).
    pub segments_sealed: u64,
    /// Records whose frames were complete and CRC-clean (scanned or
    /// certified by a sealed footer).
    pub records_recovered: u64,
    /// Decodable records dropped because they sat beyond a torn frame
    /// (the undecodable torn tail itself is counted in bytes only).
    pub records_truncated: u64,
    /// Raw bytes removed from disk (torn tails + orphaned segments).
    pub bytes_truncated: u64,
}

impl RecoveryStats {
    /// Accumulate another scan's results into this one.
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.segments_scanned += other.segments_scanned;
        self.segments_sealed += other.segments_sealed;
        self.records_recovered += other.records_recovered;
        self.records_truncated += other.records_truncated;
        self.bytes_truncated += other.bytes_truncated;
    }
}

/// Storage knobs for one partition (per-topic in practice): sparse
/// index density, batch compression, and cold tiering.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Bytes of segment data between sparse index entries.
    pub index_interval_bytes: u64,
    /// Whether produced batches are compressed on disk.
    pub compression: Compression,
    /// Cold tier for sealed segment data files (None = tiering off).
    pub cold: Option<Arc<dyn ColdStore>>,
    /// Offload sealed segments once the partition's hot sealed bytes
    /// exceed this (Some(0) = offload every sealed segment at roll).
    pub cold_after_bytes: Option<u64>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            index_interval_bytes: DEFAULT_INDEX_INTERVAL_BYTES,
            compression: Compression::None,
            cold: None,
            cold_after_bytes: None,
        }
    }
}

/// How [`PartitionStore::read_records`] locates the first frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeekMode {
    /// Binary search segments by base offset, then the sparse index;
    /// decode starts within one index interval of the target.
    Indexed,
    /// Pre-index behaviour kept as an honest baseline (and for the
    /// bench's speedup probe): linear segment lookup, full decode from
    /// the segment head.
    LinearScan,
}

// ---------------------------------------------------------------------------
// frame codec
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Encode `rec` into the frame-payload byte layout (shared by plain
/// frames and the entries inside a compressed batch).
pub(crate) fn encode_record_payload(rec: &Record) -> Vec<u8> {
    let mut payload = Vec::with_capacity(rec.wire_size() + 64);
    put_u64(&mut payload, rec.offset);
    put_u64(&mut payload, rec.append_time.as_millis());
    put_u64(&mut payload, rec.producer_time.as_millis());
    put_u32(&mut payload, rec.crc);
    match &rec.key {
        None => put_u32(&mut payload, NO_KEY),
        Some(k) => {
            put_u32(&mut payload, k.len() as u32);
            payload.extend_from_slice(k);
        }
    }
    put_u32(&mut payload, rec.value.len() as u32);
    payload.extend_from_slice(&rec.value);
    put_u32(&mut payload, rec.headers.len() as u32);
    for h in &rec.headers {
        put_u32(&mut payload, h.key.len() as u32);
        payload.extend_from_slice(h.key.as_bytes());
        put_u32(&mut payload, h.value.len() as u32);
        payload.extend_from_slice(&h.value);
    }
    // Optional trailing EOS section (pid, epoch, seq, flags). Absent for
    // plain records, so frames written before EOS existed — which end
    // exactly at the last header — still decode.
    if let Some(eos) = &rec.eos {
        put_u64(&mut payload, eos.pid);
        put_u32(&mut payload, eos.epoch);
        put_u64(&mut payload, eos.seq);
        let mut flags = 0u8;
        if eos.txn {
            flags |= 0x01;
        }
        match eos.control {
            None => {}
            Some(ControlMarker::Commit) => flags |= 0x02,
            Some(ControlMarker::Abort) => flags |= 0x02 | 0x04,
        }
        payload.push(flags);
    }
    payload
}

fn frame_payload(magic: u8, payload: &[u8], out: &mut Vec<u8>) {
    out.push(magic);
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32c(payload));
    out.extend_from_slice(payload);
}

/// Append `rec` to `out` as one plain framed record.
pub(crate) fn encode_frame(rec: &Record, out: &mut Vec<u8>) {
    let payload = encode_record_payload(rec);
    frame_payload(FRAME_MAGIC, &payload, out);
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Some(out)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

/// Decode one frame payload back into a [`Record`]. `None` on any
/// structural mismatch (the caller treats it as a torn tail).
pub(crate) fn decode_payload(payload: &[u8]) -> Option<Record> {
    let mut c = Cursor { bytes: payload, pos: 0 };
    let offset = c.u64()?;
    let append_time = Timestamp::from_millis(c.u64()?);
    let producer_time = Timestamp::from_millis(c.u64()?);
    let crc = c.u32()?;
    let key = match c.u32()? {
        NO_KEY => None,
        n => Some(Bytes::copy_from_slice(c.take(n as usize)?)),
    };
    let vlen = c.u32()?;
    let value = Bytes::copy_from_slice(c.take(vlen as usize)?);
    let header_count = c.u32()?;
    let mut headers = Vec::with_capacity(header_count.min(64) as usize);
    for _ in 0..header_count {
        let klen = c.u32()?;
        let hkey = String::from_utf8(c.take(klen as usize)?.to_vec()).ok()?;
        let hvlen = c.u32()?;
        headers.push(Header { key: hkey, value: c.take(hvlen as usize)?.to_vec() });
    }
    // Frames written before EOS existed end exactly at the last header;
    // stamped frames carry a 21-byte trailer (pid, epoch, seq, flags).
    let eos = if c.pos == payload.len() {
        None
    } else {
        let pid = c.u64()?;
        let epoch = c.u32()?;
        let seq = c.u64()?;
        let flags = *c.take(1)?.first()?;
        if c.pos != payload.len() || flags & !0x07 != 0 {
            return None;
        }
        let control = if flags & 0x02 != 0 {
            Some(if flags & 0x04 != 0 { ControlMarker::Abort } else { ControlMarker::Commit })
        } else {
            None
        };
        Some(RecordEos { pid, epoch, seq, txn: flags & 0x01 != 0, control })
    };
    Some(Record { offset, append_time, key, value, headers, producer_time, crc, eos })
}

/// One encoded frame's bookkeeping, for index replay and metrics.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EncodedFrame {
    first: Offset,
    last: Offset,
    count: u32,
    /// Framed length on disk (header included).
    len: u64,
    /// Sum of the records' logical (in-memory wire) sizes.
    logical: u64,
    max_ts_ms: u64,
    /// Records carrying an EOS trailer.
    eos: u64,
    compressed: bool,
    /// Uncompressed batch body size (0 for plain frames).
    raw_len: u64,
}

fn record_frame_meta(rec: &Record, len: u64) -> EncodedFrame {
    EncodedFrame {
        first: rec.offset,
        last: rec.offset,
        count: 1,
        len,
        logical: rec.wire_size() as u64,
        max_ts_ms: rec.append_time.as_millis(),
        eos: rec.eos.is_some() as u64,
        compressed: false,
        raw_len: 0,
    }
}

/// Encode `records` into `out` as frames, compressing dense runs into
/// batch frames when `compression` asks for it *and* it actually wins:
/// a batch that would land at or above its individually-framed size is
/// written as plain frames instead (incompressible data costs nothing).
pub(crate) fn encode_frames(
    records: &[Record],
    compression: Compression,
    out: &mut Vec<u8>,
) -> Vec<EncodedFrame> {
    let mut frames = Vec::with_capacity(records.len());
    if compression == Compression::None {
        for rec in records {
            let start = out.len();
            encode_frame(rec, out);
            frames.push(record_frame_meta(rec, (out.len() - start) as u64));
        }
        return frames;
    }
    let mut i = 0usize;
    while i < records.len() {
        // a batch frame requires dense offsets and a bounded raw size
        let mut j = i;
        let mut payloads: Vec<Vec<u8>> = Vec::new();
        let mut raw_len = 0usize;
        while j < records.len()
            && (j == i || records[j].offset == records[j - 1].offset + 1)
            && (records[j].offset - records[i].offset) < u32::MAX as u64
        {
            let p = encode_record_payload(&records[j]);
            if !payloads.is_empty() && raw_len + 4 + p.len() > MAX_RAW {
                break;
            }
            raw_len += 4 + p.len();
            payloads.push(p);
            j += 1;
        }
        let group = &records[i..j];
        let individual: usize = payloads.iter().map(|p| FRAME_HEADER + p.len()).sum();
        let mut wrote_batch = false;
        if raw_len >= MIN_COMPRESS_RAW {
            let mut raw = Vec::with_capacity(raw_len);
            for p in &payloads {
                put_u32(&mut raw, p.len() as u32);
                raw.extend_from_slice(p);
            }
            let block = compress(&raw);
            if FRAME_HEADER + BATCH_HEADER + block.len() < individual {
                let first = group[0].offset;
                let last = group[group.len() - 1].offset;
                let mut payload = Vec::with_capacity(BATCH_HEADER + block.len());
                put_u64(&mut payload, first);
                put_u64(&mut payload, last);
                put_u32(&mut payload, group.len() as u32);
                put_u32(&mut payload, raw.len() as u32);
                payload.extend_from_slice(&block);
                let start = out.len();
                frame_payload(BATCH_MAGIC, &payload, out);
                frames.push(EncodedFrame {
                    first,
                    last,
                    count: group.len() as u32,
                    len: (out.len() - start) as u64,
                    logical: group.iter().map(|r| r.wire_size() as u64).sum(),
                    max_ts_ms: group
                        .iter()
                        .map(|r| r.append_time.as_millis())
                        .max()
                        .unwrap_or(0),
                    eos: group.iter().filter(|r| r.eos.is_some()).count() as u64,
                    compressed: true,
                    raw_len: raw.len() as u64,
                });
                wrote_batch = true;
            }
        }
        if !wrote_batch {
            for (rec, p) in group.iter().zip(&payloads) {
                let start = out.len();
                frame_payload(FRAME_MAGIC, p, out);
                frames.push(record_frame_meta(rec, (out.len() - start) as u64));
            }
        }
        i = j;
    }
    frames
}

/// Decode a batch frame's payload. `None` on any structural violation
/// (bad header, codec error, record CRC mismatch, non-dense offsets) —
/// the caller treats the frame as torn.
fn decode_batch_payload(payload: &[u8], prev: Option<Offset>) -> Option<Vec<Record>> {
    if payload.len() < BATCH_HEADER {
        return None;
    }
    let first = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let last = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
    let count = u32::from_le_bytes(payload[16..20].try_into().expect("4 bytes"));
    let raw_len = u32::from_le_bytes(payload[20..24].try_into().expect("4 bytes")) as usize;
    if count == 0 || last < first || last - first != count as u64 - 1 || raw_len > MAX_RAW {
        return None;
    }
    if let Some(p) = prev {
        if first <= p {
            return None;
        }
    }
    let raw = decompress(&payload[BATCH_HEADER..], raw_len).ok()?;
    let mut records = Vec::with_capacity(count as usize);
    let mut pos = 0usize;
    for k in 0..count as u64 {
        if pos + 4 > raw.len() {
            return None;
        }
        let plen = u32::from_le_bytes(raw[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        pos += 4;
        let end = pos.checked_add(plen)?;
        if end > raw.len() {
            return None;
        }
        let rec = decode_payload(&raw[pos..end])?;
        if !rec.verify() || rec.offset != first + k {
            return None;
        }
        pos = end;
        records.push(rec);
    }
    if pos != raw.len() {
        return None;
    }
    Some(records)
}

// ---------------------------------------------------------------------------
// segment scanning
// ---------------------------------------------------------------------------

/// One clean frame's offset span within a segment file.
#[derive(Debug, Clone, Copy)]
struct FrameSpan {
    first: Offset,
    last: Offset,
    count: u32,
    /// Byte position just past this frame within its segment file.
    end: u64,
}

fn seg_path(dir: &Path, base: Offset) -> PathBuf {
    dir.join(format!("{base:020}.seg"))
}

/// Walk frames from the start of `bytes`, stopping at the first framing
/// error, frame-CRC or record-CRC mismatch, or non-increasing offset.
/// Returns the clean frame spans, their records, and the clean length.
fn scan_bytes(bytes: &[u8], mut last_offset: Option<Offset>) -> (Vec<FrameSpan>, Vec<Record>, u64) {
    let mut frames = Vec::new();
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos + FRAME_HEADER > bytes.len()
            || (bytes[pos] != FRAME_MAGIC && bytes[pos] != BATCH_MAGIC)
        {
            break;
        }
        let magic = bytes[pos];
        let len = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 5..pos + 9].try_into().expect("4 bytes"));
        let Some(end) = pos.checked_add(FRAME_HEADER + len) else { break };
        if end > bytes.len() {
            break;
        }
        let payload = &bytes[pos + FRAME_HEADER..end];
        if crc32c(payload) != crc {
            break;
        }
        if magic == FRAME_MAGIC {
            let Some(rec) = decode_payload(payload) else { break };
            if !rec.verify() {
                break;
            }
            if let Some(prev) = last_offset {
                if rec.offset <= prev {
                    break;
                }
            }
            last_offset = Some(rec.offset);
            pos = end;
            frames.push(FrameSpan { first: rec.offset, last: rec.offset, count: 1, end: pos as u64 });
            records.push(rec);
        } else {
            let Some(batch) = decode_batch_payload(payload, last_offset) else { break };
            let first = batch[0].offset;
            let last = batch[batch.len() - 1].offset;
            last_offset = Some(last);
            pos = end;
            frames.push(FrameSpan { first, last, count: batch.len() as u32, end: pos as u64 });
            records.extend(batch);
        }
    }
    (frames, records, pos as u64)
}

/// Walk frames starting at a frame boundary, collecting up to `max`
/// records with offsets `>= from`. Frames (and whole batches) entirely
/// below the target are skipped by peeking the header — no decode, no
/// decompression. Stops quietly at damage (recovery owns truncation).
fn read_from_bytes(bytes: &[u8], from: Offset, max: usize, out: &mut Vec<Record>) {
    let mut pos = 0usize;
    while out.len() < max {
        if pos + FRAME_HEADER > bytes.len()
            || (bytes[pos] != FRAME_MAGIC && bytes[pos] != BATCH_MAGIC)
        {
            break;
        }
        let magic = bytes[pos];
        let len = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 5..pos + 9].try_into().expect("4 bytes"));
        let Some(end) = pos.checked_add(FRAME_HEADER + len) else { break };
        if end > bytes.len() {
            break;
        }
        let payload = &bytes[pos + FRAME_HEADER..end];
        if magic == FRAME_MAGIC {
            // offset is the first payload field: skip without CRC work
            if payload.len() < 8 {
                break;
            }
            let offset = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
            if offset >= from {
                if crc32c(payload) != crc {
                    break;
                }
                let Some(rec) = decode_payload(payload) else { break };
                if !rec.verify() {
                    break;
                }
                out.push(rec);
            }
        } else {
            if payload.len() < BATCH_HEADER {
                break;
            }
            let last = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
            if last >= from {
                if crc32c(payload) != crc {
                    break;
                }
                let Some(batch) = decode_batch_payload(payload, None) else { break };
                for rec in batch {
                    if rec.offset >= from && out.len() < max {
                        out.push(rec);
                    }
                }
            }
        }
        pos = end;
    }
}

// ---------------------------------------------------------------------------
// segment IO: hot file vs cold tier
// ---------------------------------------------------------------------------

/// Cold-store object key for a segment: the last three path components
/// of the partition dir (broker/topic/partition) plus the file name.
fn cold_key(dir: &Path, base: Offset) -> String {
    let mut parts: Vec<String> = dir
        .components()
        .rev()
        .take(3)
        .filter_map(|c| match c {
            std::path::Component::Normal(s) => Some(s.to_string_lossy().into_owned()),
            _ => None,
        })
        .collect();
    parts.reverse();
    parts.push(format!("{base:020}.seg"));
    parts.join("/")
}

/// Where one segment's data bytes live and how to get them: the hot
/// `.seg` file, or a cold-store object named by the `<base>.tier`
/// marker. All file-level transitions (offload, hydration, deletion)
/// serialize on one mutex, which also makes hydration single-flight —
/// concurrent fetchers that land on a cold segment perform exactly one
/// cold read between them.
pub(crate) struct SegmentIo {
    dir: PathBuf,
    base: Offset,
    cold: Option<Arc<dyn ColdStore>>,
    metrics: StoreMetrics,
    /// Whether the data bytes currently live only in the cold store.
    is_cold: StdMutex<bool>,
}

impl std::fmt::Debug for SegmentIo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentIo")
            .field("base", &self.base)
            .field("is_cold", &self.is_cold())
            .finish()
    }
}

impl SegmentIo {
    fn new(
        dir: &Path,
        base: Offset,
        cold: Option<Arc<dyn ColdStore>>,
        metrics: StoreMetrics,
        is_cold: bool,
    ) -> Arc<Self> {
        Arc::new(SegmentIo {
            dir: dir.to_path_buf(),
            base,
            cold,
            metrics,
            is_cold: StdMutex::new(is_cold),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, bool> {
        self.is_cold.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether the data bytes currently live only in the cold store.
    pub(crate) fn is_cold(&self) -> bool {
        *self.lock()
    }

    fn ensure_hot_locked(&self, is_cold: &mut bool) -> OctoResult<()> {
        if !*is_cold {
            return Ok(());
        }
        let path = seg_path(&self.dir, self.base);
        if path.exists() {
            // a previous hydration completed; the marker may linger
            tier::remove_marker(&self.dir, self.base);
            *is_cold = false;
            return Ok(());
        }
        let Some(cold) = &self.cold else {
            return Err(OctoError::Io(format!(
                "segment {} is cold but no cold store is configured",
                self.base
            )));
        };
        let Some(marker) = tier::read_marker(&self.dir, self.base) else {
            return Err(OctoError::Io(format!(
                "segment {} has no data file and no tier marker",
                self.base
            )));
        };
        let Some(bytes) = cold.get(&marker.key)? else {
            return Err(OctoError::Io(format!("cold object {} is missing", marker.key)));
        };
        if bytes.len() as u64 != marker.data_len {
            return Err(OctoError::Io(format!(
                "cold object {} is {} bytes, marker says {}",
                marker.key,
                bytes.len(),
                marker.data_len
            )));
        }
        let tmp = self.dir.join(format!("{:020}.hydrate.tmp", self.base));
        fs::write(&tmp, &bytes)?;
        let f = File::open(&tmp)?;
        f.sync_data()?;
        drop(f);
        fs::rename(&tmp, &path)?;
        tier::remove_marker(&self.dir, self.base);
        *is_cold = false;
        self.metrics.tier_hydrations.inc();
        self.metrics.tier_hydrated_bytes.add(marker.data_len);
        Ok(())
    }

    /// Hydrate if cold; afterwards the hot file is present.
    pub(crate) fn ensure_hot(&self) -> OctoResult<()> {
        let mut g = self.lock();
        self.ensure_hot_locked(&mut g)
    }

    /// Hydrate if needed and drop the cold copy + marker: the hot file
    /// becomes authoritative again (unseal, truncation, rewrite).
    pub(crate) fn make_hot(&self) -> OctoResult<()> {
        let mut g = self.lock();
        self.ensure_hot_locked(&mut g)?;
        if let Some(cold) = &self.cold {
            let _ = cold.delete(&cold_key(&self.dir, self.base));
        }
        tier::remove_marker(&self.dir, self.base);
        Ok(())
    }

    /// Drop the cold copy and marker *without* hydrating — for callers
    /// about to replace the data file wholesale (compaction rewrite).
    pub(crate) fn discard_cold(&self) {
        let mut g = self.lock();
        if let Some(cold) = &self.cold {
            let _ = cold.delete(&cold_key(&self.dir, self.base));
        }
        tier::remove_marker(&self.dir, self.base);
        *g = false;
    }

    /// Read the whole data file (hydrating first if cold).
    pub(crate) fn read_data(&self) -> OctoResult<Vec<u8>> {
        let mut g = self.lock();
        self.ensure_hot_locked(&mut g)?;
        Ok(fs::read(seg_path(&self.dir, self.base))?)
    }

    /// Read the data file from byte `pos` to the end (hydrating first
    /// if cold).
    pub(crate) fn read_from(&self, pos: u64) -> OctoResult<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};
        let mut g = self.lock();
        self.ensure_hot_locked(&mut g)?;
        let mut f = File::open(seg_path(&self.dir, self.base))?;
        f.seek(SeekFrom::Start(pos))?;
        let mut out = Vec::new();
        f.read_to_end(&mut out)?;
        Ok(out)
    }

    /// Move the hot data file (exactly `data_len` bytes) to the cold
    /// store: put the object, write the marker, then remove the hot
    /// file — a crash at any point leaves the segment recoverable.
    pub(crate) fn offload(&self, data_len: u64) -> OctoResult<bool> {
        let mut g = self.lock();
        if *g {
            return Ok(false);
        }
        let Some(cold) = &self.cold else { return Ok(false) };
        let path = seg_path(&self.dir, self.base);
        let bytes = fs::read(&path)?;
        if bytes.len() as u64 != data_len {
            return Ok(false);
        }
        let key = cold_key(&self.dir, self.base);
        cold.put(&key, &bytes)?;
        tier::write_marker(&self.dir, self.base, &TierMarker { key, data_len })?;
        fs::remove_file(&path)?;
        *g = true;
        self.metrics.tier_offloads.inc();
        self.metrics.tier_offloaded_bytes.add(data_len);
        Ok(true)
    }

    /// Best-effort removal of every trace of this segment: hot file,
    /// index sidecars, tier marker, and the cold object.
    pub(crate) fn delete_files(&self) {
        let mut g = self.lock();
        let _ = fs::remove_file(seg_path(&self.dir, self.base));
        index::remove_index_files(&self.dir, self.base);
        tier::remove_marker(&self.dir, self.base);
        if let Some(cold) = &self.cold {
            let _ = cold.delete(&cold_key(&self.dir, self.base));
        }
        *g = false;
    }
}

/// A sealed segment recovered without reading its data file: the
/// footer-certified metadata plus on-demand record loading. The log
/// keeps these as placeholders and materializes (with a `Weak` cache,
/// so repeated readers share one decode without pinning RAM) only when
/// a fetch actually lands on them.
#[derive(Debug)]
pub struct LazySegment {
    meta: Arc<SealedMeta>,
    io: Arc<SegmentIo>,
    cache: StdMutex<Option<Weak<[Record]>>>,
}

impl LazySegment {
    fn new(meta: Arc<SealedMeta>, io: Arc<SegmentIo>) -> Arc<Self> {
        Arc::new(LazySegment { meta, io, cache: StdMutex::new(None) })
    }

    /// Segment base offset.
    pub fn base(&self) -> Offset {
        self.meta.base
    }

    /// Offset of the last record.
    pub fn last_offset(&self) -> Offset {
        self.meta.last_offset
    }

    /// Records in the segment (footer-certified; no data read).
    pub fn record_count(&self) -> u64 {
        self.meta.record_count
    }

    /// Sum of the records' logical (in-memory wire) sizes.
    pub fn logical_bytes(&self) -> u64 {
        self.meta.logical_bytes
    }

    /// Greatest append timestamp, in milliseconds.
    pub fn max_ts_ms(&self) -> u64 {
        self.meta.max_ts_ms
    }

    /// Records carrying an EOS trailer.
    pub fn eos_count(&self) -> u64 {
        self.meta.eos_count
    }

    /// Whether the data bytes currently live only in the cold store.
    pub fn is_cold(&self) -> bool {
        self.io.is_cold()
    }

    /// The footer-certified metadata.
    pub fn meta(&self) -> &Arc<SealedMeta> {
        &self.meta
    }

    /// Load (or reuse a concurrently loaded copy of) the segment's
    /// records, hydrating from the cold tier if needed. The decoded
    /// bytes are validated against the sealed footer — count, length,
    /// and last offset must all match, or the data is not trusted.
    pub fn records(&self) -> OctoResult<Arc<[Record]>> {
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(records) = cache.as_ref().and_then(Weak::upgrade) {
            return Ok(records);
        }
        let bytes = self.io.read_data()?;
        let prev = self.meta.base.checked_sub(1);
        let (_, records, good_len) = scan_bytes(&bytes, prev);
        if good_len != self.meta.data_len
            || records.len() as u64 != self.meta.record_count
            || records.last().map(|r| r.offset) != Some(self.meta.last_offset)
        {
            return Err(OctoError::Io(format!(
                "sealed segment {} failed footer validation ({} records, {} clean bytes)",
                self.meta.base,
                records.len(),
                good_len
            )));
        }
        let records: Arc<[Record]> = records.into();
        *cache = Some(Arc::downgrade(&records));
        Ok(records)
    }
}

/// One recovered segment: either fully decoded (the active tail, or a
/// segment that needed a data scan) or a sealed placeholder certified
/// by its index footer — the reopen fast path never reads sealed data.
#[derive(Debug)]
pub enum RecoveredSegment {
    /// Scanned and decoded in full.
    Resident {
        /// Segment base offset.
        base: Offset,
        /// Every surviving record, in offset order.
        records: Vec<Record>,
    },
    /// Adopted from the sealed footer without reading the data file.
    Sealed(Arc<LazySegment>),
}

impl RecoveredSegment {
    /// Segment base offset.
    pub fn base(&self) -> Offset {
        match self {
            RecoveredSegment::Resident { base, .. } => *base,
            RecoveredSegment::Sealed(seg) => seg.base(),
        }
    }

    /// Records in the segment (footer-certified for sealed segments).
    pub fn record_count(&self) -> u64 {
        match self {
            RecoveredSegment::Resident { records, .. } => records.len() as u64,
            RecoveredSegment::Sealed(seg) => seg.record_count(),
        }
    }

    /// Offset of the last record, if any.
    pub fn last_offset(&self) -> Option<Offset> {
        match self {
            RecoveredSegment::Resident { records, .. } => records.last().map(|r| r.offset),
            RecoveredSegment::Sealed(seg) => Some(seg.last_offset()),
        }
    }

    /// The decoded records, when this segment was fully scanned.
    pub fn resident(&self) -> Option<&[Record]> {
        match self {
            RecoveredSegment::Resident { records, .. } => Some(records),
            RecoveredSegment::Sealed(_) => None,
        }
    }
}

/// What a recovery scan yields: each surviving segment, in offset order.
pub type RecoveredSegments = Vec<RecoveredSegment>;

#[derive(Debug)]
struct StoreSegment {
    base: Offset,
    len: u64,
    /// Clean frame spans (empty for footer-adopted sealed segments —
    /// their [`SealedMeta`] carries everything the store needs).
    spans: Vec<FrameSpan>,
    sealed: Option<Arc<SealedMeta>>,
    /// Live index builder; present exactly when the segment is unsealed.
    builder: Option<IndexBuilder>,
    io: Arc<SegmentIo>,
}

impl StoreSegment {
    fn last_offset(&self) -> Option<Offset> {
        if let Some(m) = &self.sealed {
            return Some(m.last_offset);
        }
        self.spans.last().map(|s| s.last)
    }

    /// Greatest indexed frame position at or before `offset`.
    fn seek_pos(&self, offset: Offset) -> u64 {
        if let Some(m) = &self.sealed {
            return m.seek_pos(offset);
        }
        self.builder.as_ref().map(|b| b.seek_pos(offset)).unwrap_or(0)
    }

    /// Write the CRC'd footers and switch to footer-certified state.
    fn seal(&mut self) -> OctoResult<()> {
        if self.sealed.is_none() {
            if let Some(b) = self.builder.take() {
                self.sealed = Some(b.seal(self.len)?);
            }
        }
        Ok(())
    }
}

/// Replay scanned frames into a fresh index builder (recovery rebuild).
fn replay_spans(
    builder: &mut IndexBuilder,
    spans: &[FrameSpan],
    records: &[Record],
) -> OctoResult<()> {
    let mut pos = 0u64;
    let mut ri = 0usize;
    for s in spans {
        let n = s.count as usize;
        let recs = &records[ri..ri + n];
        let logical: u64 = recs.iter().map(|r| r.wire_size() as u64).sum();
        let max_ts = recs.iter().map(|r| r.append_time.as_millis()).max().unwrap_or(0);
        let eos = recs.iter().filter(|r| r.eos.is_some()).count() as u64;
        builder.on_frame(s.first, s.last, n as u64, pos, s.end - pos, logical, max_ts, eos)?;
        pos = s.end;
        ri += n;
    }
    Ok(())
}

/// Build a fresh index builder + spans from just-encoded frames
/// (truncation, compaction rewrite, resync reset).
fn build_segment_state(
    dir: &Path,
    base: Offset,
    interval: u64,
    frames: &[EncodedFrame],
) -> OctoResult<(IndexBuilder, Vec<FrameSpan>, u64)> {
    index::remove_index_files(dir, base);
    let mut builder = IndexBuilder::new(dir, base, interval);
    let mut spans = Vec::with_capacity(frames.len());
    let mut pos = 0u64;
    for f in frames {
        builder.on_frame(f.first, f.last, f.count as u64, pos, f.len, f.logical, f.max_ts_ms, f.eos)?;
        pos += f.len;
        spans.push(FrameSpan { first: f.first, last: f.last, count: f.count, end: pos });
    }
    Ok((builder, spans, pos))
}

struct Scanned {
    segments: Vec<StoreSegment>,
    recovered: RecoveredSegments,
    stats: RecoveryStats,
}

/// Scan a partition directory: delete temp files, walk segments in
/// base-offset order, adopt sealed segments from their footers, fully
/// scan the rest, truncate the first torn tail in place, and delete
/// every file beyond it.
fn scan_dir(dir: &Path, opts: &StoreOptions, metrics: &StoreMetrics) -> OctoResult<Scanned> {
    let mut bases: std::collections::BTreeSet<Offset> = std::collections::BTreeSet::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        match path.extension().and_then(|e| e.to_str()) {
            Some("tmp") => fs::remove_file(&path)?,
            Some("seg") | Some("index") | Some("timeindex") | Some("tier") => {
                if let Some(base) = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(|s| s.parse::<Offset>().ok())
                {
                    bases.insert(base);
                }
            }
            _ => {}
        }
    }
    let last_base = bases.iter().next_back().copied();
    let mut out =
        Scanned { segments: Vec::new(), recovered: Vec::new(), stats: RecoveryStats::default() };
    let mut last_offset: Option<Offset> = None;
    let mut broken = false;
    for base in bases {
        let io = SegmentIo::new(dir, base, opts.cold.clone(), metrics.clone(), false);
        let hot_len = fs::metadata(seg_path(dir, base)).ok().map(|m| m.len());
        let marker = tier::read_marker(dir, base);
        if broken {
            // continuity is already lost: count what was claimed, drop everything
            if let Some(meta) = index::read_sealed(dir, base) {
                out.stats.records_truncated += meta.record_count;
            } else if hot_len.is_some() {
                let bytes = fs::read(seg_path(dir, base))?;
                let (_, recs, _) = scan_bytes(&bytes, None);
                out.stats.records_truncated += recs.len() as u64;
            }
            out.stats.bytes_truncated +=
                hot_len.or(marker.as_ref().map(|m| m.data_len)).unwrap_or(0);
            io.delete_files();
            continue;
        }
        let is_last = Some(base) == last_base;
        // Sealed fast path (never for the active tail): a valid CRC'd
        // footer plus whole data — a hot file of exactly the certified
        // length, or a tier marker agreeing with it — is adopted without
        // reading a single data byte.
        if !is_last {
            if let Some(meta) = index::read_sealed(dir, base) {
                let contiguous = last_offset.is_none_or(|p| base > p);
                let hot_whole = hot_len == Some(meta.data_len);
                let cold_whole = hot_len.is_none()
                    && opts.cold.is_some()
                    && marker.as_ref().map(|m| m.data_len) == Some(meta.data_len);
                if contiguous && (hot_whole || cold_whole) {
                    if hot_whole {
                        // crash between offload steps: the whole hot copy
                        // wins; drop the cold object and marker
                        if let (Some(cold), Some(m)) = (&opts.cold, &marker) {
                            let _ = cold.delete(&m.key);
                        }
                        tier::remove_marker(dir, base);
                    } else {
                        *io.lock() = true;
                    }
                    out.stats.segments_sealed += 1;
                    out.stats.records_recovered += meta.record_count;
                    metrics.index_sealed_skips.inc();
                    last_offset = Some(meta.last_offset);
                    out.segments.push(StoreSegment {
                        base,
                        len: meta.data_len,
                        spans: Vec::new(),
                        sealed: Some(Arc::clone(&meta)),
                        builder: None,
                        io: Arc::clone(&io),
                    });
                    out.recovered.push(RecoveredSegment::Sealed(LazySegment::new(meta, io)));
                    continue;
                }
            }
        }
        // full-scan fallback: hydrate first if the data lives cold
        if hot_len.is_none() {
            if marker.is_some() && opts.cold.is_some() {
                *io.lock() = true;
                if io.ensure_hot().is_err() {
                    // the cold object is gone: the chain ends here
                    out.stats.bytes_truncated += marker.as_ref().map(|m| m.data_len).unwrap_or(0);
                    io.delete_files();
                    broken = true;
                    continue;
                }
            } else {
                // stray sidecars with no data claim behind them
                io.delete_files();
                continue;
            }
        }
        let path = seg_path(dir, base);
        let bytes = fs::read(&path)?;
        let (spans, recs, good_len) = scan_bytes(&bytes, last_offset);
        out.stats.segments_scanned += 1;
        out.stats.records_recovered += recs.len() as u64;
        if (good_len as usize) < bytes.len() {
            broken = true;
            out.stats.bytes_truncated += bytes.len() as u64 - good_len;
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(good_len)?;
            f.sync_data()?;
        }
        if let Some(r) = recs.last() {
            last_offset = Some(r.offset);
        }
        if !is_last {
            // a closed segment whose index could not be trusted
            metrics.index_rebuilds.inc();
        }
        index::remove_index_files(dir, base);
        let mut builder = IndexBuilder::new(dir, base, opts.index_interval_bytes);
        replay_spans(&mut builder, &spans, &recs)?;
        out.segments.push(StoreSegment {
            base,
            len: good_len,
            spans,
            sealed: None,
            builder: Some(builder),
            io,
        });
        out.recovered.push(RecoveredSegment::Resident { base, records: recs });
    }
    // every segment but the last gets (back) its sealed footer
    let n = out.segments.len();
    if n > 1 {
        for seg in &mut out.segments[..n - 1] {
            seg.seal()?;
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// group-commit sync gate
// ---------------------------------------------------------------------------

/// Group-commit gate for one partition's active segment.
///
/// `written` and `synced` are *monotonic* byte counters over the store's
/// whole life — data bytes only; index sidecar writes are advisory and
/// bypass the gate. A byte is counted in `written` once its `write(2)`
/// into the active file has returned, and in `synced` once some fsync
/// (or an equivalent durable rewrite) is known to cover it. Segment
/// rolls and truncations settle the counters rather than resetting
/// them, so a ticket's target stays meaningful across segment changes.
///
/// The gate lets any number of waiters share each fsync: the first
/// waiter to arrive while no sync is in flight performs one `sync_data`
/// covering every byte written up to that instant; everyone whose target
/// that covers rides along without issuing their own.
#[derive(Debug)]
struct SyncGate {
    written: AtomicU64,
    synced: AtomicU64,
    state: StdMutex<GateState>,
    done: Condvar,
}

#[derive(Debug, Default)]
struct GateState {
    /// Append handle on the active segment file (lazily opened). Shared
    /// so a waiter can fsync it without holding the store.
    file: Option<Arc<File>>,
    /// Whether some waiter currently has an fsync in flight.
    syncing: bool,
}

impl SyncGate {
    fn new() -> Arc<Self> {
        Arc::new(SyncGate {
            written: AtomicU64::new(0),
            synced: AtomicU64::new(0),
            state: StdMutex::new(GateState::default()),
            done: Condvar::new(),
        })
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mark everything written so far as durable and wake waiters. Call
    /// only after the disk state has been made consistent through some
    /// other fsynced path (roll, truncation, rewrite, recovery).
    fn settle(&self) {
        self.synced.fetch_max(self.written.load(Ordering::Acquire), Ordering::AcqRel);
        self.done.notify_all();
    }

    /// Drop the active file handle (segment rolled, truncated, or
    /// rewritten); the next append reopens lazily.
    fn detach_file(&self) {
        self.lock_state().file = None;
    }

    fn unflushed(&self) -> u64 {
        self.written.load(Ordering::Acquire).saturating_sub(self.synced.load(Ordering::Acquire))
    }

    /// Block until every byte up to `target` is on stable storage,
    /// issuing at most one fsync per uncovered window.
    fn sync_to(&self, target: u64, metrics: &StoreMetrics) -> OctoResult<()> {
        if self.synced.load(Ordering::Acquire) >= target {
            return Ok(());
        }
        let mut st = self.lock_state();
        loop {
            if self.synced.load(Ordering::Acquire) >= target {
                return Ok(());
            }
            if st.syncing {
                st = self.done.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            st.syncing = true;
            let file = st.file.clone();
            drop(st);
            // Every byte counted in `written` at this point has
            // completed its write into `file` (appends bump the counter
            // only after write_all returns), so one fsync covers all of
            // them — including batches from producers that appended
            // while a previous fsync was in flight.
            let cover = self.written.load(Ordering::Acquire);
            let res: OctoResult<()> = match &file {
                Some(f) => {
                    let t = Instant::now();
                    match f.sync_data() {
                        Ok(()) => {
                            metrics.flush_ns.record(t.elapsed().as_nanos() as u64);
                            metrics.flushes.inc();
                            Ok(())
                        }
                        Err(e) => Err(e.into()),
                    }
                }
                // no file yet: nothing written since the segment was
                // (re)opened, so everything counted is already durable
                None => Ok(()),
            };
            st = self.lock_state();
            st.syncing = false;
            if res.is_ok() {
                self.synced.fetch_max(cover, Ordering::AcqRel);
            }
            self.done.notify_all();
            res?;
        }
    }
}

/// A claim ticket from [`PartitionStore::commit_batch_ticket`]: the
/// batch has been written to the segment file but not yet fsynced.
/// [`SyncTicket::wait`] blocks until an fsync covers it — possibly one
/// issued by a concurrent producer (group commit). Wait *after*
/// releasing the partition lock, or the group collapses back to one
/// fsync per lock holder.
#[derive(Debug)]
pub struct SyncTicket {
    gate: Arc<SyncGate>,
    target: u64,
    metrics: StoreMetrics,
}

impl SyncTicket {
    /// Block until the ticket's batch is on stable storage.
    pub fn wait(&self) -> OctoResult<()> {
        self.gate.sync_to(self.target, &self.metrics)
    }
}

// ---------------------------------------------------------------------------
// PartitionStore
// ---------------------------------------------------------------------------

/// The durable half of one partition: segment files in a directory plus
/// the bookkeeping needed to append, fsync per policy, seek via sparse
/// indexes, tier sealed segments, and recover.
pub struct PartitionStore {
    dir: PathBuf,
    policy: FlushPolicy,
    metrics: StoreMetrics,
    opts: StoreOptions,
    segments: Vec<StoreSegment>,
    /// Active-file handle plus the written/synced ledger shared with
    /// outstanding [`SyncTicket`]s.
    gate: Arc<SyncGate>,
    last_sync: Instant,
    /// Set by [`PartitionStore::power_loss`]; appends are refused until
    /// [`PartitionStore::recover`] has rebuilt state from disk.
    needs_recovery: bool,
}

impl std::fmt::Debug for PartitionStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionStore")
            .field("dir", &self.dir)
            .field("policy", &self.policy)
            .field("segments", &self.segments.len())
            .finish()
    }
}

impl PartitionStore {
    /// Open (creating if needed) the store for one partition with
    /// default storage options, running recovery on whatever the
    /// directory holds.
    pub fn open(
        dir: impl Into<PathBuf>,
        policy: FlushPolicy,
        metrics: StoreMetrics,
    ) -> OctoResult<(Self, RecoveredSegments, RecoveryStats)> {
        Self::open_with(dir, policy, metrics, StoreOptions::default())
    }

    /// Open with explicit storage options (index density, compression,
    /// cold tiering). Returns the store, the recovered segments, and
    /// scan stats.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        policy: FlushPolicy,
        metrics: StoreMetrics,
        mut opts: StoreOptions,
    ) -> OctoResult<(Self, RecoveredSegments, RecoveryStats)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        if opts.index_interval_bytes == 0 {
            opts.index_interval_bytes = DEFAULT_INDEX_INTERVAL_BYTES;
        }
        let mut store = PartitionStore {
            dir,
            policy,
            metrics,
            opts,
            segments: Vec::new(),
            gate: SyncGate::new(),
            last_sync: Instant::now(),
            needs_recovery: false,
        };
        let (records, stats) = store.recover()?;
        Ok((store, records, stats))
    }

    /// The directory this partition persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured flush policy.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// The storage options this partition runs with.
    pub fn options(&self) -> &StoreOptions {
        &self.opts
    }

    /// Re-scan the directory from scratch (crash recovery / reopen).
    /// Truncates the torn tail on disk and returns the surviving
    /// segments plus stats. Clears any power-loss poisoning.
    pub fn recover(&mut self) -> OctoResult<(RecoveredSegments, RecoveryStats)> {
        self.gate.detach_file();
        let scanned = scan_dir(&self.dir, &self.opts, &self.metrics)?;
        self.metrics.records_recovered.add(scanned.stats.records_recovered);
        self.metrics.records_truncated.add(scanned.stats.records_truncated);
        self.metrics.bytes_truncated.add(scanned.stats.bytes_truncated);
        self.segments = scanned.segments;
        self.gate.settle();
        self.needs_recovery = false;
        self.last_sync = Instant::now();
        Ok((scanned.recovered, scanned.stats))
    }

    fn writer(&mut self) -> OctoResult<Arc<File>> {
        let mut st = self.gate.lock_state();
        if st.file.is_none() {
            let base = self.segments.last().expect("active segment exists").base;
            let f = OpenOptions::new()
                .append(true)
                .create(true)
                .open(seg_path(&self.dir, base))?;
            st.file = Some(Arc::new(f));
        }
        Ok(Arc::clone(st.file.as_ref().expect("just opened")))
    }

    /// Start a new segment at `base`, fsyncing, sealing, and closing
    /// the previous one (closed segments are always durable), then
    /// enforcing the cold-tier threshold.
    fn roll_to(&mut self, base: Offset) -> OctoResult<()> {
        if !self.segments.is_empty() {
            self.sync()?;
            if let Some(seg) = self.segments.last_mut() {
                seg.seal()?;
            }
        }
        self.gate.detach_file();
        let io = SegmentIo::new(&self.dir, base, self.opts.cold.clone(), self.metrics.clone(), false);
        let builder = IndexBuilder::new(&self.dir, base, self.opts.index_interval_bytes);
        self.segments.push(StoreSegment {
            base,
            len: 0,
            spans: Vec::new(),
            sealed: None,
            builder: Some(builder),
            io,
        });
        self.enforce_cold_threshold();
        Ok(())
    }

    /// Offload oldest-first until hot sealed bytes fit under
    /// `cold_after_bytes`. Best-effort: an offload failure leaves the
    /// segment hot and is retried at the next roll.
    fn enforce_cold_threshold(&mut self) {
        let Some(threshold) = self.opts.cold_after_bytes else { return };
        if self.opts.cold.is_none() {
            return;
        }
        let n = self.segments.len();
        if n < 2 {
            return;
        }
        let mut hot_sealed: u64 = self.segments[..n - 1]
            .iter()
            .filter(|s| s.sealed.is_some() && !s.io.is_cold())
            .map(|s| s.len)
            .sum();
        for seg in &self.segments[..n - 1] {
            if hot_sealed <= threshold {
                break;
            }
            if seg.sealed.is_none() || seg.io.is_cold() {
                continue;
            }
            if seg.io.offload(seg.len).unwrap_or(false) {
                hot_sealed -= seg.len;
            }
        }
    }

    /// Offload every sealed segment's data file to the cold tier now
    /// (tests, benches, and operator-forced tiering). Returns how many
    /// segments moved.
    pub fn offload_now(&mut self) -> OctoResult<u64> {
        if self.opts.cold.is_none() {
            return Ok(0);
        }
        let n = self.segments.len();
        if n < 2 {
            return Ok(0);
        }
        let mut moved = 0u64;
        for seg in &self.segments[..n - 1] {
            if seg.sealed.is_some() && !seg.io.is_cold() && seg.io.offload(seg.len)? {
                moved += 1;
            }
        }
        Ok(moved)
    }

    /// Truncation can leave a sealed (possibly cold) segment as the
    /// last one; appending into it reopens it: hydrate, drop the cold
    /// copy, rescan, and rebuild the live index builder. The stale
    /// footer is removed — the segment is active again.
    fn unseal_active(&mut self) -> OctoResult<()> {
        let dir = self.dir.clone();
        let interval = self.opts.index_interval_bytes;
        let Some(seg) = self.segments.last_mut() else { return Ok(()) };
        if seg.sealed.is_none() {
            return Ok(());
        }
        seg.io.make_hot()?;
        let bytes = fs::read(seg_path(&dir, seg.base))?;
        let (spans, recs, good_len) = scan_bytes(&bytes, seg.base.checked_sub(1));
        if good_len != bytes.len() as u64 {
            return Err(OctoError::Io(format!(
                "sealed segment {} failed rescan on unseal",
                seg.base
            )));
        }
        index::remove_index_files(&dir, seg.base);
        let mut builder = IndexBuilder::new(&dir, seg.base, interval);
        replay_spans(&mut builder, &spans, &recs)?;
        seg.spans = spans;
        seg.builder = Some(builder);
        seg.sealed = None;
        seg.len = good_len;
        self.gate.detach_file();
        Ok(())
    }

    /// Append one record into the segment whose base offset is
    /// `seg_base` (mirroring the in-memory roll decision).
    pub fn append(&mut self, rec: &Record, seg_base: Offset) -> OctoResult<()> {
        self.append_batch(std::slice::from_ref(rec), seg_base)
    }

    /// Append a batch of records into the segment whose base offset is
    /// `seg_base`. Under [`Compression::Lz4`], dense runs become
    /// compressed batch frames (one `write(2)` either way); the sparse
    /// index is extended as frames land.
    pub fn append_batch(&mut self, records: &[Record], seg_base: Offset) -> OctoResult<()> {
        if self.needs_recovery {
            return Err(OctoError::Io("store lost power; recover() before appending".into()));
        }
        if records.is_empty() {
            return Ok(());
        }
        if self.segments.last().map(|s| s.base) != Some(seg_base) {
            self.roll_to(seg_base)?;
        } else {
            self.unseal_active()?;
        }
        let mut buf = Vec::new();
        let frames = encode_frames(records, self.opts.compression, &mut buf);
        let file = self.writer()?;
        (&*file).write_all(&buf)?;
        let seg = self.segments.last_mut().expect("rolled above");
        let mut pos = seg.len;
        for f in &frames {
            if let Some(b) = seg.builder.as_mut() {
                b.on_frame(f.first, f.last, f.count as u64, pos, f.len, f.logical, f.max_ts_ms, f.eos)?;
            }
            pos += f.len;
            seg.spans.push(FrameSpan { first: f.first, last: f.last, count: f.count, end: pos });
            if f.compressed {
                self.metrics.compressed_batches.inc();
                self.metrics.compressed_raw_bytes.add(f.raw_len);
                self.metrics.compressed_stored_bytes.add(f.len);
            }
        }
        seg.len = pos;
        self.metrics.bytes_written.add(buf.len() as u64);
        // counted only after write_all returned: the gate relies on
        // `written` bytes being in the file before any covering fsync
        self.gate.written.fetch_add(buf.len() as u64, Ordering::AcqRel);
        Ok(())
    }

    /// Apply the flush policy at a batch boundary.
    pub fn commit_batch(&mut self) -> OctoResult<()> {
        match self.policy {
            FlushPolicy::PerBatch => self.sync(),
            FlushPolicy::IntervalMs(ms) => {
                if self.gate.unflushed() > 0 && self.last_sync.elapsed().as_millis() as u64 >= ms {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            FlushPolicy::OsManaged => Ok(()),
        }
    }

    /// Like [`PartitionStore::commit_batch`], but under
    /// [`FlushPolicy::PerBatch`] the fsync is deferred to the returned
    /// ticket so the caller can wait for it after releasing the
    /// partition lock — concurrent producers then share fsyncs (group
    /// commit) instead of serializing them. Other policies behave
    /// exactly like `commit_batch` and never return a ticket.
    pub fn commit_batch_ticket(&mut self) -> OctoResult<Option<SyncTicket>> {
        match self.policy {
            FlushPolicy::PerBatch => {
                let target = self.gate.written.load(Ordering::Acquire);
                if self.gate.synced.load(Ordering::Acquire) >= target {
                    return Ok(None);
                }
                Ok(Some(SyncTicket {
                    gate: Arc::clone(&self.gate),
                    target,
                    metrics: self.metrics.clone(),
                }))
            }
            _ => self.commit_batch().map(|()| None),
        }
    }

    /// Force an fsync of the active segment (a no-op when every written
    /// byte is already covered).
    pub fn sync(&mut self) -> OctoResult<()> {
        let target = self.gate.written.load(Ordering::Acquire);
        self.gate.sync_to(target, &self.metrics)?;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Drop every frame with `offset >= end` from disk (append
    /// rollback after a write-through failure). A kept suffix may end
    /// inside a compressed batch, so the surviving segment is
    /// atomically rewritten with its records re-framed individually.
    pub fn truncate_to(&mut self, end: Offset) -> OctoResult<()> {
        let mut changed = false;
        while let Some(seg) = self.segments.last() {
            if seg.base < end {
                break;
            }
            self.gate.detach_file();
            seg.io.delete_files();
            self.segments.pop();
            changed = true;
        }
        let needs_trim =
            self.segments.last().and_then(|s| s.last_offset()).is_some_and(|l| l >= end);
        if needs_trim {
            let dir = self.dir.clone();
            let interval = self.opts.index_interval_bytes;
            let seg = self.segments.last_mut().expect("checked above");
            seg.io.make_hot()?;
            let bytes = fs::read(seg_path(&dir, seg.base))?;
            let (_, recs, _) = scan_bytes(&bytes, seg.base.checked_sub(1));
            let kept: Vec<Record> = recs.into_iter().filter(|r| r.offset < end).collect();
            let mut buf = Vec::new();
            let frames = encode_frames(&kept, Compression::None, &mut buf);
            let tmp = dir.join(format!("{:020}.seg.tmp", seg.base));
            {
                let mut f = File::create(&tmp)?;
                f.write_all(&buf)?;
                f.sync_data()?;
            }
            fs::rename(&tmp, seg_path(&dir, seg.base))?;
            let (builder, spans, len) = build_segment_state(&dir, seg.base, interval, &frames)?;
            seg.spans = spans;
            seg.builder = Some(builder);
            seg.sealed = None;
            seg.len = len;
            self.gate.detach_file();
            changed = true;
        }
        if changed {
            // every surviving byte was fsynced (closed segments at roll,
            // the rewritten tail just now); tickets for truncated bytes
            // must not wait for an fsync that will never cover them
            self.gate.settle();
        }
        Ok(())
    }

    /// Delete the frontmost segment — data file, sidecars, tier marker,
    /// and cold object (retention).
    pub fn remove_front_segment(&mut self, base: Offset) -> OctoResult<()> {
        let Some(first) = self.segments.first() else { return Ok(()) };
        if first.base != base {
            return Ok(());
        }
        first.io.delete_files();
        self.segments.remove(0);
        if self.segments.is_empty() {
            self.gate.detach_file();
        }
        Ok(())
    }

    /// Atomically rewrite a closed segment with the surviving records
    /// (compaction): write a temp file, fsync, rename over the original,
    /// rebuild the index, and re-seal. Any cold copy is superseded.
    pub fn rewrite_segment(&mut self, base: Offset, records: &[Record]) -> OctoResult<()> {
        let idx = self.segments.partition_point(|s| s.base < base);
        if self.segments.get(idx).map(|s| s.base) != Some(base) {
            return Ok(());
        }
        let dir = self.dir.clone();
        let interval = self.opts.index_interval_bytes;
        let compression = self.opts.compression;
        let is_last = idx + 1 == self.segments.len();
        let seg = &mut self.segments[idx];
        seg.io.discard_cold();
        let mut buf = Vec::new();
        let frames = encode_frames(records, compression, &mut buf);
        let tmp = dir.join(format!("{base:020}.seg.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, seg_path(&dir, base))?;
        let (builder, spans, len) = build_segment_state(&dir, base, interval, &frames)?;
        seg.spans = spans;
        seg.builder = Some(builder);
        seg.sealed = None;
        seg.len = len;
        if is_last {
            self.gate.detach_file();
            self.gate.settle();
        } else {
            self.segments[idx].seal()?;
        }
        Ok(())
    }

    /// Replace the entire on-disk state with the given segments (ISR
    /// resync adopting a leader snapshot). Every file is written and
    /// fsynced before the old state is considered gone.
    pub fn reset_with<'a>(
        &mut self,
        segments: impl Iterator<Item = (Offset, &'a [Record])>,
    ) -> OctoResult<()> {
        self.gate.detach_file();
        for seg in &self.segments {
            seg.io.delete_files();
        }
        self.segments.clear();
        for (base, records) in segments {
            let mut buf = Vec::new();
            let frames = encode_frames(records, self.opts.compression, &mut buf);
            let path = seg_path(&self.dir, base);
            {
                let mut f = File::create(&path)?;
                f.write_all(&buf)?;
                f.sync_data()?;
            }
            self.metrics.bytes_written.add(buf.len() as u64);
            let (builder, spans, len) =
                build_segment_state(&self.dir, base, self.opts.index_interval_bytes, &frames)?;
            let io =
                SegmentIo::new(&self.dir, base, self.opts.cold.clone(), self.metrics.clone(), false);
            self.segments.push(StoreSegment {
                base,
                len,
                spans,
                sealed: None,
                builder: Some(builder),
                io,
            });
        }
        let n = self.segments.len();
        if n > 1 {
            for seg in &mut self.segments[..n - 1] {
                seg.seal()?;
            }
        }
        self.gate.settle();
        self.needs_recovery = false;
        Ok(())
    }

    /// Read up to `max` records with offsets `>= from`, seeking per
    /// `mode`. [`SeekMode::Indexed`] binary searches segments and the
    /// sparse index, then decodes from within one interval of the
    /// target; cold segments hydrate transparently.
    pub fn read_records(&self, from: Offset, max: usize, mode: SeekMode) -> OctoResult<Vec<Record>> {
        let mut out = Vec::new();
        if max == 0 || self.segments.is_empty() {
            return Ok(out);
        }
        match mode {
            SeekMode::Indexed => {
                let start = self.segments.partition_point(|s| s.base <= from).saturating_sub(1);
                for seg in &self.segments[start..] {
                    if out.len() >= max {
                        break;
                    }
                    if seg.last_offset().is_none_or(|l| l < from) {
                        continue;
                    }
                    let pos = seg.seek_pos(from);
                    let bytes = seg.io.read_from(pos)?;
                    read_from_bytes(&bytes, from, max, &mut out);
                }
            }
            SeekMode::LinearScan => {
                for seg in &self.segments {
                    if out.len() >= max {
                        break;
                    }
                    if seg.last_offset().is_none_or(|l| l < from) {
                        continue;
                    }
                    let bytes = seg.io.read_data()?;
                    let (_, recs, _) = scan_bytes(&bytes, seg.base.checked_sub(1));
                    for rec in recs {
                        if rec.offset >= from && out.len() < max {
                            out.push(rec);
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Offset of the first record with append time `>= ts_ms`, using
    /// the sparse time index to skip sealed segments (and most of the
    /// matching one) without decoding them.
    pub fn lookup_timestamp(&self, ts_ms: u64) -> OctoResult<Option<Offset>> {
        for seg in &self.segments {
            if let Some(meta) = &seg.sealed {
                if meta.max_ts_ms < ts_ms {
                    continue; // every record here is older
                }
                let idx = meta.time_entries.partition_point(|t| t.ts_ms < ts_ms);
                let rel = if idx == 0 { 0 } else { meta.time_entries[idx - 1].rel };
                let pos = meta.seek_pos(meta.base + rel as u64);
                let bytes = seg.io.read_from(pos)?;
                let (_, recs, _) = scan_bytes(&bytes, None);
                if let Some(r) = recs.iter().find(|r| r.append_time.as_millis() >= ts_ms) {
                    return Ok(Some(r.offset));
                }
            } else {
                let bytes = seg.io.read_data()?;
                let (_, recs, _) = scan_bytes(&bytes, seg.base.checked_sub(1));
                if let Some(r) = recs.iter().find(|r| r.append_time.as_millis() >= ts_ms) {
                    return Ok(Some(r.offset));
                }
            }
        }
        Ok(None)
    }

    /// Simulate power loss: the process dies and the unflushed suffix of
    /// the active segment survives only up to an arbitrary byte boundary
    /// chosen by `entropy`. Closed segments (fsynced at roll) and the
    /// synced prefix always survive. Returns the bytes torn off.
    ///
    /// The store is left poisoned — [`PartitionStore::recover`] must run
    /// before it accepts appends again, exactly like a real restart.
    pub fn power_loss(&mut self, entropy: u64) -> OctoResult<u64> {
        self.gate.detach_file();
        self.needs_recovery = true;
        let Some(seg) = self.segments.last() else { return Ok(0) };
        // unflushed bytes all live in the active segment (rolls fsync
        // the closed file), so the durable prefix is len − unflushed
        let synced = seg.len.saturating_sub(self.gate.unflushed());
        let unflushed = seg.len - synced;
        let keep = synced + if unflushed == 0 { 0 } else { entropy % (unflushed + 1) };
        let torn = seg.len - keep;
        if torn > 0 {
            let f = OpenOptions::new().write(true).open(seg_path(&self.dir, seg.base))?;
            f.set_len(keep)?;
            f.sync_data()?;
        }
        Ok(torn)
    }

    /// Bytes of the active segment not yet known to be fsynced.
    pub fn unflushed_bytes(&self) -> u64 {
        if self.segments.is_empty() {
            return 0;
        }
        self.gate.unflushed()
    }
}

impl Drop for PartitionStore {
    fn drop(&mut self) {
        // graceful close: whatever reached the file gets fsynced and the
        // active segment's advisory index entries are flushed, so a
        // clean shutdown loses nothing under any flush policy. A
        // power-lost store is left exactly as the outage tore it.
        if !self.needs_recovery {
            if let Some(seg) = self.segments.last_mut() {
                if let Some(b) = seg.builder.as_mut() {
                    let _ = b.flush();
                }
            }
            let _ = self.sync();
        }
    }
}
// ---------------------------------------------------------------------------
// offset checkpoints
// ---------------------------------------------------------------------------

/// One committed offset in a checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OffsetEntry {
    /// Consumer group id.
    pub group: String,
    /// Topic name.
    pub topic: String,
    /// Partition id.
    pub partition: u32,
    /// Next offset the group will consume.
    pub offset: u64,
}

/// One producer-id registration in a checkpoint file: the controller's
/// durable record that `name` holds `pid` at `epoch`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProducerCkptEntry {
    /// Stable client identity (transactional id / client id).
    pub name: String,
    /// Assigned producer id.
    pub pid: u64,
    /// Fencing epoch; a re-registration bumps it and fences the old one.
    pub epoch: u32,
}

/// Idempotent-producer state carried inside the offset checkpoint so pid
/// assignments and fencing epochs survive cold restarts even when
/// `octopus-zoo` state is gone. Dedup windows are deliberately NOT
/// persisted here: the leader's log is the authority and windows are
/// rebuilt by the recovery scan.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProducerCheckpoint {
    /// Next pid the allocator would hand out.
    pub next_pid: u64,
    /// Every known registration.
    pub producers: Vec<ProducerCkptEntry>,
}

/// Versioned checkpoint body (v2). v1 files were a bare
/// `Vec<OffsetEntry>`; `read_file` still accepts them.
#[derive(Serialize, Deserialize)]
struct CheckpointBody {
    version: u32,
    offsets: Vec<OffsetEntry>,
    producers: ProducerCheckpoint,
}

type ProducerSource = Box<dyn Fn() -> ProducerCheckpoint + Send + Sync>;

/// Periodic, atomically-replaced snapshot of every committed group
/// offset (the durable half of the group coordinator), plus the
/// idempotent-producer registry.
///
/// Format: 4-byte little-endian CRC32C over the JSON body, then the
/// body. Written to a temp file and renamed into place, so a crash
/// mid-write leaves the previous checkpoint intact; a corrupt or
/// missing file restores to "no offsets" (consumers re-read, which
/// at-least-once delivery already permits).
pub struct OffsetCheckpoint {
    path: PathBuf,
    every: u64,
    metrics: StoreMetrics,
    pending: Mutex<u64>,
    io: Mutex<()>,
    restored_producers: Mutex<ProducerCheckpoint>,
    producer_source: Mutex<Option<ProducerSource>>,
}

impl std::fmt::Debug for OffsetCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OffsetCheckpoint")
            .field("path", &self.path)
            .field("every", &self.every)
            .finish()
    }
}

impl OffsetCheckpoint {
    /// Open a checkpoint at `path`, writing every `every` commits
    /// (clamped to ≥ 1). Returns the checkpoint and whatever offsets the
    /// previous incarnation persisted.
    pub fn open(path: impl Into<PathBuf>, every: u64, metrics: StoreMetrics) -> (Self, Vec<OffsetEntry>) {
        let path = path.into();
        let (restored, producers) = Self::read_file(&path).unwrap_or_default();
        metrics.checkpoint_offsets_restored.add(restored.len() as u64);
        let ckpt = OffsetCheckpoint {
            path,
            every: every.max(1),
            metrics,
            pending: Mutex::new(0),
            io: Mutex::new(()),
            restored_producers: Mutex::new(producers),
            producer_source: Mutex::new(None),
        };
        (ckpt, restored)
    }

    fn read_file(path: &Path) -> Option<(Vec<OffsetEntry>, ProducerCheckpoint)> {
        let bytes = fs::read(path).ok()?;
        if bytes.len() < 4 {
            return None;
        }
        let crc = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
        let body = &bytes[4..];
        if crc32c(body) != crc {
            return None;
        }
        if let Ok(v2) = serde_json::from_slice::<CheckpointBody>(body) {
            return Some((v2.offsets, v2.producers));
        }
        // v1 files were a bare offsets array.
        let legacy: Vec<OffsetEntry> = serde_json::from_slice(body).ok()?;
        Some((legacy, ProducerCheckpoint::default()))
    }

    /// Producer registry restored from disk at open. Consumed once by the
    /// cluster builder; later calls return the default (empty) state.
    pub fn take_restored_producers(&self) -> ProducerCheckpoint {
        std::mem::take(&mut self.restored_producers.lock())
    }

    /// Install the callback that supplies the live producer registry for
    /// every subsequent snapshot write.
    pub fn set_producer_source(&self, source: impl Fn() -> ProducerCheckpoint + Send + Sync + 'static) {
        *self.producer_source.lock() = Some(Box::new(source));
    }

    /// Record that a commit happened; every `every`-th commit persists
    /// the full snapshot. Write failures are swallowed (checkpoints are
    /// an optimisation over replaying the log, never a correctness
    /// dependency for acks).
    pub fn note_commit(&self, entries: &[OffsetEntry]) {
        let fire = {
            let mut pending = self.pending.lock();
            *pending += 1;
            if *pending >= self.every {
                *pending = 0;
                true
            } else {
                false
            }
        };
        if fire {
            let _ = self.write_now(entries);
        }
    }

    /// Persist a snapshot immediately (graceful shutdown / flush-all).
    pub fn write_now(&self, entries: &[OffsetEntry]) -> OctoResult<()> {
        let _serialized = self.io.lock();
        let producers = match &*self.producer_source.lock() {
            Some(source) => source(),
            None => ProducerCheckpoint::default(),
        };
        let body = serde_json::to_vec(&CheckpointBody {
            version: 2,
            offsets: entries.to_vec(),
            producers,
        })?;
        let mut out = Vec::with_capacity(body.len() + 4);
        out.extend_from_slice(&crc32c(&body).to_le_bytes());
        out.extend_from_slice(&body);
        let tmp = self.path.with_extension("ckpt.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&out)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &self.path)?;
        self.metrics.checkpoints_written.inc();
        Ok(())
    }

    /// The file this checkpoint persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---------------------------------------------------------------------------
// tempdir helper (tests / benches / examples)
// ---------------------------------------------------------------------------

/// A self-deleting scratch directory under the system temp dir.
///
/// Every durable test, bench, and example in the workspace roots its
/// data dir here so CI can assert nothing leaks outside `$TMPDIR`
/// (`scripts/ci.sh` greps for stray `octopus-data-*` directories).
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `$TMPDIR/<prefix>-<pid>-<seq>`.
    pub fn new(prefix: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "{prefix}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(offset: Offset, value: &[u8], key: Option<&[u8]>) -> Record {
        let mut r = Record {
            offset,
            append_time: Timestamp::from_millis(offset * 10),
            key: key.map(Bytes::copy_from_slice),
            value: Bytes::copy_from_slice(value),
            headers: vec![Header { key: "h".into(), value: b"v".to_vec() }],
            producer_time: Timestamp::from_millis(offset * 10),
            crc: 0,
            eos: None,
        };
        r.crc = r.compute_crc();
        r
    }

    fn metrics() -> StoreMetrics {
        StoreMetrics::new(&MetricsRegistry::new())
    }

    #[test]
    fn frame_roundtrip_preserves_every_field() {
        for r in [rec(0, b"hello", Some(b"k")), rec(7, b"", None), rec(9, &[0xff; 100], Some(b""))]
        {
            let mut buf = Vec::new();
            encode_frame(&r, &mut buf);
            assert_eq!(buf[0], FRAME_MAGIC);
            let (frames, records, len) = scan_bytes(&buf, None);
            assert_eq!(len as usize, buf.len());
            assert_eq!(frames.len(), 1);
            assert_eq!(records, vec![r]);
        }
    }

    #[test]
    fn eos_stamped_frames_roundtrip_and_plain_frames_still_decode() {
        let mut stamped = rec(3, b"payload", Some(b"k"));
        stamped.eos = Some(RecordEos {
            pid: 42,
            epoch: 7,
            seq: 1001,
            txn: true,
            control: Some(ControlMarker::Abort),
        });
        let mut plain_then_stamped = Vec::new();
        encode_frame(&rec(2, b"old", None), &mut plain_then_stamped);
        encode_frame(&stamped, &mut plain_then_stamped);
        let (_, records, len) = scan_bytes(&plain_then_stamped, None);
        assert_eq!(len as usize, plain_then_stamped.len());
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].eos, None);
        assert_eq!(records[1], stamped);
        // non-abort control and non-txn data stamps survive too
        for control in [None, Some(ControlMarker::Commit)] {
            let mut r = rec(0, b"x", None);
            r.eos = Some(RecordEos { pid: 1, epoch: 0, seq: 9, txn: false, control });
            let mut buf = Vec::new();
            encode_frame(&r, &mut buf);
            let (_, recs, _) = scan_bytes(&buf, None);
            assert_eq!(recs, vec![r]);
        }
    }

    #[test]
    fn scan_stops_at_frame_crc_mismatch() {
        let mut buf = Vec::new();
        encode_frame(&rec(0, b"aaaa", None), &mut buf);
        let good = buf.len();
        encode_frame(&rec(1, b"bbbb", None), &mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 0x01; // corrupt second frame's payload
        let (_, records, len) = scan_bytes(&buf, None);
        assert_eq!(records.len(), 1);
        assert_eq!(len as usize, good);
    }

    #[test]
    fn scan_enforces_offset_monotonicity() {
        let mut buf = Vec::new();
        encode_frame(&rec(5, b"a", None), &mut buf);
        encode_frame(&rec(5, b"b", None), &mut buf); // duplicate offset
        let (_, records, _) = scan_bytes(&buf, None);
        assert_eq!(records.len(), 1);
        // and a prior segment's last offset carries in from the caller
        let mut buf2 = Vec::new();
        encode_frame(&rec(5, b"a", None), &mut buf2);
        let (_, none, _) = scan_bytes(&buf2, Some(9));
        assert!(none.is_empty());
    }

    #[test]
    fn store_append_sync_reopen_roundtrip() {
        let tmp = TempDir::new("octopus-data");
        let dir = tmp.path().join("p0");
        {
            let (mut store, recovered, _) =
                PartitionStore::open(&dir, FlushPolicy::PerBatch, metrics()).unwrap();
            assert!(recovered.is_empty());
            for i in 0..5u64 {
                store.append(&rec(i, format!("v{i}").as_bytes(), None), 0).unwrap();
            }
            store.commit_batch().unwrap();
            assert_eq!(store.unflushed_bytes(), 0);
        }
        let (_, recovered, stats) =
            PartitionStore::open(&dir, FlushPolicy::PerBatch, metrics()).unwrap();
        assert_eq!(stats.records_recovered, 5);
        assert_eq!(stats.bytes_truncated, 0);
        assert_eq!(recovered.len(), 1);
        let records = recovered[0].resident().expect("active tail is resident");
        assert_eq!(records.len(), 5);
        assert_eq!(&records[4].value[..], b"v4");
    }

    #[test]
    fn group_commit_shares_one_fsync_across_tickets() {
        let tmp = TempDir::new("octopus-data");
        let dir = tmp.path().join("p0");
        let m = metrics();
        let (mut store, _, _) =
            PartitionStore::open(&dir, FlushPolicy::PerBatch, m.clone()).unwrap();
        store.append(&rec(0, b"a", None), 0).unwrap();
        let t0 = store.commit_batch_ticket().unwrap().expect("unsynced bytes pending");
        store.append(&rec(1, b"b", None), 0).unwrap();
        let t1 = store.commit_batch_ticket().unwrap().expect("unsynced bytes pending");
        let before = m.flush_count();
        t1.wait().unwrap(); // one fsync covering both batches
        t0.wait().unwrap(); // rides the fsync t1 already issued
        assert_eq!(m.flush_count() - before, 1);
        assert_eq!(store.unflushed_bytes(), 0);
        // fully covered: nothing left to wait for
        assert!(store.commit_batch_ticket().unwrap().is_none());
    }

    #[test]
    fn tickets_are_settled_by_segment_rolls() {
        let tmp = TempDir::new("octopus-data");
        let dir = tmp.path().join("p0");
        let m = metrics();
        let (mut store, _, _) =
            PartitionStore::open(&dir, FlushPolicy::PerBatch, m.clone()).unwrap();
        store.append(&rec(0, b"first", None), 0).unwrap();
        let t = store.commit_batch_ticket().unwrap().expect("unsynced bytes pending");
        // rolling to a new segment fsyncs the closed file, covering the
        // ticket without a second fsync
        store.append(&rec(1, b"second", None), 1).unwrap();
        let after_roll = m.flush_count();
        t.wait().unwrap();
        assert_eq!(m.flush_count(), after_roll);
    }

    #[test]
    fn non_perbatch_policies_issue_no_tickets() {
        let tmp = TempDir::new("octopus-data");
        let dir = tmp.path().join("p0");
        let (mut store, _, _) =
            PartitionStore::open(&dir, FlushPolicy::OsManaged, metrics()).unwrap();
        store.append(&rec(0, b"x", None), 0).unwrap();
        assert!(store.commit_batch_ticket().unwrap().is_none());
        assert!(store.unflushed_bytes() > 0);
    }

    #[test]
    fn power_loss_never_tears_synced_prefix() {
        let tmp = TempDir::new("octopus-data");
        let dir = tmp.path().join("p0");
        let (mut store, _, _) =
            PartitionStore::open(&dir, FlushPolicy::OsManaged, metrics()).unwrap();
        store.append(&rec(0, b"durable", None), 0).unwrap();
        store.sync().unwrap();
        store.append(&rec(1, b"at-risk", None), 0).unwrap();
        let torn = store.power_loss(0xDEAD_BEEF).unwrap();
        assert!(store.append(&rec(2, b"x", None), 0).is_err(), "poisoned until recover");
        let (recovered, stats) = store.recover().unwrap();
        let records = recovered[0].resident().expect("active tail is resident");
        assert!(records.iter().any(|r| &r.value[..] == b"durable"));
        if torn > 0 {
            assert_eq!(stats.records_recovered, 1);
        }
    }

    #[test]
    fn checkpoint_roundtrip_and_corruption_safety() {
        let tmp = TempDir::new("octopus-data");
        let path = tmp.path().join("offsets.ckpt");
        let entries = vec![
            OffsetEntry { group: "g".into(), topic: "t".into(), partition: 0, offset: 41 },
            OffsetEntry { group: "g".into(), topic: "t".into(), partition: 1, offset: 7 },
        ];
        let (ckpt, restored) = OffsetCheckpoint::open(&path, 1, metrics());
        assert!(restored.is_empty());
        ckpt.note_commit(&entries);
        let (_, restored) = OffsetCheckpoint::open(&path, 1, metrics());
        assert_eq!(restored, entries);
        // corrupt the body: restore degrades to empty, never to garbage
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let (_, restored) = OffsetCheckpoint::open(&path, 1, metrics());
        assert!(restored.is_empty());
    }

    #[test]
    fn checkpoint_persists_and_restores_producer_registry() {
        let tmp = TempDir::new("octopus-data");
        let path = tmp.path().join("offsets.ckpt");
        let producers = ProducerCheckpoint {
            next_pid: 3,
            producers: vec![
                ProducerCkptEntry { name: "txn-a".into(), pid: 1, epoch: 4 },
                ProducerCkptEntry { name: "client-b".into(), pid: 2, epoch: 0 },
            ],
        };
        let offsets =
            vec![OffsetEntry { group: "g".into(), topic: "t".into(), partition: 0, offset: 5 }];
        {
            let (ckpt, _) = OffsetCheckpoint::open(&path, 1, metrics());
            let snapshot = producers.clone();
            ckpt.set_producer_source(move || snapshot.clone());
            ckpt.write_now(&offsets).unwrap();
        }
        let (ckpt, restored_offsets) = OffsetCheckpoint::open(&path, 1, metrics());
        assert_eq!(restored_offsets, offsets);
        assert_eq!(ckpt.take_restored_producers(), producers);
        // take is a one-shot: subsequent calls see the default
        assert_eq!(ckpt.take_restored_producers(), ProducerCheckpoint::default());
    }

    #[test]
    fn checkpoint_reads_legacy_v1_offsets_array() {
        let tmp = TempDir::new("octopus-data");
        let path = tmp.path().join("offsets.ckpt");
        let entries =
            vec![OffsetEntry { group: "g".into(), topic: "t".into(), partition: 2, offset: 11 }];
        let body = serde_json::to_vec(&entries).unwrap();
        let mut out = crc32c(&body).to_le_bytes().to_vec();
        out.extend_from_slice(&body);
        fs::write(&path, &out).unwrap();
        let (ckpt, restored) = OffsetCheckpoint::open(&path, 1, metrics());
        assert_eq!(restored, entries);
        assert_eq!(ckpt.take_restored_producers(), ProducerCheckpoint::default());
    }

    #[test]
    fn checkpoint_cadence_batches_writes() {
        let tmp = TempDir::new("octopus-data");
        let path = tmp.path().join("offsets.ckpt");
        let (ckpt, _) = OffsetCheckpoint::open(&path, 3, metrics());
        let e = vec![OffsetEntry { group: "g".into(), topic: "t".into(), partition: 0, offset: 1 }];
        ckpt.note_commit(&e);
        ckpt.note_commit(&e);
        assert!(!path.exists(), "not yet at cadence");
        ckpt.note_commit(&e);
        assert!(path.exists());
    }

    /// An Lz4 store with `count` records per segment across `segs`
    /// segments, committed and synced.
    fn filled_store(
        dir: &Path,
        opts: StoreOptions,
        segs: u64,
        per_seg: u64,
    ) -> (PartitionStore, StoreMetrics) {
        let m = metrics();
        let (mut store, _, _) =
            PartitionStore::open_with(dir, FlushPolicy::PerBatch, m.clone(), opts).unwrap();
        for s in 0..segs {
            let base = s * per_seg;
            let batch: Vec<Record> = (0..per_seg)
                .map(|i| rec(base + i, format!("value-{}", base + i).repeat(8).as_bytes(), None))
                .collect();
            store.append_batch(&batch, base).unwrap();
        }
        store.commit_batch().unwrap();
        (store, m)
    }

    #[test]
    fn compressed_batches_roundtrip_across_reopen() {
        let tmp = TempDir::new("octopus-data");
        let dir = tmp.path().join("p0");
        let opts = StoreOptions { compression: Compression::Lz4, ..StoreOptions::default() };
        let (store, m) = filled_store(&dir, opts.clone(), 2, 50);
        assert!(m.compressed_batch_count() >= 1, "batches were compressed");
        assert!(
            m.compressed_stored_bytes_total() < m.compressed_raw_bytes_total(),
            "repetitive payloads must shrink on disk"
        );
        let records = store.read_records(0, usize::MAX, SeekMode::Indexed).unwrap();
        assert_eq!(records.len(), 100);
        assert_eq!(&records[73].value[..8], b"value-73");
        drop(store);
        let (_, recovered, stats) =
            PartitionStore::open_with(&dir, FlushPolicy::PerBatch, metrics(), opts).unwrap();
        assert_eq!(stats.records_recovered, 100, "no loss across reopen");
        let total: u64 = recovered.iter().map(|s| s.record_count()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn reopen_skips_sealed_segments_via_footers() {
        let tmp = TempDir::new("octopus-data");
        let dir = tmp.path().join("p0");
        let opts = StoreOptions::default();
        let (store, _) = filled_store(&dir, opts.clone(), 3, 10);
        drop(store);
        let m = metrics();
        let (_, recovered, stats) =
            PartitionStore::open_with(&dir, FlushPolicy::PerBatch, m.clone(), opts).unwrap();
        assert_eq!(recovered.len(), 3);
        assert_eq!(stats.segments_sealed, 2, "both sealed segments adopted from footers");
        assert_eq!(stats.segments_scanned, 1, "only the active tail is fully scanned");
        assert!(m.sealed_skip_count() >= 2);
        assert_eq!(stats.records_recovered, 30);
        // sealed segments come back lazy; their data loads on demand
        assert!(recovered[0].resident().is_none());
        match &recovered[0] {
            RecoveredSegment::Sealed(lazy) => assert_eq!(lazy.records().unwrap().len(), 10),
            RecoveredSegment::Resident { .. } => panic!("sealed segment adopted resident"),
        }
    }

    #[test]
    fn deleted_or_corrupt_index_is_rebuilt_without_data_loss() {
        let tmp = TempDir::new("octopus-data");
        let dir = tmp.path().join("p0");
        let opts = StoreOptions { compression: Compression::Lz4, ..StoreOptions::default() };
        let (store, _) = filled_store(&dir, opts.clone(), 3, 10);
        drop(store);
        // delete one sealed index, corrupt another
        fs::remove_file(index::index_path(&dir, 0)).unwrap();
        let idx1 = index::index_path(&dir, 10);
        let mut bytes = fs::read(&idx1).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&idx1, &bytes).unwrap();
        let m = metrics();
        let (store, _, stats) =
            PartitionStore::open_with(&dir, FlushPolicy::PerBatch, m.clone(), opts).unwrap();
        assert_eq!(stats.records_recovered, 30, "full-scan fallback loses nothing");
        assert!(m.index_rebuild_count() >= 2, "both damaged indexes rebuilt");
        // the rebuilt indexes serve seeks again
        let records = store.read_records(17, usize::MAX, SeekMode::Indexed).unwrap();
        assert_eq!(records.first().map(|r| r.offset), Some(17));
        assert_eq!(records.len(), 13);
    }

    #[test]
    fn cold_offload_and_hydration_roundtrip() {
        let tmp = TempDir::new("octopus-data");
        let cold_dir = TempDir::new("octopus-cold");
        let dir = tmp.path().join("p0");
        let opts = StoreOptions {
            cold: Some(Arc::new(crate::tier::FsColdStore::new(cold_dir.path()))),
            ..StoreOptions::default()
        };
        let (mut store, m) = filled_store(&dir, opts, 3, 10);
        assert_eq!(store.offload_now().unwrap(), 2, "both sealed segments offload");
        assert_eq!(m.tier_offload_count(), 2);
        assert!(!seg_path(&dir, 0).exists(), "cold data file left the hot dir");
        assert!(dir.join(format!("{:020}.tier", 0)).exists(), "tier marker in its place");
        assert!(index::index_path(&dir, 0).exists(), "index stays hot");
        // reads through the cold range hydrate transparently
        let records = store.read_records(3, 10, SeekMode::Indexed).unwrap();
        assert_eq!(records.first().map(|r| r.offset), Some(3));
        assert_eq!(records.len(), 10);
        assert!(m.tier_hydration_count() >= 1);
        assert!(seg_path(&dir, 0).exists(), "hydration restored the data file");
        // idempotent: re-reading the now-hot segment hydrates nothing new
        let before = m.tier_hydration_count();
        let again = store.read_records(3, 10, SeekMode::Indexed).unwrap();
        assert_eq!(again, records);
        assert_eq!(m.tier_hydration_count(), before);
    }

    #[test]
    fn indexed_reads_match_linear_scan() {
        let tmp = TempDir::new("octopus-data");
        let dir = tmp.path().join("p0");
        let opts = StoreOptions {
            index_interval_bytes: 256,
            compression: Compression::Lz4,
            ..StoreOptions::default()
        };
        let (store, _) = filled_store(&dir, opts, 4, 25);
        for from in [0, 1, 24, 25, 26, 50, 73, 99, 100, 250] {
            for max in [1, 7, usize::MAX] {
                let indexed = store.read_records(from, max, SeekMode::Indexed).unwrap();
                let linear = store.read_records(from, max, SeekMode::LinearScan).unwrap();
                assert_eq!(indexed, linear, "seek modes diverged at from={from} max={max}");
            }
        }
    }

    #[test]
    fn truncate_lands_inside_a_compressed_batch() {
        let tmp = TempDir::new("octopus-data");
        let dir = tmp.path().join("p0");
        let opts = StoreOptions { compression: Compression::Lz4, ..StoreOptions::default() };
        let (mut store, _) = filled_store(&dir, opts.clone(), 1, 10);
        // offset 5 cuts the single 10-record batch frame in half
        store.truncate_to(5).unwrap();
        let records = store.read_records(0, usize::MAX, SeekMode::Indexed).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(records.last().map(|r| r.offset), Some(4));
        // survivors stay appendable and durable across reopen
        store.append(&rec(5, b"after-cut", None), 0).unwrap();
        store.commit_batch().unwrap();
        drop(store);
        let (_, _, stats) =
            PartitionStore::open_with(&dir, FlushPolicy::PerBatch, metrics(), opts).unwrap();
        assert_eq!(stats.records_recovered, 6);
        assert_eq!(stats.bytes_truncated, 0, "the re-framed file is clean");
    }

    #[test]
    fn tempdir_cleans_up_after_itself() {
        let path = {
            let tmp = TempDir::new("octopus-data");
            assert!(tmp.path().exists());
            tmp.path().to_path_buf()
        };
        assert!(!path.exists());
    }
}
