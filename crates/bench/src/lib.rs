//! Shared helpers for the benchmark harness binaries.
//!
//! Each binary under `src/bin/` regenerates one of the paper's tables
//! or figures (see DESIGN.md §3 for the index); this library holds the
//! ASCII table/plot plumbing they share.

use octopus_types::{RegistrySnapshot, Stage};

/// Format a count with K/M suffixes, as the paper prints throughputs.
pub fn human_rate(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.0} K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Render a horizontal ASCII bar of `value` against `max` in `width`
/// columns.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Print a figure header in a consistent style.
pub fn figure_header(title: &str, caption: &str) {
    println!("{}", "=".repeat(74));
    println!("{title}");
    println!("{caption}");
    println!("{}", "=".repeat(74));
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Render the per-stage latency breakdown of a registry snapshot as an
/// aligned ASCII table (count, p50, p99, mean, max — milliseconds).
/// Stages with no samples are omitted; an all-empty registry yields a
/// one-line note instead of a bare header.
pub fn stage_table(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>9} {:>10} {:>10} {:>10} {:>10}\n",
        "stage", "count", "p50 ms", "p99 ms", "mean ms", "max ms"
    ));
    let mut any = false;
    for stage in Stage::ALL {
        let Some(h) = snap.histograms.get(stage.metric_name()) else { continue };
        if h.count() == 0 {
            continue;
        }
        any = true;
        out.push_str(&format!(
            "{:<14} {:>9} {:>10.3} {:>10.3} {:>10.3} {:>10.3}\n",
            stage.label(),
            h.count(),
            ms(h.median()),
            ms(h.p99()),
            h.mean() / 1e6,
            ms(h.max()),
        ));
    }
    if !any {
        out.push_str("(no stage samples recorded)\n");
    }
    for note in &snap.annotations {
        out.push_str(&format!("note: {note}\n"));
    }
    out
}

/// Write a result artifact into the repo's `results/` directory
/// (resolved relative to this crate, so it works from any cwd) and
/// return the path written.
pub fn write_result(name: &str, content: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    std::fs::write(&path, content)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_types::MetricsRegistry;

    #[test]
    fn rates() {
        assert_eq!(human_rate(4_289_000.0), "4.29 M");
        assert_eq!(human_rate(195_000.0), "195 K");
        assert_eq!(human_rate(42.0), "42");
    }

    #[test]
    fn bars() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########"); // clamped
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn stage_table_renders_only_populated_stages() {
        let registry = MetricsRegistry::shared();
        let stages = octopus_types::StageMetrics::new(registry.clone());
        stages.record(Stage::Append, 1_000_000);
        stages.record(Stage::Append, 3_000_000);
        let mut snap = registry.snapshot();
        snap.annotate("window under test");
        let table = stage_table(&snap);
        assert!(table.contains("append"));
        assert!(!table.contains("trigger_run"), "empty stages omitted");
        assert!(table.contains("note: window under test"));
    }

    #[test]
    fn stage_table_empty_registry_says_so() {
        let snap = MetricsRegistry::shared().snapshot();
        assert!(stage_table(&snap).contains("no stage samples"));
    }
}
