//! Sparse per-segment offset and time indexes.
//!
//! Kafka pairs every segment with two sidecar files; this module is the
//! same design scaled to the workspace. For a segment `<base>.seg`:
//!
//! * `<base>.index` — offset index: `(relative_offset: u32,
//!   file_position: u32)` entries, one per `index_interval_bytes` of
//!   segment data, each pointing at a *frame boundary*. A fetch binary
//!   searches these to land within one interval of the target offset
//!   instead of decoding from the segment head.
//! * `<base>.timeindex` — time index: `(timestamp_ms: u64,
//!   relative_offset: u32)` entries with non-decreasing timestamps,
//!   appended in lock-step with offset entries, for
//!   consume-after-timestamp seeks (§IV-F).
//!
//! Entries for the *active* segment are appended as data is appended —
//! buffered writes, no fsync; the index is advisory until sealed. When
//! a segment rolls, a CRC'd **footer** is appended to each file and
//! fsynced. The footer carries everything recovery needs to adopt the
//! segment without reading its data file (record count, data length,
//! last offset, logical bytes, max timestamp, EOS-stamped count), so a
//! reopen only pays a full CRC scan for the active tail. A missing or
//! corrupt index is never trusted and never fatal: recovery falls back
//! to the full scan and rewrites both files from the data
//! (`octopus_store_index_rebuilds_total`).

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use octopus_types::{OctoResult, Offset};

use crate::record::crc32c;

/// Default spacing between offset-index entries (bytes of segment data).
pub const DEFAULT_INDEX_INTERVAL_BYTES: u64 = 4096;

/// Footer magic for `<base>.index` (version baked into the last byte).
const OFFSET_FOOTER_MAGIC: &[u8; 8] = b"OIDXSEA1";
/// Footer magic for `<base>.timeindex`.
const TIME_FOOTER_MAGIC: &[u8; 8] = b"OTIXSEA1";
/// magic + entry_count u32 + 6×u64 stats + crc u32.
const OFFSET_FOOTER_LEN: usize = 8 + 4 + 6 * 8 + 4;
/// magic + entry_count u32 + crc u32.
const TIME_FOOTER_LEN: usize = 8 + 4 + 4;
const OFFSET_ENTRY_LEN: usize = 8;
const TIME_ENTRY_LEN: usize = 12;

/// One offset-index entry: the record at `base + rel` starts a frame at
/// byte `pos` of the data file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Offset relative to the segment base.
    pub rel: u32,
    /// Byte position of the frame start within the data file.
    pub pos: u32,
}

/// One time-index entry: some record at or after `base + rel` has
/// append time `ts_ms` (timestamps are non-decreasing across entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeEntry {
    /// Append timestamp in milliseconds.
    pub ts_ms: u64,
    /// Offset relative to the segment base.
    pub rel: u32,
}

/// Everything a sealed segment's footer certifies, plus the decoded
/// index entries. Shared between the store (seek path) and the log
/// (lazy cold segments).
#[derive(Debug)]
pub struct SealedMeta {
    /// Segment base offset.
    pub base: Offset,
    /// Exact length of the data file in bytes.
    pub data_len: u64,
    /// Records in the segment.
    pub record_count: u64,
    /// Offset of the last record.
    pub last_offset: Offset,
    /// Sum of the records' logical (in-memory wire) sizes — what the
    /// log counts toward retention, distinct from on-disk bytes once
    /// compression is on.
    pub logical_bytes: u64,
    /// Greatest append timestamp, in milliseconds.
    pub max_ts_ms: u64,
    /// Records carrying an EOS trailer (lets the dedup/txn rebuild skip
    /// cold segments that provably hold none).
    pub eos_count: u64,
    /// Sparse offset index.
    pub entries: Vec<IndexEntry>,
    /// Sparse time index (empty if `<base>.timeindex` was invalid —
    /// the offset index alone is enough to serve fetches).
    pub time_entries: Vec<TimeEntry>,
}

impl SealedMeta {
    /// Greatest indexed frame position at or before `offset` (0 when
    /// the offset precedes the first entry: decode from the head, at
    /// most one interval away).
    pub fn seek_pos(&self, offset: Offset) -> u64 {
        if offset < self.base {
            return 0;
        }
        let rel = (offset - self.base).min(u32::MAX as u64) as u32;
        let idx = self.entries.partition_point(|e| e.rel <= rel);
        if idx == 0 {
            0
        } else {
            self.entries[idx - 1].pos as u64
        }
    }
}

/// Path of the offset index sidecar.
pub(crate) fn index_path(dir: &Path, base: Offset) -> PathBuf {
    dir.join(format!("{base:020}.index"))
}

/// Path of the time index sidecar.
pub(crate) fn timeindex_path(dir: &Path, base: Offset) -> PathBuf {
    dir.join(format!("{base:020}.timeindex"))
}

/// Delete both sidecars (segment removed, or rebuild from scratch).
pub(crate) fn remove_index_files(dir: &Path, base: Offset) {
    let _ = fs::remove_file(index_path(dir, base));
    let _ = fs::remove_file(timeindex_path(dir, base));
}

fn entry_bytes(entries: &[IndexEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * OFFSET_ENTRY_LEN);
    for e in entries {
        out.extend_from_slice(&e.rel.to_le_bytes());
        out.extend_from_slice(&e.pos.to_le_bytes());
    }
    out
}

fn time_entry_bytes(entries: &[TimeEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * TIME_ENTRY_LEN);
    for e in entries {
        out.extend_from_slice(&e.ts_ms.to_le_bytes());
        out.extend_from_slice(&e.rel.to_le_bytes());
    }
    out
}

/// Builds the sidecar indexes for the active segment, accumulating the
/// stats the seal footer will certify. Entries are written through to
/// the `.index`/`.timeindex` files as they are produced (no fsync —
/// the active index is advisory and rebuilt on recovery anyway).
#[derive(Debug)]
pub(crate) struct IndexBuilder {
    dir: PathBuf,
    base: Offset,
    interval: u64,
    entries: Vec<IndexEntry>,
    time_entries: Vec<TimeEntry>,
    /// Data bytes accumulated since the last entry; primed to the
    /// interval so the very first frame gets an entry at position 0.
    bytes_since_entry: u64,
    record_count: u64,
    last_offset: Offset,
    logical_bytes: u64,
    max_ts_ms: u64,
    eos_count: u64,
    file: Option<File>,
    tfile: Option<File>,
}

impl IndexBuilder {
    /// Fresh builder for a new (or about-to-be-rebuilt) segment. Any
    /// existing sidecar content is discarded on the first entry write.
    pub(crate) fn new(dir: &Path, base: Offset, interval: u64) -> Self {
        let interval = interval.max(1);
        IndexBuilder {
            dir: dir.to_path_buf(),
            base,
            interval,
            entries: Vec::new(),
            time_entries: Vec::new(),
            bytes_since_entry: interval,
            record_count: 0,
            last_offset: base,
            logical_bytes: 0,
            max_ts_ms: 0,
            eos_count: 0,
            file: None,
            tfile: None,
        }
    }

    /// Account one appended frame (a single record or a compressed
    /// batch) starting at byte `pos` of the data file.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_frame(
        &mut self,
        first: Offset,
        last: Offset,
        count: u64,
        pos: u64,
        frame_len: u64,
        logical: u64,
        max_ts_ms: u64,
        eos: u64,
    ) -> OctoResult<()> {
        if self.bytes_since_entry >= self.interval {
            let rel = (first - self.base).min(u32::MAX as u64) as u32;
            let entry = IndexEntry { rel, pos: pos.min(u32::MAX as u64) as u32 };
            let bytes = entry_bytes(std::slice::from_ref(&entry));
            if self.file.is_none() {
                self.file = Some(File::create(index_path(&self.dir, self.base))?);
            }
            self.file.as_mut().expect("just opened").write_all(&bytes)?;
            self.entries.push(entry);
            // time entries ride the offset-entry cadence; the file must
            // stay sorted by timestamp, so stalls/regressions are skipped
            if max_ts_ms >= self.max_ts_ms
                && self.time_entries.last().map(|t| max_ts_ms > t.ts_ms).unwrap_or(true)
            {
                let tentry = TimeEntry { ts_ms: max_ts_ms, rel };
                let tbytes = time_entry_bytes(std::slice::from_ref(&tentry));
                if self.tfile.is_none() {
                    self.tfile = Some(File::create(timeindex_path(&self.dir, self.base))?);
                }
                self.tfile.as_mut().expect("just opened").write_all(&tbytes)?;
                self.time_entries.push(tentry);
            }
            self.bytes_since_entry = 0;
        }
        self.bytes_since_entry += frame_len;
        self.record_count += count;
        self.last_offset = last;
        self.logical_bytes += logical;
        self.max_ts_ms = self.max_ts_ms.max(max_ts_ms);
        self.eos_count += eos;
        Ok(())
    }

    /// Greatest indexed frame position at or before `offset` (active-
    /// segment seeks).
    pub(crate) fn seek_pos(&self, offset: Offset) -> u64 {
        if offset < self.base || self.entries.is_empty() {
            return 0;
        }
        let rel = (offset - self.base).min(u32::MAX as u64) as u32;
        let idx = self.entries.partition_point(|e| e.rel <= rel);
        if idx == 0 {
            0
        } else {
            self.entries[idx - 1].pos as u64
        }
    }

    /// Seal the segment: append the CRC'd footers, fsync both sidecars,
    /// and return the certified metadata. `data_len` is the exact data
    /// file length the footer vouches for.
    pub(crate) fn seal(mut self, data_len: u64) -> OctoResult<Arc<SealedMeta>> {
        // offset index: entries (already on disk) + footer
        let ebytes = entry_bytes(&self.entries);
        let mut footer = Vec::with_capacity(OFFSET_FOOTER_LEN);
        footer.extend_from_slice(OFFSET_FOOTER_MAGIC);
        footer.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        footer.extend_from_slice(&self.record_count.to_le_bytes());
        footer.extend_from_slice(&data_len.to_le_bytes());
        footer.extend_from_slice(&self.last_offset.to_le_bytes());
        footer.extend_from_slice(&self.logical_bytes.to_le_bytes());
        footer.extend_from_slice(&self.max_ts_ms.to_le_bytes());
        footer.extend_from_slice(&self.eos_count.to_le_bytes());
        let mut crc_input = ebytes.clone();
        crc_input.extend_from_slice(&footer);
        footer.extend_from_slice(&crc32c(&crc_input).to_le_bytes());
        // rewrite entries + footer whole (the incremental handle may not
        // exist, and a rewrite keeps the file canonical byte-for-byte)
        drop(self.file.take());
        let path = index_path(&self.dir, self.base);
        let mut f = File::create(&path)?;
        f.write_all(&ebytes)?;
        f.write_all(&footer)?;
        f.sync_data()?;

        // time index
        let tbytes = time_entry_bytes(&self.time_entries);
        let mut tfooter = Vec::with_capacity(TIME_FOOTER_LEN);
        tfooter.extend_from_slice(TIME_FOOTER_MAGIC);
        tfooter.extend_from_slice(&(self.time_entries.len() as u32).to_le_bytes());
        let mut tcrc_input = tbytes.clone();
        tcrc_input.extend_from_slice(&tfooter);
        tfooter.extend_from_slice(&crc32c(&tcrc_input).to_le_bytes());
        drop(self.tfile.take());
        let tpath = timeindex_path(&self.dir, self.base);
        let mut tf = File::create(&tpath)?;
        tf.write_all(&tbytes)?;
        tf.write_all(&tfooter)?;
        tf.sync_data()?;

        Ok(Arc::new(SealedMeta {
            base: self.base,
            data_len,
            record_count: self.record_count,
            last_offset: self.last_offset,
            logical_bytes: self.logical_bytes,
            max_ts_ms: self.max_ts_ms,
            eos_count: self.eos_count,
            entries: std::mem::take(&mut self.entries),
            time_entries: std::mem::take(&mut self.time_entries),
        }))
    }

    /// Flush buffered entry writes (crash-consistency is not the goal —
    /// recovery rebuilds the active index — but a graceful close should
    /// leave the advisory entries readable).
    pub(crate) fn flush(&mut self) -> OctoResult<()> {
        if let Some(f) = self.file.as_mut() {
            f.flush()?;
        }
        if let Some(f) = self.tfile.as_mut() {
            f.flush()?;
        }
        Ok(())
    }
}

/// Read and validate a sealed offset index (and its time index).
/// `None` on any structural or CRC mismatch — the caller falls back to
/// a full data scan.
pub(crate) fn read_sealed(dir: &Path, base: Offset) -> Option<Arc<SealedMeta>> {
    let bytes = fs::read(index_path(dir, base)).ok()?;
    if bytes.len() < OFFSET_FOOTER_LEN {
        return None;
    }
    let fstart = bytes.len() - OFFSET_FOOTER_LEN;
    let footer = &bytes[fstart..];
    if &footer[..8] != OFFSET_FOOTER_MAGIC {
        return None;
    }
    let crc = u32::from_le_bytes(footer[OFFSET_FOOTER_LEN - 4..].try_into().expect("4 bytes"));
    if crc32c(&bytes[..bytes.len() - 4]) != crc {
        return None;
    }
    let entry_count = u32::from_le_bytes(footer[8..12].try_into().expect("4 bytes")) as usize;
    if entry_count * OFFSET_ENTRY_LEN != fstart {
        return None;
    }
    let mut at = 12;
    let mut u64_field = |f: &[u8]| {
        let v = u64::from_le_bytes(f[at..at + 8].try_into().expect("8 bytes"));
        at += 8;
        v
    };
    let record_count = u64_field(footer);
    let data_len = u64_field(footer);
    let last_offset = u64_field(footer);
    let logical_bytes = u64_field(footer);
    let max_ts_ms = u64_field(footer);
    let eos_count = u64_field(footer);
    if record_count == 0 || last_offset < base {
        return None;
    }
    let mut entries = Vec::with_capacity(entry_count);
    let mut prev: Option<IndexEntry> = None;
    for chunk in bytes[..fstart].chunks_exact(OFFSET_ENTRY_LEN) {
        let e = IndexEntry {
            rel: u32::from_le_bytes(chunk[..4].try_into().expect("4 bytes")),
            pos: u32::from_le_bytes(chunk[4..].try_into().expect("4 bytes")),
        };
        // entries must be sorted for binary search and in-bounds
        if let Some(p) = prev {
            if e.rel <= p.rel || e.pos <= p.pos {
                return None;
            }
        }
        if e.pos as u64 >= data_len {
            return None;
        }
        entries.push(e);
        prev = Some(e);
    }
    let time_entries = read_time_index(dir, base).unwrap_or_default();
    Some(Arc::new(SealedMeta {
        base,
        data_len,
        record_count,
        last_offset,
        logical_bytes,
        max_ts_ms,
        eos_count,
        entries,
        time_entries,
    }))
}

fn read_time_index(dir: &Path, base: Offset) -> Option<Vec<TimeEntry>> {
    let bytes = fs::read(timeindex_path(dir, base)).ok()?;
    if bytes.len() < TIME_FOOTER_LEN {
        return None;
    }
    let fstart = bytes.len() - TIME_FOOTER_LEN;
    let footer = &bytes[fstart..];
    if &footer[..8] != TIME_FOOTER_MAGIC {
        return None;
    }
    let crc = u32::from_le_bytes(footer[TIME_FOOTER_LEN - 4..].try_into().expect("4 bytes"));
    if crc32c(&bytes[..bytes.len() - 4]) != crc {
        return None;
    }
    let entry_count = u32::from_le_bytes(footer[8..12].try_into().expect("4 bytes")) as usize;
    if entry_count * TIME_ENTRY_LEN != fstart {
        return None;
    }
    let mut entries = Vec::with_capacity(entry_count);
    let mut prev_ts = 0u64;
    for chunk in bytes[..fstart].chunks_exact(TIME_ENTRY_LEN) {
        let e = TimeEntry {
            ts_ms: u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes")),
            rel: u32::from_le_bytes(chunk[8..].try_into().expect("4 bytes")),
        };
        if e.ts_ms < prev_ts {
            return None;
        }
        prev_ts = e.ts_ms;
        entries.push(e);
    }
    Some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TempDir;

    fn build(dir: &Path, interval: u64, frames: &[(u64, u64, u64)]) -> Arc<SealedMeta> {
        // frames: (first_offset, frame_len, ts)
        let mut b = IndexBuilder::new(dir, 100, interval);
        let mut pos = 0u64;
        for (first, len, ts) in frames {
            b.on_frame(*first, *first, 1, pos, *len, *len, *ts, 0).unwrap();
            pos += len;
        }
        b.seal(pos).unwrap()
    }

    #[test]
    fn seal_then_read_roundtrips_entries_and_stats() {
        let tmp = TempDir::new("octopus-data-idx");
        let frames: Vec<(u64, u64, u64)> =
            (0..40).map(|i| (100 + i, 64, 1000 + i * 10)).collect();
        let sealed = build(tmp.path(), 128, &frames);
        let read = read_sealed(tmp.path(), 100).expect("valid sealed index");
        assert_eq!(read.entries, sealed.entries);
        assert_eq!(read.time_entries, sealed.time_entries);
        assert_eq!(read.record_count, 40);
        assert_eq!(read.last_offset, 139);
        assert_eq!(read.data_len, 40 * 64);
        assert_eq!(read.max_ts_ms, 1000 + 39 * 10);
        // every ~128 bytes of 64-byte frames -> roughly every 2nd frame
        assert!(read.entries.len() >= 15, "{} entries", read.entries.len());
        assert!(read.time_entries.len() >= 15);
    }

    #[test]
    fn seek_pos_lands_at_or_before_target() {
        let tmp = TempDir::new("octopus-data-idx");
        let frames: Vec<(u64, u64, u64)> = (0..64).map(|i| (100 + i, 32, 0)).collect();
        let sealed = build(tmp.path(), 100, &frames);
        for target in 100..164u64 {
            let pos = sealed.seek_pos(target);
            // the frame at `pos` starts at offset base + (pos / 32)
            let frame_first = 100 + pos / 32;
            assert!(frame_first <= target, "seek overshot: {frame_first} > {target}");
            assert!(target - frame_first < 8, "seek too conservative at {target}: {pos}");
        }
        assert_eq!(sealed.seek_pos(5), 0, "before-base clamps to head");
    }

    #[test]
    fn corrupt_or_truncated_index_is_rejected_not_trusted() {
        let tmp = TempDir::new("octopus-data-idx");
        let frames: Vec<(u64, u64, u64)> = (0..16).map(|i| (100 + i, 64, i)).collect();
        build(tmp.path(), 64, &frames);
        let path = index_path(tmp.path(), 100);
        let good = fs::read(&path).unwrap();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            fs::write(&path, &bad).unwrap();
            assert!(read_sealed(tmp.path(), 100).is_none(), "flip at {i} accepted");
        }
        for cut in 0..good.len() {
            fs::write(&path, &good[..cut]).unwrap();
            assert!(read_sealed(tmp.path(), 100).is_none(), "cut at {cut} accepted");
        }
        fs::write(&path, &good).unwrap();
        assert!(read_sealed(tmp.path(), 100).is_some(), "pristine file rejected");
        // a bad timeindex degrades to empty time entries, not a scan
        let tpath = timeindex_path(tmp.path(), 100);
        let mut tbad = fs::read(&tpath).unwrap();
        let last = tbad.len() - 1;
        tbad[last] ^= 0xff;
        fs::write(&tpath, &tbad).unwrap();
        let meta = read_sealed(tmp.path(), 100).expect("offset index still valid");
        assert!(meta.time_entries.is_empty());
    }
}
