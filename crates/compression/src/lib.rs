//! An in-repo LZ4-style block codec for the Octopus storage engine.
//!
//! The paper's event fabric retains multi-GB topic histories (§IV-F);
//! keeping them cheap on disk needs per-batch compression, and the
//! workspace's substitution rule forbids external compression crates —
//! so this crate implements the codec from scratch. The format is
//! LZ4-flavoured: a stream of *sequences*, each a run of literals
//! followed by a back-reference copy into the already-decoded output.
//!
//! # Block format
//!
//! ```text
//! sequence := token [lit-ext]* literal* (offset: u16 LE) [match-ext]*
//! token    := (literal_len: 4 bits) << 4 | (match_len - 4: 4 bits)
//! ```
//!
//! A nibble value of 15 means "add the following extension bytes":
//! each `0xFF` extension byte adds 255, the first non-`0xFF` byte adds
//! its own value and terminates the run (the classic LZ4 length
//! encoding). The final sequence of a block carries literals only — it
//! ends at the last literal byte with no offset. Back-reference
//! offsets are 1..=65535 bytes into the decoded output; matches may
//! self-overlap (offset < match length), which is how runs compress.
//!
//! # Safety posture
//!
//! [`decompress`] is the decoder the broker runs against bytes read
//! back from disk (or hydrated from a cold tier), so it must never
//! panic and never allocate unboundedly: every read is bounds-checked,
//! the output is capped at the caller-declared `expected_len`, and any
//! structural violation returns a typed [`CodecError`] — mirroring the
//! panic-free posture of the wire-frame decoder (DESIGN.md §13).
//!
//! The compressor is a greedy hash-chain match finder: 4-byte prefixes
//! hash into a head table whose buckets chain back through earlier
//! occurrences, and each position takes the longest match found within
//! a bounded chain walk (no optimal parsing — this is the LZ4 speed
//! point, not the zstd ratio point).

use serde::{Deserialize, Serialize};

/// Whether (and how) a topic compresses record batches on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Compression {
    /// Frames are written uncompressed (the pre-PR-10 format).
    #[default]
    None,
    /// Batches are compressed with this crate's LZ4-style block codec.
    Lz4,
}

/// Typed decoder failures. The storage engine maps any of these to
/// "torn/corrupt frame" and truncates, exactly like a frame-CRC
/// mismatch — a hostile block can waste time, never memory or control
/// flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended inside a token, extension run, literal run, or
    /// offset field.
    Truncated,
    /// A back-reference points before the start of the output.
    BadOffset,
    /// A zero offset (the format has no valid encoding for it).
    ZeroOffset,
    /// Decoding produced more bytes than the declared length.
    OutputOverflow,
    /// Decoding finished with fewer bytes than the declared length.
    LengthMismatch {
        /// Bytes the caller declared.
        expected: usize,
        /// Bytes actually produced.
        got: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "compressed block truncated"),
            CodecError::BadOffset => write!(f, "back-reference before start of output"),
            CodecError::ZeroOffset => write!(f, "zero back-reference offset"),
            CodecError::OutputOverflow => write!(f, "decoded past declared length"),
            CodecError::LengthMismatch { expected, got } => {
                write!(f, "decoded {got} bytes, declared {expected}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

const MIN_MATCH: usize = 4;
/// Maximum back-reference distance (u16 offset field).
const MAX_OFFSET: usize = 65_535;
/// Hash-table buckets (4-byte prefixes hashed to 15 bits).
const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// How many chain links a position follows looking for a longer match.
/// Greedy + shallow chains is the LZ4 speed/ratio point.
const MAX_CHAIN: usize = 16;
/// The last bytes of a block are always emitted as literals (there is
/// no room for a match that the end-of-input checks would allow).
const TAIL_LITERALS: usize = 5;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    // Fibonacci hashing over the 4-byte little-endian prefix.
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

fn push_len(out: &mut Vec<u8>, mut n: usize) {
    while n >= 255 {
        out.push(0xFF);
        n -= 255;
    }
    out.push(n as u8);
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], match_len: usize, offset: usize) {
    let lit_nibble = literals.len().min(15);
    let match_nibble = if match_len == 0 { 0 } else { (match_len - MIN_MATCH).min(15) };
    out.push(((lit_nibble as u8) << 4) | match_nibble as u8);
    if lit_nibble == 15 {
        push_len(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    if match_len > 0 {
        out.extend_from_slice(&(offset as u16).to_le_bytes());
        if match_nibble == 15 {
            push_len(out, match_len - MIN_MATCH - 15);
        }
    }
}

/// Compress `src` into a fresh block. Incompressible input degrades to
/// one literal run with ~0.4% framing overhead, never an error.
pub fn compress(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 2 + 16);
    if src.len() < MIN_MATCH + TAIL_LITERALS {
        emit_sequence(&mut out, src, 0, 0);
        return out;
    }
    let mut head = vec![u32::MAX; HASH_SIZE];
    let mut prev = vec![u32::MAX; src.len()];
    let match_limit = src.len() - TAIL_LITERALS;
    let mut anchor = 0usize;
    let mut pos = 0usize;
    while pos < match_limit {
        let h = hash4(&src[pos..]);
        // hash-chain walk: longest match among the last MAX_CHAIN
        // occurrences of this 4-byte prefix within the offset window
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        let mut candidate = head[h];
        let mut depth = 0;
        while candidate != u32::MAX && depth < MAX_CHAIN {
            let cand = candidate as usize;
            if pos - cand > MAX_OFFSET {
                break; // chain only gets older from here
            }
            let limit = match_limit + TAIL_LITERALS - pos; // may run into the tail
            let mut len = 0usize;
            while len < limit && src[cand + len] == src[pos + len] {
                len += 1;
            }
            if len >= MIN_MATCH && len > best_len {
                best_len = len;
                best_off = pos - cand;
            }
            candidate = prev[cand];
            depth += 1;
        }
        prev[pos] = head[h];
        head[h] = pos as u32;
        if best_len == 0 {
            pos += 1;
            continue;
        }
        emit_sequence(&mut out, &src[anchor..pos], best_len, best_off);
        // index the positions the match skips so later matches can
        // reference into it (every other position keeps it cheap)
        let match_end = pos + best_len;
        let mut p = pos + 1;
        while p < match_end.min(match_limit) {
            let h = hash4(&src[p..]);
            prev[p] = head[h];
            head[h] = p as u32;
            p += 2;
        }
        pos = match_end;
        anchor = match_end;
    }
    emit_sequence(&mut out, &src[anchor..], 0, 0);
    out
}

/// Decompress a block produced by [`compress`]. `expected_len` is the
/// caller-declared decoded size (the storage frame header carries it):
/// the output allocation is exactly that, and a block decoding to any
/// other length is an error.
pub fn decompress(src: &[u8], expected_len: usize) -> Result<Vec<u8>, CodecError> {
    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    let mut pos = 0usize;
    // runs until the input is exhausted at a sequence boundary
    while let Some(&token) = src.get(pos) {
        pos += 1;
        // literal run
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            loop {
                let Some(&b) = src.get(pos) else { return Err(CodecError::Truncated) };
                pos += 1;
                lit_len += b as usize;
                if b != 0xFF {
                    break;
                }
            }
        }
        let lit_end = pos.checked_add(lit_len).ok_or(CodecError::Truncated)?;
        if lit_end > src.len() {
            return Err(CodecError::Truncated);
        }
        if out.len() + lit_len > expected_len {
            return Err(CodecError::OutputOverflow);
        }
        out.extend_from_slice(&src[pos..lit_end]);
        pos = lit_end;
        if pos == src.len() {
            // final sequence: literals only
            break;
        }
        // back-reference
        if pos + 2 > src.len() {
            return Err(CodecError::Truncated);
        }
        let offset = u16::from_le_bytes([src[pos], src[pos + 1]]) as usize;
        pos += 2;
        if offset == 0 {
            return Err(CodecError::ZeroOffset);
        }
        if offset > out.len() {
            return Err(CodecError::BadOffset);
        }
        let mut match_len = (token & 0x0F) as usize + MIN_MATCH;
        if match_len == 15 + MIN_MATCH {
            loop {
                let Some(&b) = src.get(pos) else { return Err(CodecError::Truncated) };
                pos += 1;
                match_len += b as usize;
                if b != 0xFF {
                    break;
                }
            }
        }
        if out.len() + match_len > expected_len {
            return Err(CodecError::OutputOverflow);
        }
        let start = out.len() - offset;
        if offset >= match_len {
            out.extend_from_within(start..start + match_len);
        } else {
            // self-overlapping copy (run expansion): byte at a time
            for i in 0..match_len {
                let b = out[start + i];
                out.push(b);
            }
        }
    }
    if out.len() != expected_len {
        return Err(CodecError::LengthMismatch { expected: expected_len, got: out.len() });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let block = compress(data);
        decompress(&block, data.len()).expect("roundtrip decode")
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(roundtrip(b""), b"");
        assert_eq!(roundtrip(b"a"), b"a");
        assert_eq!(roundtrip(b"abcdefg"), b"abcdefg");
    }

    #[test]
    fn repetitive_input_compresses() {
        let data: Vec<u8> = b"sensor-7:reading=42.00001;".repeat(200);
        let block = compress(&data);
        assert!(block.len() * 2 < data.len(), "{} vs {}", block.len(), data.len());
        assert_eq!(decompress(&block, data.len()).unwrap(), data);
    }

    #[test]
    fn run_of_one_byte_uses_overlapping_match() {
        let data = vec![0x5A; 10_000];
        let block = compress(&data);
        assert!(block.len() < 64, "run should collapse, got {} bytes", block.len());
        assert_eq!(decompress(&block, data.len()).unwrap(), data);
    }

    #[test]
    fn incompressible_input_survives_with_bounded_overhead() {
        // xorshift noise: no 4-byte prefix repeats usefully
        let mut x = 0x9E37_79B9_u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        let block = compress(&data);
        assert!(block.len() <= data.len() + data.len() / 128 + 16);
        assert_eq!(decompress(&block, data.len()).unwrap(), data);
    }

    #[test]
    fn json_like_payload_hits_2x() {
        let data: Vec<u8> = (0..500)
            .flat_map(|i| {
                format!(
                    "{{\"experiment\":\"aps-beamline\",\"sequence\":{i},\"detector\":\"pilatus\",\"value\":{}}}",
                    i * 3
                )
                .into_bytes()
            })
            .collect();
        let block = compress(&data);
        assert!(
            block.len() * 2 <= data.len(),
            "json-like ratio below 2x: {} -> {}",
            data.len(),
            block.len()
        );
        assert_eq!(decompress(&block, data.len()).unwrap(), data);
    }

    #[test]
    fn wrong_declared_length_is_typed_error() {
        let block = compress(b"hello world, hello world, hello world");
        assert!(matches!(
            decompress(&block, 5),
            Err(CodecError::OutputOverflow) | Err(CodecError::LengthMismatch { .. })
        ));
        assert!(matches!(
            decompress(&block, 10_000),
            Err(CodecError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn truncated_block_is_typed_error_not_panic() {
        let data: Vec<u8> = b"abcabcabcabcabcabc-tail-literal-bytes".to_vec();
        let block = compress(&data);
        for cut in 0..block.len() {
            match decompress(&block[..cut], data.len()) {
                Ok(out) => assert_ne!(out, data, "cut {cut} cannot decode to the full input"),
                Err(_) => {} // typed error is the expected outcome
            }
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let data: Vec<u8> = (0u16..2000).flat_map(|i| i.to_le_bytes()).collect();
        let block = compress(&data);
        for i in 0..block.len() {
            for bit in [0x01u8, 0x10, 0x80] {
                let mut bad = block.clone();
                bad[i] ^= bit;
                // must return: Ok with different bytes, or a typed error
                let _ = decompress(&bad, data.len());
            }
        }
    }

    #[test]
    fn hostile_offset_rejected() {
        // token: 0 literals, match of 4; offset 9 with empty output
        let bad = [0x00u8, 0x09, 0x00];
        assert_eq!(decompress(&bad, 4), Err(CodecError::BadOffset));
        let zero = [0x00u8, 0x00, 0x00];
        assert_eq!(decompress(&zero, 4), Err(CodecError::ZeroOffset));
    }
}
