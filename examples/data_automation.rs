//! Scientific data automation (§VI-B): the hierarchical EDA of Fig. 6
//! (left) — FSMon tails a parallel filesystem into a local topic, the
//! aggregator forwards important unique events to the cloud fabric, and
//! an Octopus trigger (Listing 1's pattern) replicates each new file via
//! the transfer service. Prints a Fig. 7-style activity timeline.
//!
//! Run with: `cargo run --example data_automation`

use octopus::apps::DataAutomationPipeline;
use octopus::prelude::*;

fn main() -> OctoResult<()> {
    // the edge cluster next to the filesystem, and the cloud fabric
    let local = Cluster::new(2);
    let cloud = Cluster::new(2);
    let mut pipeline = DataAutomationPipeline::new(local, cloud, 7)?;

    println!("minute | fs events | cloud events | trigger invocations | transfers");
    for minute in 0..10u64 {
        let s = pipeline.step(minute * 60_000)?;
        println!(
            "{:>6} | {:>9} | {:>12} | {:>19} | {:>9}",
            minute, s.monitor_events, s.cloud_events, s.trigger_invocations, s.transfers
        );
    }

    println!(
        "\nhierarchical reduction factor: {:.1}x (raw FS events per cloud event)",
        pipeline.reduction_factor()
    );
    let transfers = pipeline.transfers();
    println!("transfers submitted: {}", transfers.len());
    let sample = &transfers[0];
    println!("  e.g. {} -> {} ({} bytes)", sample.source, sample.destination, sample.bytes);
    assert!(pipeline.reduction_factor() > 1.5);
    println!("\ndata_automation OK");
    Ok(())
}
