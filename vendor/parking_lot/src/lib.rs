//! Hermetic stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the subset of the real crate's API this workspace uses:
//! [`Mutex`] and [`RwLock`] whose lock methods do not return poison
//! errors (a panic while holding the lock simply clears the poison on
//! the next acquisition, matching parking_lot's no-poisoning model).

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock wrapping `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: lock still usable
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
