//! Regenerates **Fig. 8**: Parsl workflow monitoring overhead per event
//! using the stock HTEX central-database monitor vs the Octopus
//! async-batched monitor. 128 tasks, workers 1..64, task duration 0,
//! 10, and 100 ms.
//!
//! `cargo run --release -p octopus-bench --bin fig8 [-- quick]`
//! (`quick` trims worker counts for a fast run)

use octopus_bench::figure_header;
use octopus_flow::experiments::MonitorKind;
use octopus_flow::fig8;

fn main() {
    let quick = std::env::args().nth(1).as_deref() == Some("quick");
    let workers: &[usize] = if quick { &[1, 4, 16, 64] } else { &[1, 2, 4, 8, 16, 32, 64] };
    let durations: &[u64] = if quick { &[0, 10] } else { &[0, 10, 100] };
    figure_header(
        "FIG. 8 — Parsl monitoring overhead per event (HTEX-DB vs Octopus)",
        "128 real tasks per cell; overhead = (makespan - ideal) / events",
    );
    let rows = fig8(workers, durations);
    for &d in durations {
        println!("\ntask duration {d} ms:");
        println!("{:>8} {:>16} {:>16} {:>8}", "workers", "htex-db us/ev", "octopus us/ev", "ratio");
        for &w in workers {
            let db = rows
                .iter()
                .find(|r| r.monitor == MonitorKind::HtexDb && r.workers == w && r.task_ms == d)
                .expect("cell");
            let oc = rows
                .iter()
                .find(|r| r.monitor == MonitorKind::Octopus && r.workers == w && r.task_ms == d)
                .expect("cell");
            println!(
                "{:>8} {:>16.1} {:>16.1} {:>7.1}x",
                w,
                db.overhead_us_per_event,
                oc.overhead_us_per_event,
                db.overhead_us_per_event / oc.overhead_us_per_event.max(0.01)
            );
        }
    }
    println!("\nreading: per-event overhead falls as workers (and thus event rate) grow —");
    println!("'the relatively static cost of writing events to a database' amortizes — and");
    println!("Octopus stays below HTEX-DB thanks to batched, asynchronous publication.");
}
