//! Full-stack integration: login → OWS provisioning → credentials →
//! produce → trigger fires with delegated identity → action output.

use std::sync::Arc;

use parking_lot::Mutex;

use octopus::prelude::*;

#[test]
fn login_provision_publish_trigger_act() {
    let octo = Octopus::launch().unwrap();
    octo.register_user("alice@uchicago.edu", "pw").unwrap();
    let session = octo.login("alice@uchicago.edu", "pw").unwrap();

    // provision a topic and a DLQ via OWS
    session.client().register_topic("events", serde_json::json!({"partitions": 2})).unwrap();
    session.client().register_topic("events.dlq", serde_json::Value::Null).unwrap();

    // the trigger's action records what identity it acted as
    // (the "empowered" requirement: triggers act on behalf of users)
    let acted_as: Arc<Mutex<Vec<Uid>>> = Arc::new(Mutex::new(Vec::new()));
    let log = acted_as.clone();
    octo.registry().register("record-identity", move |ctx, batch| {
        for _ in batch {
            log.lock().push(ctx.acting_as);
        }
        Ok(())
    });
    session
        .client()
        .deploy_trigger(serde_json::json!({
            "name": "t",
            "topic": "events",
            "function": "record-identity",
            "pattern": {"event_type": ["created"]},
            "dlq_topic": "events.dlq",
        }))
        .unwrap();

    // publish through the authorized producer
    let producer = session.producer();
    for i in 0..6 {
        let ty = if i < 4 { "created" } else { "deleted" };
        producer
            .send("events", Event::from_json(&serde_json::json!({"event_type": ty})).unwrap())
            .unwrap();
    }
    producer.flush();

    octo.triggers().poll_once("t").unwrap();
    let identities = acted_as.lock().clone();
    assert_eq!(identities.len(), 4, "only created-events invoke the function");
    assert!(identities.iter().all(|id| *id == session.identity()), "acts as alice");

    let status = octo.triggers().status("t").unwrap();
    assert_eq!(status.events_processed, 4);
    assert_eq!(status.events_filtered, 2);
    assert_eq!(status.failures, 0);
}

#[test]
fn trigger_failure_dead_letters_into_user_visible_topic() {
    let octo = Octopus::launch().unwrap();
    octo.register_user("alice@uchicago.edu", "pw").unwrap();
    let session = octo.login("alice@uchicago.edu", "pw").unwrap();
    session.client().register_topic("in", serde_json::Value::Null).unwrap();
    session.client().register_topic("in.dlq", serde_json::Value::Null).unwrap();
    octo.registry().register("explode", |_ctx, _batch| Err("boom".into()));
    session
        .client()
        .deploy_trigger(serde_json::json!({
            "name": "exploder",
            "topic": "in",
            "function": "explode",
            "retries": 1,
            "dlq_topic": "in.dlq",
        }))
        .unwrap();
    let producer = session.producer();
    producer.send_sync("in", Event::from_bytes(&br#"{"x":1}"#[..])).unwrap();
    octo.triggers().poll_once("exploder").unwrap();

    // the poisoned event is waiting in the DLQ, consumable by the user
    let mut consumer = session.consumer("dlq-reader");
    consumer.subscribe(&["in.dlq"]).unwrap();
    let events = consumer.poll().unwrap();
    assert_eq!(events.len(), 1);
    let status = octo.triggers().status("exploder").unwrap();
    assert_eq!(status.dead_lettered, 1);
}

#[test]
fn delegation_lets_a_service_act_for_the_user() {
    use octopus::auth::Scope;
    let octo = Octopus::launch().unwrap();
    octo.register_user("alice@uchicago.edu", "pw").unwrap();
    let session = octo.login("alice@uchicago.edu", "pw").unwrap();

    // a downstream service (transfer-like) registered for delegation
    let transfer_scope = Scope::new("urn:transfer:all");
    let service = octo.auth().register_client("transfer-service", vec![transfer_scope.clone()]);
    let (dep_token, info) = octo
        .auth()
        .dependent_token(service.id, &service.secret, session.token(), vec![transfer_scope])
        .unwrap();
    assert!(info.delegated);
    assert_eq!(info.identity, session.identity(), "service acts as alice");
    assert_eq!(octo.auth().introspect(&dep_token).0, octopus::auth::TokenStatus::Active);
}
