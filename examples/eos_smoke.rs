//! Exactly-once chaos smoke: a durable deployment, an idempotent
//! producer, a read-committed consumer, and a fault plan built around
//! the two canonical duplicate/loss generators — ambiguous acks (the
//! append lands, the ack doesn't) and mid-stream power loss. The run
//! passes only if the strict invariant holds: **zero duplicates, zero
//! acked loss**.
//!
//! Run with: `cargo run --example eos_smoke`

use octopus::broker::{FlushPolicy, TempDir};
use octopus::chaos::{ChaosConfig, ChaosHarness, FaultKind, FaultPlan};

fn main() {
    let tmp = TempDir::new("octopus-data-eos-smoke");
    // Ambiguous acks sprayed across all three brokers (whichever is
    // leader consumes them), a power loss tearing real bytes off the
    // victim's unflushed tails, and a restart so recovery + dedup
    // rebuild run mid-traffic.
    let plan = FaultPlan::new(0xE05)
        .at(10, FaultKind::AmbiguousAck { broker: 0, count: 2 })
        .at(30, FaultKind::AmbiguousAck { broker: 1, count: 2 })
        .at(50, FaultKind::AmbiguousAck { broker: 2, count: 2 })
        .at(80, FaultKind::PowerLoss { broker: 1, entropy: 0xE05_E05 })
        .at(140, FaultKind::BrokerRestart { broker: 1 })
        .at(170, FaultKind::AmbiguousAck { broker: 0, count: 1 })
        .at(180, FaultKind::AmbiguousAck { broker: 2, count: 1 });

    let report = ChaosHarness::new(plan)
        .with_config(ChaosConfig {
            strict_eos: true,
            data_dir: Some(tmp.path().to_path_buf()),
            flush_policy: FlushPolicy::PerBatch,
            drain_timeout: std::time::Duration::from_secs(10),
            ..ChaosConfig::default()
        })
        .run();

    println!("executed {} faults:", report.trace.entries.len());
    for e in &report.trace.entries {
        println!("  t+{:>3}ms {:<15} {}", e.at.as_millis(), e.kind.label(), e.outcome);
    }
    println!(
        "acked {} at acks=all, delivered {} distinct / {} total ({} duplicates)",
        report.acked.len(),
        report.delivered_unique(),
        report.delivered.len(),
        report.duplicates(),
    );
    let dedup_answers = report
        .metrics
        .counters
        .get("octopus_producer_duplicate_acks_total")
        .copied()
        .unwrap_or(0);
    println!("broker answered {dedup_answers} retries from the dedup window");

    report.assert_invariants();
    assert_eq!(report.duplicates(), 0, "strict EOS: no duplicate deliveries");
    assert!(!report.acked.is_empty(), "producer made progress under chaos");
    println!("exactly-once held: no duplicates, no loss");
}
