#!/usr/bin/env bash
# Tier-1 CI gate: build, test, lint.
#
# Usage: scripts/ci.sh
# Runs from the repo root regardless of the caller's cwd.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --release -q"
cargo test --release -q

# Lint the crates introduced by the resilience work; the vendored
# stand-in crates and older crates are exempt until they are cleaned
# up separately.
echo "==> cargo clippy (chaos + types)"
cargo clippy --release --no-deps -p octopus-chaos -p octopus-types -- -D warnings

echo "==> ci green"
