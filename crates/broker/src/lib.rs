//! A Kafka-like event streaming fabric — the in-process equivalent of
//! the AWS MSK cluster that hosts the Octopus event fabric (§IV-A).
//!
//! The crate implements the abstractions the paper's evaluation
//! exercises:
//!
//! - [`record`]: records and batches with CRC32C integrity checks.
//! - [`log`]: segmented, append-only partition logs with offset and
//!   timestamp lookup, retention, and key-based compaction.
//! - [`config`]: topic configuration (partitions, replication factor,
//!   retention, compaction, `min.insync.replicas`).
//! - [`broker`]: a broker node hosting partition replicas.
//! - [`cluster`]: the multi-broker cluster: topic creation, partition
//!   leadership, synchronous ISR replication, acks=0/1/all semantics,
//!   leader failover, broker kill/restart injection, and per-topic ACL
//!   enforcement.
//! - [`group`]: consumer groups — join/leave, generation-numbered
//!   rebalances, range assignment, committed offsets (at-least-once).
//! - [`store`]: the durable storage engine — on-disk segmented logs
//!   with CRC-framed records, configurable flush policies, crash and
//!   power-loss recovery with torn-tail truncation, and committed-
//!   offset checkpoints.
//! - [`mirror`]: MirrorMaker-style cross-cluster topic replication
//!   (§IV-F geo-replication).
//! - [`eos`]: exactly-once semantics — producer-id allocation with
//!   epoch fencing, append-time sequence dedup, and the transaction
//!   coordinator behind read-committed consumption.
//!
//! Threading model: brokers are passive state guarded by per-partition
//! locks; clients drive them from any number of threads. This mirrors
//! Kafka's design point (partition = unit of parallelism) and is what
//! the Criterion benches in `octopus-bench` measure.

pub mod balance;
pub mod broker;
pub mod cluster;
pub mod config;
pub mod eos;
pub mod fault;
pub mod group;
pub mod health;
pub mod index;
pub mod lag;
pub mod log;
pub mod mirror;
pub mod reassign;
pub mod record;
mod replication;
pub mod store;
pub mod tier;

pub use balance::{AutoBalancer, BalanceReport, BalancerAction, BalancerConfig};
pub use broker::{Broker, BrokerId, LogHandle, SharedLog, StoreContext};
pub use reassign::{MoveThrottle, ReassignPhase, ReassignStatus, ReassignTracker};
pub use cluster::{
    AckLevel, Cluster, DurabilityInfo, PowerLossReport, ProduceReceipt, TopicStats,
};
pub use eos::{
    DedupTable, DedupVerdict, PidAllocator, ProducerIdentity, TxnCoordinator, TxnIndex, TxnOffset,
    TxnState, DEDUP_WINDOWS,
};
pub use cluster::key_partition;
pub use fault::{DeliveryFault, FaultInjector, SeverObserver};
pub use config::{CleanupPolicy, RetentionConfig, StorageSpec, TopicConfig};
pub use group::{GroupCoordinator, GroupMember, MemberAssignment};
pub use health::{
    BrokerHealth, BrokerLiveness, ClusterHealth, HealthReport, HealthStatus, HealthTransition,
    PartitionHealth, PartitionRef, PartitionView,
};
pub use lag::{LagReport, LagTracker, PartitionLag};
pub use log::{LogSnapshot, PartitionLog};
pub use mirror::{MirrorHandle, MirrorMaker};
pub use record::{crc32c, ControlMarker, Crc32c, ProducerStamp, Record, RecordBatch, RecordEos};
pub use index::SealedMeta;
pub use store::{
    FlushPolicy, LazySegment, OffsetCheckpoint, OffsetEntry, ProducerCheckpoint,
    ProducerCkptEntry, RecoveredSegment, RecoveredSegments, RecoveryStats, SeekMode, StoreMetrics,
    StoreOptions, SyncTicket, TempDir,
};
pub use tier::{ColdStore, FsColdStore, TierMarker};
pub use octopus_compression::Compression;
