//! The "cruise-control" auto-balancer (DESIGN.md §15): a policy loop
//! that reads the cluster's own health and lag signals, detects skew,
//! under-replication, and permanently-lost brokers, and schedules
//! bounded-concurrency, bandwidth-throttled reassignments to heal them.
//!
//! The balancer is deliberately passive-by-default: nothing runs until
//! the operator (or a drill harness) calls [`AutoBalancer::run_once`],
//! which computes one plan and applies it. Driving it from a timer
//! thread is the caller's choice — chaos drills call it explicitly so
//! runs are deterministic.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::broker::BrokerId;
use crate::cluster::Cluster;
use crate::health::HealthStatus;
use crate::reassign::MoveThrottle;
use octopus_types::PartitionId;

/// Tuning knobs for the balancer policy.
#[derive(Debug, Clone)]
pub struct BalancerConfig {
    /// Reassignments applied concurrently (each on its own thread,
    /// all sharing one throttle bucket).
    pub max_concurrent_moves: usize,
    /// At most this many actions per `run_once` round.
    pub max_moves_per_round: usize,
    /// Catch-up bandwidth cap shared by every move of a round.
    pub throttle_bytes_per_sec: u64,
    /// A broker is "overloaded" when it hosts this many more replicas
    /// than the least-loaded active broker.
    pub replica_skew_tolerance: usize,
    /// Leadership skew tolerated before `MoveLeader` actions fire.
    pub leader_skew_tolerance: usize,
    /// Replace replicas living on *dead* (not just retired) brokers.
    /// Rolling restarts should disable this or simply not run the
    /// balancer mid-restart; permanent-loss drills rely on it.
    pub replace_dead: bool,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            max_concurrent_moves: 3,
            max_moves_per_round: 16,
            throttle_bytes_per_sec: u64::MAX,
            replica_skew_tolerance: 2,
            leader_skew_tolerance: 2,
            replace_dead: true,
        }
    }
}

/// One healing or balancing step the planner proposes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BalancerAction {
    /// Re-replicate a partition whose replica lives on a dead or
    /// retired broker onto a healthy one (restores rf after permanent
    /// broker loss).
    ReplaceDeadReplica {
        /// Topic to heal.
        topic: String,
        /// Partition to heal.
        partition: PartitionId,
        /// The lost replica's broker.
        from: u32,
        /// The healthy broker gaining the replica.
        to: u32,
    },
    /// Move a replica from an overloaded broker to an underloaded one.
    MoveReplica {
        /// Topic to move.
        topic: String,
        /// Partition to move.
        partition: PartitionId,
        /// Overloaded broker.
        from: u32,
        /// Underloaded broker.
        to: u32,
    },
    /// Shift leadership (cheap — no data copies) toward an underloaded
    /// broker that already holds an in-sync replica.
    MoveLeader {
        /// Topic whose leadership moves.
        topic: String,
        /// Partition whose leadership moves.
        partition: PartitionId,
        /// Broker taking leadership.
        to: u32,
    },
}

/// What a `run_once` round did.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BalanceReport {
    /// Actions the planner proposed this round.
    pub planned: Vec<BalancerAction>,
    /// How many applied successfully.
    pub applied: usize,
    /// Failures, as `"<action>: <error>"` strings. A failed move is
    /// safe: the epoch CAS aborted it and the learner was torn down.
    pub errors: Vec<String>,
    /// Cluster health after the round.
    pub health_after: Option<HealthStatus>,
}

/// The balancer: owns a cluster handle, a config, and the shared
/// throttle its moves ride.
pub struct AutoBalancer {
    cluster: Cluster,
    config: BalancerConfig,
    throttle: Arc<MoveThrottle>,
}

impl AutoBalancer {
    /// A balancer over `cluster` with `config`.
    pub fn new(cluster: Cluster, config: BalancerConfig) -> Self {
        let throttle = Arc::new(MoveThrottle::new(config.throttle_bytes_per_sec));
        AutoBalancer { cluster, config, throttle }
    }

    /// The shared throttle (tests inspect the configured rate).
    pub fn throttle(&self) -> &Arc<MoveThrottle> {
        &self.throttle
    }

    /// Compute one round's plan without applying anything. Healing
    /// actions (dead-replica replacement) come first, then replica
    /// balancing, then leadership balancing — the plan is truncated at
    /// `max_moves_per_round`, so healing always wins the budget.
    pub fn plan(&self) -> Vec<BalancerAction> {
        let c = &self.cluster;
        let mut actions = Vec::new();
        // broker states, indexed by id
        let mut broker_ok = Vec::new(); // usable as a move target
        for id in 0..c.broker_count() as u32 {
            let b = BrokerId(id);
            let alive = c
                .broker_alive(b)
                .unwrap_or(false);
            broker_ok.push(alive);
        }
        // projected replica counts per broker (kept current as the plan
        // grows, so one round spreads moves instead of piling them all
        // onto yesterday's least-loaded broker)
        let mut replica_load = vec![0usize; broker_ok.len()];
        let mut leader_load = vec![0usize; broker_ok.len()];
        // (topic, partition, replicas, leader, isr) per partition
        type PartitionAssignment = (String, PartitionId, Vec<BrokerId>, BrokerId, Vec<BrokerId>);
        let mut assignments: Vec<PartitionAssignment> = Vec::new();
        for topic in c.topics() {
            let Ok(n) = c.partition_count(&topic) else { continue };
            for p in 0..n {
                let Ok(replicas) = c.replicas_of(&topic, p) else { continue };
                let Ok(isr) = c.isr_of(&topic, p) else { continue };
                let Ok(leader) = c.leader_broker(&topic, p) else { continue };
                for r in &replicas {
                    replica_load[r.0 as usize] += 1;
                }
                leader_load[leader.0 as usize] += 1;
                assignments.push((topic.clone(), p, replicas, leader, isr));
            }
        }
        let pick_target = |replicas: &[BrokerId], load: &[usize], ok: &[bool]| -> Option<BrokerId> {
            (0..ok.len())
                .filter(|i| ok[*i] && !replicas.contains(&BrokerId(*i as u32)))
                .min_by_key(|i| load[*i])
                .map(|i| BrokerId(i as u32))
        };
        // 1. heal: replicas on retired/dead brokers
        for (topic, p, replicas, _, _) in &assignments {
            for r in replicas {
                let lost = !broker_ok.get(r.0 as usize).copied().unwrap_or(false);
                let retired = c.broker_retired(*r).unwrap_or(true);
                if retired || (self.config.replace_dead && lost) {
                    if let Some(to) = pick_target(replicas, &replica_load, &broker_ok) {
                        replica_load[r.0 as usize] =
                            replica_load[r.0 as usize].saturating_sub(1);
                        replica_load[to.0 as usize] += 1;
                        actions.push(BalancerAction::ReplaceDeadReplica {
                            topic: topic.clone(),
                            partition: *p,
                            from: r.0,
                            to: to.0,
                        });
                    }
                }
            }
        }
        // 2. balance replica counts across live brokers
        loop {
            let loaded: Vec<usize> =
                (0..broker_ok.len()).filter(|i| broker_ok[*i]).collect();
            if loaded.len() < 2 {
                break;
            }
            let &max_b = loaded.iter().max_by_key(|i| replica_load[**i]).unwrap();
            let &min_b = loaded.iter().min_by_key(|i| replica_load[**i]).unwrap();
            if replica_load[max_b] - replica_load[min_b] <= self.config.replica_skew_tolerance
                || actions.len() >= self.config.max_moves_per_round
            {
                break;
            }
            // find a partition on max_b whose replica can move to min_b
            let candidate = assignments.iter().find(|(t, p, replicas, _, _)| {
                replicas.contains(&BrokerId(max_b as u32))
                    && !replicas.contains(&BrokerId(min_b as u32))
                    && !actions.iter().any(|a| match a {
                        BalancerAction::ReplaceDeadReplica { topic, partition, .. }
                        | BalancerAction::MoveReplica { topic, partition, .. } => {
                            topic == t && *partition == *p
                        }
                        _ => false,
                    })
            });
            let Some((topic, p, _, _, _)) = candidate else { break };
            replica_load[max_b] -= 1;
            replica_load[min_b] += 1;
            actions.push(BalancerAction::MoveReplica {
                topic: topic.clone(),
                partition: *p,
                from: max_b as u32,
                to: min_b as u32,
            });
        }
        // 3. balance leadership (cheap, no data motion)
        for (topic, p, _, leader, isr) in &assignments {
            if actions.len() >= self.config.max_moves_per_round {
                break;
            }
            let loaded: Vec<usize> = (0..broker_ok.len()).filter(|i| broker_ok[*i]).collect();
            let Some(&min_b) = loaded.iter().min_by_key(|i| leader_load[**i]) else { continue };
            if leader_load[leader.0 as usize].saturating_sub(leader_load[min_b])
                <= self.config.leader_skew_tolerance
            {
                continue;
            }
            if isr.contains(&BrokerId(min_b as u32)) && min_b as u32 != leader.0 {
                leader_load[leader.0 as usize] -= 1;
                leader_load[min_b] += 1;
                actions.push(BalancerAction::MoveLeader {
                    topic: topic.clone(),
                    partition: *p,
                    to: min_b as u32,
                });
            }
        }
        actions.truncate(self.config.max_moves_per_round);
        actions
    }

    /// Plan one round and apply it with bounded concurrency. Data
    /// moves share the balancer's throttle; failures are collected,
    /// not fatal (a lost epoch CAS just means someone else healed the
    /// partition first).
    pub fn run_once(&self) -> BalanceReport {
        let planned = self.plan();
        let mut report = BalanceReport { planned: planned.clone(), ..Default::default() };
        let width = self.config.max_concurrent_moves.max(1);
        for window in planned.chunks(width) {
            let results: Vec<(String, Result<(), String>)> = std::thread::scope(|s| {
                let handles: Vec<_> = window
                    .iter()
                    .map(|action| {
                        let cluster = self.cluster.clone();
                        let throttle = Arc::clone(&self.throttle);
                        s.spawn(move || {
                            let label = format!("{action:?}");
                            let r = match action {
                                BalancerAction::ReplaceDeadReplica { topic, partition, from, to }
                                | BalancerAction::MoveReplica { topic, partition, from, to } => {
                                    cluster
                                        .alter_partition_assignment(
                                            topic,
                                            *partition,
                                            BrokerId(*from),
                                            BrokerId(*to),
                                            &throttle,
                                        )
                                        .map_err(|e| e.to_string())
                                }
                                BalancerAction::MoveLeader { topic, partition, to } => cluster
                                    .move_leader(topic, *partition, BrokerId(*to))
                                    .map_err(|e| e.to_string()),
                            };
                            (label, r)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("balancer move thread")).collect()
            });
            for (label, r) in results {
                match r {
                    Ok(()) => report.applied += 1,
                    Err(e) => report.errors.push(format!("{label}: {e}")),
                }
            }
        }
        report.health_after = Some(self.cluster.refresh_health("balancer_round").status);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::AckLevel;
    use crate::config::TopicConfig;
    use crate::record::RecordBatch;
    use octopus_types::Event;

    fn ev(s: &str) -> Event {
        Event::from_bytes(s.as_bytes().to_vec())
    }

    #[test]
    fn balancer_replaces_replicas_lost_with_a_broker() {
        let c = Cluster::new(3);
        c.create_topic("t", TopicConfig::default().with_partitions(3).with_replication(2))
            .unwrap();
        for i in 0..20 {
            c.produce_batch("t", i % 3, RecordBatch::new(vec![ev(&format!("{i}"))]), AckLevel::All)
                .unwrap();
        }
        c.kill_broker(BrokerId(0)).unwrap();
        // produces shrink the ISR off the dead broker
        for i in 0..3 {
            let _ = c.produce_batch("t", i, RecordBatch::new(vec![ev("x")]), AckLevel::Leader);
        }
        let bal = AutoBalancer::new(c.clone(), BalancerConfig::default());
        let report = bal.run_once();
        assert!(report.applied > 0, "balancer healed nothing: {report:?}");
        for p in 0..3 {
            let replicas = c.replicas_of("t", p).unwrap();
            assert!(
                !replicas.contains(&BrokerId(0)),
                "partition {p} still assigned to the dead broker: {replicas:?}"
            );
            assert_eq!(replicas.len(), 2, "rf restored for partition {p}");
            assert!(c.isr_of("t", p).unwrap().len() >= 2, "ISR healed for partition {p}");
        }
        // all data still there, served by the healed replicas
        for p in 0..3 {
            assert!(c.fetch("t", p, 0, 100).unwrap().len() >= 6);
        }
    }

    #[test]
    fn balancer_spreads_replicas_onto_a_new_broker() {
        let c = Cluster::new(2);
        c.create_topic("t", TopicConfig::default().with_partitions(6).with_replication(1))
            .unwrap();
        for p in 0..6 {
            c.produce_batch("t", p, RecordBatch::new(vec![ev("seed")]), AckLevel::Leader).unwrap();
        }
        let newcomer = c.add_broker().unwrap();
        assert_eq!(newcomer, BrokerId(2));
        let bal = AutoBalancer::new(
            c.clone(),
            BalancerConfig { replica_skew_tolerance: 0, ..Default::default() },
        );
        let report = bal.run_once();
        assert!(report.applied > 0, "no moves applied: {report:?}");
        let hosted: usize = (0..6)
            .filter(|p| c.replicas_of("t", *p).unwrap().contains(&newcomer))
            .count();
        assert!(hosted >= 1, "newcomer got no replicas");
        for p in 0..6 {
            assert_eq!(c.fetch("t", p, 0, 10).unwrap().len(), 1, "data survived the move");
        }
    }

    #[test]
    fn balanced_cluster_plans_nothing() {
        let c = Cluster::new(3);
        c.create_topic("t", TopicConfig::default().with_partitions(3).with_replication(2))
            .unwrap();
        let bal = AutoBalancer::new(c, BalancerConfig::default());
        assert!(bal.plan().is_empty(), "steady state must be a no-op");
    }

    #[test]
    fn failed_moves_are_reported_not_fatal() {
        let c = Cluster::new(2);
        c.create_topic("t", TopicConfig::default().with_partitions(1).with_replication(2))
            .unwrap();
        c.kill_broker(BrokerId(1)).unwrap();
        let _ = c.produce_batch("t", 0, RecordBatch::new(vec![ev("x")]), AckLevel::Leader);
        // dead replica, but no spare broker exists to take it
        let bal = AutoBalancer::new(c, BalancerConfig::default());
        let report = bal.run_once();
        assert_eq!(report.applied, 0);
        // nothing to plan (no target) — and nothing exploded
        assert!(report.errors.is_empty() || report.applied == 0);
    }
}
