//! The multi-broker cluster: topic management, partition routing,
//! leadership, ISR replication, acks semantics, failover, maintenance.
//!
//! This is the in-process analogue of the paper's MSK deployment. The
//! three testbed shapes of Table II map directly:
//! `Cluster::new(2)` (baseline), `Cluster::new(2)` on bigger hosts
//! (scale-up — a client-side concern here), and `Cluster::new(4)`
//! (scale-out).

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use octopus_auth::{AclStore, Permission};
use octopus_types::obs::{now_ns, Counter, MetricsRegistry, Stage, StageMetrics, TraceContext};
use octopus_types::{
    Clock, Event, OctoError, OctoResult, Offset, PartitionId, SlowRequestRing, SpanSink,
    Timestamp, TopicName, Uid,
    WallClock,
};
use octopus_zoo::{CreateMode, ZooService};

use crate::broker::{Broker, BrokerId, SharedLog, StoreContext};
use crate::config::TopicConfig;
use crate::eos::{
    DedupTable, DedupVerdict, PidAllocator, ProducerIdentity, TxnCoordinator, TxnIndex, TxnOffset,
};
use crate::fault::{DeliveryFault, FaultInjector};
use crate::group::GroupCoordinator;
use crate::health::{BrokerLiveness, ClusterHealth, HealthReport, PartitionView};
use crate::lag::{LagReport, LagTracker};
use crate::log::LogSnapshot;
use crate::reassign::{MoveThrottle, ReassignStatus, ReassignTracker};
use crate::record::{ControlMarker, ProducerStamp, Record, RecordBatch};
use crate::replication::{reply_channel, ReplicationJob, ReplicationPool};
use crate::store::{FlushPolicy, OffsetCheckpoint, StoreMetrics};

/// How many `try_recv` probes (each followed by a `yield_now`) the
/// produce path makes on the replication reply channel before parking
/// on a blocking `recv`. Yielding instead of spinning matters on small
/// machines: a spin would burn the core the executor needs to produce
/// the reply, while a yield hands it over and the probe usually
/// succeeds on the next timeslice. The bound is deliberately tiny:
/// when the machine is oversubscribed each yield can burn a full
/// scheduler slice running an unrelated thread, so after a few misses
/// parking on the condvar is strictly cheaper.
const REPLY_SPIN_LIMIT: u32 = 4;

/// How many times a produce re-resolves its route after discovering,
/// under the leader's log lock, that leadership moved between the
/// metadata snapshot and the lock acquisition (an online reassignment
/// or leadership transfer landed in the gap). One reroute per move is
/// enough in the steady state; the bound only stops a pathological
/// move storm from starving the producer forever.
const PRODUCE_REROUTE_LIMIT: usize = 8;

/// Records copied per throttled chunk while a reassignment learner
/// catches up. Small enough that the throttle granularity is fine
/// (bandwidth is enforced per chunk), large enough to amortise the
/// lock/snapshot overhead.
const CATCHUP_CHUNK: usize = 256;

/// How many times the reassignment commit step retries when the
/// partition leader moves between the catch-up loop and the commit
/// lock (e.g. a chaos kill mid-move elects a new leader).
const COMMIT_RETRY_LIMIT: usize = 4;

/// Producer acknowledgment level (the paper's `acks` knob, Table III
/// experiments #2–#4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AckLevel {
    /// `acks=0`: fire-and-forget. Failures are invisible to the caller.
    None,
    /// `acks=1`: the partition leader has appended.
    #[default]
    Leader,
    /// `acks=all`: every in-sync replica has appended, and the ISR is at
    /// least `min.insync.replicas` strong.
    All,
}

/// Per-topic traffic counters (the CloudWatch-metrics analogue that the
/// use-case dashboards read).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopicStats {
    /// Events appended.
    pub events_in: u64,
    /// Payload bytes appended.
    pub bytes_in: u64,
    /// Events fetched (egress — the §VII-C billable dimension).
    pub events_out: u64,
    /// Payload bytes fetched.
    pub bytes_out: u64,
}

/// Live cells behind [`TopicStats`]: produce/fetch bump these with
/// relaxed atomics under the stats map's *read* lock, so the hot path
/// never takes a writer-exclusive lock (the write lock is taken once
/// per topic, to insert the cells).
#[derive(Debug, Default)]
struct TopicStatsCells {
    events_in: AtomicU64,
    bytes_in: AtomicU64,
    events_out: AtomicU64,
    bytes_out: AtomicU64,
}

impl TopicStatsCells {
    fn load(&self) -> TopicStats {
        TopicStats {
            events_in: self.events_in.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            events_out: self.events_out.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// Cluster-wide registry counters, resolved once at build time so the
/// hot path records without name lookups.
struct ClusterCounters {
    events_in: Arc<Counter>,
    bytes_in: Arc<Counter>,
    events_out: Arc<Counter>,
    bytes_out: Arc<Counter>,
    failovers: Arc<Counter>,
}

impl ClusterCounters {
    fn new(registry: &MetricsRegistry) -> Self {
        ClusterCounters {
            events_in: registry.counter("octopus_broker_events_in_total"),
            bytes_in: registry.counter("octopus_broker_bytes_in_total"),
            events_out: registry.counter("octopus_broker_events_out_total"),
            bytes_out: registry.counter("octopus_broker_bytes_out_total"),
            failovers: registry.counter("octopus_broker_failovers_total"),
        }
    }
}

/// Result of a successful produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProduceReceipt {
    /// Partition the events landed in.
    pub partition: PartitionId,
    /// Offset of the first event of the batch.
    pub base_offset: Offset,
    /// Number of events appended.
    pub count: usize,
    /// False only under `acks=0` when the write was actually lost.
    pub persisted: bool,
    /// True when the broker recognised the batch as a retry it had
    /// already appended and acked the original offsets without
    /// re-appending (idempotent-producer dedup).
    pub deduplicated: bool,
}

#[derive(Debug, Clone)]
struct PartitionMeta {
    replicas: Vec<BrokerId>,
    leader: BrokerId,
    isr: Vec<BrokerId>,
    /// Assignment epoch, bumped on every committed replica-set change.
    /// Reassignments capture it at start and CAS it at commit, so a
    /// mover that stalled (or a crashed mover's retry) can never
    /// resurrect a stale assignment over a newer one.
    epoch: u64,
}

#[derive(Clone)]
struct TopicMeta {
    config: TopicConfig,
    partitions: Vec<PartitionMeta>,
}

/// The cluster's durability configuration (`GET /store` body).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DurabilityInfo {
    /// Root data directory partition logs persist under.
    pub data_dir: String,
    /// When appended records are fsynced.
    pub flush_policy: FlushPolicy,
    /// Committed-offset checkpoint cadence (every n-th commit).
    pub checkpoint_every: u64,
}

struct DurabilityState {
    info: DurabilityInfo,
    checkpoint: Arc<OffsetCheckpoint>,
}

/// What a [`Cluster::power_loss_broker`] injection tore off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowerLossReport {
    /// Partitions whose logs went through the outage.
    pub partitions: usize,
    /// Total bytes truncated from unflushed suffixes.
    pub bytes_torn: u64,
}

struct ClusterInner {
    /// The broker table. Grow-only (ids are stable indices); retired
    /// brokers keep their slot but never host replicas again. Guards
    /// are kept statement-scoped: nothing holds this lock while taking
    /// the topics lock the other way round (topics → brokers is the
    /// nesting used by failover and friends).
    brokers: RwLock<Vec<Arc<Broker>>>,
    /// Durable-store context, retained so brokers added at runtime
    /// persist under the same data dir as the founding members.
    store_ctx: Option<Arc<StoreContext>>,
    topics: RwLock<HashMap<TopicName, TopicMeta>>,
    stats: RwLock<HashMap<TopicName, Arc<TopicStatsCells>>>,
    groups: GroupCoordinator,
    acl: Option<AclStore>,
    zoo: Option<ZooService>,
    clock: Arc<dyn Clock>,
    round_robin: AtomicU64,
    fault: FaultInjector,
    obs: StageMetrics,
    counters: ClusterCounters,
    lag: Arc<LagTracker>,
    health: ClusterHealth,
    spans: Arc<SpanSink>,
    /// Slowest-N-per-api-key request ring, fed by the wire server and
    /// read by OWS `GET /wire/slow` — shared here because both front
    /// the same cluster from independent wiring.
    slow: Arc<SlowRequestRing>,
    durability: Option<DurabilityState>,
    /// Per-broker executors that run follower appends off the
    /// producing thread, so acks=all replication latency is the max
    /// over followers instead of the sum (DESIGN.md §11).
    replication: ReplicationPool,
    eos: EosState,
    /// Active and recently-completed partition reassignments, read by
    /// `DescribeReassignments` and the ops surfaces.
    reassign: ReassignTracker,
}

/// Exactly-once plumbing (DESIGN.md §12): pid registry, append-time
/// dedup windows, transactional metadata.
struct EosState {
    pids: PidAllocator,
    dedup: DedupTable,
    txn_index: TxnIndex,
    txns: TxnCoordinator,
    /// Next sequence per `(pid, topic, partition)` for cluster-level
    /// transactional produces (the SDK producer tracks its own).
    txn_seqs: Mutex<HashMap<(u64, TopicName, PartitionId), u64>>,
}

impl Default for EosState {
    fn default() -> Self {
        EosState {
            pids: PidAllocator::default(),
            dedup: DedupTable::default(),
            txn_index: TxnIndex::default(),
            txns: TxnCoordinator::default(),
            txn_seqs: Mutex::new(HashMap::new()),
        }
    }
}

/// A handle to the cluster. Clones share state; safe to use from many
/// threads.
#[derive(Clone)]
pub struct Cluster {
    inner: Arc<ClusterInner>,
}

impl Cluster {
    /// A cluster of `broker_count` brokers with no ACL enforcement and
    /// the wall clock.
    pub fn new(broker_count: usize) -> Self {
        Self::builder(broker_count).build()
    }

    /// Start building a cluster.
    pub fn builder(broker_count: usize) -> ClusterBuilder {
        ClusterBuilder {
            broker_count,
            acl: None,
            zoo: None,
            clock: Arc::new(WallClock),
            fault: None,
            metrics: None,
            spans: None,
            data_dir: None,
            flush_policy: FlushPolicy::PerBatch,
            checkpoint_every: 1,
        }
    }

    /// The durability configuration, if the cluster persists its logs.
    pub fn durability(&self) -> Option<DurabilityInfo> {
        self.inner.durability.as_ref().map(|d| d.info.clone())
    }

    /// The cluster's fault-injection switchboard (inert until armed by
    /// a chaos harness).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.inner.fault
    }

    /// The cluster's shared metrics registry. Producers, consumers,
    /// trigger runtimes, and bench harnesses all read/record here so
    /// one snapshot covers the whole event path.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        self.inner.obs.registry()
    }

    /// Pre-resolved per-stage latency histograms over [`Cluster::metrics`].
    pub fn stage_metrics(&self) -> &StageMetrics {
        &self.inner.obs
    }

    /// The cluster's span sink. Producer and consumer share it so one
    /// sampled event yields a complete produce→deliver span tree.
    pub fn span_sink(&self) -> &Arc<SpanSink> {
        &self.inner.spans
    }

    /// The consumer-lag tracker (fed by the append and commit paths).
    pub fn lag_tracker(&self) -> &Arc<LagTracker> {
        &self.inner.lag
    }

    /// The slow-request ring a fronting wire server records into
    /// (slowest N requests per api key, with correlation + trace ids).
    pub fn slow_ring(&self) -> &Arc<SlowRequestRing> {
        &self.inner.slow
    }

    /// Lag reports for every group that has committed offsets,
    /// sorted by group id — the rollup `DescribeHealth` ships.
    pub fn lag_reports(&self) -> Vec<LagReport> {
        let mut groups = self.inner.lag.groups();
        groups.sort();
        groups.iter().filter_map(|g| self.inner.lag.report(g)).collect()
    }

    /// Lag report for a consumer group, or `NotFound` if the group has
    /// never committed an offset.
    pub fn lag_report(&self, group: &str) -> OctoResult<LagReport> {
        self.inner
            .lag
            .report(group)
            .ok_or_else(|| OctoError::NotFound(format!("group {group} has no committed offsets")))
    }

    /// Re-classify cluster health from current metadata and return the
    /// report (the body of OWS `GET /health`).
    pub fn health_report(&self) -> HealthReport {
        self.refresh_health("probe")
    }

    /// Current Green/Yellow/Red rollup without recomputing.
    pub fn health_status(&self) -> crate::health::HealthStatus {
        self.inner.health.status()
    }

    /// Snapshot partition metadata and broker liveness, feed the health
    /// model, and publish the gauges. `reason` lands in the timeline
    /// when the status changes.
    pub fn refresh_health(&self, reason: &str) -> HealthReport {
        // retired (decommissioned) brokers are not members any more:
        // they must not pin the rollup Yellow forever
        let members: Vec<BrokerLiveness> = self
            .inner
            .brokers
            .read()
            .iter()
            .filter(|b| !b.is_retired())
            .map(|b| BrokerLiveness { id: b.id().0, alive: b.is_alive() })
            .collect();
        let views: Vec<PartitionView> = {
            let topics = self.inner.topics.read();
            let mut v: Vec<PartitionView> = topics
                .iter()
                .flat_map(|(name, meta)| {
                    meta.partitions.iter().enumerate().map(move |(p, pm)| PartitionView {
                        topic: name.clone(),
                        partition: p as u32,
                        replicas: pm.replicas.iter().map(|b| b.0).collect(),
                        isr: pm.isr.iter().map(|b| b.0).collect(),
                    })
                })
                .collect();
            v.sort_by(|a, b| (&a.topic, a.partition).cmp(&(&b.topic, b.partition)));
            v
        };
        self.inner.health.refresh(now_ns(), &members, &views, reason)
    }

    fn now(&self) -> Timestamp {
        self.inner.clock.now()
    }

    /// Number of broker slots ever allocated (alive, dead, or retired).
    pub fn broker_count(&self) -> usize {
        self.inner.brokers.read().len()
    }

    /// Number of live brokers.
    pub fn live_broker_count(&self) -> usize {
        self.inner.brokers.read().iter().filter(|b| b.is_alive()).count()
    }

    /// Whether a broker is alive. `NotFound` for ids never allocated.
    pub fn broker_alive(&self, id: BrokerId) -> OctoResult<bool> {
        Ok(self.broker_checked(id)?.is_alive())
    }

    /// Whether a broker has been decommissioned. `NotFound` for ids
    /// never allocated.
    pub fn broker_retired(&self, id: BrokerId) -> OctoResult<bool> {
        Ok(self.broker_checked(id)?.is_retired())
    }

    /// Number of active (non-retired) cluster members.
    pub fn active_broker_count(&self) -> usize {
        self.inner.brokers.read().iter().filter(|b| !b.is_retired()).count()
    }

    /// Clone one broker's handle by id, panicking on an out-of-range id
    /// (callers pass ids read from partition metadata, which only ever
    /// names real slots).
    pub(crate) fn broker_unchecked(&self, id: BrokerId) -> Arc<Broker> {
        Arc::clone(&self.inner.brokers.read()[id.0 as usize])
    }

    /// Snapshot the active (non-retired) members, id-ordered.
    fn active_brokers(&self) -> Vec<Arc<Broker>> {
        self.inner.brokers.read().iter().filter(|b| !b.is_retired()).cloned().collect()
    }

    /// The consumer group coordinator.
    pub fn coordinator(&self) -> &GroupCoordinator {
        &self.inner.groups
    }

    /// The ACL store, when enforcement is enabled.
    pub fn acl(&self) -> Option<&AclStore> {
        self.inner.acl.as_ref()
    }

    // ----- topic management -----

    /// Create a topic. Idempotent: re-creating with an identical config
    /// succeeds; differing config conflicts (§IV-F idempotency).
    pub fn create_topic(&self, name: &str, config: TopicConfig) -> OctoResult<()> {
        if name.is_empty() || name.contains('/') || name.contains(char::is_whitespace) {
            return Err(OctoError::Invalid(format!("bad topic name: {name:?}")));
        }
        let active = self.active_brokers();
        config.validate(active.len())?;
        let mut topics = self.inner.topics.write();
        if let Some(existing) = topics.get(name) {
            if existing.config == config {
                return Ok(());
            }
            return Err(OctoError::TopicExists(name.to_string()));
        }
        let n = active.len();
        let mut partitions = Vec::with_capacity(config.partitions as usize);
        for p in 0..config.partitions {
            // round-robin over the *active* members so decommissioned
            // slots never receive new replicas
            let replicas: Vec<BrokerId> = (0..config.replication_factor)
                .map(|r| active[(p + r) as usize % n].id())
                .collect();
            for b in &replicas {
                self.broker_unchecked(*b).host_partition_with(name, p, &config.storage_spec())?;
            }
            partitions.push(PartitionMeta {
                leader: replicas[0],
                isr: replicas.clone(),
                replicas,
                epoch: 0,
            });
        }
        topics.insert(name.to_string(), TopicMeta { config: config.clone(), partitions });
        drop(topics);
        self.persist_topic_config(name, &config)?;
        if let Some(zoo) = &self.inner.zoo {
            zoo.ensure_path("/octopus/topics")?;
            let blob = serde_json::to_vec(&config).map_err(|e| OctoError::Serde(e.to_string()))?;
            match zoo.create(&format!("/octopus/topics/{name}"), &blob, CreateMode::Persistent, None)
            {
                Ok(_) | Err(OctoError::Conflict(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Delete a topic and all its replicas.
    pub fn delete_topic(&self, name: &str) -> OctoResult<()> {
        let meta = self
            .inner
            .topics
            .write()
            .remove(name)
            .ok_or_else(|| OctoError::UnknownTopic(name.to_string()))?;
        for (p, pm) in meta.partitions.iter().enumerate() {
            for b in &pm.replicas {
                self.broker_unchecked(*b).drop_partition(name, p as u32);
            }
            self.inner.eos.dedup.forget_partition(name, p as u32);
            self.inner.eos.txn_index.forget_partition(name, p as u32);
        }
        if let Some(zoo) = &self.inner.zoo {
            let _ = zoo.delete(&format!("/octopus/topics/{name}"), None);
        }
        if let Some(d) = &self.inner.durability {
            let _ = fs::remove_file(
                PathBuf::from(&d.info.data_dir).join("topics").join(format!("{name}.json")),
            );
        }
        self.inner.lag.forget_topic(name);
        self.refresh_health(&format!("delete_topic({name})"));
        Ok(())
    }

    /// Whether a topic exists.
    pub fn topic_exists(&self, name: &str) -> bool {
        self.inner.topics.read().contains_key(name)
    }

    /// All topic names, sorted.
    pub fn topics(&self) -> Vec<TopicName> {
        let mut v: Vec<TopicName> = self.inner.topics.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// A topic's configuration.
    pub fn topic_config(&self, name: &str) -> OctoResult<TopicConfig> {
        self.inner
            .topics
            .read()
            .get(name)
            .map(|m| m.config.clone())
            .ok_or_else(|| OctoError::UnknownTopic(name.to_string()))
    }

    /// Number of partitions of a topic.
    pub fn partition_count(&self, name: &str) -> OctoResult<u32> {
        self.inner
            .topics
            .read()
            .get(name)
            .map(|m| m.partitions.len() as u32)
            .ok_or_else(|| OctoError::UnknownTopic(name.to_string()))
    }

    /// Grow a topic to `n` partitions (Kafka allows growth only —
    /// shrinking would lose data; `POST /topic/<topic>/partitions`).
    pub fn set_partitions(&self, name: &str, n: u32) -> OctoResult<()> {
        let mut topics = self.inner.topics.write();
        let meta =
            topics.get_mut(name).ok_or_else(|| OctoError::UnknownTopic(name.to_string()))?;
        let cur = meta.partitions.len() as u32;
        if n < cur {
            return Err(OctoError::Invalid(format!(
                "cannot shrink partitions from {cur} to {n}"
            )));
        }
        let active = self.active_brokers();
        for p in cur..n {
            let replicas: Vec<BrokerId> = (0..meta.config.replication_factor)
                .map(|r| active[(p + r) as usize % active.len()].id())
                .collect();
            for b in &replicas {
                self.broker_unchecked(*b).host_partition_with(
                    name,
                    p,
                    &meta.config.storage_spec(),
                )?;
            }
            meta.partitions.push(PartitionMeta {
                leader: replicas[0],
                isr: replicas.clone(),
                replicas,
                epoch: 0,
            });
        }
        meta.config.partitions = n;
        let config = meta.config.clone();
        drop(topics);
        self.persist_topic_config(name, &config)?;
        Ok(())
    }

    /// Rewrite a topic's config file under the data dir (atomic
    /// tmp+rename), so a cold restart rebuilds the same topology.
    fn persist_topic_config(&self, name: &str, config: &TopicConfig) -> OctoResult<()> {
        let Some(d) = &self.inner.durability else { return Ok(()) };
        let dir = PathBuf::from(&d.info.data_dir).join("topics");
        fs::create_dir_all(&dir)?;
        let tmp = dir.join(format!("{name}.json.tmp"));
        fs::write(&tmp, serde_json::to_string_pretty(config)?)?;
        fs::rename(&tmp, dir.join(format!("{name}.json")))?;
        Ok(())
    }

    /// Re-create every topic persisted under `data_dir/topics/` (cold
    /// restart). Hosting the partitions recovers their logs from disk.
    /// Unreadable config files are skipped, not fatal: one corrupt
    /// topic must not keep the whole cluster down.
    fn reload_persisted_topics(&self) -> OctoResult<()> {
        let Some(d) = &self.inner.durability else { return Ok(()) };
        let dir = PathBuf::from(&d.info.data_dir).join("topics");
        let mut names = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                names.push((stem.to_string(), path.clone()));
            }
        }
        names.sort();
        for (name, path) in names {
            let Ok(bytes) = fs::read(&path) else { continue };
            let Ok(config) = serde_json::from_slice::<TopicConfig>(&bytes) else { continue };
            self.create_topic(&name, config)?;
        }
        Ok(())
    }

    /// Update mutable topic config (retention/cleanup/min-ISR). The
    /// partition count and replication factor are managed separately.
    pub fn update_topic_config(&self, name: &str, config: TopicConfig) -> OctoResult<()> {
        let mut topics = self.inner.topics.write();
        let meta =
            topics.get_mut(name).ok_or_else(|| OctoError::UnknownTopic(name.to_string()))?;
        if config.partitions != meta.config.partitions
            || config.replication_factor != meta.config.replication_factor
        {
            return Err(OctoError::Invalid(
                "partitions/replication cannot change via config update".into(),
            ));
        }
        config.validate(self.active_broker_count())?;
        // Collect the live replica logs, then drop the topics guard
        // before locking any of them: log lock -> topics lock is the
        // global order (produce and resync hold a log lock while
        // reading/writing topic metadata), so nesting the other way
        // here would be a lock-order inversion.
        let roll_logs: Vec<SharedLog> = if config.segment_bytes != meta.config.segment_bytes {
            meta.partitions
                .iter()
                .enumerate()
                .flat_map(|(p, pm)| {
                    pm.replicas
                        .iter()
                        .filter_map(|b| self.broker_unchecked(*b).log(name, p as u32))
                        .collect::<Vec<_>>()
                })
                .collect()
        } else {
            Vec::new()
        };
        meta.config = config.clone();
        drop(topics);
        for log in roll_logs {
            log.lock().set_segment_bytes(config.segment_bytes);
        }
        self.persist_topic_config(name, &config)?;
        Ok(())
    }

    // ----- produce / fetch -----

    /// Choose a partition for an event: hash of the key if present, else
    /// round-robin (Kafka's default partitioner).
    pub fn partition_for(&self, topic: &str, key: Option<&[u8]>) -> OctoResult<PartitionId> {
        let n = self.partition_count(topic)?;
        Ok(match key {
            Some(k) => key_partition(k, n),
            None => (self.inner.round_robin.fetch_add(1, Ordering::Relaxed) % n as u64) as u32,
        })
    }

    /// Produce a single event, auto-partitioned.
    pub fn produce(&self, topic: &str, event: Event, acks: AckLevel) -> OctoResult<ProduceReceipt> {
        let p = self.partition_for(topic, event.key.as_deref())?;
        self.produce_batch(topic, p, RecordBatch::new(vec![event]), acks)
    }

    /// Produce a batch to a specific partition.
    pub fn produce_batch(
        &self,
        topic: &str,
        partition: PartitionId,
        batch: RecordBatch,
        acks: AckLevel,
    ) -> OctoResult<ProduceReceipt> {
        // Arc so replication executors share the batch without copying
        // event payloads.
        let batch = Arc::new(batch);
        match self.produce_inner(topic, partition, &batch, acks) {
            Ok(receipt) => Ok(receipt),
            Err(e) if acks == AckLevel::None => {
                // fire-and-forget: losses are silent, but we surface
                // "not persisted" for tests and honest accounting
                if matches!(e, OctoError::UnknownTopic(_) | OctoError::UnknownPartition(..)) {
                    Err(e) // routing errors are client bugs, always surfaced
                } else {
                    Ok(ProduceReceipt {
                        partition,
                        base_offset: 0,
                        count: 0,
                        persisted: false,
                        deduplicated: false,
                    })
                }
            }
            Err(e) => Err(e),
        }
    }

    fn produce_inner(
        &self,
        topic: &str,
        partition: PartitionId,
        batch: &Arc<RecordBatch>,
        acks: AckLevel,
    ) -> OctoResult<ProduceReceipt> {
        if batch.is_empty() {
            return Err(OctoError::Invalid("empty batch".into()));
        }
        let now = self.now();
        // One trace context represents the whole batch (the producer
        // stamps every event; the first sampled one wins). Only scanned
        // when tracing is on — the default disabled sink costs nothing.
        let traced = if self.inner.spans.is_enabled() {
            batch
                .events
                .iter()
                .find_map(|e| TraceContext::from_headers(&e.headers))
                .filter(|tc| self.inner.spans.sampled(tc.trace_id))
        } else {
            None
        };
        let mut reroutes = 0usize;
        #[allow(clippy::type_complexity)]
        let (
            leader,
            min_isr,
            base,
            leader_ticket,
            replies,
            isr,
            followers,
            append_start,
            append_wall,
            replicate_start,
            replicate_wall,
        ) = loop {
            // Snapshot metadata; failover mutates under the write lock.
            // Stale metadata triggers failover-and-retry, but bounded:
            // the old recursive retry could chase a kill/restart race
            // arbitrarily deep (each iteration burning a stack frame)
            // when chaos keeps flipping broker liveness. One failover
            // per broker is the most any election can need; beyond that
            // the partition is genuinely unavailable right now.
            let (leader, isr, min_isr) = self.resolve_live_leader(topic, partition)?;
            let leader_broker = self.broker_unchecked(leader);
            if acks == AckLevel::All && (isr.len() as u32) < min_isr {
                return Err(OctoError::NotEnoughReplicas {
                    in_sync: isr.len(),
                    required: min_isr as usize,
                });
            }
            // a degraded (slow) leader stalls every produce it serves
            let penalty = self.inner.fault.service_penalty(leader);
            if !penalty.is_zero() {
                std::thread::sleep(penalty);
            }
            let log = leader_broker
                .log(topic, partition)
                .ok_or_else(|| OctoError::UnknownPartition(topic.to_string(), partition))?;
            let append_start = Instant::now();
            let append_wall = now_ns();
            // Synchronous replication to in-sync followers, fanned out
            // to the per-broker executors so follower appends overlap
            // (latency = max over followers, not sum). Failures shrink
            // the ISR (Kafka's leader removes laggards). A severed
            // leader↔follower link looks exactly like a dead follower
            // from the leader's point of view — the executor evaluates
            // the same liveness/severed/append predicate the old inline
            // loop did.
            let mut leader_log = log.lock();
            // Re-verify the route *under the leader's log lock*: online
            // reassignments and leadership transfers commit their
            // metadata swap while holding this same lock, so whatever
            // leadership we read here is current. Appending to a
            // just-demoted leader would strand an acked record on a log
            // that is no longer authoritative — and diverge replica
            // order when the real leader assigns the same offset to a
            // different record.
            let (cur_leader, isr, _) = self.leader_of(topic, partition)?;
            if cur_leader != leader {
                drop(leader_log);
                reroutes += 1;
                if reroutes > PRODUCE_REROUTE_LIMIT {
                    return Err(OctoError::Unavailable(format!(
                        "leadership of {topic}/{partition} keeps moving: \
                         {reroutes} reroutes without a stable leader"
                    )));
                }
                continue;
            }
            // The ISR re-read above also runs under the leader's log
            // lock: a resync holds this lock across its copy-and-
            // rejoin, so a replica seen here either already holds every
            // earlier record (it rejoined before we locked) or receives
            // this batch via its executor (we fan out to it). The
            // pre-lock read is only a fast-fail.
            let followers: Vec<BrokerId> = isr.iter().copied().filter(|r| *r != leader).collect();
            // Idempotence check INSIDE the leader lock, so the verdict
            // and the append are atomic w.r.t. concurrent producers and
            // resyncs — and replicas inherit dedup for free, because a
            // deduped batch is never fanned out to the executors.
            if let Some(stamp) = batch.producer {
                if batch.control.is_none() {
                    let registered = self.inner.eos.pids.epoch_of_pid(stamp.pid);
                    match self.inner.eos.dedup.check(
                        topic,
                        partition,
                        stamp,
                        batch.len(),
                        registered,
                    ) {
                        DedupVerdict::Fenced => {
                            return Err(OctoError::Conflict(format!(
                                "producer {} epoch {} is fenced by a newer registration",
                                stamp.pid, stamp.epoch
                            )));
                        }
                        DedupVerdict::Duplicate { base_offset, count } => {
                            // re-ack the original append; nothing new hits
                            // the log, so no duplicate can ever be fetched
                            return Ok(ProduceReceipt {
                                partition,
                                base_offset,
                                count,
                                persisted: true,
                                deduplicated: true,
                            });
                        }
                        DedupVerdict::Fresh => {}
                    }
                }
            }
            let (base, leader_ticket) = leader_log.append_deferred(batch.as_ref(), now)?;
            // record the window (and transactional metadata) while the
            // lock is still held: a retry racing this produce must see it
            if let Some(stamp) = batch.producer {
                match batch.control {
                    Some(marker) => {
                        self.inner
                            .eos
                            .txn_index
                            .note_marker(topic, partition, stamp.pid, marker, base);
                    }
                    None => {
                        self.inner.eos.dedup.record(topic, partition, stamp, batch.len(), base);
                        if batch.txn {
                            self.inner.eos.txn_index.note_data(topic, partition, stamp.pid, base);
                        }
                    }
                }
            }
            let replicate_start = Instant::now();
            let replicate_wall = now_ns();
            // Submit while still holding the leader lock: per-broker
            // FIFO executors then apply follower appends in
            // leader-append order, so concurrent producers cannot
            // diverge a replica.
            let replies = if followers.is_empty() {
                None
            } else {
                let (reply_tx, reply_rx) = reply_channel(followers.len());
                for follower in &followers {
                    self.inner.replication.submit(
                        *follower,
                        ReplicationJob {
                            leader,
                            topic: topic.to_string(),
                            partition,
                            batch: Arc::clone(batch),
                            now,
                            follower_epoch: self.broker_unchecked(*follower).epoch(),
                            reply: reply_tx.clone(),
                        },
                    );
                }
                Some(reply_rx)
            };
            break (
                leader,
                min_isr,
                base,
                leader_ticket,
                replies,
                isr,
                followers,
                append_start,
                append_wall,
                replicate_start,
                replicate_wall,
            );
        };
        // Leader fsync (PerBatch group commit) happens off-lock, so it
        // overlaps the follower executors *and* shares one sync_data
        // with concurrent producers on this partition.
        if let Some(ticket) = leader_ticket {
            ticket.wait()?;
        }
        let append_ns = append_start.elapsed().as_nanos() as u64;
        self.inner.obs.record(Stage::Append, append_ns);
        if let Some(tc) = &traced {
            self.inner.spans.record_stage(tc, Stage::Append, append_wall, append_wall + append_ns);
        }
        self.inner.lag.on_append(topic, partition, base + batch.len() as u64);
        let mut new_isr = vec![leader];
        if let Some(reply_rx) = replies {
            let mut succeeded: Vec<BrokerId> = Vec::with_capacity(followers.len());
            'collect: for _ in 0..followers.len() {
                // An executor's reply is normally microseconds away (one
                // in-memory append), so probe-and-yield briefly before
                // parking on the blocking recv — the common case then
                // skips the condvar sleep/wake round-trip entirely.
                let mut reply = None;
                for _ in 0..REPLY_SPIN_LIMIT {
                    match reply_rx.try_recv() {
                        Ok(r) => {
                            reply = Some(r);
                            break;
                        }
                        Err(crossbeam::channel::TryRecvError::Empty) => std::thread::yield_now(),
                        Err(crossbeam::channel::TryRecvError::Disconnected) => break 'collect,
                    }
                }
                let (id, ok) = match reply {
                    Some(r) => r,
                    None => match reply_rx.recv() {
                        Ok(r) => r,
                        Err(_) => break, // executor gone (cluster teardown)
                    },
                };
                if ok {
                    succeeded.push(id);
                }
            }
            // rebuild in original ISR order, as the sequential loop did
            for follower in &followers {
                if succeeded.contains(follower) {
                    new_isr.push(*follower);
                }
            }
            let replicate_ns = replicate_start.elapsed().as_nanos() as u64;
            self.inner.obs.record(Stage::Replicate, replicate_ns);
            if let Some(tc) = &traced {
                self.inner.spans.record_stage(
                    tc,
                    Stage::Replicate,
                    replicate_wall,
                    replicate_wall + replicate_ns,
                );
            }
        }
        if new_isr.len() != isr.len() {
            self.set_isr(topic, partition, new_isr.clone())?;
            self.refresh_health("isr_shrink");
        }
        if acks == AckLevel::All && (new_isr.len() as u32) < min_isr {
            return Err(OctoError::NotEnoughReplicas {
                in_sync: new_isr.len(),
                required: min_isr as usize,
            });
        }
        let cells = self.topic_cells(topic);
        cells.events_in.fetch_add(batch.len() as u64, Ordering::Relaxed);
        cells.bytes_in.fetch_add(batch.wire_size() as u64, Ordering::Relaxed);
        self.inner.counters.events_in.add(batch.len() as u64);
        self.inner.counters.bytes_in.add(batch.wire_size() as u64);
        // Ambiguous-ack injection: everything above fully succeeded (the
        // append is durable and replicated), but the ack is lost on the
        // way back. Chaos plans pair this with producer retries — the
        // canonical duplicate generator idempotence must neutralise.
        if self.inner.fault.take_ack_drop(leader) {
            return Err(OctoError::Timeout(
                "ack dropped after durable append (injected)".into(),
            ));
        }
        Ok(ProduceReceipt {
            partition,
            base_offset: base,
            count: batch.len(),
            persisted: true,
            deduplicated: false,
        })
    }

    /// Resolve the partition leader, failing over (bounded) while the
    /// recorded leader is dead. Shared by produce, fetch, and the
    /// leader-log helpers so none of them recurse on stale metadata.
    fn resolve_live_leader(
        &self,
        topic: &str,
        partition: PartitionId,
    ) -> OctoResult<(BrokerId, Vec<BrokerId>, u32)> {
        let mut failovers = 0usize;
        loop {
            let (leader, isr, min_isr) = self.leader_of(topic, partition)?;
            if self.broker_unchecked(leader).is_alive() {
                return Ok((leader, isr, min_isr));
            }
            if failovers > self.broker_count() {
                return Err(OctoError::Unavailable(format!(
                    "leadership of {topic}/{partition} is flapping: \
                     {failovers} failovers without a live leader"
                )));
            }
            self.failover(topic, partition)?;
            self.inner.counters.failovers.inc();
            self.refresh_health(&format!("failover({topic}/{partition})"));
            failovers += 1;
        }
    }

    /// The per-topic stat cells, created on first use. Steady state is
    /// a shared read lock + atomic adds.
    fn topic_cells(&self, topic: &str) -> Arc<TopicStatsCells> {
        if let Some(cells) = self.inner.stats.read().get(topic) {
            return Arc::clone(cells);
        }
        Arc::clone(self.inner.stats.write().entry(topic.to_string()).or_default())
    }

    /// Fetch up to `max_records` from a partition starting at `offset`.
    /// Reads are served by the leader (Kafka semantics).
    pub fn fetch(
        &self,
        topic: &str,
        partition: PartitionId,
        offset: Offset,
        max_records: usize,
    ) -> OctoResult<Vec<Record>> {
        let fetch_start = Instant::now();
        let fetch_wall = now_ns();
        let (leader, _, _) = self.resolve_live_leader(topic, partition)?;
        let broker = self.broker_unchecked(leader);
        let penalty = self.inner.fault.service_penalty(leader);
        if !penalty.is_zero() {
            std::thread::sleep(penalty);
        }
        let mut offset = offset;
        match self.inner.fault.take_delivery_fault(leader) {
            // response lost in transit: the consumer sees an empty poll
            // and re-reads from the same position (at-least-once)
            Some(DeliveryFault::Drop) => return Ok(Vec::new()),
            // retried unacked fetch: replay already-delivered records
            // by rewinding the served offset (never before log start)
            Some(DeliveryFault::Duplicate { rewind }) => {
                let earliest = self
                    .with_leader_snapshot(topic, partition, |s| s.start_offset())
                    .unwrap_or(offset);
                offset = offset.saturating_sub(rewind).max(earliest);
            }
            Some(DeliveryFault::Delay { millis }) => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
            }
            None => {}
        }
        let log = broker
            .log(topic, partition)
            .ok_or_else(|| OctoError::UnknownPartition(topic.to_string(), partition))?;
        // Served from the published snapshot: fetches never take the
        // append mutex, so readers cannot stall writers (or each
        // other). Record clones inside are refcount bumps.
        let out = log.snapshot().read(offset, max_records)?;
        // The fetch stage includes injected penalties/delays on purpose:
        // degraded-broker chaos must be visible in the p99.
        let fetch_ns = fetch_start.elapsed().as_nanos() as u64;
        self.inner.obs.record(Stage::Fetch, fetch_ns);
        if self.inner.spans.is_enabled() {
            if let Some(tc) = out
                .iter()
                .find_map(|r| TraceContext::from_headers(&r.headers))
                .filter(|tc| self.inner.spans.sampled(tc.trace_id))
            {
                self.inner.spans.record_stage(&tc, Stage::Fetch, fetch_wall, fetch_wall + fetch_ns);
            }
        }
        if !out.is_empty() {
            let bytes = out.iter().map(|r| r.wire_size() as u64).sum::<u64>();
            let cells = self.topic_cells(topic);
            cells.events_out.fetch_add(out.len() as u64, Ordering::Relaxed);
            cells.bytes_out.fetch_add(bytes, Ordering::Relaxed);
            self.inner.counters.events_out.add(out.len() as u64);
            self.inner.counters.bytes_out.add(bytes);
        }
        Ok(out)
    }

    /// Traffic counters of a topic (zeroed until first use).
    pub fn topic_stats(&self, topic: &str) -> TopicStats {
        self.inner.stats.read().get(topic).map(|c| c.load()).unwrap_or_default()
    }

    /// Earliest retained offset.
    pub fn earliest_offset(&self, topic: &str, partition: PartitionId) -> OctoResult<Offset> {
        self.with_leader_snapshot(topic, partition, |s| s.start_offset())
    }

    /// Next offset to be assigned (log end).
    pub fn latest_offset(&self, topic: &str, partition: PartitionId) -> OctoResult<Offset> {
        self.with_leader_snapshot(topic, partition, |s| s.end_offset())
    }

    /// First offset at or after `ts`.
    pub fn offset_for_timestamp(
        &self,
        topic: &str,
        partition: PartitionId,
        ts: Timestamp,
    ) -> OctoResult<Offset> {
        self.with_leader_snapshot(topic, partition, |s| s.offset_for_timestamp(ts))
    }

    /// Total backlog (end − committed) across partitions for a consumer
    /// group — the *processing pressure* that drives trigger autoscaling
    /// (§IV-D).
    pub fn group_lag(&self, group: &str, topic: &str) -> OctoResult<u64> {
        let n = self.partition_count(topic)?;
        let mut lag = 0u64;
        for p in 0..n {
            let end = self.latest_offset(topic, p)?;
            let committed = self
                .inner
                .groups
                .committed(group, topic, p)
                .unwrap_or_else(|| self.earliest_offset(topic, p).unwrap_or(0));
            lag += end.saturating_sub(committed);
        }
        Ok(lag)
    }

    fn with_leader_snapshot<T>(
        &self,
        topic: &str,
        partition: PartitionId,
        f: impl Fn(&LogSnapshot) -> T,
    ) -> OctoResult<T> {
        let (leader, _, _) = self.resolve_live_leader(topic, partition)?;
        let broker = self.broker_unchecked(leader);
        let log = broker
            .log(topic, partition)
            .ok_or_else(|| OctoError::UnknownPartition(topic.to_string(), partition))?;
        Ok(f(&log.snapshot()))
    }

    fn leader_of(
        &self,
        topic: &str,
        partition: PartitionId,
    ) -> OctoResult<(BrokerId, Vec<BrokerId>, u32)> {
        let topics = self.inner.topics.read();
        let meta = topics.get(topic).ok_or_else(|| OctoError::UnknownTopic(topic.to_string()))?;
        let pm = meta
            .partitions
            .get(partition as usize)
            .ok_or_else(|| OctoError::UnknownPartition(topic.to_string(), partition))?;
        Ok((pm.leader, pm.isr.clone(), meta.config.min_insync_replicas))
    }

    fn set_isr(&self, topic: &str, partition: PartitionId, isr: Vec<BrokerId>) -> OctoResult<()> {
        let mut topics = self.inner.topics.write();
        let meta =
            topics.get_mut(topic).ok_or_else(|| OctoError::UnknownTopic(topic.to_string()))?;
        let pm = meta
            .partitions
            .get_mut(partition as usize)
            .ok_or_else(|| OctoError::UnknownPartition(topic.to_string(), partition))?;
        pm.isr = isr;
        Ok(())
    }

    /// Promote a live in-sync replica to leader (unclean leader election
    /// is disabled: only ISR members are eligible, so no committed data
    /// is lost).
    fn failover(&self, topic: &str, partition: PartitionId) -> OctoResult<()> {
        let mut topics = self.inner.topics.write();
        let meta =
            topics.get_mut(topic).ok_or_else(|| OctoError::UnknownTopic(topic.to_string()))?;
        let pm = meta
            .partitions
            .get_mut(partition as usize)
            .ok_or_else(|| OctoError::UnknownPartition(topic.to_string(), partition))?;
        let new_leader = pm
            .isr
            .iter()
            .copied()
            .find(|b| self.broker_unchecked(*b).is_alive())
            .ok_or_else(|| {
                OctoError::Unavailable(format!(
                    "no live in-sync replica for {topic}/{partition}"
                ))
            })?;
        pm.leader = new_leader;
        pm.isr.retain(|b| self.broker_unchecked(*b).is_alive());
        drop(topics);
        // The dedup/txn caches must describe the NEW leader's log. The
        // old leader may have appended (and recorded a window for) a
        // batch this replica never received; keeping that window would
        // falsely dedup the producer's retry and ack a lost record.
        self.rebuild_eos_partition(topic, partition, new_leader);
        Ok(())
    }

    /// Rebuild one partition's EOS caches (dedup windows + txn index)
    /// from the given leader's log — the only authoritative source.
    ///
    /// Holds the leader's log lock across the read *and* the cache
    /// replacement: produce runs its dedup check and window record
    /// under that same lock, so a lock-free snapshot here could miss a
    /// window recorded between the read and the replace — wiping it
    /// and letting that batch's ambiguous-ack retry append a
    /// duplicate.
    fn rebuild_eos_partition(&self, topic: &str, partition: PartitionId, leader: BrokerId) {
        let Some(log) = self.broker_unchecked(leader).log(topic, partition) else {
            return;
        };
        let guard = log.lock();
        let records = guard.read(guard.start_offset(), usize::MAX).unwrap_or_default();
        self.inner.eos.dedup.rebuild_partition(topic, partition, &records);
        self.inner.eos.txn_index.rebuild_partition(topic, partition, &records);
    }

    /// Rebuild every partition's EOS caches from its current leader
    /// (cold start).
    fn rebuild_eos_all(&self) {
        let parts: Vec<(TopicName, PartitionId, BrokerId)> = {
            let topics = self.inner.topics.read();
            topics
                .iter()
                .flat_map(|(name, meta)| {
                    meta.partitions
                        .iter()
                        .enumerate()
                        .map(move |(p, pm)| (name.clone(), p as u32, pm.leader))
                })
                .collect()
        };
        for (topic, partition, leader) in parts {
            self.rebuild_eos_partition(&topic, partition, leader);
        }
    }

    // ----- failure injection & recovery -----

    fn broker_checked(&self, id: BrokerId) -> OctoResult<Arc<Broker>> {
        self.inner
            .brokers
            .read()
            .get(id.0 as usize)
            .cloned()
            .ok_or_else(|| OctoError::NotFound(format!("broker {} does not exist", id.0)))
    }

    /// Crash a broker. Killing an already-dead broker is a typed
    /// error (`Conflict`), never a panic — chaos schedules race real
    /// failovers, so double-kills must be safe.
    pub fn kill_broker(&self, id: BrokerId) -> OctoResult<()> {
        let broker = self.broker_checked(id)?;
        if !broker.is_alive() {
            return Err(OctoError::Conflict(format!("broker {} is already dead", id.0)));
        }
        broker.kill();
        self.refresh_health(&format!("kill_broker({})", id.0));
        Ok(())
    }

    /// Restart a broker: recover its logs (the CRC scan truncates any
    /// corrupt or torn tail — on disk for durable logs), resync from
    /// current leaders, and rejoin the ISR. Restarting a live broker is
    /// a typed error (`Conflict`).
    pub fn restart_broker(&self, id: BrokerId) -> OctoResult<()> {
        let broker = self.broker_checked(id)?;
        if broker.is_alive() {
            return Err(OctoError::Conflict(format!("broker {} is already alive", id.0)));
        }
        broker.restart();
        // recovery itself runs inside resync_broker: both the restart
        // path and the network-heal path must scrub the tail
        self.resync_broker(id)?;
        self.refresh_health(&format!("restart_broker({})", id.0));
        Ok(())
    }

    /// Resync a live broker's replicas from their current leaders and
    /// rejoin the ISR. Also the heal path after a network partition:
    /// the follower never died, but its log diverged while the link
    /// was severed.
    ///
    /// Recovery runs here, not only on restart: a healed follower that
    /// never rebooted can still hold a corrupt tail (bit rot, torn
    /// writes taken while it was cut off), and if it is — or becomes —
    /// a serving replica, that tail must never reach a consumer.
    pub fn resync_broker(&self, id: BrokerId) -> OctoResult<()> {
        let broker = self.broker_checked(id)?;
        if !broker.is_alive() {
            return Err(OctoError::Conflict(format!("broker {} is dead", id.0)));
        }
        for (topic, partition) in broker.hosted_partitions() {
            // scrub own log first: durable logs reload from disk
            // (truncating torn tails there), volatile logs CRC-scan
            if let Some(log) = broker.log(&topic, partition) {
                log.lock().recover()?;
            }
            let (leader, _, _) = match self.leader_of(&topic, partition) {
                Ok(x) => x,
                Err(_) => continue, // topic deleted while down
            };
            if leader == id {
                // Still leader (never failed over) — but the recovery
                // scan above may have torn an unflushed tail off its
                // log, so the EOS caches must be rebuilt from what
                // actually survived: a stale window would falsely ack a
                // retry whose record the power loss destroyed.
                self.rebuild_eos_partition(&topic, partition, id);
                continue;
            }
            // Never copy from a dead leader: after a correlated outage
            // (e.g. full-cluster power loss) the recorded leader may be
            // down and unrecovered — adopting its stale snapshot would
            // spread data loss instead of healing it. The follower keeps
            // its own recovered log until a live leader exists.
            let leader_broker = self.broker_unchecked(leader);
            if !leader_broker.is_alive() {
                continue;
            }
            let leader_log = leader_broker
                .log(&topic, partition)
                .ok_or_else(|| OctoError::Internal("leader lost its log".into()))?;
            let Some(mine) = broker.log(&topic, partition) else { continue };
            // Copy-and-rejoin is atomic w.r.t. produces: the leader's
            // log lock is held from the snapshot read through the ISR
            // rejoin, and produce re-reads the ISR under that same
            // lock. A batch acked before we locked is in the copy; a
            // batch appended after we release sees the rejoined ISR
            // and replicates here. Without this, a record acked in the
            // gap between copy and rejoin never reaches this replica,
            // and a later failover to it silently loses acked data.
            // Both log locks are taken in broker-id order so two
            // concurrent resyncs can never deadlock on each other.
            let (leader_guard, mut my_guard) = if leader.0 < id.0 {
                let lg = leader_log.lock();
                let mg = mine.lock();
                (lg, mg)
            } else {
                let mg = mine.lock();
                let lg = leader_log.lock();
                (lg, mg)
            };
            my_guard.replace_from(&leader_guard)?;
            drop(my_guard);
            // rejoin ISR (log lock -> topics lock is the global order)
            {
                let mut topics = self.inner.topics.write();
                if let Some(meta) = topics.get_mut(&topic) {
                    if let Some(pm) = meta.partitions.get_mut(partition as usize) {
                        if !pm.isr.contains(&id) && pm.replicas.contains(&id) {
                            pm.isr.push(id);
                        }
                    }
                }
            }
            drop(leader_guard);
        }
        self.refresh_health(&format!("resync_broker({})", id.0));
        Ok(())
    }

    /// Power-loss injection: the broker dies *and* the unflushed suffix
    /// of each of its durable partition logs survives only up to an
    /// arbitrary, `entropy`-seeded byte boundary. Closed segments and
    /// fsynced bytes always survive; with [`FlushPolicy::PerBatch`]
    /// that is every acknowledged batch. [`Cluster::restart_broker`]
    /// runs the recovery scan that truncates the torn tail.
    pub fn power_loss_broker(&self, id: BrokerId, entropy: u64) -> OctoResult<PowerLossReport> {
        let broker = self.broker_checked(id)?;
        if !broker.is_alive() {
            return Err(OctoError::Conflict(format!("broker {} is already dead", id.0)));
        }
        broker.kill();
        let mut report = PowerLossReport::default();
        for (i, (topic, partition)) in broker.hosted_partitions().into_iter().enumerate() {
            if let Some(log) = broker.log(&topic, partition) {
                // decorrelate the tear point across partitions
                let mixed = entropy ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                report.bytes_torn += log.lock().power_loss(mixed)?;
                report.partitions += 1;
            }
        }
        self.refresh_health(&format!("power_loss({})", id.0));
        Ok(report)
    }

    /// Fsync every durable partition log and write an offset checkpoint
    /// now (graceful-shutdown flush). No-op for volatile clusters.
    pub fn sync_all(&self) -> OctoResult<()> {
        for broker in self.inner.brokers.read().clone() {
            for (topic, partition) in broker.hosted_partitions() {
                if let Some(log) = broker.log(&topic, partition) {
                    log.lock().sync_store()?;
                }
            }
        }
        self.inner.groups.checkpoint_now()
    }

    /// Corrupt the payload of the last `records` records of a replica's
    /// log without touching its checksums — the bit-rot / torn-write
    /// fault that restart-time CRC recovery must catch. Returns how
    /// many records were corrupted.
    pub fn corrupt_log_tail(
        &self,
        id: BrokerId,
        topic: &str,
        partition: PartitionId,
        records: usize,
    ) -> OctoResult<usize> {
        let broker = self.broker_checked(id)?;
        let log = broker
            .log(topic, partition)
            .ok_or_else(|| OctoError::UnknownPartition(topic.to_string(), partition))?;
        let corrupted = log.lock().corrupt_tail(records);
        Ok(corrupted)
    }

    /// The current ISR of a partition (tests, ops tooling).
    pub fn isr_of(&self, topic: &str, partition: PartitionId) -> OctoResult<Vec<BrokerId>> {
        Ok(self.leader_of(topic, partition)?.1)
    }

    /// The current leader of a partition.
    pub fn leader_broker(&self, topic: &str, partition: PartitionId) -> OctoResult<BrokerId> {
        Ok(self.leader_of(topic, partition)?.0)
    }

    /// The assignment epoch of a partition (bumped on every committed
    /// replica-set change; see [`Cluster::alter_partition_assignment`]).
    pub fn assignment_epoch(&self, topic: &str, partition: PartitionId) -> OctoResult<u64> {
        let topics = self.inner.topics.read();
        let meta = topics.get(topic).ok_or_else(|| OctoError::UnknownTopic(topic.to_string()))?;
        meta.partitions
            .get(partition as usize)
            .map(|pm| pm.epoch)
            .ok_or_else(|| OctoError::UnknownPartition(topic.to_string(), partition))
    }

    /// The full replica assignment of a partition.
    pub fn replicas_of(&self, topic: &str, partition: PartitionId) -> OctoResult<Vec<BrokerId>> {
        let topics = self.inner.topics.read();
        let meta = topics.get(topic).ok_or_else(|| OctoError::UnknownTopic(topic.to_string()))?;
        meta.partitions
            .get(partition as usize)
            .map(|pm| pm.replicas.clone())
            .ok_or_else(|| OctoError::UnknownPartition(topic.to_string(), partition))
    }

    // ----- elastic membership & online reassignment -----

    /// Add a broker to the running cluster and return its id. The new
    /// member starts empty: existing partitions stay where they are
    /// until a reassignment (manual or auto-balancer) moves replicas
    /// onto it, but new topics immediately spread across it. Durable
    /// clusters give the newcomer its own directory under the shared
    /// data dir.
    pub fn add_broker(&self) -> OctoResult<BrokerId> {
        let id = {
            let mut brokers = self.inner.brokers.write();
            let id = BrokerId(brokers.len() as u32);
            let broker = Arc::new(match &self.inner.store_ctx {
                Some(ctx) => Broker::with_store(id, Arc::clone(ctx)),
                None => Broker::new(id),
            });
            // the pool slot must exist before any produce can observe
            // the broker in an ISR, hence inside the table write lock
            self.inner.replication.add_broker(&broker, self.inner.fault.clone());
            brokers.push(broker);
            id
        };
        if let Some(zoo) = &self.inner.zoo {
            zoo.ensure_path("/octopus/brokers")?;
            match zoo.create(
                &format!("/octopus/brokers/{}", id.0),
                &[],
                CreateMode::Persistent,
                None,
            ) {
                Ok(_) | Err(OctoError::Conflict(_)) => {}
                Err(e) => return Err(e),
            }
        }
        self.refresh_health(&format!("add_broker({})", id.0));
        Ok(id)
    }

    /// Transfer partition leadership to `to`, which must be a live
    /// in-sync replica. The transfer is loss-free: the old leader's log
    /// is frozen (its lock held) while the target's replication
    /// executor drains any still-queued batches, so the target is byte-
    /// identical to the old leader at the moment the metadata swaps.
    pub fn move_leader(&self, topic: &str, partition: PartitionId, to: BrokerId) -> OctoResult<()> {
        let (leader, isr, _) = self.leader_of(topic, partition)?;
        if leader == to {
            return Ok(());
        }
        if !isr.contains(&to) {
            return Err(OctoError::Invalid(format!(
                "broker {} is not in the ISR of {topic}/{partition}",
                to.0
            )));
        }
        let target = self.broker_checked(to)?;
        if !target.is_alive() {
            return Err(OctoError::Conflict(format!("broker {} is dead", to.0)));
        }
        let old = self.broker_checked(leader)?;
        if old.is_alive() {
            let old_log = old
                .log(topic, partition)
                .ok_or_else(|| OctoError::UnknownPartition(topic.to_string(), partition))?;
            let new_log = target
                .log(topic, partition)
                .ok_or_else(|| OctoError::UnknownPartition(topic.to_string(), partition))?;
            // Freeze appends on the old leader, then wait (off the
            // target's lock, so its executor can run) until the target
            // has applied everything the old leader ever acked.
            let old_guard = old_log.lock();
            let end = old_guard.end_offset();
            let deadline = Instant::now() + std::time::Duration::from_secs(5);
            while new_log.snapshot().end_offset() < end {
                if Instant::now() > deadline {
                    return Err(OctoError::Timeout(format!(
                        "broker {} did not catch up for leadership transfer of \
                         {topic}/{partition}",
                        to.0
                    )));
                }
                std::thread::yield_now();
            }
            {
                let mut topics = self.inner.topics.write();
                let meta = topics
                    .get_mut(topic)
                    .ok_or_else(|| OctoError::UnknownTopic(topic.to_string()))?;
                let pm = meta
                    .partitions
                    .get_mut(partition as usize)
                    .ok_or_else(|| OctoError::UnknownPartition(topic.to_string(), partition))?;
                if pm.leader != leader || !pm.isr.contains(&to) {
                    return Err(OctoError::Conflict(format!(
                        "leadership of {topic}/{partition} changed during transfer"
                    )));
                }
                pm.leader = to;
            }
            drop(old_guard);
        } else {
            // dead old leader: plain promotion, serialized by the
            // topics lock (the failover path's discipline)
            let mut topics = self.inner.topics.write();
            let meta = topics
                .get_mut(topic)
                .ok_or_else(|| OctoError::UnknownTopic(topic.to_string()))?;
            let pm = meta
                .partitions
                .get_mut(partition as usize)
                .ok_or_else(|| OctoError::UnknownPartition(topic.to_string(), partition))?;
            if pm.leader != leader || !pm.isr.contains(&to) {
                return Err(OctoError::Conflict(format!(
                    "leadership of {topic}/{partition} changed during transfer"
                )));
            }
            pm.leader = to;
        }
        // the dedup/txn caches must describe the new leader's log
        self.rebuild_eos_partition(topic, partition, to);
        self.refresh_health(&format!("move_leader({topic}/{partition}->{})", to.0));
        Ok(())
    }

    /// Move one replica of a partition from broker `from` to broker
    /// `to`, online and bandwidth-throttled — the paper-scale analogue
    /// of Kafka's `kafka-reassign-partitions` with a reassignment
    /// throttle. The state machine:
    ///
    /// 1. **Validate + fence**: capture the partition's assignment
    ///    epoch (and, when a zoo is attached, the version of its
    ///    `/octopus/assign/<topic>/<partition>` node).
    /// 2. **Drain leadership** off `from` when it currently leads.
    /// 3. **Learner catch-up**: `to` hosts a fresh replica and copies
    ///    the leader's log in throttled chunks via `append_copied`
    ///    (offsets, CRCs, and EOS stamps preserved — durable segments
    ///    transfer byte-for-byte). No locks are held during the bulk
    ///    copy, so produce latency is unaffected.
    /// 4. **Commit**: under the leader's and learner's log locks (id
    ///    order), copy the final tail, then CAS the assignment — epoch
    ///    mismatch (another mover won, or a stale crashed mover
    ///    retrying) aborts with `Conflict` and tears the learner down.
    /// 5. **Retire** the old replica: drop its log and durable files.
    pub fn alter_partition_assignment(
        &self,
        topic: &str,
        partition: PartitionId,
        from: BrokerId,
        to: BrokerId,
        throttle: &MoveThrottle,
    ) -> OctoResult<()> {
        let target = self.broker_checked(to)?;
        if target.is_retired() || !target.is_alive() {
            return Err(OctoError::Conflict(format!(
                "target broker {} is not a live cluster member",
                to.0
            )));
        }
        let source = self.broker_checked(from)?;
        // settle a live leader first (fails over a dead recorded leader)
        self.resolve_live_leader(topic, partition)?;
        let (epoch0, storage_spec) = {
            let topics = self.inner.topics.read();
            let meta =
                topics.get(topic).ok_or_else(|| OctoError::UnknownTopic(topic.to_string()))?;
            let pm = meta
                .partitions
                .get(partition as usize)
                .ok_or_else(|| OctoError::UnknownPartition(topic.to_string(), partition))?;
            if !pm.replicas.contains(&from) {
                return Err(OctoError::Invalid(format!(
                    "broker {} holds no replica of {topic}/{partition}",
                    from.0
                )));
            }
            if pm.replicas.contains(&to) {
                return Err(OctoError::Invalid(format!(
                    "broker {} already holds a replica of {topic}/{partition}",
                    to.0
                )));
            }
            (pm.epoch, meta.config.storage_spec())
        };
        // zoo fencing: the assignment node's version is the durable
        // epoch. A mover that crashed and retries against a node some
        // newer mover already advanced fails the CAS at commit.
        let zoo_node = format!("/octopus/assign/{topic}/{partition}");
        let zoo_expected = if let Some(zoo) = &self.inner.zoo {
            zoo.ensure_path(&format!("/octopus/assign/{topic}"))?;
            if !zoo.exists(&zoo_node)? {
                match zoo.create(&zoo_node, b"{}", CreateMode::Persistent, None) {
                    Ok(_) | Err(OctoError::Conflict(_)) => {}
                    Err(e) => return Err(e),
                }
            }
            Some(zoo.get(&zoo_node)?.1.version)
        } else {
            None
        };
        // Leadership off the source before data starts moving — best
        // effort: with rf=1 (or no other live ISR member) there is no
        // successor, and the commit step transfers leadership onto the
        // caught-up learner atomically instead.
        if self.leader_broker(topic, partition)? == from && source.is_alive() {
            let (_, isr, _) = self.leader_of(topic, partition)?;
            let successor = isr
                .iter()
                .copied()
                .find(|b| *b != from && self.broker_unchecked(*b).is_alive());
            if let Some(successor) = successor {
                self.move_leader(topic, partition, successor)?;
            }
        }
        let target_end = self.latest_offset(topic, partition).unwrap_or(0);
        self.inner.reassign.begin(topic, partition, from, to, epoch0, target_end);
        target.host_partition_with(topic, partition, &storage_spec)?;
        let result = self.catch_up_and_commit(
            topic, partition, from, to, &target, epoch0, zoo_expected, &zoo_node, throttle,
        );
        match result {
            Ok(leader_moved) => {
                // retire the old replica — its durable files go too
                source.drop_partition(topic, partition);
                if leader_moved {
                    self.rebuild_eos_partition(topic, partition, to);
                }
                self.inner.reassign.complete(topic, partition, to);
                self.refresh_health(&format!(
                    "reassign({topic}/{partition}: {}->{})",
                    from.0, to.0
                ));
                Ok(())
            }
            Err(e) => {
                // tear the learner down: it never joined the assignment
                target.drop_partition(topic, partition);
                self.inner.reassign.abort(topic, partition, to, &e.to_string());
                Err(e)
            }
        }
    }

    /// The learner catch-up loop and epoch-fenced commit of
    /// [`Cluster::alter_partition_assignment`]. Returns whether the
    /// commit also had to move leadership onto the learner (the source
    /// regained leadership mid-move via a failover).
    #[allow(clippy::too_many_arguments)]
    fn catch_up_and_commit(
        &self,
        topic: &str,
        partition: PartitionId,
        from: BrokerId,
        to: BrokerId,
        target: &Arc<Broker>,
        epoch0: u64,
        zoo_expected: Option<u32>,
        zoo_node: &str,
        throttle: &MoveThrottle,
    ) -> OctoResult<bool> {
        let learner_log = target
            .log(topic, partition)
            .ok_or_else(|| OctoError::Internal("learner lost its log".into()))?;
        // ----- throttled bulk catch-up (no locks held across chunks) -----
        loop {
            if !target.is_alive() {
                return Err(OctoError::Conflict(format!(
                    "learner broker {} died during catch-up",
                    to.0
                )));
            }
            let (leader, _, _) = self.resolve_live_leader(topic, partition)?;
            let leader_log = self
                .broker_unchecked(leader)
                .log(topic, partition)
                .ok_or_else(|| OctoError::Internal("leader lost its log".into()))?;
            let snap = leader_log.snapshot();
            let from_off = learner_log.snapshot().end_offset();
            if from_off >= snap.end_offset() {
                break;
            }
            let chunk = snap.read(from_off.max(snap.start_offset()), CATCHUP_CHUNK)?;
            if chunk.is_empty() {
                break;
            }
            let bytes: u64 = chunk.iter().map(|r| r.wire_size() as u64).sum();
            throttle.acquire(bytes);
            match learner_log.lock().append_copied(&chunk) {
                Ok(_) => {}
                Err(OctoError::OffsetOutOfRange { .. }) => {
                    // A stale learner log (left over from an earlier
                    // incarnation) that cannot be extended in place:
                    // adopt the leader's full state under both locks.
                    let (lg, mut ln) = if leader.0 < to.0 {
                        let lg = leader_log.lock();
                        let ln = learner_log.lock();
                        (lg, ln)
                    } else {
                        let ln = learner_log.lock();
                        let lg = leader_log.lock();
                        (lg, ln)
                    };
                    ln.replace_from(&lg)?;
                }
                Err(e) => return Err(e),
            }
            self.inner
                .reassign
                .progress(topic, partition, to, learner_log.snapshot().end_offset());
        }
        // ----- epoch-fenced commit -----
        let mut commit_attempts = 0usize;
        loop {
            commit_attempts += 1;
            let (leader, _, _) = self.resolve_live_leader(topic, partition)?;
            let leader_log = self
                .broker_unchecked(leader)
                .log(topic, partition)
                .ok_or_else(|| OctoError::Internal("leader lost its log".into()))?;
            // both log locks in broker-id order (the resync discipline)
            let (leader_guard, mut learner_guard) = if leader.0 < to.0 {
                let lg = leader_log.lock();
                let ln = learner_log.lock();
                (lg, ln)
            } else {
                let ln = learner_log.lock();
                let lg = leader_log.lock();
                (lg, ln)
            };
            // final tail: everything acked since the last chunk
            let tail_from = learner_guard.end_offset();
            if tail_from < leader_guard.end_offset() {
                let tail = leader_guard.read(tail_from.max(leader_guard.start_offset()), usize::MAX)?;
                if tail.first().map(|r| r.offset) != Some(tail_from) {
                    // retention ran between catch-up and commit
                    learner_guard.replace_from(&leader_guard)?;
                } else {
                    learner_guard.append_copied(&tail)?;
                }
            }
            drop(learner_guard);
            let mut topics = self.inner.topics.write();
            let meta =
                topics.get_mut(topic).ok_or_else(|| OctoError::UnknownTopic(topic.to_string()))?;
            let pm = meta
                .partitions
                .get_mut(partition as usize)
                .ok_or_else(|| OctoError::UnknownPartition(topic.to_string(), partition))?;
            if pm.leader != leader {
                // a failover slipped in between resolving the leader
                // and taking its lock — redo the tail copy against the
                // real leader
                drop(topics);
                drop(leader_guard);
                if commit_attempts >= COMMIT_RETRY_LIMIT {
                    return Err(OctoError::Unavailable(format!(
                        "leadership of {topic}/{partition} keeps moving during \
                         reassignment commit"
                    )));
                }
                continue;
            }
            // the in-memory epoch CAS: a concurrent mover that
            // committed first bumped it, and this move must abort
            if pm.epoch != epoch0 {
                return Err(OctoError::Conflict(format!(
                    "assignment of {topic}/{partition} changed under this move \
                     (epoch {} != {})",
                    pm.epoch, epoch0
                )));
            }
            if !pm.replicas.contains(&from) || pm.replicas.contains(&to) {
                return Err(OctoError::Conflict(format!(
                    "replica set of {topic}/{partition} changed under this move"
                )));
            }
            // the durable epoch CAS through the zoo, versioned: a
            // crashed mover's stale retry fails here even if the
            // in-memory cluster it talks to was rebuilt
            if let Some(zoo) = &self.inner.zoo {
                let assignment = serde_json::json!({
                    "replicas": pm.replicas.iter().map(|b| if *b == from { to.0 } else { b.0 }).collect::<Vec<_>>(),
                    "leader": if pm.leader == from { to.0 } else { pm.leader.0 },
                    "epoch": epoch0 + 1,
                });
                zoo.set(zoo_node, assignment.to_string().as_bytes(), zoo_expected)?;
            }
            // swap: preserve the replica's position in the assignment
            for r in pm.replicas.iter_mut() {
                if *r == from {
                    *r = to;
                }
            }
            pm.isr.retain(|b| *b != from);
            if !pm.isr.contains(&to) {
                pm.isr.push(to);
            }
            let leader_moved = pm.leader == from;
            if leader_moved {
                // the source regained leadership mid-move (failover);
                // the learner is fully caught up under our lock, so it
                // takes over
                pm.leader = to;
            }
            pm.epoch = epoch0 + 1;
            drop(topics);
            drop(leader_guard);
            return Ok(leader_moved);
        }
    }

    /// Gracefully remove a broker from the cluster: every replica it
    /// still holds is moved to a spare active broker (leadership
    /// draining first — see [`Cluster::alter_partition_assignment`]),
    /// then the broker is retired for good. Returns how many replicas
    /// were moved. Fails without retiring if no spare broker can take
    /// a replica (the cluster would go under-replicated).
    pub fn decommission_broker(&self, id: BrokerId, throttle: &MoveThrottle) -> OctoResult<usize> {
        let broker = self.broker_checked(id)?;
        if broker.is_retired() {
            return Err(OctoError::Conflict(format!("broker {} is already decommissioned", id.0)));
        }
        let mut moved = 0usize;
        for (topic, partition) in broker.hosted_partitions() {
            let replicas = match self.replicas_of(&topic, partition) {
                Ok(r) => r,
                Err(_) => continue, // topic deleted meanwhile
            };
            if !replicas.contains(&id) {
                // hosted but no longer assigned (stale leftover)
                broker.drop_partition(&topic, partition);
                continue;
            }
            let spare = self
                .active_brokers()
                .into_iter()
                .filter(|b| b.is_alive() && !replicas.contains(&b.id()) && b.id() != id)
                .min_by_key(|b| b.partition_count())
                .map(|b| b.id())
                .ok_or_else(|| {
                    OctoError::Unavailable(format!(
                        "no spare broker can take {topic}/{partition} off broker {}",
                        id.0
                    ))
                })?;
            self.alter_partition_assignment(&topic, partition, id, spare, throttle)?;
            moved += 1;
        }
        broker.retire();
        if let Some(zoo) = &self.inner.zoo {
            let _ = zoo.delete(&format!("/octopus/brokers/{}", id.0), None);
        }
        self.refresh_health(&format!("decommission_broker({})", id.0));
        Ok(moved)
    }

    /// Move every partition's leadership back to its preferred leader
    /// (the first live in-sync replica in assignment order — Kafka's
    /// preferred-leader election). Returns how many leaderships moved.
    pub fn rebalance_leaders(&self) -> usize {
        let parts: Vec<(TopicName, u32)> = {
            let topics = self.inner.topics.read();
            topics
                .iter()
                .flat_map(|(name, meta)| {
                    (0..meta.partitions.len()).map(move |p| (name.clone(), p as u32))
                })
                .collect()
        };
        let mut moves = 0usize;
        for (topic, partition) in parts {
            let Ok((leader, isr, _)) = self.leader_of(&topic, partition) else { continue };
            let Ok(replicas) = self.replicas_of(&topic, partition) else { continue };
            let preferred = replicas
                .iter()
                .copied()
                .find(|b| isr.contains(b) && self.broker_unchecked(*b).is_alive());
            if let Some(pref) = preferred {
                if pref != leader && self.move_leader(&topic, partition, pref).is_ok() {
                    moves += 1;
                }
            }
        }
        moves
    }

    /// Active and recently-finished partition reassignments, newest
    /// last (the `DescribeReassignments` body).
    pub fn reassignments(&self) -> Vec<ReassignStatus> {
        self.inner.reassign.snapshot()
    }

    // ----- maintenance -----

    /// Run retention/compaction across all partitions of all topics.
    /// Returns total records removed.
    pub fn run_maintenance(&self) -> usize {
        let now = self.now();
        let topics: Vec<(TopicName, TopicMeta)> = self
            .inner
            .topics
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let mut removed = 0usize;
        for (name, meta) in topics {
            for (p, pm) in meta.partitions.iter().enumerate() {
                for b in &pm.replicas {
                    if let Some(log) = self.broker_unchecked(*b).log(&name, p as u32) {
                        removed += log.lock().cleanup(&meta.config.cleanup, &meta.config.retention, now);
                    }
                }
            }
        }
        removed
    }

    // ----- ACL-enforced entry points (broker-side authorization) -----

    /// Produce with a principal; requires WRITE on the topic when ACL
    /// enforcement is enabled.
    pub fn produce_as(
        &self,
        principal: Uid,
        topic: &str,
        event: Event,
        acks: AckLevel,
    ) -> OctoResult<ProduceReceipt> {
        if let Some(acl) = &self.inner.acl {
            acl.check(topic, principal, Permission::Write)?;
        }
        self.produce(topic, event, acks)
    }

    /// Fetch with a principal; requires READ on the topic when ACL
    /// enforcement is enabled.
    pub fn fetch_as(
        &self,
        principal: Uid,
        topic: &str,
        partition: PartitionId,
        offset: Offset,
        max_records: usize,
    ) -> OctoResult<Vec<Record>> {
        if let Some(acl) = &self.inner.acl {
            acl.check(topic, principal, Permission::Read)?;
        }
        self.fetch(topic, partition, offset, max_records)
    }

    // ----- exactly-once: pid registration, transactions, read-committed -----

    /// Register (or re-register) a producer identity with the
    /// controller. Re-registering the same name bumps the epoch,
    /// fencing the previous holder. Persisted via the zoo when
    /// attached, and via the offset checkpoint when durable.
    pub fn register_producer(&self, name: &str) -> OctoResult<ProducerIdentity> {
        let id = self.inner.eos.pids.register(name, self.inner.zoo.as_ref())?;
        // durable clusters persist the registry eagerly: an identity
        // must survive a crash that happens before the next offset
        // commit would have checkpointed it
        if let Some(d) = &self.inner.durability {
            let _ = d.checkpoint.write_now(&self.inner.groups.offsets_snapshot());
        }
        Ok(id)
    }

    /// Begin a transaction for a registered transactional id.
    pub fn txn_begin(&self, name: &str, id: ProducerIdentity) -> OctoResult<()> {
        self.inner.eos.txns.begin(name, id.pid, id.epoch, self.inner.zoo.as_ref())
    }

    /// Produce events into an open transaction. The records are
    /// invisible to read-committed consumers until the commit marker
    /// lands.
    pub fn txn_produce(
        &self,
        name: &str,
        id: ProducerIdentity,
        topic: &str,
        partition: PartitionId,
        events: Vec<Event>,
    ) -> OctoResult<ProduceReceipt> {
        if events.is_empty() {
            return Err(OctoError::Invalid("empty batch".into()));
        }
        self.inner.eos.txns.add_partition(name, id.epoch, topic, partition)?;
        let len = events.len() as u64;
        let seq = {
            let mut seqs = self.inner.eos.txn_seqs.lock();
            let s = seqs.entry((id.pid, topic.to_string(), partition)).or_insert(0);
            let seq = *s;
            *s += len;
            seq
        };
        let batch = RecordBatch::new(events)
            .with_producer(ProducerStamp { pid: id.pid, epoch: id.epoch, seq }, true);
        self.produce_batch(topic, partition, batch, AckLevel::All)
    }

    /// Buffer consumed-offset commits inside the open transaction; they
    /// are applied atomically with the produced records at commit time.
    pub fn txn_send_offsets(
        &self,
        name: &str,
        id: ProducerIdentity,
        offsets: Vec<TxnOffset>,
    ) -> OctoResult<()> {
        self.inner.eos.txns.add_offsets(name, id.epoch, offsets)
    }

    /// Commit the open transaction: write commit markers to every
    /// touched partition, then apply the buffered offset commits.
    pub fn txn_commit(&self, name: &str, id: ProducerIdentity) -> OctoResult<()> {
        self.txn_finish(name, id, true)
    }

    /// Abort the open transaction: write abort markers (read-committed
    /// consumers drop the records) and discard buffered offsets.
    pub fn txn_abort(&self, name: &str, id: ProducerIdentity) -> OctoResult<()> {
        self.txn_finish(name, id, false)
    }

    fn txn_finish(&self, name: &str, id: ProducerIdentity, commit: bool) -> OctoResult<()> {
        let (pid, partitions, offsets) =
            self.inner.eos.txns.prepare(name, id.epoch, commit, self.inner.zoo.as_ref())?;
        let marker = if commit { ControlMarker::Commit } else { ControlMarker::Abort };
        for (topic, partition) in &partitions {
            let batch = RecordBatch::control_batch(pid, id.epoch, marker);
            self.produce_batch(topic, *partition, batch, AckLevel::All)?;
        }
        if commit {
            for o in &offsets {
                self.inner.groups.commit_unchecked(&o.group, &o.topic, o.partition, o.offset);
            }
        }
        self.inner.eos.txns.complete(name, id.epoch, self.inner.zoo.as_ref())
    }

    /// The last stable offset of a partition: the high watermark
    /// bounded by the earliest still-open transaction.
    pub fn last_stable_offset(&self, topic: &str, partition: PartitionId) -> OctoResult<Offset> {
        let hwm = self.latest_offset(topic, partition)?;
        Ok(self.inner.eos.txn_index.last_stable_offset(topic, partition, hwm))
    }

    /// Fetch with read-committed isolation: stop at the last stable
    /// offset, drop control records and aborted transactional records.
    /// Returns the surviving records plus the next offset to resume
    /// from, which can run past the last returned record when a whole
    /// aborted range was skipped.
    pub fn fetch_committed(
        &self,
        topic: &str,
        partition: PartitionId,
        offset: Offset,
        max_records: usize,
    ) -> OctoResult<(Vec<Record>, Offset)> {
        let hwm = self.latest_offset(topic, partition)?;
        let lso = self.inner.eos.txn_index.last_stable_offset(topic, partition, hwm);
        if offset >= lso {
            return Ok((Vec::new(), offset));
        }
        let fetched = self.fetch(topic, partition, offset, max_records)?;
        let mut out = Vec::with_capacity(fetched.len());
        let mut next = offset;
        for r in fetched {
            if r.offset >= lso {
                break;
            }
            next = next.max(r.offset + 1);
            let drop = match &r.eos {
                Some(e) if e.control.is_some() => true,
                Some(e) if e.txn => {
                    self.inner.eos.txn_index.is_aborted(topic, partition, e.pid, r.offset)
                }
                _ => false,
            };
            if !drop {
                out.push(r);
            }
        }
        Ok((out, next))
    }
}

/// Builder for [`Cluster`].
pub struct ClusterBuilder {
    broker_count: usize,
    acl: Option<AclStore>,
    zoo: Option<ZooService>,
    clock: Arc<dyn Clock>,
    fault: Option<FaultInjector>,
    metrics: Option<Arc<MetricsRegistry>>,
    spans: Option<Arc<SpanSink>>,
    data_dir: Option<PathBuf>,
    flush_policy: FlushPolicy,
    checkpoint_every: u64,
}

impl ClusterBuilder {
    /// Enable broker-side ACL enforcement backed by `acl`.
    pub fn acl(mut self, acl: AclStore) -> Self {
        self.acl = Some(acl);
        self
    }

    /// Record topic metadata in a coordination service (the MSK↔
    /// ZooKeeper wiring of §IV-C).
    pub fn zoo(mut self, zoo: ZooService) -> Self {
        self.zoo = Some(zoo);
        self
    }

    /// Use an injected clock.
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Share a fault injector with a chaos harness (defaults to a
    /// quiescent injector).
    pub fn fault_injector(mut self, fault: FaultInjector) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Record into a shared metrics registry (defaults to a fresh one;
    /// multi-cluster setups like mirroring can share a registry and
    /// read one merged snapshot).
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Record causal spans into `sink` (share one sink with producers
    /// and consumers for complete trees; defaults to a disabled sink).
    pub fn spans(mut self, sink: Arc<SpanSink>) -> Self {
        self.spans = Some(sink);
        self
    }

    /// Persist partition logs and offset checkpoints under `dir`. The
    /// cluster reopens whatever a previous incarnation left there:
    /// topics, records, and committed offsets all survive a cold
    /// restart.
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    /// When durable appends are fsynced (default [`FlushPolicy::PerBatch`]).
    /// Only meaningful together with [`ClusterBuilder::data_dir`].
    pub fn flush_policy(mut self, policy: FlushPolicy) -> Self {
        self.flush_policy = policy;
        self
    }

    /// Write the committed-offset checkpoint every `n`-th commit
    /// (default 1: every commit; clamped to at least 1). Only
    /// meaningful together with [`ClusterBuilder::data_dir`].
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.checkpoint_every = n.max(1);
        self
    }

    /// Build the cluster, panicking on durable-store IO errors. Use
    /// [`ClusterBuilder::try_build`] to handle those as values.
    pub fn build(self) -> Cluster {
        self.try_build().expect("cluster build failed")
    }

    /// Build the cluster. Only durable construction (opening the data
    /// dir, recovering logs, reading the offset checkpoint) can fail.
    pub fn try_build(self) -> OctoResult<Cluster> {
        assert!(self.broker_count > 0, "cluster needs at least one broker");
        let registry = self.metrics.unwrap_or_else(MetricsRegistry::shared);

        // durable plumbing first: brokers need the store context at birth
        let mut durability = None;
        let mut store_ctx = None;
        let mut restored_offsets = Vec::new();
        if let Some(root) = &self.data_dir {
            fs::create_dir_all(root.join("topics"))?;
            let metrics = StoreMetrics::new(&registry);
            let (ckpt, restored) =
                OffsetCheckpoint::open(root.join("offsets.ckpt"), self.checkpoint_every, metrics.clone());
            restored_offsets = restored;
            durability = Some(DurabilityState {
                info: DurabilityInfo {
                    data_dir: root.display().to_string(),
                    flush_policy: self.flush_policy,
                    checkpoint_every: self.checkpoint_every,
                },
                checkpoint: Arc::new(ckpt),
            });
            // the cold tier lives beside the broker dirs; topics opt in
            // per-partition via `cold_after_bytes`
            store_ctx = Some(Arc::new(StoreContext {
                root: root.clone(),
                policy: self.flush_policy,
                metrics,
                cold: Some(Arc::new(crate::tier::FsColdStore::new(root.join("cold")))),
            }));
        }

        let brokers: Vec<Arc<Broker>> = (0..self.broker_count)
            .map(|i| {
                let id = BrokerId(i as u32);
                Arc::new(match &store_ctx {
                    Some(ctx) => Broker::with_store(id, Arc::clone(ctx)),
                    None => Broker::new(id),
                })
            })
            .collect();
        let counters = ClusterCounters::new(&registry);
        let lag = Arc::new(LagTracker::new(Arc::clone(&registry)));
        let health = ClusterHealth::new(Arc::clone(&registry));
        let mut groups = GroupCoordinator::with_lag_tracker(Arc::clone(&lag));
        if let Some(d) = &durability {
            groups.attach_checkpoint(Arc::clone(&d.checkpoint));
        }
        let fault = self.fault.unwrap_or_default();
        let replication = ReplicationPool::new(&brokers, fault.clone());
        let cluster = Cluster {
            inner: Arc::new(ClusterInner {
                brokers: RwLock::new(brokers),
                store_ctx,
                topics: RwLock::new(HashMap::new()),
                stats: RwLock::new(HashMap::new()),
                groups,
                acl: self.acl,
                zoo: self.zoo,
                clock: self.clock,
                round_robin: AtomicU64::new(0),
                fault,
                obs: StageMetrics::new(registry),
                counters,
                lag,
                health,
                spans: self.spans.unwrap_or_else(|| Arc::new(SpanSink::disabled())),
                slow: Arc::new(SlowRequestRing::default()),
                durability,
                replication,
                eos: EosState::default(),
                reassign: ReassignTracker::default(),
            }),
        };
        // re-create persisted topics (which recovers their partition
        // logs from disk), then restore committed offsets on top
        cluster.reload_persisted_topics()?;
        cluster.inner.groups.restore_offsets(restored_offsets);
        if let Some(d) = &cluster.inner.durability {
            // the checkpoint restores the pid registry (identities and
            // fencing epochs); dedup windows come from the logs below
            cluster.inner.eos.pids.restore(d.checkpoint.take_restored_producers());
            let pids = cluster.inner.eos.pids.clone();
            d.checkpoint.set_producer_source(move || pids.snapshot());
        }
        cluster.rebuild_eos_all();
        Ok(cluster)
    }
}

/// The keyed-partition function of the default partitioner, shared so
/// remote transports compute the same partition client-side that the
/// broker would have chosen for the key.
pub fn key_partition(key: &[u8], partitions: u32) -> PartitionId {
    (fxhash(key) % partitions.max(1) as u64) as u32
}

/// FxHash-style mixing for the default partitioner.
fn fxhash(data: &[u8]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h = 0u64;
    for &b in data {
        h = (h.rotate_left(5) ^ b as u64).wrapping_mul(SEED);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(s: &str) -> Event {
        Event::from_bytes(s.as_bytes().to_vec())
    }

    fn cluster2() -> Cluster {
        let c = Cluster::new(2);
        c.create_topic("t", TopicConfig::default()).unwrap();
        c
    }

    #[test]
    fn produce_fetch_roundtrip() {
        let c = cluster2();
        let r = c.produce_batch("t", 0, RecordBatch::new(vec![ev("a"), ev("b")]), AckLevel::Leader).unwrap();
        assert_eq!(r.base_offset, 0);
        assert_eq!(r.count, 2);
        assert!(r.persisted);
        let recs = c.fetch("t", 0, 0, 10).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(&recs[1].value[..], b"b");
        assert_eq!(c.latest_offset("t", 0).unwrap(), 2);
        assert_eq!(c.earliest_offset("t", 0).unwrap(), 0);
    }

    #[test]
    fn topic_creation_is_idempotent_but_conflicts_on_change() {
        let c = cluster2();
        c.create_topic("t", TopicConfig::default()).unwrap();
        assert!(matches!(
            c.create_topic("t", TopicConfig::default().with_partitions(8)),
            Err(OctoError::TopicExists(_))
        ));
        assert!(matches!(c.create_topic("bad name", TopicConfig::default()), Err(OctoError::Invalid(_))));
        assert!(matches!(c.create_topic("", TopicConfig::default()), Err(OctoError::Invalid(_))));
    }

    #[test]
    fn replication_factor_exceeding_brokers_rejected() {
        let c = Cluster::new(2);
        assert!(c.create_topic("t4", TopicConfig::default().with_replication(4)).is_err());
    }

    #[test]
    fn keyed_events_stick_to_a_partition() {
        let c = Cluster::new(2);
        c.create_topic("t", TopicConfig::default().with_partitions(4)).unwrap();
        let p1 = c.partition_for("t", Some(b"experiment-7")).unwrap();
        let p2 = c.partition_for("t", Some(b"experiment-7")).unwrap();
        assert_eq!(p1, p2);
        // unkeyed round-robins over all partitions
        let mut seen = std::collections::HashSet::new();
        for _ in 0..16 {
            seen.insert(c.partition_for("t", None).unwrap());
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn replication_keeps_followers_in_sync() {
        let c = cluster2();
        c.produce_batch("t", 0, RecordBatch::new(vec![ev("x")]), AckLevel::All).unwrap();
        let leader = c.leader_broker("t", 0).unwrap();
        let follower = BrokerId(1 - leader.0);
        let l = c.broker_unchecked(leader).log("t", 0).unwrap().lock().len();
        let f = c.broker_unchecked(follower).log("t", 0).unwrap().lock().len();
        assert_eq!(l, 1);
        assert_eq!(f, 1);
        assert_eq!(c.isr_of("t", 0).unwrap().len(), 2);
    }

    #[test]
    fn leader_failover_preserves_data() {
        let c = cluster2();
        c.produce_batch("t", 0, RecordBatch::new(vec![ev("a")]), AckLevel::All).unwrap();
        let leader = c.leader_broker("t", 0).unwrap();
        c.kill_broker(leader).unwrap();
        // produce transparently fails over
        c.produce_batch("t", 0, RecordBatch::new(vec![ev("b")]), AckLevel::Leader).unwrap();
        assert_ne!(c.leader_broker("t", 0).unwrap(), leader);
        let recs = c.fetch("t", 0, 0, 10).unwrap();
        assert_eq!(recs.len(), 2, "no data lost across failover");
        assert_eq!(c.live_broker_count(), 1);
    }

    #[test]
    fn acks_all_fails_without_quorum() {
        let c = Cluster::new(2);
        c.create_topic("t", TopicConfig::default().with_min_insync(2)).unwrap();
        c.kill_broker(BrokerId(1)).unwrap();
        // acks=1 still works (leader-only durability)
        let leader = c.leader_broker("t", 0).unwrap();
        if leader == BrokerId(1) {
            // force failover first
            let _ = c.produce_batch("t", 0, RecordBatch::new(vec![ev("x")]), AckLevel::Leader);
        }
        let r = c.produce_batch("t", 0, RecordBatch::new(vec![ev("a")]), AckLevel::Leader);
        assert!(r.is_ok());
        // acks=all needs 2 in-sync replicas
        let r = c.produce_batch("t", 0, RecordBatch::new(vec![ev("b")]), AckLevel::All);
        assert!(matches!(r, Err(OctoError::NotEnoughReplicas { .. })));
        // restart heals the ISR
        c.restart_broker(BrokerId(1)).unwrap();
        c.produce_batch("t", 0, RecordBatch::new(vec![ev("c")]), AckLevel::All).unwrap();
    }

    #[test]
    fn acks_none_swallows_failures() {
        let c = cluster2();
        c.kill_broker(BrokerId(0)).unwrap();
        c.kill_broker(BrokerId(1)).unwrap();
        // all brokers dead: acks=0 hides the loss
        let r = c.produce_batch("t", 0, RecordBatch::new(vec![ev("a")]), AckLevel::None).unwrap();
        assert!(!r.persisted);
        // but acks=1 reports it
        assert!(c.produce_batch("t", 0, RecordBatch::new(vec![ev("a")]), AckLevel::Leader).is_err());
        // routing errors surface even at acks=0
        assert!(c.produce_batch("nope", 0, RecordBatch::new(vec![ev("a")]), AckLevel::None).is_err());
    }

    #[test]
    fn restarted_broker_resyncs_missed_records() {
        let c = cluster2();
        let leader = c.leader_broker("t", 0).unwrap();
        let follower = BrokerId(1 - leader.0);
        c.kill_broker(follower).unwrap();
        for i in 0..5 {
            c.produce_batch("t", 0, RecordBatch::new(vec![ev(&format!("{i}"))]), AckLevel::Leader)
                .unwrap();
        }
        assert_eq!(c.isr_of("t", 0).unwrap(), vec![leader]);
        c.restart_broker(follower).unwrap();
        assert_eq!(c.isr_of("t", 0).unwrap().len(), 2);
        let flog = c.broker_unchecked(follower).log("t", 0).unwrap();
        assert_eq!(flog.lock().len(), 5, "follower caught up");
    }

    #[test]
    fn kill_and_restart_are_idempotent_typed_errors() {
        let c = cluster2();
        // restart a live broker -> Conflict, state untouched
        assert!(matches!(c.restart_broker(BrokerId(0)), Err(OctoError::Conflict(_))));
        assert!(c.broker_unchecked(BrokerId(0)).is_alive());
        c.kill_broker(BrokerId(0)).unwrap();
        // double-kill -> Conflict, not a panic
        assert!(matches!(c.kill_broker(BrokerId(0)), Err(OctoError::Conflict(_))));
        assert_eq!(c.live_broker_count(), 1);
        c.restart_broker(BrokerId(0)).unwrap();
        assert_eq!(c.live_broker_count(), 2);
        // out-of-range broker ids -> NotFound, not an index panic
        assert!(matches!(c.kill_broker(BrokerId(9)), Err(OctoError::NotFound(_))));
        assert!(matches!(c.restart_broker(BrokerId(9)), Err(OctoError::NotFound(_))));
        assert!(matches!(c.resync_broker(BrokerId(9)), Err(OctoError::NotFound(_))));
    }

    #[test]
    fn severed_link_shrinks_isr_and_heal_resync_restores_it() {
        let c = cluster2();
        let leader = c.leader_broker("t", 0).unwrap();
        let follower = BrokerId(1 - leader.0);
        c.fault_injector().sever_link(leader, follower);
        c.produce_batch("t", 0, RecordBatch::new(vec![ev("a")]), AckLevel::Leader).unwrap();
        assert_eq!(c.isr_of("t", 0).unwrap(), vec![leader], "partitioned follower dropped");
        // heal the network, resync the stranded (still-live) follower
        c.fault_injector().heal_all_links();
        c.resync_broker(follower).unwrap();
        assert_eq!(c.isr_of("t", 0).unwrap().len(), 2);
        let flog = c.broker_unchecked(follower).log("t", 0).unwrap();
        assert_eq!(flog.lock().len(), 1, "follower caught up after heal");
    }

    #[test]
    fn delivery_faults_shape_fetch_responses() {
        let c = cluster2();
        for i in 0..4 {
            c.produce_batch("t", 0, RecordBatch::new(vec![ev(&format!("{i}"))]), AckLevel::Leader)
                .unwrap();
        }
        let leader = c.leader_broker("t", 0).unwrap();
        c.fault_injector().inject_delivery(leader, DeliveryFault::Drop, 1);
        assert!(c.fetch("t", 0, 2, 10).unwrap().is_empty(), "dropped in transit");
        // next fetch from the same position succeeds: at-least-once
        assert_eq!(c.fetch("t", 0, 2, 10).unwrap().len(), 2);
        // a duplicate fault rewinds delivery below the requested offset
        c.fault_injector().inject_delivery(leader, DeliveryFault::Duplicate { rewind: 2 }, 1);
        let recs = c.fetch("t", 0, 3, 10).unwrap();
        assert_eq!(recs[0].offset, 1, "replayed already-delivered records");
        // rewind clamps at log start
        c.fault_injector().inject_delivery(leader, DeliveryFault::Duplicate { rewind: 99 }, 1);
        assert_eq!(c.fetch("t", 0, 1, 10).unwrap()[0].offset, 0);
    }

    #[test]
    fn corrupt_tail_recovered_on_restart() {
        let c = cluster2();
        for i in 0..6 {
            c.produce_batch("t", 0, RecordBatch::new(vec![ev(&format!("{i}"))]), AckLevel::All)
                .unwrap();
        }
        let leader = c.leader_broker("t", 0).unwrap();
        let follower = BrokerId(1 - leader.0);
        assert_eq!(c.corrupt_log_tail(follower, "t", 0, 2).unwrap(), 2);
        c.kill_broker(follower).unwrap();
        c.restart_broker(follower).unwrap();
        // CRC recovery truncated the corrupt tail, resync rebuilt it
        let flog = c.broker_unchecked(follower).log("t", 0).unwrap();
        let recs = flog.lock().read(0, 100).unwrap();
        assert_eq!(recs.len(), 6, "resynced to full length from leader");
        assert!(recs.iter().all(|r| r.verify()), "no corrupt records survive restart");
        assert!(matches!(
            c.corrupt_log_tail(BrokerId(9), "t", 0, 1),
            Err(OctoError::NotFound(_))
        ));
    }

    #[test]
    fn resync_alone_recovers_corrupt_tail() {
        // regression: resync_broker used to skip log recovery (only the
        // restart path scrubbed tails), so a broker healed from a
        // network partition without rebooting kept its corrupt records
        let c = cluster2();
        for i in 0..6 {
            c.produce_batch("t", 0, RecordBatch::new(vec![ev(&format!("{i}"))]), AckLevel::All)
                .unwrap();
        }
        let leader = c.leader_broker("t", 0).unwrap();
        let follower = BrokerId(1 - leader.0);
        assert_eq!(c.corrupt_log_tail(follower, "t", 0, 2).unwrap(), 2);
        // no kill, no restart: the heal path alone must scrub the tail
        c.resync_broker(follower).unwrap();
        let flog = c.broker_unchecked(follower).log("t", 0).unwrap();
        let recs = flog.lock().read(0, 100).unwrap();
        assert_eq!(recs.len(), 6, "resynced to full length from leader");
        assert!(recs.iter().all(|r| r.verify()), "no corrupt records survive resync");

        // and when the broker is still leader (resync has no peer to
        // copy from), recovery still truncates the corrupt suffix
        assert_eq!(c.corrupt_log_tail(leader, "t", 0, 2).unwrap(), 2);
        c.resync_broker(leader).unwrap();
        let llog = c.broker_unchecked(leader).log("t", 0).unwrap();
        let recs = llog.lock().read(0, 100).unwrap();
        assert_eq!(recs.len(), 4, "corrupt leader tail truncated");
        assert!(recs.iter().all(|r| r.verify()));
    }

    #[test]
    fn resync_skips_dead_leader() {
        // after a correlated outage the recorded leader may still be
        // down; a recovering follower must keep its own log rather than
        // adopt a dead peer's stale snapshot
        let c = cluster2();
        for i in 0..4 {
            c.produce_batch("t", 0, RecordBatch::new(vec![ev(&format!("{i}"))]), AckLevel::All)
                .unwrap();
        }
        let leader = c.leader_broker("t", 0).unwrap();
        let follower = BrokerId(1 - leader.0);
        c.kill_broker(follower).unwrap();
        c.kill_broker(leader).unwrap();
        // failover moved leadership to the follower when it died last?
        // no: with both dead, whichever the metadata still names may be
        // dead. Restart only one broker; its resync must not panic or
        // wipe data because the other is still down.
        c.restart_broker(follower).unwrap();
        let flog = c.broker_unchecked(follower).log("t", 0).unwrap();
        assert_eq!(flog.lock().read(0, 100).unwrap().len(), 4);
        c.restart_broker(leader).unwrap();
        assert_eq!(c.fetch("t", 0, 0, 100).unwrap().len(), 4);
    }

    #[test]
    fn durable_cluster_cold_restart_roundtrip() {
        let tmp = crate::store::TempDir::new("octopus-data-roundtrip");
        {
            let c = Cluster::builder(2).data_dir(tmp.path()).build();
            c.create_topic("t", TopicConfig::default()).unwrap();
            for i in 0..5 {
                c.produce_batch("t", 0, RecordBatch::new(vec![ev(&format!("{i}"))]), AckLevel::All)
                    .unwrap();
            }
            c.coordinator().commit_unchecked("g", "t", 0, 3);
            c.sync_all().unwrap();
        }
        // a brand-new cluster over the same data dir sees everything
        let c = Cluster::builder(2).data_dir(tmp.path()).build();
        assert!(c.topic_exists("t"), "topic config reloaded from disk");
        let recs = c.fetch("t", 0, 0, 100).unwrap();
        assert_eq!(recs.len(), 5, "records recovered from segments");
        assert!(recs.iter().all(|r| r.verify()));
        assert_eq!(c.latest_offset("t", 0).unwrap(), 5);
        assert_eq!(
            c.coordinator().committed("g", "t", 0),
            Some(3),
            "committed offset restored from checkpoint"
        );
        assert!(c.durability().is_some());
    }

    #[test]
    fn partition_growth_only() {
        let c = cluster2();
        c.set_partitions("t", 4).unwrap();
        assert_eq!(c.partition_count("t").unwrap(), 4);
        c.produce_batch("t", 3, RecordBatch::new(vec![ev("x")]), AckLevel::Leader).unwrap();
        assert!(matches!(c.set_partitions("t", 2), Err(OctoError::Invalid(_))));
        assert!(matches!(c.set_partitions("nope", 4), Err(OctoError::UnknownTopic(_))));
    }

    #[test]
    fn config_update_rules() {
        let c = cluster2();
        let mut cfg = c.topic_config("t").unwrap();
        cfg.retention.retention_ms = Some(1000);
        c.update_topic_config("t", cfg.clone()).unwrap();
        assert_eq!(c.topic_config("t").unwrap().retention.retention_ms, Some(1000));
        cfg.partitions = 10;
        assert!(c.update_topic_config("t", cfg).is_err());
    }

    #[test]
    fn delete_topic_cleans_brokers() {
        let c = cluster2();
        assert!(c.broker_unchecked(BrokerId(0)).partition_count() > 0);
        c.delete_topic("t").unwrap();
        assert!(!c.topic_exists("t"));
        assert_eq!(c.broker_unchecked(BrokerId(0)).partition_count(), 0);
        assert!(c.delete_topic("t").is_err());
    }

    #[test]
    fn group_lag_reflects_backlog() {
        let c = cluster2();
        for _ in 0..10 {
            c.produce("t", ev("x"), AckLevel::Leader).unwrap();
        }
        assert_eq!(c.group_lag("g", "t").unwrap(), 10);
        // committing offsets reduces lag
        let end0 = c.latest_offset("t", 0).unwrap();
        c.coordinator().commit_unchecked("g", "t", 0, end0);
        let end1 = c.latest_offset("t", 1).unwrap();
        assert_eq!(c.group_lag("g", "t").unwrap(), end1);
    }

    #[test]
    fn acl_enforcement_on_produce_and_fetch() {
        let acl = AclStore::new();
        let alice = Uid(1);
        let bob = Uid(2);
        acl.register_topic("private", alice).unwrap();
        let c = Cluster::builder(2).acl(acl.clone()).build();
        c.create_topic("private", TopicConfig::default()).unwrap();
        c.produce_as(alice, "private", ev("secret"), AckLevel::Leader).unwrap();
        assert!(matches!(
            c.produce_as(bob, "private", ev("spam"), AckLevel::Leader),
            Err(OctoError::Unauthorized(_))
        ));
        assert!(matches!(
            c.fetch_as(bob, "private", 0, 0, 10),
            Err(OctoError::Unauthorized(_))
        ));
        acl.grant("private", alice, bob, &[Permission::Read]).unwrap();
        assert!(c.fetch_as(bob, "private", 0, 0, 10).is_ok());
    }

    #[test]
    fn zoo_records_topic_metadata() {
        let zoo = ZooService::new(1);
        let c = Cluster::builder(2).zoo(zoo.clone()).build();
        c.create_topic("t", TopicConfig::default()).unwrap();
        assert!(zoo.exists("/octopus/topics/t").unwrap());
        c.delete_topic("t").unwrap();
        assert!(!zoo.exists("/octopus/topics/t").unwrap());
    }

    #[test]
    fn maintenance_runs_across_topics() {
        let c = Cluster::new(2);
        let mut cfg = TopicConfig::default().with_partitions(1);
        cfg.segment_bytes = 8;
        cfg.retention.retention_ms = Some(0);
        c.create_topic("t", cfg).unwrap();
        for i in 0..10 {
            c.produce_batch("t", 0, RecordBatch::new(vec![ev(&format!("{i:08}"))]), AckLevel::Leader)
                .unwrap();
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        let removed = c.run_maintenance();
        assert!(removed > 0);
    }

    #[test]
    fn topic_stats_track_traffic() {
        let c = cluster2();
        assert_eq!(c.topic_stats("t"), TopicStats::default());
        c.produce_batch("t", 0, RecordBatch::new(vec![ev("hello")]), AckLevel::Leader).unwrap();
        let s = c.topic_stats("t");
        assert_eq!(s.events_in, 1);
        assert_eq!(s.bytes_in, 5);
        assert_eq!(s.events_out, 0);
        c.fetch("t", 0, 0, 10).unwrap();
        c.fetch("t", 0, 0, 10).unwrap(); // two consumers = double egress
        let s = c.topic_stats("t");
        assert_eq!(s.events_out, 2);
        assert_eq!(s.bytes_out, 10);
        // unknown topics read as zero, not error (metrics are best-effort)
        assert_eq!(c.topic_stats("ghost"), TopicStats::default());
    }

    #[test]
    fn stage_metrics_populated_on_live_path() {
        let c = cluster2();
        c.produce_batch("t", 0, RecordBatch::new(vec![ev("a"), ev("b")]), AckLevel::All).unwrap();
        c.fetch("t", 0, 0, 10).unwrap();
        let snap = c.metrics().snapshot();
        assert_eq!(snap.histograms["octopus_stage_append_ns"].count(), 1);
        assert_eq!(snap.histograms["octopus_stage_replicate_ns"].count(), 1);
        assert_eq!(snap.histograms["octopus_stage_fetch_ns"].count(), 1);
        assert_eq!(snap.counters["octopus_broker_events_in_total"], 2);
        assert_eq!(snap.counters["octopus_broker_events_out_total"], 2);
    }

    #[test]
    fn failover_is_bounded_when_no_leader_can_be_elected() {
        // With every broker dead, the old recursive retry would loop
        // through failover() indefinitely if failover itself didn't
        // error; the bounded resolver must surface Unavailable either
        // way, without unbounded recursion.
        let c = cluster2();
        c.kill_broker(BrokerId(0)).unwrap();
        c.kill_broker(BrokerId(1)).unwrap();
        let r = c.produce_batch("t", 0, RecordBatch::new(vec![ev("x")]), AckLevel::Leader);
        assert!(matches!(r, Err(OctoError::Unavailable(_))));
        assert!(matches!(c.fetch("t", 0, 0, 10), Err(OctoError::Unavailable(_))));
        assert!(matches!(c.latest_offset("t", 0), Err(OctoError::Unavailable(_))));
    }

    #[test]
    fn shared_registry_across_clusters() {
        let reg = MetricsRegistry::shared();
        let a = Cluster::builder(1).metrics(Arc::clone(&reg)).build();
        let b = Cluster::builder(1).metrics(Arc::clone(&reg)).build();
        a.create_topic("t", TopicConfig::default().with_replication(1)).unwrap();
        b.create_topic("t", TopicConfig::default().with_replication(1)).unwrap();
        a.produce_batch("t", 0, RecordBatch::new(vec![ev("x")]), AckLevel::Leader).unwrap();
        b.produce_batch("t", 0, RecordBatch::new(vec![ev("y")]), AckLevel::Leader).unwrap();
        assert_eq!(reg.snapshot().counters["octopus_broker_events_in_total"], 2);
    }

    #[test]
    fn add_broker_expands_the_cluster_online() {
        let c = Cluster::new(2);
        c.create_topic("t", TopicConfig::default()).unwrap();
        c.produce_batch("t", 0, RecordBatch::new(vec![ev("a")]), AckLevel::All).unwrap();
        let id = c.add_broker().unwrap();
        assert_eq!(id, BrokerId(2));
        assert_eq!(c.broker_count(), 3);
        assert_eq!(c.live_broker_count(), 3);
        // existing traffic is unaffected
        c.produce_batch("t", 0, RecordBatch::new(vec![ev("b")]), AckLevel::All).unwrap();
        // new topics can now use rf=3
        c.create_topic("wide", TopicConfig::default().with_replication(3)).unwrap();
        c.produce_batch("wide", 0, RecordBatch::new(vec![ev("c")]), AckLevel::All).unwrap();
        assert_eq!(c.isr_of("wide", 0).unwrap().len(), 3);
        assert_eq!(c.health_report().status, crate::health::HealthStatus::Green);
    }

    #[test]
    fn move_leader_transfers_without_loss() {
        let c = cluster2();
        for i in 0..5 {
            c.produce_batch("t", 0, RecordBatch::new(vec![ev(&format!("{i}"))]), AckLevel::All)
                .unwrap();
        }
        let old = c.leader_broker("t", 0).unwrap();
        let new = BrokerId(1 - old.0);
        c.move_leader("t", 0, new).unwrap();
        assert_eq!(c.leader_broker("t", 0).unwrap(), new);
        // self-move is a no-op, not an error
        c.move_leader("t", 0, new).unwrap();
        // traffic keeps flowing through the new leader
        c.produce_batch("t", 0, RecordBatch::new(vec![ev("after")]), AckLevel::All).unwrap();
        assert_eq!(c.fetch("t", 0, 0, 100).unwrap().len(), 6);
        // a non-replica target is rejected
        assert!(matches!(c.move_leader("t", 0, BrokerId(9)), Err(OctoError::Invalid(_))));
    }

    #[test]
    fn reassignment_moves_replica_with_data_and_bumps_epoch() {
        let c = Cluster::new(3);
        c.create_topic("t", TopicConfig::default().with_partitions(1).with_replication(2))
            .unwrap();
        for i in 0..10 {
            c.produce_batch("t", 0, RecordBatch::new(vec![ev(&format!("{i}"))]), AckLevel::All)
                .unwrap();
        }
        let replicas = c.replicas_of("t", 0).unwrap();
        let spare = (0..3)
            .map(BrokerId)
            .find(|b| !replicas.contains(b))
            .expect("rf 2 of 3 leaves a spare");
        let from = *replicas.iter().find(|b| **b != c.leader_broker("t", 0).unwrap()).unwrap();
        assert_eq!(c.assignment_epoch("t", 0).unwrap(), 0);
        c.alter_partition_assignment("t", 0, from, spare, &MoveThrottle::unlimited()).unwrap();
        let replicas = c.replicas_of("t", 0).unwrap();
        assert!(replicas.contains(&spare));
        assert!(!replicas.contains(&from));
        assert_eq!(c.assignment_epoch("t", 0).unwrap(), 1);
        assert!(c.isr_of("t", 0).unwrap().contains(&spare));
        // the learner holds the full, byte-identical log
        let moved = c.broker_unchecked(spare).log("t", 0).unwrap();
        let recs = moved.lock().read(0, 100).unwrap();
        assert_eq!(recs.len(), 10);
        assert!(recs.iter().all(|r| r.verify()));
        // the old replica's log is gone
        assert!(c.broker_unchecked(from).log("t", 0).is_none());
        // acks=all still works through the new replica set
        c.produce_batch("t", 0, RecordBatch::new(vec![ev("post")]), AckLevel::All).unwrap();
        assert_eq!(moved.lock().len(), 11, "new replica receives post-move traffic");
        // the tracker recorded the completed move
        let moves = c.reassignments();
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].phase, crate::reassign::ReassignPhase::Completed);
    }

    #[test]
    fn reassignment_can_move_the_leader_replica() {
        let c = Cluster::new(3);
        c.create_topic("t", TopicConfig::default().with_partitions(1).with_replication(2))
            .unwrap();
        for i in 0..4 {
            c.produce_batch("t", 0, RecordBatch::new(vec![ev(&format!("{i}"))]), AckLevel::All)
                .unwrap();
        }
        let leader = c.leader_broker("t", 0).unwrap();
        let replicas = c.replicas_of("t", 0).unwrap();
        let spare = (0..3).map(BrokerId).find(|b| !replicas.contains(b)).unwrap();
        // moving the leader replica drains leadership first
        c.alter_partition_assignment("t", 0, leader, spare, &MoveThrottle::unlimited()).unwrap();
        assert_ne!(c.leader_broker("t", 0).unwrap(), leader);
        assert!(!c.replicas_of("t", 0).unwrap().contains(&leader));
        assert_eq!(c.fetch("t", 0, 0, 100).unwrap().len(), 4, "no data lost");
        c.produce_batch("t", 0, RecordBatch::new(vec![ev("after")]), AckLevel::All).unwrap();
    }

    #[test]
    fn reassignment_rejects_bad_routes() {
        let c = Cluster::new(3);
        c.create_topic("t", TopicConfig::default().with_partitions(1).with_replication(2))
            .unwrap();
        let replicas = c.replicas_of("t", 0).unwrap();
        let spare = (0..3).map(BrokerId).find(|b| !replicas.contains(b)).unwrap();
        let t = MoveThrottle::unlimited();
        // source not a replica
        assert!(matches!(
            c.alter_partition_assignment("t", 0, spare, replicas[0], &t),
            Err(OctoError::Invalid(_))
        ));
        // target already a replica
        assert!(matches!(
            c.alter_partition_assignment("t", 0, replicas[0], replicas[1], &t),
            Err(OctoError::Invalid(_))
        ));
        // dead target
        c.kill_broker(spare).unwrap();
        assert!(matches!(
            c.alter_partition_assignment("t", 0, replicas[0], spare, &t),
            Err(OctoError::Conflict(_))
        ));
        // unknown brokers
        assert!(c.alter_partition_assignment("t", 0, BrokerId(7), BrokerId(8), &t).is_err());
    }

    #[test]
    fn decommission_drains_replicas_and_retires() {
        let c = Cluster::new(3);
        c.create_topic("t", TopicConfig::default().with_partitions(2).with_replication(2))
            .unwrap();
        for p in 0..2 {
            for i in 0..5 {
                c.produce_batch(
                    "t",
                    p,
                    RecordBatch::new(vec![ev(&format!("{p}-{i}"))]),
                    AckLevel::All,
                )
                .unwrap();
            }
        }
        let victim = BrokerId(0);
        let moved = c.decommission_broker(victim, &MoveThrottle::unlimited()).unwrap();
        assert!(moved > 0, "broker 0 hosted replicas that had to move");
        assert!(c.broker_retired(victim).unwrap());
        assert_eq!(c.active_broker_count(), 2);
        for p in 0..2 {
            let replicas = c.replicas_of("t", p).unwrap();
            assert!(!replicas.contains(&victim));
            assert_eq!(replicas.len(), 2, "rf preserved through the drain");
            assert_ne!(c.leader_broker("t", p).unwrap(), victim);
            assert_eq!(c.fetch("t", p, 0, 100).unwrap().len(), 5);
            c.produce_batch("t", p, RecordBatch::new(vec![ev("post")]), AckLevel::All).unwrap();
        }
        // retired members don't pin health Yellow
        assert_eq!(c.health_report().status, crate::health::HealthStatus::Green);
        // double-decommission is a typed error
        assert!(matches!(
            c.decommission_broker(victim, &MoveThrottle::unlimited()),
            Err(OctoError::Conflict(_))
        ));
        // and the retired broker never hosts new topics
        c.create_topic("fresh", TopicConfig::default().with_replication(2)).unwrap();
        assert!(!c.replicas_of("fresh", 0).unwrap().contains(&victim));
    }

    #[test]
    fn decommission_refuses_when_no_spare_exists() {
        let c = cluster2();
        // rf 2 on 2 brokers: nowhere to drain to
        assert!(matches!(
            c.decommission_broker(BrokerId(0), &MoveThrottle::unlimited()),
            Err(OctoError::Unavailable(_))
        ));
        // nothing was retired by the failed attempt
        assert!(!c.broker_retired(BrokerId(0)).unwrap());
        c.produce_batch("t", 0, RecordBatch::new(vec![ev("still-works")]), AckLevel::All).unwrap();
    }

    #[test]
    fn rebalance_leaders_restores_preferred_leadership() {
        let c = Cluster::new(3);
        c.create_topic("t", TopicConfig::default().with_partitions(3).with_replication(2))
            .unwrap();
        for p in 0..3 {
            c.produce_batch("t", p, RecordBatch::new(vec![ev("x")]), AckLevel::All).unwrap();
        }
        // skew leadership away from the preferred (first) replica
        for p in 0..3 {
            let replicas = c.replicas_of("t", p).unwrap();
            c.move_leader("t", p, replicas[1]).unwrap();
        }
        let moved = c.rebalance_leaders();
        assert_eq!(moved, 3);
        for p in 0..3 {
            let replicas = c.replicas_of("t", p).unwrap();
            assert_eq!(c.leader_broker("t", p).unwrap(), replicas[0]);
        }
    }

    #[test]
    fn produce_reroutes_when_leadership_moves_mid_stream() {
        // a writer hammering a partition must survive leadership
        // bouncing between replicas without losing or duplicating acks
        let c = cluster2();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let c = c.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut acked = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if c.produce_batch("t", 0, RecordBatch::new(vec![ev("m")]), AckLevel::All)
                        .is_ok()
                    {
                        acked += 1;
                    }
                }
                acked
            })
        };
        for _ in 0..20 {
            let cur = c.leader_broker("t", 0).unwrap();
            let other = BrokerId(1 - cur.0);
            let _ = c.move_leader("t", 0, other);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        stop.store(true, Ordering::Relaxed);
        let acked = writer.join().unwrap();
        let len = c.fetch("t", 0, 0, usize::MAX).unwrap().len() as u64;
        assert_eq!(len, acked, "every acked produce appears exactly once");
    }

    #[test]
    fn concurrent_producers_get_unique_offsets() {
        let c = Cluster::new(2);
        c.create_topic("t", TopicConfig::default().with_partitions(1)).unwrap();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                let mut offsets = Vec::new();
                for _ in 0..100 {
                    let r = c
                        .produce_batch("t", 0, RecordBatch::new(vec![ev("x")]), AckLevel::Leader)
                        .unwrap();
                    offsets.push(r.base_offset);
                }
                offsets
            }));
        }
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 800, "offsets must be unique");
        assert_eq!(c.latest_offset("t", 0).unwrap(), 800);
    }
}
