//! Shared helpers for the benchmark harness binaries.
//!
//! Each binary under `src/bin/` regenerates one of the paper's tables
//! or figures (see DESIGN.md §3 for the index); this library holds the
//! ASCII table/plot plumbing they share.

/// Format a count with K/M suffixes, as the paper prints throughputs.
pub fn human_rate(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.0} K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Render a horizontal ASCII bar of `value` against `max` in `width`
/// columns.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Print a figure header in a consistent style.
pub fn figure_header(title: &str, caption: &str) {
    println!("{}", "=".repeat(74));
    println!("{title}");
    println!("{caption}");
    println!("{}", "=".repeat(74));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        assert_eq!(human_rate(4_289_000.0), "4.29 M");
        assert_eq!(human_rate(195_000.0), "195 K");
        assert_eq!(human_rate(42.0), "42");
    }

    #[test]
    fn bars() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########"); // clamped
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
