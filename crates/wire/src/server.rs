//! The broker-side wire server: a multiplexed threaded acceptor.
//!
//! One [`WireServer`] fronts a [`Cluster`] handle on a TCP listen
//! socket. Each accepted connection gets a reader (the accept-spawned
//! thread) and a writer thread joined by a **bounded** response queue:
//!
//! - The reader decodes frames, dispatches them against the cluster,
//!   and pushes responses into the queue. Requests pipeline freely —
//!   a client may have any number in flight; responses are matched by
//!   the echoed correlation id.
//! - The writer drains the queue to the socket. When a slow consumer
//!   stops reading, the socket send buffer fills, the writer blocks,
//!   the queue fills, and the reader's `send` blocks — a connection-
//!   level throttle that stops a slow client from ballooning server
//!   memory (the queue is the only buffering).
//!
//! Connections authenticate first: the opening frames must be
//! handshake requests (anonymous, bearer token, or SCRAM), and any
//! other api key before authentication — or any authentication
//! failure — draws an `AuthFailed` error frame followed by connection
//! teardown. There is no silent-hang path: failures are written
//! best-effort and the socket is shut down both ways.
//!
//! The server registers a sever-observer with the cluster's
//! [`FaultInjector`](octopus_broker::FaultInjector): when the chaos
//! layer partitions this server's
//! broker id, every live client socket is `shutdown(Both)` — a
//! simulated severed link becomes a real one under TCP transports.

use std::collections::HashMap;
use std::io::BufWriter;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, TrySendError};
use parking_lot::Mutex;

use octopus_auth::globus::AuthServer;
use octopus_auth::scram::{auth_message, ScramStore};
use octopus_auth::token::{AccessToken, Scope, TokenStatus};
use octopus_auth::Permission;
use octopus_broker::{BrokerId, Cluster, TopicConfig};
use octopus_types::obs::{now_ns, Counter, Gauge};
use octopus_types::{
    labeled, AtomicHistogram, MetricsRegistry, OctoError, OctoResult, SlowRequest, Uid,
};

use crate::codec::{ApiKey, HandshakeRequest, HandshakeResponse, Request, Response, TopicMeta};
use crate::error::{ErrorCode, WireError, WireFault};
use crate::frame::{read_frame, write_frame, Frame, DEFAULT_MAX_PAYLOAD, HEADER_LEN};

/// Tuning knobs for a [`WireServer`].
#[derive(Debug, Clone)]
pub struct WireServerConfig {
    /// The broker identity this server fronts; chaos partitions that
    /// name this id sever the server's live sockets.
    pub broker_id: BrokerId,
    /// A connection idle (no complete frame) for this long is closed.
    pub idle_timeout: Duration,
    /// Maximum accepted payload size (checked before allocation).
    pub max_payload: u32,
    /// Bound of the per-connection response queue; when full, request
    /// processing for that connection blocks (backpressure).
    pub response_queue: usize,
    /// When true, produce requests for partitions whose leader is not
    /// `broker_id` are rejected with `NotLeader` (carrying the current
    /// leader as a routing hint) instead of being served through the
    /// shared cluster handle. This models one-server-per-broker
    /// deployments where clients must follow leadership moves.
    pub strict_leadership: bool,
}

impl Default for WireServerConfig {
    fn default() -> Self {
        WireServerConfig {
            broker_id: BrokerId(0),
            idle_timeout: Duration::from_secs(30),
            max_payload: DEFAULT_MAX_PAYLOAD,
            response_queue: 128,
            strict_leadership: false,
        }
    }
}

/// Server-side authentication policy for the wire handshake.
#[derive(Clone, Default)]
pub struct Authenticator {
    allow_anonymous: bool,
    scram: Option<Arc<ScramStore>>,
    tokens: Option<AuthServer>,
    required_scope: Option<Scope>,
}

impl Authenticator {
    /// Accept anonymous connections (no credential mechanisms).
    pub fn open() -> Self {
        Authenticator { allow_anonymous: true, ..Default::default() }
    }

    /// Require authentication (anonymous handshakes are rejected).
    pub fn closed() -> Self {
        Authenticator::default()
    }

    /// Enable SCRAM password authentication against `store`.
    pub fn with_scram(mut self, store: Arc<ScramStore>) -> Self {
        self.scram = Some(store);
        self
    }

    /// Enable bearer-token authentication introspected against `auth`.
    pub fn with_tokens(mut self, auth: AuthServer) -> Self {
        self.tokens = Some(auth);
        self
    }

    /// Additionally require tokens to carry `scope`.
    pub fn with_required_scope(mut self, scope: Scope) -> Self {
        self.required_scope = Some(scope);
        self
    }
}

struct ConnEntry {
    stream: TcpStream,
}

/// The per-request pipeline stages the server times, in execution
/// order. `queue_wait` and `flush` are measured by the writer thread;
/// the rest by the reader.
const STAGE_NAMES: [&str; 6] = ["decode", "auth", "dispatch", "encode", "queue_wait", "flush"];
const STAGE_DECODE: usize = 0;
const STAGE_AUTH: usize = 1;
const STAGE_DISPATCH: usize = 2;
const STAGE_ENCODE: usize = 3;
const STAGE_QUEUE_WAIT: usize = 4;
const STAGE_FLUSH: usize = 5;

/// Pre-resolved metric handles for one api key: the hot path indexes
/// an array instead of hashing a labeled metric name per request.
struct ApiStats {
    requests: Arc<Counter>,
    request_ns: Arc<AtomicHistogram>,
    stage_ns: [Arc<AtomicHistogram>; 6],
}

/// Wire-server telemetry, registered into the cluster's shared
/// [`MetricsRegistry`] so `DescribeMetrics` scrapes and the OWS
/// `/metrics` endpoint expose it alongside broker metrics.
struct WireStats {
    requests_total: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    accepted: Arc<Counter>,
    closed: Arc<Counter>,
    auth_failed: Arc<Counter>,
    idle_timeouts: Arc<Counter>,
    backpressure_stalls: Arc<Counter>,
    poisoned: Arc<Counter>,
    open_conns: Arc<Gauge>,
    queue_depth: Arc<Gauge>,
    api: Vec<ApiStats>,
}

impl WireStats {
    fn new(registry: &MetricsRegistry) -> Self {
        let api = ApiKey::ALL
            .iter()
            .map(|key| {
                let label = key.name();
                ApiStats {
                    requests: registry.counter(&labeled(
                        "octopus_wire_api_requests_total",
                        &[("api", label)],
                    )),
                    request_ns: registry
                        .histogram(&labeled("octopus_wire_request_ns", &[("api", label)])),
                    stage_ns: std::array::from_fn(|s| {
                        registry.histogram(&labeled(
                            "octopus_wire_stage_ns",
                            &[("api", label), ("stage", STAGE_NAMES[s])],
                        ))
                    }),
                }
            })
            .collect();
        WireStats {
            requests_total: registry.counter("octopus_wire_requests_total"),
            bytes_in: registry.counter("octopus_wire_bytes_in_total"),
            bytes_out: registry.counter("octopus_wire_bytes_out_total"),
            accepted: registry.counter("octopus_wire_connections_accepted_total"),
            closed: registry.counter("octopus_wire_connections_closed_total"),
            auth_failed: registry.counter("octopus_wire_connections_auth_failed_total"),
            idle_timeouts: registry.counter("octopus_wire_connections_idle_timeout_total"),
            backpressure_stalls: registry.counter("octopus_wire_backpressure_stalls_total"),
            poisoned: registry.counter("octopus_wire_connections_poisoned_total"),
            open_conns: registry.gauge("octopus_wire_open_connections"),
            queue_depth: registry.gauge("octopus_wire_response_queue_depth"),
            api,
        }
    }

    /// Handles for a (possibly client-controlled) api key; `None` for
    /// keys outside the protocol table.
    fn api(&self, api_key: u16) -> Option<&ApiStats> {
        self.api.get(api_key as usize)
    }
}

struct ServerInner {
    cluster: Cluster,
    auth: Authenticator,
    config: WireServerConfig,
    running: AtomicBool,
    next_conn: AtomicU64,
    conns: Mutex<HashMap<u64, ConnEntry>>,
    stats: WireStats,
}

impl ServerInner {
    /// Shut down every live client socket (both directions).
    fn sever_connections(&self) -> usize {
        let conns = self.conns.lock();
        let mut n = 0;
        for entry in conns.values() {
            let _ = entry.stream.shutdown(Shutdown::Both);
            n += 1;
        }
        n
    }
}

/// A running wire server; dropping it stops the acceptor and closes
/// every connection.
pub struct WireServer {
    inner: Arc<ServerInner>,
    addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl WireServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving `cluster`.
    pub fn bind(
        cluster: Cluster,
        auth: Authenticator,
        addr: &str,
        config: WireServerConfig,
    ) -> OctoResult<WireServer> {
        let listener = TcpListener::bind(addr).map_err(|e| OctoError::Io(e.to_string()))?;
        let local = listener.local_addr().map_err(|e| OctoError::Io(e.to_string()))?;
        let stats = WireStats::new(cluster.metrics());
        let inner = Arc::new(ServerInner {
            cluster: cluster.clone(),
            auth,
            config,
            running: AtomicBool::new(true),
            next_conn: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            stats,
        });

        // A chaos partition naming our broker id severs the real
        // sockets. Weak: a dropped server must not keep serving faults.
        let weak: Weak<ServerInner> = Arc::downgrade(&inner);
        let my_id = inner.config.broker_id;
        cluster.fault_injector().on_sever(Box::new(move |a, b| {
            if a == my_id || b == my_id {
                if let Some(inner) = weak.upgrade() {
                    inner.sever_connections();
                }
            }
        }));

        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(listener, accept_inner);
        });

        Ok(WireServer { inner, addr: local, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live client connections.
    pub fn connection_count(&self) -> usize {
        self.inner.conns.lock().len()
    }

    /// Forcibly shut down every client socket (what a chaos partition
    /// triggers); returns how many were severed. The listener stays
    /// up, so clients may reconnect — mirroring a transient network
    /// cut rather than a dead broker.
    pub fn sever_connections(&self) -> usize {
        self.inner.sever_connections()
    }

    /// Stop accepting, close every connection, join the acceptor.
    pub fn shutdown(&mut self) {
        if !self.inner.running.swap(false, Ordering::AcqRel) {
            return;
        }
        // poke the blocking accept() awake
        let _ = TcpStream::connect(self.addr);
        self.inner.sever_connections();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<ServerInner>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(s) => s,
            Err(_) => {
                if !inner.running.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if !inner.running.load(Ordering::Acquire) {
            return;
        }
        let conn_id = inner.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            inner.conns.lock().insert(conn_id, ConnEntry { stream: clone });
        }
        inner.stats.accepted.inc();
        inner.stats.open_conns.add(1);
        let conn_inner = Arc::clone(&inner);
        std::thread::spawn(move || {
            serve_connection(stream, conn_id, &conn_inner);
            conn_inner.conns.lock().remove(&conn_id);
            conn_inner.stats.closed.inc();
            conn_inner.stats.open_conns.add(-1);
        });
    }
}

/// In-flight SCRAM state between the challenge and the proof.
struct PendingScram {
    username: String,
    client_nonce: String,
    combined_nonce: String,
    salt: Vec<u8>,
    iterations: u32,
}

fn auth_failed(msg: &str) -> WireFault {
    WireFault::new(ErrorCode::AuthFailed, msg)
}

/// Write an error frame best-effort and tear the connection down.
fn refuse(stream: &TcpStream, api_key: u16, correlation_id: u64, fault: WireFault) {
    let mut w = BufWriter::new(stream);
    let _ = write_frame(&mut w, &Frame::error(api_key, correlation_id, fault.encode()));
    let _ = stream.shutdown(Shutdown::Both);
}

fn serve_connection(stream: TcpStream, _conn_id: u64, inner: &Arc<ServerInner>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(inner.config.idle_timeout));

    // ---- phase 1: authenticate (frames handled inline, no writer
    // thread yet — the handshake is strictly request/response) ----
    let mut read_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut pending_scram: Option<PendingScram> = None;
    let hs_stats = &inner.stats.api[ApiKey::Handshake as usize];
    let principal: Option<Uid> = loop {
        let read_start = Instant::now();
        let frame = match read_frame(&mut read_stream, inner.config.max_payload) {
            Ok(f) => f,
            Err(WireError::Closed) => return,
            Err(e) => {
                // includes the idle timeout (read timeout surfaces as
                // Io) — no silent hang on a half-open handshake
                if read_start.elapsed() >= inner.config.idle_timeout {
                    inner.stats.idle_timeouts.inc();
                }
                refuse(&stream, 0, 0, WireFault::new(ErrorCode::MalformedRequest, e.to_string()));
                return;
            }
        };
        inner.stats.bytes_in.add((HEADER_LEN + frame.payload.len()) as u64);
        inner.stats.requests_total.inc();
        hs_stats.requests.inc();
        let corr = frame.correlation_id;
        let decode_start = Instant::now();
        let req = ApiKey::from_u16(frame.api_key)
            .and_then(|k| frame.body().and_then(|b| Request::decode(k, b)));
        hs_stats.stage_ns[STAGE_DECODE].record(decode_start.elapsed().as_nanos() as u64);
        let req = match req {
            Ok(r) => r,
            Err(e) => {
                refuse(
                    &stream,
                    frame.api_key,
                    corr,
                    WireFault::new(ErrorCode::MalformedRequest, e.to_string()),
                );
                return;
            }
        };
        let hs = match req {
            Request::Handshake(h) => h,
            _ => {
                inner.stats.auth_failed.inc();
                refuse(&stream, frame.api_key, corr, auth_failed("handshake required"));
                return;
            }
        };
        let auth_start = Instant::now();
        let step = handle_handshake(inner, hs, &mut pending_scram);
        hs_stats.stage_ns[STAGE_AUTH].record(auth_start.elapsed().as_nanos() as u64);
        match step {
            Ok(HandshakeStep::Reply(resp)) => {
                let mut w = BufWriter::new(&stream);
                if write_frame(&mut w, &Frame::new(ApiKey::Handshake as u16, corr, resp.encode()))
                    .is_err()
                {
                    return;
                }
            }
            Ok(HandshakeStep::Complete(resp, principal)) => {
                let mut w = BufWriter::new(&stream);
                if write_frame(&mut w, &Frame::new(ApiKey::Handshake as u16, corr, resp.encode()))
                    .is_err()
                {
                    return;
                }
                break principal;
            }
            Err(fault) => {
                inner.stats.auth_failed.inc();
                refuse(&stream, ApiKey::Handshake as u16, corr, fault);
                return;
            }
        }
    };

    // ---- phase 2: serve requests through the bounded response queue ----
    let (resp_tx, resp_rx) = bounded::<(Frame, Instant)>(inner.config.response_queue.max(1));
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let writer_inner = Arc::clone(inner);
    let writer = std::thread::spawn(move || {
        let stats = &writer_inner.stats;
        let mut w = BufWriter::new(&write_stream);
        while let Ok((frame, enqueued)) = resp_rx.recv() {
            stats.queue_depth.add(-1);
            let api = stats.api(frame.api_key);
            if let Some(api) = api {
                api.stage_ns[STAGE_QUEUE_WAIT].record(enqueued.elapsed().as_nanos() as u64);
            }
            let flush_start = Instant::now();
            let wrote = write_frame(&mut w, &frame);
            if let Some(api) = api {
                api.stage_ns[STAGE_FLUSH].record(flush_start.elapsed().as_nanos() as u64);
            }
            if wrote.is_err() {
                // mid-stream write failure: the connection is beyond
                // recovery (a response may be half-written)
                stats.poisoned.inc();
                break;
            }
            stats.bytes_out.add((HEADER_LEN + frame.payload.len()) as u64);
        }
        // responses stranded in the queue still count against depth
        while resp_rx.try_recv().is_ok() {
            stats.queue_depth.add(-1);
        }
        let _ = write_stream.shutdown(Shutdown::Both);
    });

    // Enqueue with backpressure accounting: a full queue is a stall
    // event, then we fall back to the blocking send (the throttle).
    let enqueue = |frame: Frame| -> bool {
        inner.stats.queue_depth.add(1);
        match resp_tx.try_send((frame, Instant::now())) {
            Ok(()) => true,
            Err(TrySendError::Full(item)) => {
                inner.stats.backpressure_stalls.inc();
                if resp_tx.send(item).is_ok() {
                    true
                } else {
                    inner.stats.queue_depth.add(-1);
                    false
                }
            }
            Err(TrySendError::Disconnected(_)) => {
                inner.stats.queue_depth.add(-1);
                false
            }
        }
    };

    loop {
        let read_start = Instant::now();
        let frame = match read_frame(&mut read_stream, inner.config.max_payload) {
            Ok(f) => f,
            Err(WireError::Closed) => break,
            Err(e) => {
                if read_start.elapsed() >= inner.config.idle_timeout {
                    inner.stats.idle_timeouts.inc();
                }
                // frame-level garbage is connection-fatal: we can no
                // longer find frame boundaries in the stream
                let fault = WireFault::new(ErrorCode::MalformedRequest, e.to_string());
                let _ = enqueue(Frame::error(0, 0, fault.encode()));
                break;
            }
        };
        inner.stats.bytes_in.add((HEADER_LEN + frame.payload.len()) as u64);
        inner.stats.requests_total.inc();
        let corr = frame.correlation_id;
        let api_key = frame.api_key;
        let api_stats = inner.stats.api(api_key);
        if let Some(api) = api_stats {
            api.requests.inc();
        }
        let trace_id = frame.trace().ok().flatten().map(|t| t.trace_id);
        let request_start = Instant::now();

        let decode_start = Instant::now();
        let decoded = ApiKey::from_u16(api_key)
            .and_then(|k| frame.body().and_then(|b| Request::decode(k, b)))
            .map_err(|e| WireFault::new(ErrorCode::MalformedRequest, e.to_string()));
        if let Some(api) = api_stats {
            api.stage_ns[STAGE_DECODE].record(decode_start.elapsed().as_nanos() as u64);
        }

        let response = decoded.and_then(|req| match req {
            Request::Handshake(_) => {
                Err(WireFault::new(ErrorCode::Invalid, "already authenticated"))
            }
            req => {
                let auth_start = Instant::now();
                let allowed = match acl_target(&req) {
                    Some((topic, perm)) => check_acl(&inner.cluster, principal, topic, perm),
                    None => Ok(()),
                };
                if let Some(api) = api_stats {
                    api.stage_ns[STAGE_AUTH].record(auth_start.elapsed().as_nanos() as u64);
                }
                allowed
                    .and_then(|()| {
                        let dispatch_start = Instant::now();
                        let out = dispatch(inner, req);
                        if let Some(api) = api_stats {
                            api.stage_ns[STAGE_DISPATCH]
                                .record(dispatch_start.elapsed().as_nanos() as u64);
                        }
                        out
                    })
                    .map_err(|e| WireFault::from(&e))
            }
        });

        let encode_start = Instant::now();
        let out_frame = match response {
            Ok(resp) => Frame::new(api_key, corr, resp.encode()),
            Err(fault) => Frame::error(api_key, corr, fault.encode()),
        };
        if let Some(api) = api_stats {
            api.stage_ns[STAGE_ENCODE].record(encode_start.elapsed().as_nanos() as u64);
        }

        let total_ns = request_start.elapsed().as_nanos() as u64;
        if let (Some(api), Ok(key)) = (api_stats, ApiKey::from_u16(api_key)) {
            api.request_ns.record(total_ns);
            inner.cluster.slow_ring().observe(SlowRequest {
                api: key.name().to_string(),
                correlation_id: corr,
                trace_id,
                total_us: total_ns / 1_000,
                at_ns: now_ns(),
            });
        }

        // a full queue blocks here → the reader stops consuming →
        // the client's sends eventually block: backpressure, not OOM
        if !enqueue(out_frame) {
            break;
        }
    }
    drop(resp_tx);
    let _ = stream.shutdown(Shutdown::Both);
    let _ = writer.join();
}

enum HandshakeStep {
    /// Mid-handshake reply (SCRAM challenge); keep reading.
    Reply(Response),
    /// Authentication finished with this principal.
    Complete(Response, Option<Uid>),
}

fn handle_handshake(
    inner: &ServerInner,
    hs: HandshakeRequest,
    pending: &mut Option<PendingScram>,
) -> Result<HandshakeStep, WireFault> {
    match hs {
        HandshakeRequest::Anonymous { .. } => {
            if !inner.auth.allow_anonymous {
                return Err(auth_failed("anonymous connections not allowed"));
            }
            Ok(HandshakeStep::Complete(
                Response::Handshake(HandshakeResponse::Welcome { principal: None }),
                None,
            ))
        }
        HandshakeRequest::Token { token, .. } => {
            let auth = inner.auth.tokens.as_ref().ok_or_else(|| {
                auth_failed("token authentication not enabled")
            })?;
            let (status, info) = auth.introspect(&AccessToken(token));
            let info = match (status, info) {
                (TokenStatus::Active, Some(info)) => info,
                (TokenStatus::Revoked, _) => return Err(auth_failed("token revoked")),
                (TokenStatus::Expired, _) => return Err(auth_failed("token expired")),
                _ => return Err(auth_failed("token unknown")),
            };
            if let Some(scope) = &inner.auth.required_scope {
                if !info.has_scope(scope) {
                    return Err(auth_failed(&format!("token lacks required scope {scope}")));
                }
            }
            Ok(HandshakeStep::Complete(
                Response::Handshake(HandshakeResponse::Welcome {
                    principal: Some(info.identity),
                }),
                Some(info.identity),
            ))
        }
        HandshakeRequest::ScramFirst { username, nonce, .. } => {
            let store =
                inner.auth.scram.as_ref().ok_or_else(|| auth_failed("scram not enabled"))?;
            let (salt, iterations) =
                store.challenge(&username).map_err(|_| auth_failed("authentication failed"))?;
            // server nonce extension; Uid::fresh is process-unique and
            // unpredictable enough for a liveness nonce
            let combined = format!("{nonce}{}", Uid::fresh());
            *pending = Some(PendingScram {
                username,
                client_nonce: nonce,
                combined_nonce: combined.clone(),
                salt: salt.clone(),
                iterations,
            });
            Ok(HandshakeStep::Reply(Response::Handshake(HandshakeResponse::ScramChallenge {
                nonce: combined,
                salt,
                iterations,
            })))
        }
        HandshakeRequest::ScramFinal { username, nonce, proof } => {
            let store =
                inner.auth.scram.as_ref().ok_or_else(|| auth_failed("scram not enabled"))?;
            let p = pending.take().ok_or_else(|| auth_failed("no scram challenge pending"))?;
            if p.username != username || p.combined_nonce != nonce {
                return Err(auth_failed("scram state mismatch"));
            }
            let msg =
                auth_message(&p.username, &p.client_nonce, &p.combined_nonce, &p.salt, p.iterations);
            let (principal, server_signature) = store
                .verify(&p.username, &msg, &proof)
                .map_err(|_| auth_failed("authentication failed"))?;
            Ok(HandshakeStep::Complete(
                Response::Handshake(HandshakeResponse::ScramWelcome {
                    principal: Some(principal),
                    server_signature,
                }),
                Some(principal),
            ))
        }
    }
}

fn check_acl(
    cluster: &Cluster,
    principal: Option<Uid>,
    topic: &str,
    perm: Permission,
) -> OctoResult<()> {
    match (cluster.acl(), principal) {
        (Some(acl), Some(p)) => acl.check(topic, p, perm),
        _ => Ok(()),
    }
}

/// The topic + permission a request must be authorized for, if any.
/// Hoisted out of [`dispatch`] so the server can time authorization as
/// its own pipeline stage.
fn acl_target(req: &Request) -> Option<(&str, Permission)> {
    match req {
        Request::Produce { topic, .. } | Request::TxnProduce { topic, .. } => {
            Some((topic, Permission::Write))
        }
        Request::Fetch { topic, .. } | Request::FetchCommitted { topic, .. } => {
            Some((topic, Permission::Read))
        }
        _ => None,
    }
}

/// In strict-leadership mode, reject produces addressed to a broker
/// that does not lead the partition, hinting the current leader.
fn check_leadership(inner: &ServerInner, topic: &str, partition: u32) -> OctoResult<()> {
    if !inner.config.strict_leadership {
        return Ok(());
    }
    let leader = inner.cluster.leader_broker(topic, partition)?;
    if leader != inner.config.broker_id {
        return Err(OctoError::NotLeader {
            topic: topic.to_string(),
            partition,
            leader: leader.0,
        });
    }
    Ok(())
}

/// Execute one decoded, authorized request against the cluster.
fn dispatch(inner: &ServerInner, req: Request) -> OctoResult<Response> {
    let cluster = &inner.cluster;
    match req {
        Request::Handshake(_) => Err(OctoError::Invalid("handshake out of band".into())),
        Request::Produce { topic, partition, batch, acks } => {
            check_leadership(inner, &topic, partition)?;
            let receipt = cluster.produce_batch(&topic, partition, batch, acks)?;
            Ok(Response::Produce(receipt))
        }
        Request::Fetch { topic, partition, offset, max_records } => {
            let records = cluster.fetch(&topic, partition, offset, max_records as usize)?;
            Ok(Response::Fetch { records })
        }
        Request::FetchCommitted { topic, partition, offset, max_records } => {
            let (records, next) =
                cluster.fetch_committed(&topic, partition, offset, max_records as usize)?;
            Ok(Response::FetchCommitted { records, next })
        }
        Request::Metadata { topic } => {
            let names = match topic {
                Some(t) => {
                    if !cluster.topic_exists(&t) {
                        return Err(OctoError::UnknownTopic(t));
                    }
                    vec![t]
                }
                None => cluster.topics(),
            };
            let mut topics = Vec::with_capacity(names.len());
            for name in names {
                // a topic deleted between list and describe is skipped,
                // not an error — metadata is a snapshot
                let (Ok(partitions), Ok(config)) =
                    (cluster.partition_count(&name), cluster.topic_config(&name))
                else {
                    continue;
                };
                let config_json = serde_json::to_vec(&config)
                    .map_err(|e| OctoError::Serde(e.to_string()))?;
                topics.push(TopicMeta { name, partitions, config_json });
            }
            Ok(Response::Metadata { topics })
        }
        Request::ListOffsets { topic, partition, spec } => {
            use crate::codec::OffsetSpec;
            let offset = match spec {
                OffsetSpec::Earliest => cluster.earliest_offset(&topic, partition)?,
                OffsetSpec::Latest => cluster.latest_offset(&topic, partition)?,
                OffsetSpec::Timestamp(ms) => cluster.offset_for_timestamp(
                    &topic,
                    partition,
                    octopus_types::Timestamp(ms),
                )?,
                OffsetSpec::LastStable => cluster.last_stable_offset(&topic, partition)?,
            };
            Ok(Response::ListOffsets { offset })
        }
        Request::CreateTopic { topic, config_json } => {
            let config: TopicConfig = serde_json::from_slice(&config_json)
                .map_err(|e| OctoError::Invalid(format!("bad topic config: {e}")))?;
            cluster.create_topic(&topic, config)?;
            Ok(Response::Ok)
        }
        Request::DeleteTopic { topic } => {
            cluster.delete_topic(&topic)?;
            Ok(Response::Ok)
        }
        Request::GroupJoin { group, member, topics, counts } => {
            let counts: HashMap<_, _> = counts.into_iter().collect();
            let assignment = cluster.coordinator().join(&group, &member, topics, &counts);
            Ok(Response::GroupJoin { assignment })
        }
        Request::GroupHeartbeat { group, member } => {
            let assignment = cluster.coordinator().assignment_of(&group, &member);
            Ok(Response::GroupHeartbeat { assignment })
        }
        Request::GroupLeave { group, member, counts } => {
            let counts: HashMap<_, _> = counts.into_iter().collect();
            cluster.coordinator().leave(&group, &member, &counts);
            Ok(Response::Ok)
        }
        Request::OffsetCommit { group, generation, topic, partition, offset } => {
            cluster.coordinator().commit(&group, generation, &topic, partition, offset)?;
            Ok(Response::Ok)
        }
        Request::OffsetFetch { group, topic, partition } => {
            let offset = cluster.coordinator().committed(&group, &topic, partition);
            Ok(Response::OffsetFetch { offset })
        }
        Request::RegisterPid { name } => {
            let id = cluster.register_producer(&name)?;
            Ok(Response::RegisterPid { id })
        }
        Request::TxnBegin { name, id } => {
            cluster.txn_begin(&name, id)?;
            Ok(Response::Ok)
        }
        Request::TxnProduce { name, id, topic, partition, events } => {
            check_leadership(inner, &topic, partition)?;
            let receipt = cluster.txn_produce(&name, id, &topic, partition, events)?;
            Ok(Response::Produce(receipt))
        }
        Request::TxnOffsets { name, id, offsets } => {
            cluster.txn_send_offsets(&name, id, offsets)?;
            Ok(Response::Ok)
        }
        Request::TxnCommit { name, id } => {
            cluster.txn_commit(&name, id)?;
            Ok(Response::Ok)
        }
        Request::TxnAbort { name, id } => {
            cluster.txn_abort(&name, id)?;
            Ok(Response::Ok)
        }
        Request::DescribeMetrics { include_spans } => {
            let snapshot = cluster.metrics().snapshot();
            let snapshot_json =
                serde_json::to_vec(&snapshot).map_err(|e| OctoError::Serde(e.to_string()))?;
            let spans_json = if include_spans {
                serde_json::to_vec(&cluster.span_sink().snapshot())
                    .map_err(|e| OctoError::Serde(e.to_string()))?
            } else {
                b"[]".to_vec()
            };
            Ok(Response::DescribeMetrics {
                broker_id: inner.config.broker_id.0,
                snapshot_json,
                spans_json,
            })
        }
        Request::DescribeHealth => {
            let report = cluster.health_report();
            let report_json =
                serde_json::to_vec(&report).map_err(|e| OctoError::Serde(e.to_string()))?;
            let lag_json = serde_json::to_vec(&cluster.lag_reports())
                .map_err(|e| OctoError::Serde(e.to_string()))?;
            Ok(Response::DescribeHealth { report_json, lag_json })
        }
        Request::AlterPartitionAssignment { topic, partition, from, to, throttle_bytes_per_sec } => {
            let throttle = octopus_broker::MoveThrottle::new(throttle_bytes_per_sec);
            cluster.alter_partition_assignment(
                &topic,
                partition,
                BrokerId(from),
                BrokerId(to),
                &throttle,
            )?;
            let epoch = cluster.assignment_epoch(&topic, partition)?;
            Ok(Response::AlterPartitionAssignment { epoch })
        }
        Request::DescribeReassignments => {
            let reassignments_json = serde_json::to_vec(&cluster.reassignments())
                .map_err(|e| OctoError::Serde(e.to_string()))?;
            Ok(Response::DescribeReassignments { reassignments_json })
        }
    }
}
