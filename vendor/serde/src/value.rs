//! JSON-like value tree: [`Value`], [`Number`], [`Map`].
//!
//! Mirrors `serde_json::Value` closely enough that the workspace's
//! pattern-matching, indexing, and accessor code compiles unchanged.
//! `serde_json` (vendored) re-exports these types.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

/// A JSON number: positive integer, negative integer, or float.
#[derive(Clone, Copy)]
pub struct Number {
    n: N,
}

#[derive(Clone, Copy, Debug)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// Represent as `u64` if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::PosInt(u) => Some(u),
            N::NegInt(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// Represent as `i64` if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::PosInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            N::NegInt(i) => Some(i),
            _ => None,
        }
    }

    /// Represent as `f64` (always possible, may lose precision).
    pub fn as_f64(&self) -> Option<f64> {
        match self.n {
            N::PosInt(u) => Some(u as f64),
            N::NegInt(i) => Some(i as f64),
            N::Float(f) => Some(f),
        }
    }

    /// Whether this is a non-negative integer.
    pub fn is_u64(&self) -> bool {
        matches!(self.n, N::PosInt(_)) || matches!(self.n, N::NegInt(i) if i >= 0)
    }

    /// Whether this is an integer representable as `i64`.
    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    /// Whether this is a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.n, N::Float(_))
    }

    /// Build from a float; `None` for NaN/infinity (not valid JSON).
    pub fn from_f64(f: f64) -> Option<Number> {
        if f.is_finite() {
            Some(Number { n: N::Float(f) })
        } else {
            None
        }
    }
}

macro_rules! number_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(u: $t) -> Self { Number { n: N::PosInt(u as u64) } }
        }
    )*};
}

macro_rules! number_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(i: $t) -> Self {
                let i = i as i64;
                if i >= 0 { Number { n: N::PosInt(i as u64) } } else { Number { n: N::NegInt(i) } }
            }
        }
    )*};
}

number_from_unsigned!(u8, u16, u32, u64, usize);
number_from_signed!(i8, i16, i32, i64, isize);

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.n, other.n) {
            (N::PosInt(a), N::PosInt(b)) => a == b,
            (N::NegInt(a), N::NegInt(b)) => a == b,
            (N::PosInt(a), N::NegInt(b)) | (N::NegInt(b), N::PosInt(a)) => {
                b >= 0 && a == b as u64
            }
            (N::Float(a), N::Float(b)) => a == b,
            // Mixed int/float compare numerically, as the workspace's
            // pattern matcher expects (`x.as_f64() == y.as_f64()`).
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Debug for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.n {
            N::PosInt(u) => write!(f, "{u}"),
            N::NegInt(i) => write!(f, "{i}"),
            N::Float(x) => {
                if x == x.trunc() && x.abs() < 1e16 {
                    // Keep a trailing ".0" so floats stay floats on reparse.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// An ordered string-keyed map (JSON object).
///
/// Declared generically to match `serde_json::Map<String, Value>`
/// spelling, but only ever instantiated with those parameters.
#[derive(Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    inner: BTreeMap<K, V>,
}

impl Map<String, Value> {
    /// New empty object.
    pub fn new() -> Self {
        Map { inner: BTreeMap::new() }
    }

    /// Insert a key/value pair, returning any previous value.
    pub fn insert(&mut self, k: String, v: Value) -> Option<Value> {
        self.inner.insert(k, v)
    }

    /// Look up a key.
    pub fn get(&self, k: &str) -> Option<&Value> {
        self.inner.get(k)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, k: &str) -> Option<&mut Value> {
        self.inner.get_mut(k)
    }

    /// Remove a key, returning its value.
    pub fn remove(&mut self, k: &str) -> Option<Value> {
        self.inner.remove(k)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, k: &str) -> bool {
        self.inner.contains_key(k)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> std::collections::btree_map::Iter<'_, String, Value> {
        self.inner.iter()
    }

    /// Iterate entries mutably.
    pub fn iter_mut(&mut self) -> std::collections::btree_map::IterMut<'_, String, Value> {
        self.inner.iter_mut()
    }

    /// Iterate keys in order.
    pub fn keys(&self) -> std::collections::btree_map::Keys<'_, String, Value> {
        self.inner.keys()
    }

    /// Iterate values in key order.
    pub fn values(&self) -> std::collections::btree_map::Values<'_, String, Value> {
        self.inner.values()
    }

    /// Entry API passthrough.
    pub fn entry(&mut self, k: String) -> std::collections::btree_map::Entry<'_, String, Value> {
        self.inner.entry(k)
    }
}

impl fmt::Debug for Map<String, Value> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.inner.iter()).finish()
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Map { inner: iter.into_iter().collect() }
    }
}

impl Extend<(String, Value)> for Map<String, Value> {
    fn extend<I: IntoIterator<Item = (String, Value)>>(&mut self, iter: I) {
        self.inner.extend(iter)
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::collections::btree_map::IntoIter<String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl Index<&str> for Map<String, Value> {
    type Output = Value;
    fn index(&self, k: &str) -> &Value {
        self.inner.get(k).unwrap_or(&Value::Null)
    }
}

/// A JSON value.
#[derive(Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map<String, Value>),
}

impl Value {
    /// `Some(&str)` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// `Some(bool)` if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `Some(i64)` if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// `Some(u64)` if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// `Some(f64)` if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// `Some(&Vec)` if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// `Some(&mut Vec)` if this is an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// `Some(&Map)` if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// `Some(&mut Map)` if this is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Whether this is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// Whether this is a boolean.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// Whether this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Mutable object field lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.as_object_mut().and_then(|m| m.get_mut(key))
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Number::from_f64(f).map(Value::Number).unwrap_or(Value::Null)
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::from(f as f64)
    }
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::Number(Number::from(v)) }
        }
    )*};
}

value_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<Number> for Value {
    fn from(n: Number) -> Self {
        Value::Number(n)
    }
}

impl From<Map<String, Value>> for Value {
    fn from(m: Map<String, Value>) -> Self {
        Value::Object(m)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

impl From<()> for Value {
    fn from(_: ()) -> Self {
        Value::Null
    }
}

impl FromIterator<Value> for Value {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Value::Array(iter.into_iter().collect())
    }
}

impl FromIterator<(String, Value)> for Value {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Value::Object(iter.into_iter().collect())
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(self)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => *n == Number::from(*other),
                    _ => false,
                }
            }
        }
    )*};
}

value_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

/// Escape and quote `s` as a JSON string into `out`.
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

impl Value {
    /// Compact JSON text for this value.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        write_compact(&mut out, self);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("Null"),
            Value::Bool(b) => write!(f, "Bool({b})"),
            Value::Number(n) => write!(f, "Number({n})"),
            Value::String(s) => write!(f, "String({s:?})"),
            Value::Array(a) => f.debug_tuple("Array").field(a).finish(),
            Value::Object(m) => f.debug_tuple("Object").field(m).finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_indexing() {
        let mut m = Map::new();
        m.insert("a".into(), Value::from(3u64));
        m.insert("s".into(), Value::from("hi"));
        let v = Value::Object(m);
        assert_eq!(v["a"].as_u64(), Some(3));
        assert_eq!(v["s"], "hi");
        assert!(v["missing"].is_null());
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(3));
    }

    #[test]
    fn number_equality_mixed() {
        assert_eq!(Number::from(3u64), Number::from(3i64));
        assert_eq!(Value::from(2.0f64), Value::from(2.0f64));
        assert_ne!(Value::from(2u64), Value::from(3u64));
    }

    #[test]
    fn display_compact_json() {
        let mut m = Map::new();
        m.insert("k".into(), Value::Array(vec![Value::Null, Value::from(true)]));
        let v = Value::Object(m);
        assert_eq!(v.to_string(), r#"{"k":[null,true]}"#);
        assert_eq!(Value::from(1.0f64).to_string(), "1.0");
        assert_eq!(Value::from(5u64).to_string(), "5");
    }

    #[test]
    fn string_escaping() {
        let v = Value::from("a\"b\\c\nd");
        assert_eq!(v.to_string(), r#""a\"b\\c\nd""#);
    }
}
