//! Instance types of the evaluation testbed (Table II and §V-A).

use serde::{Deserialize, Serialize};

/// A cloud instance type hosting a broker or client.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct InstanceType {
    /// Marketing name.
    pub name: &'static str,
    /// Virtual CPUs (the broker's parallel request-processing pool).
    pub vcpus: u32,
    /// Memory in GB (not a bottleneck in these experiments; retained
    /// for completeness of Table II).
    pub mem_gb: u32,
    /// Throughput of the broker's serial request path (network thread /
    /// socket accept), in requests per second. This is the Amdahl
    /// component that keeps scale-up gains modest (Table III #7).
    pub serial_requests_per_sec: f64,
    /// Broker egress bandwidth in bytes/second (NIC/EBS envelope).
    /// This is what caps consumer throughput per broker: ~190 MB/s on
    /// m5.large-class brokers, ~300 MB/s on m5.xlarge.
    pub egress_bytes_per_sec: f64,
}

/// `kafka.m5.large`: 2 vCPU / 8 GB (baseline and scale-out brokers).
pub const KAFKA_M5_LARGE: InstanceType = InstanceType {
    name: "kafka.m5.large",
    vcpus: 2,
    mem_gb: 8,
    serial_requests_per_sec: 3_600.0,
    egress_bytes_per_sec: 190e6,
};

/// `kafka.m5.xlarge`: 4 vCPU / 16 GB (scale-up brokers).
pub const KAFKA_M5_XLARGE: InstanceType = InstanceType {
    name: "kafka.m5.xlarge",
    vcpus: 4,
    mem_gb: 16,
    serial_requests_per_sec: 4_400.0,
    egress_bytes_per_sec: 300e6,
};

/// Where clients run (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClientLocation {
    /// EC2 c5.24xlarge in the broker's region: sub-millisecond RTT.
    Local,
    /// Chameleon Cloud bare metal at TACC: 46–47 ms RTT, <0.1% jitter.
    Remote,
}

impl ClientLocation {
    /// One-way latency to the brokers in milliseconds.
    pub fn one_way_ms(self) -> f64 {
        match self {
            // median RTT 46-47ms with <0.1% deviation (§V-A)
            ClientLocation::Remote => 23.25,
            ClientLocation::Local => 0.5,
        }
    }

    /// Relative latency jitter.
    pub fn jitter(self) -> f64 {
        match self {
            ClientLocation::Remote => 0.001,
            ClientLocation::Local => 0.02,
        }
    }

    /// Per-client-machine NIC bandwidth (bytes/s). Two machines host
    /// all producers/consumers of an experiment.
    pub fn machine_bandwidth(self) -> f64 {
        match self {
            ClientLocation::Local => 25e9 / 8.0,  // 25 Gbps EC2
            ClientLocation::Remote => 10e9 / 8.0, // 10 Gbps WAN path
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shapes() {
        assert_eq!(KAFKA_M5_LARGE.vcpus, 2);
        assert_eq!(KAFKA_M5_LARGE.mem_gb, 8);
        assert_eq!(KAFKA_M5_XLARGE.vcpus, 4);
        assert_eq!(KAFKA_M5_XLARGE.mem_gb, 16);
        // scale-up buys more parallel capacity but sublinear serial path
        let instances = [KAFKA_M5_LARGE, KAFKA_M5_XLARGE];
        assert!(instances[1].serial_requests_per_sec > instances[0].serial_requests_per_sec);
        assert!(instances[1].serial_requests_per_sec < 2.0 * instances[0].serial_requests_per_sec);
    }

    #[test]
    fn remote_rtt_matches_paper() {
        // exercise through a value that clippy cannot const-fold
        for loc in [ClientLocation::Remote, ClientLocation::Local] {
            let rtt = 2.0 * loc.one_way_ms();
            match loc {
                ClientLocation::Remote => {
                    assert!((46.0..=47.0).contains(&rtt), "RTT {rtt}ms");
                    assert!(loc.jitter() <= 0.001);
                }
                ClientLocation::Local => assert!(rtt < 2.0),
            }
            assert!(loc.machine_bandwidth() > 1e9);
        }
    }
}
