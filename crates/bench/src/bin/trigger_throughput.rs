//! Regenerates the **§V-D trigger throughput** figures: events/second a
//! trigger's consumers sustain by partition count and event size.
//! Paper: 1 partition → 22K / 7K / 2K ev/s for 32B / 1KB / 4KB;
//! 8 partitions → ~147K / 39K / 12K ("roughly six times faster").
//!
//! `cargo run --release -p octopus-bench --bin trigger_throughput`

use octopus_bench::{figure_header, human_rate};
use octopus_fabric::experiments::TriggerModel;

const PAPER_1P: [(usize, f64); 3] = [(32, 22_000.0), (1024, 7_000.0), (4096, 2_000.0)];
const PAPER_8P: [(usize, f64); 3] = [(32, 147_000.0), (1024, 39_000.0), (4096, 12_000.0)];

fn main() {
    figure_header(
        "§V-D — Trigger throughput vs partitions and event size",
        "Lambda-style pollers, one per partition, with coordination overhead.",
    );
    let m = TriggerModel::default();
    println!("{:>6} {:>12} {:>10} {:>12} {:>10} {:>8}", "size", "1-part", "paper", "8-part", "paper", "ratio");
    for (i, (size, paper1)) in PAPER_1P.iter().enumerate() {
        let t1 = m.throughput(1, *size);
        let t8 = m.throughput(8, *size);
        println!(
            "{:>5}B {:>12} {:>10} {:>12} {:>10} {:>7.1}x",
            size,
            human_rate(t1),
            human_rate(*paper1),
            human_rate(t8),
            human_rate(PAPER_8P[i].1),
            t8 / t1
        );
    }
    println!("\npartition sweep at 1KB:");
    for p in [1u32, 2, 4, 8, 16, 32, 64, 128] {
        let t = m.throughput(p, 1024);
        println!("  {:>3} partitions: {:>10}", p, human_rate(t));
    }
    println!("\n(the 8-partition/1-partition ratio lands at ~6x, matching the paper's 'roughly six times faster')");
}
