//! A ZAB-style replicated atomic broadcast over [`ZnodeTree`] replicas.
//!
//! The protocol follows ZooKeeper's ZAB in its essentials:
//!
//! - One **leader** per epoch assigns zxids (`epoch << 32 | counter`)
//!   to client transactions and broadcasts proposals.
//! - **Followers** append proposals to their log in order and ack.
//! - The leader **commits** a proposal once a quorum (majority of the
//!   ensemble, counting itself) has acked, in strict zxid order, and
//!   broadcasts the commit; every replica applies committed transactions
//!   to its znode tree in zxid order.
//! - On leader failure a new leader is elected — the live node with the
//!   most advanced log (highest last-logged zxid, ties by node id) — the
//!   epoch is bumped, and followers **synchronize**: divergent log
//!   suffixes are truncated to the new leader's history, which is ZAB's
//!   discard-uncommitted-from-old-epoch rule.
//!
//! The node logic is a pure state machine ([`ZabNode::handle`] maps an
//! input message to output messages); the [`Ensemble`] driver delivers
//! messages deterministically, injects failures (kill/restart), and runs
//! elections. Property tests verify *agreement*: committed prefixes are
//! identical across replicas, always.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use octopus_types::{OctoError, OctoResult};
use serde::{Deserialize, Serialize};

use crate::znode::{Txn, TxnResult, ZnodeTree};

/// Identifies an ensemble member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Compose a zxid from an epoch and a counter.
fn zxid(epoch: u32, counter: u32) -> u64 {
    ((epoch as u64) << 32) | counter as u64
}

/// Protocol messages.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Client transaction submitted to the leader.
    ClientPropose {
        /// Caller-chosen id to retrieve the result.
        request_id: u64,
        /// The transaction.
        txn: Txn,
    },
    /// Leader → follower: log this proposal.
    Propose {
        /// Leader's epoch.
        epoch: u32,
        /// Assigned zxid.
        zxid: u64,
        /// The transaction.
        txn: Txn,
    },
    /// Follower → leader: proposal logged.
    Ack {
        /// Acking follower.
        from: NodeId,
        /// Epoch of the acked proposal.
        epoch: u32,
        /// Acked zxid.
        zxid: u64,
    },
    /// Leader → follower: apply everything up to `zxid`.
    Commit {
        /// Epoch.
        epoch: u32,
        /// Commit horizon.
        zxid: u64,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Role {
    Leader,
    Follower { leader: NodeId },
}

/// One ensemble member: log + tree + protocol state.
pub struct ZabNode {
    /// This node's id.
    pub id: NodeId,
    epoch: u32,
    role: Role,
    /// Durable, ordered proposal log: (zxid, txn).
    log: Vec<(u64, Txn)>,
    /// Highest zxid applied to the tree (commit horizon).
    committed: u64,
    tree: ZnodeTree,
    /// Leader-only: counter for zxid assignment.
    next_counter: u32,
    /// Leader-only: acks per in-flight zxid.
    acks: BTreeMap<u64, HashSet<NodeId>>,
    /// Leader-only: request ids awaiting commit, by zxid.
    pending_requests: HashMap<u64, u64>,
    /// Leader-only: results of committed requests.
    results: HashMap<u64, TxnResult>,
    alive: bool,
}

impl ZabNode {
    fn new(id: NodeId) -> Self {
        ZabNode {
            id,
            epoch: 0,
            role: Role::Follower { leader: NodeId(0) },
            log: Vec::new(),
            committed: 0,
            tree: ZnodeTree::new(),
            next_counter: 0,
            acks: BTreeMap::new(),
            pending_requests: HashMap::new(),
            results: HashMap::new(),
            alive: true,
        }
    }

    /// Highest zxid in the durable log.
    pub fn last_logged_zxid(&self) -> u64 {
        self.log.last().map(|(z, _)| *z).unwrap_or(0)
    }

    /// Commit horizon.
    pub fn committed_zxid(&self) -> u64 {
        self.committed
    }

    /// The replica's applied state (read-only).
    pub fn tree(&self) -> &ZnodeTree {
        &self.tree
    }

    /// The committed prefix of the log (for agreement checks).
    pub fn committed_log(&self) -> Vec<(u64, Txn)> {
        self.log.iter().filter(|(z, _)| *z <= self.committed).cloned().collect()
    }

    fn apply_committed(&mut self, upto: u64) {
        // apply log entries in (self.committed, upto] in order
        let entries: Vec<(u64, Txn)> = self
            .log
            .iter()
            .filter(|(z, _)| *z > self.committed && *z <= upto)
            .cloned()
            .collect();
        for (z, txn) in entries {
            let result = self.tree.apply(z, &txn);
            self.committed = z;
            if let Some(req) = self.pending_requests.remove(&z) {
                self.results.insert(req, result);
            }
        }
    }

    /// Process one message; returns messages to send as (dest, msg).
    pub fn handle(&mut self, msg: Msg, peers: &[NodeId], quorum: usize) -> Vec<(NodeId, Msg)> {
        if !self.alive {
            return Vec::new();
        }
        match msg {
            Msg::ClientPropose { request_id, txn } => {
                if self.role != Role::Leader {
                    return Vec::new(); // driver only routes to the leader
                }
                self.next_counter += 1;
                let z = zxid(self.epoch, self.next_counter);
                self.log.push((z, txn.clone()));
                self.pending_requests.insert(z, request_id);
                let mut acks = HashSet::new();
                acks.insert(self.id); // leader acks its own log append
                self.acks.insert(z, acks);
                let mut out: Vec<(NodeId, Msg)> = peers
                    .iter()
                    .filter(|p| **p != self.id)
                    .map(|p| (*p, Msg::Propose { epoch: self.epoch, zxid: z, txn: txn.clone() }))
                    .collect();
                // single-node ensemble: quorum of one is immediate
                out.extend(self.try_commit(peers, quorum));
                out
            }
            Msg::Propose { epoch, zxid: z, txn } => {
                if epoch < self.epoch {
                    return Vec::new(); // stale leader
                }
                let Role::Follower { leader } = self.role else {
                    return Vec::new();
                };
                // in-order append; duplicates ignored
                if z > self.last_logged_zxid() {
                    self.log.push((z, txn));
                }
                vec![(leader, Msg::Ack { from: self.id, epoch, zxid: z })]
            }
            Msg::Ack { from, epoch, zxid: z } => {
                if self.role != Role::Leader || epoch != self.epoch {
                    return Vec::new();
                }
                if let Some(set) = self.acks.get_mut(&z) {
                    set.insert(from);
                }
                self.try_commit(peers, quorum)
            }
            Msg::Commit { epoch, zxid: z } => {
                if epoch < self.epoch || self.role == Role::Leader {
                    return Vec::new();
                }
                self.apply_committed(z);
                Vec::new()
            }
        }
    }

    /// Leader: commit every contiguous quorum-acked proposal, in order.
    fn try_commit(&mut self, peers: &[NodeId], quorum: usize) -> Vec<(NodeId, Msg)> {
        let mut horizon = self.committed;
        loop {
            let next = self.acks.range((horizon + 1)..).next().map(|(z, s)| (*z, s.len()));
            match next {
                Some((z, n)) if n >= quorum => {
                    // commits must be gap-free: z must be the next logged zxid
                    let is_next = self
                        .log
                        .iter()
                        .find(|(lz, _)| *lz > horizon)
                        .map(|(lz, _)| *lz == z)
                        .unwrap_or(false);
                    if !is_next {
                        break;
                    }
                    horizon = z;
                    self.acks.remove(&z);
                }
                _ => break,
            }
        }
        if horizon > self.committed {
            self.apply_committed(horizon);
            peers
                .iter()
                .filter(|p| **p != self.id)
                .map(|p| (*p, Msg::Commit { epoch: self.epoch, zxid: horizon }))
                .collect()
        } else {
            Vec::new()
        }
    }
}

/// The deterministic ensemble driver: owns the nodes, routes messages
/// FIFO, runs elections and log synchronization, injects failures.
pub struct Ensemble {
    nodes: Vec<ZabNode>,
    queue: VecDeque<(NodeId, Msg)>,
    leader: NodeId,
    next_request: u64,
    epoch: u32,
}

impl Ensemble {
    /// An ensemble of `n` replicas (n ≥ 1); node 0 starts as leader.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "ensemble needs at least one node");
        let mut nodes: Vec<ZabNode> = (0..n).map(|i| ZabNode::new(NodeId(i))).collect();
        nodes[0].role = Role::Leader;
        nodes[0].epoch = 1;
        for node in nodes.iter_mut().skip(1) {
            node.role = Role::Follower { leader: NodeId(0) };
            node.epoch = 1;
        }
        Ensemble { nodes, queue: VecDeque::new(), leader: NodeId(0), next_request: 0, epoch: 1 }
    }

    /// Ensemble size.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the ensemble has no members (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Majority quorum size.
    pub fn quorum(&self) -> usize {
        self.nodes.len() / 2 + 1
    }

    /// Current leader id.
    pub fn leader(&self) -> NodeId {
        self.leader
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Whether a quorum of nodes is alive.
    pub fn has_quorum(&self) -> bool {
        self.live_count() >= self.quorum()
    }

    /// Access a replica (for agreement checks in tests).
    pub fn node(&self, id: NodeId) -> &ZabNode {
        &self.nodes[id.0]
    }

    fn peer_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|n| n.id).collect()
    }

    /// Deliver all queued messages to quiescence.
    pub fn drain(&mut self) {
        let peers = self.peer_ids();
        let quorum = self.quorum();
        while let Some((to, msg)) = self.queue.pop_front() {
            let out = self.nodes[to.0].handle(msg, &peers, quorum);
            // messages to dead nodes are dropped by handle() on receipt
            self.queue.extend(out);
        }
    }

    /// Submit a transaction and run the protocol to quiescence.
    ///
    /// Returns the applied [`TxnResult`] if the transaction committed;
    /// `Err(Unavailable)` if no quorum is reachable (the proposal stays
    /// logged and will commit if enough nodes return — ZAB's guarantee).
    pub fn propose(&mut self, txn: Txn) -> OctoResult<TxnResult> {
        if !self.nodes[self.leader.0].alive {
            self.elect()?;
        }
        let request_id = self.next_request;
        self.next_request += 1;
        self.queue.push_back((self.leader, Msg::ClientPropose { request_id, txn }));
        self.drain();
        match self.nodes[self.leader.0].results.remove(&request_id) {
            Some(result) => Ok(result),
            None => Err(OctoError::Unavailable(format!(
                "no quorum ({} live of {}, need {})",
                self.live_count(),
                self.len(),
                self.quorum()
            ))),
        }
    }

    /// Linearizable read: served by the leader's applied tree.
    pub fn read<T>(&mut self, f: impl FnOnce(&ZnodeTree) -> T) -> OctoResult<T> {
        if !self.nodes[self.leader.0].alive {
            self.elect()?;
        }
        if !self.has_quorum() {
            return Err(OctoError::Unavailable("no quorum for linearizable read".into()));
        }
        Ok(f(&self.nodes[self.leader.0].tree))
    }

    /// Crash a node: it stops processing; its durable log survives.
    pub fn kill(&mut self, id: NodeId) {
        self.nodes[id.0].alive = false;
        if id == self.leader {
            // election is lazy: next propose/read triggers it
        }
    }

    /// Restart a crashed node as a follower and synchronize it with the
    /// current leader's history.
    pub fn restart(&mut self, id: NodeId) -> OctoResult<()> {
        self.nodes[id.0].alive = true;
        if id == self.leader {
            return Ok(());
        }
        if !self.nodes[self.leader.0].alive {
            self.elect()?;
        }
        if id != self.leader {
            self.nodes[id.0].role = Role::Follower { leader: self.leader };
            self.nodes[id.0].epoch = self.epoch;
            self.sync_follower(id);
            // Ack the leader's uncommitted suffix so proposals that were
            // stalled waiting for quorum can now commit.
            let leader = self.leader;
            let epoch = self.epoch;
            let uncommitted: Vec<u64> = {
                let l = &self.nodes[leader.0];
                l.log.iter().filter(|(z, _)| *z > l.committed).map(|(z, _)| *z).collect()
            };
            for z in uncommitted {
                self.queue.push_back((leader, Msg::Ack { from: id, epoch, zxid: z }));
            }
            self.drain();
        }
        Ok(())
    }

    /// Elect a new leader: the live node with the most advanced durable
    /// log (ZAB picks the node with the highest zxid so no committed
    /// transaction is lost), bump the epoch, and synchronize followers.
    fn elect(&mut self) -> OctoResult<()> {
        if !self.has_quorum() {
            return Err(OctoError::Unavailable("cannot elect a leader without quorum".into()));
        }
        let new_leader = self
            .nodes
            .iter()
            .filter(|n| n.alive)
            .max_by_key(|n| (n.last_logged_zxid(), n.id))
            .map(|n| n.id)
            .expect("quorum implies a live node");
        self.epoch += 1;
        self.leader = new_leader;
        for node in &mut self.nodes {
            node.epoch = self.epoch;
            node.acks.clear();
            node.pending_requests.clear();
            if node.id == new_leader {
                node.role = Role::Leader;
                node.next_counter = 0;
            } else {
                node.role = Role::Follower { leader: new_leader };
            }
        }
        // ZAB synchronization phase: the new leader's log is authoritative.
        // Logged-but-uncommitted entries on the leader are committed once
        // a quorum holds them (they were acked by the leader's log).
        let live: Vec<NodeId> =
            self.nodes.iter().filter(|n| n.alive && n.id != new_leader).map(|n| n.id).collect();
        for f in live {
            self.sync_follower(f);
        }
        // Commit any suffix the old epoch left uncommitted: re-propose it.
        self.recommit_suffix();
        Ok(())
    }

    /// Overwrite a follower's log/state with the leader's authoritative
    /// history (truncating divergent suffixes) and apply the committed
    /// prefix.
    fn sync_follower(&mut self, follower: NodeId) {
        let (leader_log, leader_committed) = {
            let l = &self.nodes[self.leader.0];
            (l.log.clone(), l.committed)
        };
        let f = &mut self.nodes[follower.0];
        // find divergence point
        let mut keep = 0;
        while keep < f.log.len()
            && keep < leader_log.len()
            && f.log[keep].0 == leader_log[keep].0
        {
            keep += 1;
        }
        let diverged_before_committed = keep
            < f.log.iter().filter(|(z, _)| *z <= f.committed).count()
            || f.committed > leader_committed;
        f.log = leader_log;
        if diverged_before_committed {
            // a committed entry differed — impossible under ZAB's
            // guarantees, but rebuild defensively
            f.tree = ZnodeTree::new();
            f.committed = 0;
        }
        // rebuild the tree if our applied state ran ahead of the kept
        // prefix (cannot happen when commits are monotone), else just
        // apply forward
        let upto = leader_committed;
        let entries: Vec<(u64, Txn)> = f
            .log
            .iter()
            .filter(|(z, _)| *z > f.committed && *z <= upto)
            .cloned()
            .collect();
        for (z, txn) in entries {
            f.tree.apply(z, &txn);
            f.committed = z;
        }
    }

    /// After an election, the new leader may hold logged-but-uncommitted
    /// entries from the previous epoch. Re-broadcast them under the new
    /// epoch so they commit (ZAB: the elected leader's log prefix is
    /// always preserved).
    fn recommit_suffix(&mut self) {
        let (suffix, epoch): (Vec<(u64, Txn)>, u32) = {
            let l = &self.nodes[self.leader.0];
            (
                l.log.iter().filter(|(z, _)| *z > l.committed).cloned().collect(),
                self.epoch,
            )
        };
        if suffix.is_empty() {
            return;
        }
        let leader = self.leader;
        {
            let l = &mut self.nodes[leader.0];
            for (z, _) in &suffix {
                let mut acks = HashSet::new();
                acks.insert(leader);
                l.acks.insert(*z, acks);
            }
        }
        let peers = self.peer_ids();
        for (z, txn) in suffix {
            for p in &peers {
                if *p != leader {
                    self.queue.push_back((*p, Msg::Propose { epoch, zxid: z, txn: txn.clone() }));
                }
            }
        }
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::znode::CreateMode;

    fn create_txn(path: &str) -> Txn {
        Txn::Create {
            path: path.into(),
            data: b"v".to_vec(),
            mode: CreateMode::Persistent,
            session: 0,
        }
    }

    fn assert_agreement(e: &Ensemble) {
        // all replicas agree on the committed prefix
        let logs: Vec<Vec<(u64, Txn)>> =
            (0..e.len()).map(|i| e.node(NodeId(i)).committed_log()).collect();
        for pair in logs.windows(2) {
            let shorter = pair[0].len().min(pair[1].len());
            assert_eq!(pair[0][..shorter], pair[1][..shorter], "committed prefixes diverge");
        }
    }

    #[test]
    fn single_node_ensemble_commits_immediately() {
        let mut e = Ensemble::new(1);
        let r = e.propose(create_txn("/a")).unwrap();
        assert_eq!(r, TxnResult::Created("/a".into()));
        assert!(e.read(|t| t.exists("/a")).unwrap());
    }

    #[test]
    fn three_node_ensemble_replicates_to_all() {
        let mut e = Ensemble::new(3);
        e.propose(create_txn("/topics")).unwrap();
        e.propose(create_txn("/topics/sdl")).unwrap();
        for i in 0..3 {
            assert!(e.node(NodeId(i)).tree().exists("/topics/sdl"), "replica {i}");
            assert_eq!(e.node(NodeId(i)).committed_zxid(), e.node(NodeId(0)).committed_zxid());
        }
        assert_agreement(&e);
    }

    #[test]
    fn deterministic_failures_replicate_too() {
        let mut e = Ensemble::new(3);
        e.propose(create_txn("/a")).unwrap();
        let r = e.propose(create_txn("/a")).unwrap(); // duplicate -> error
        assert!(matches!(r, TxnResult::Error(_)));
        assert_agreement(&e);
    }

    #[test]
    fn survives_follower_failure() {
        let mut e = Ensemble::new(3);
        e.propose(create_txn("/a")).unwrap();
        e.kill(NodeId(2));
        e.propose(create_txn("/b")).unwrap(); // quorum of 2 still commits
        assert!(e.read(|t| t.exists("/b")).unwrap());
        // the dead node did not receive /b
        assert!(!e.node(NodeId(2)).tree().exists("/b"));
        // restart resyncs it
        e.restart(NodeId(2)).unwrap();
        assert!(e.node(NodeId(2)).tree().exists("/b"));
        assert_agreement(&e);
    }

    #[test]
    fn leader_failover_preserves_committed_state() {
        let mut e = Ensemble::new(3);
        e.propose(create_txn("/a")).unwrap();
        let old_leader = e.leader();
        e.kill(old_leader);
        // next propose triggers election and still works
        e.propose(create_txn("/b")).unwrap();
        assert_ne!(e.leader(), old_leader);
        assert!(e.read(|t| t.exists("/a")).unwrap(), "committed state survived failover");
        assert!(e.read(|t| t.exists("/b")).unwrap());
        assert_agreement(&e);
    }

    #[test]
    fn no_quorum_means_unavailable() {
        let mut e = Ensemble::new(3);
        e.propose(create_txn("/a")).unwrap();
        e.kill(NodeId(1));
        e.kill(NodeId(2));
        assert!(matches!(e.propose(create_txn("/b")), Err(OctoError::Unavailable(_))));
        assert!(matches!(e.read(|t| t.exists("/a")), Err(OctoError::Unavailable(_))));
        // healing restores service
        e.restart(NodeId(1)).unwrap();
        e.propose(create_txn("/b")).unwrap();
        assert!(e.read(|t| t.exists("/b")).unwrap());
        assert_agreement(&e);
    }

    #[test]
    fn five_node_ensemble_tolerates_two_failures() {
        let mut e = Ensemble::new(5);
        assert_eq!(e.quorum(), 3);
        e.propose(create_txn("/a")).unwrap();
        e.kill(NodeId(0)); // leader
        e.kill(NodeId(4));
        e.propose(create_txn("/b")).unwrap();
        assert!(e.read(|t| t.exists("/a")).unwrap());
        assert!(e.read(|t| t.exists("/b")).unwrap());
        assert_eq!(e.live_count(), 3);
        assert_agreement(&e);
    }

    #[test]
    fn restart_of_old_leader_rejoins_as_follower() {
        let mut e = Ensemble::new(3);
        e.propose(create_txn("/a")).unwrap();
        let old = e.leader();
        e.kill(old);
        e.propose(create_txn("/b")).unwrap();
        e.restart(old).unwrap();
        e.propose(create_txn("/c")).unwrap();
        // the restarted node catches up fully on the next sync
        e.restart(old).unwrap(); // no-op restart re-syncs
        assert!(e.node(old).tree().exists("/b"));
        assert_agreement(&e);
    }

    #[test]
    fn epochs_increase_across_elections() {
        let mut e = Ensemble::new(3);
        assert_eq!(e.epoch, 1);
        e.propose(create_txn("/a")).unwrap();
        e.kill(e.leader());
        e.propose(create_txn("/b")).unwrap();
        assert_eq!(e.epoch, 2);
        let l2 = e.leader();
        e.restart(NodeId(0)).unwrap();
        e.kill(l2);
        e.propose(create_txn("/c")).unwrap();
        assert_eq!(e.epoch, 3);
        // zxids reflect the epoch in their high bits
        let last = e.node(e.leader()).last_logged_zxid();
        assert_eq!(last >> 32, 3);
        assert_agreement(&e);
    }

    #[test]
    fn heavy_mixed_workload_keeps_agreement() {
        let mut e = Ensemble::new(5);
        e.propose(create_txn("/root")).unwrap();
        for i in 0..50 {
            e.propose(create_txn(&format!("/root/n{i}"))).unwrap();
            if i == 20 {
                e.kill(NodeId(1));
            }
            if i == 30 {
                e.restart(NodeId(1)).unwrap();
            }
            if i == 35 {
                e.kill(e.leader());
            }
        }
        assert_agreement(&e);
        let n = e.read(|t| t.children("/root").unwrap().len()).unwrap();
        assert_eq!(n, 50);
    }
}
