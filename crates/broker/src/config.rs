//! Topic and broker configuration.

use serde::{Deserialize, Serialize};

use octopus_compression::Compression;
use octopus_types::{OctoError, OctoResult};

/// Retention limits for the `Delete` cleanup policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetentionConfig {
    /// Drop closed segments older than this many milliseconds.
    /// The paper's default: "all messages in a topic are stored for
    /// seven days" (§IV-F).
    pub retention_ms: Option<u64>,
    /// Drop oldest closed segments while the partition exceeds this
    /// many bytes.
    pub retention_bytes: Option<u64>,
}

impl Default for RetentionConfig {
    fn default() -> Self {
        RetentionConfig {
            retention_ms: Some(7 * 24 * 3600 * 1000), // 7 days
            retention_bytes: None,
        }
    }
}

/// What the log cleaner does to closed segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CleanupPolicy {
    /// Drop expired/oversized segments.
    #[default]
    Delete,
    /// Keep only the latest record per key.
    Compact,
    /// Compact, then delete.
    CompactAndDelete,
}

/// Per-topic configuration (the knobs `POST /topic/<topic>` exposes,
/// §IV-B: "e.g., replication factor and data retention policy").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopicConfig {
    /// Number of partitions.
    pub partitions: u32,
    /// Replication factor (copies of each partition).
    pub replication_factor: u32,
    /// Minimum in-sync replicas for `acks=all` produces to succeed.
    pub min_insync_replicas: u32,
    /// Retention limits.
    pub retention: RetentionConfig,
    /// Cleanup policy.
    pub cleanup: CleanupPolicy,
    /// Segment roll size in bytes.
    pub segment_bytes: usize,
    /// Sparse index entry interval in bytes for durable segments
    /// (`0` means the storage engine's default).
    pub index_interval_bytes: u64,
    /// Per-batch compression codec for the durable store.
    pub compression: Compression,
    /// Offload sealed segment data files to the cold tier once the hot
    /// sealed bytes of a partition exceed this (`None` = never tier;
    /// `Some(0)` = tier every sealed segment). Requires the cluster to
    /// be built with a cold store.
    pub cold_after_bytes: Option<u64>,
}

/// The storage-engine slice of a [`TopicConfig`]: everything a broker
/// needs to open one durable partition replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageSpec {
    /// Segment roll size in bytes.
    pub segment_bytes: usize,
    /// Sparse index entry interval in bytes (`0` = engine default).
    pub index_interval_bytes: u64,
    /// Per-batch compression codec.
    pub compression: Compression,
    /// Cold-tier threshold (see [`TopicConfig::cold_after_bytes`]).
    pub cold_after_bytes: Option<u64>,
}

impl Default for StorageSpec {
    fn default() -> Self {
        TopicConfig::default().storage_spec()
    }
}

impl Default for TopicConfig {
    fn default() -> Self {
        TopicConfig {
            partitions: 2,
            replication_factor: 2,
            min_insync_replicas: 1,
            retention: RetentionConfig::default(),
            cleanup: CleanupPolicy::Delete,
            segment_bytes: crate::log::DEFAULT_SEGMENT_BYTES,
            index_interval_bytes: 0,
            compression: Compression::None,
            cold_after_bytes: None,
        }
    }
}

impl TopicConfig {
    /// Validate against a cluster of `broker_count` brokers.
    pub fn validate(&self, broker_count: usize) -> OctoResult<()> {
        if self.partitions == 0 {
            return Err(OctoError::Invalid("partitions must be >= 1".into()));
        }
        if self.replication_factor == 0 {
            return Err(OctoError::Invalid("replication factor must be >= 1".into()));
        }
        if self.replication_factor as usize > broker_count {
            return Err(OctoError::Invalid(format!(
                "replication factor {} exceeds broker count {broker_count}",
                self.replication_factor
            )));
        }
        if self.min_insync_replicas == 0 || self.min_insync_replicas > self.replication_factor {
            return Err(OctoError::Invalid(format!(
                "min.insync.replicas {} must be in [1, {}]",
                self.min_insync_replicas, self.replication_factor
            )));
        }
        if self.segment_bytes == 0 {
            return Err(OctoError::Invalid("segment_bytes must be positive".into()));
        }
        if self.index_interval_bytes > self.segment_bytes as u64 {
            return Err(OctoError::Invalid(format!(
                "index_interval_bytes {} exceeds segment_bytes {} (the index would never \
                 get an entry past the first frame)",
                self.index_interval_bytes, self.segment_bytes
            )));
        }
        Ok(())
    }

    /// The storage-engine slice of this config.
    pub fn storage_spec(&self) -> StorageSpec {
        StorageSpec {
            segment_bytes: self.segment_bytes,
            index_interval_bytes: self.index_interval_bytes,
            compression: self.compression,
            cold_after_bytes: self.cold_after_bytes,
        }
    }

    /// Builder-style partition count.
    pub fn with_partitions(mut self, n: u32) -> Self {
        self.partitions = n;
        self
    }

    /// Builder-style replication factor.
    pub fn with_replication(mut self, n: u32) -> Self {
        self.replication_factor = n;
        self
    }

    /// Builder-style min ISR.
    pub fn with_min_insync(mut self, n: u32) -> Self {
        self.min_insync_replicas = n;
        self
    }

    /// Builder-style cleanup policy.
    pub fn with_cleanup(mut self, c: CleanupPolicy) -> Self {
        self.cleanup = c;
        self
    }

    /// Builder-style segment roll size.
    pub fn with_segment_bytes(mut self, n: usize) -> Self {
        self.segment_bytes = n;
        self
    }

    /// Builder-style sparse index interval.
    pub fn with_index_interval(mut self, n: u64) -> Self {
        self.index_interval_bytes = n;
        self
    }

    /// Builder-style compression codec.
    pub fn with_compression(mut self, c: Compression) -> Self {
        self.compression = c;
        self
    }

    /// Builder-style cold-tier threshold.
    pub fn with_cold_after(mut self, bytes: u64) -> Self {
        self.cold_after_bytes = Some(bytes);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = TopicConfig::default();
        assert_eq!(c.partitions, 2);
        assert_eq!(c.replication_factor, 2);
        assert_eq!(c.retention.retention_ms, Some(604_800_000)); // 7 days
        assert!(c.validate(2).is_ok());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(TopicConfig::default().with_partitions(0).validate(2).is_err());
        assert!(TopicConfig::default().with_replication(0).validate(2).is_err());
        assert!(TopicConfig::default().with_replication(3).validate(2).is_err());
        assert!(TopicConfig::default().with_min_insync(0).validate(2).is_err());
        assert!(TopicConfig::default().with_min_insync(3).validate(4).is_err()); // > RF
        let c = TopicConfig { segment_bytes: 0, ..TopicConfig::default() };
        assert!(c.validate(2).is_err());
    }

    #[test]
    fn storage_spec_carries_the_new_knobs() {
        let c = TopicConfig::default()
            .with_segment_bytes(1 << 18)
            .with_index_interval(4096)
            .with_compression(Compression::Lz4)
            .with_cold_after(1 << 20);
        assert!(c.validate(2).is_ok());
        let spec = c.storage_spec();
        assert_eq!(spec.segment_bytes, 1 << 18);
        assert_eq!(spec.index_interval_bytes, 4096);
        assert_eq!(spec.compression, Compression::Lz4);
        assert_eq!(spec.cold_after_bytes, Some(1 << 20));
        // an index interval past the roll size can never index anything
        let bad = TopicConfig::default().with_segment_bytes(1024).with_index_interval(4096);
        assert!(bad.validate(2).is_err());
    }

    #[test]
    fn builder_chain() {
        let c = TopicConfig::default()
            .with_partitions(4)
            .with_replication(4)
            .with_min_insync(2)
            .with_cleanup(CleanupPolicy::Compact);
        assert_eq!(c.partitions, 4);
        assert_eq!(c.replication_factor, 4);
        assert_eq!(c.min_insync_replicas, 2);
        assert_eq!(c.cleanup, CleanupPolicy::Compact);
        assert!(c.validate(4).is_ok());
    }
}
