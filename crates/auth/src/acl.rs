//! Per-topic access control lists.
//!
//! Octopus enforces fine-grained access control: "Each user or a group of
//! users must be allowed to access only their topics" (§III-B). Topic
//! registration grants the creator READ, WRITE and DESCRIBE (§IV-B), and
//! owners self-manage grants via `POST /topic/<topic>/user`.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use octopus_types::{OctoError, OctoResult, Uid};

/// Topic permissions, mirroring the Kafka/MSK ACL operations the paper
/// names (§IV-B: "sets READ, WRITE, and DESCRIBE access").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Permission {
    /// Consume events from the topic.
    Read,
    /// Produce events to the topic.
    Write,
    /// See topic metadata and configuration.
    Describe,
}

impl Permission {
    /// All three permissions (granted to the creator on registration).
    pub const ALL: [Permission; 3] = [Permission::Read, Permission::Write, Permission::Describe];
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct TopicAcl {
    owner: Uid,
    grants: HashMap<Uid, HashSet<Permission>>,
}

/// Thread-safe ACL store, shared between OWS (management plane) and the
/// broker (enforcement plane).
#[derive(Clone, Default)]
pub struct AclStore {
    inner: Arc<RwLock<HashMap<String, TopicAcl>>>,
}

impl AclStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a topic owned by `owner`, granting the owner full access.
    /// Idempotent for the same owner; conflicts for a different one.
    pub fn register_topic(&self, topic: &str, owner: Uid) -> OctoResult<()> {
        let mut inner = self.inner.write();
        if let Some(existing) = inner.get(topic) {
            if existing.owner == owner {
                return Ok(()); // idempotent retry (§IV-F)
            }
            return Err(OctoError::TopicExists(topic.to_string()));
        }
        let mut acl = TopicAcl { owner, grants: HashMap::new() };
        acl.grants.insert(owner, Permission::ALL.into_iter().collect());
        inner.insert(topic.to_string(), acl);
        Ok(())
    }

    /// Remove a topic's ACL entry entirely.
    pub fn drop_topic(&self, topic: &str) {
        self.inner.write().remove(topic);
    }

    /// Whether the topic is registered.
    pub fn topic_exists(&self, topic: &str) -> bool {
        self.inner.read().contains_key(topic)
    }

    /// The owner of a topic.
    pub fn owner(&self, topic: &str) -> OctoResult<Uid> {
        self.inner
            .read()
            .get(topic)
            .map(|a| a.owner)
            .ok_or_else(|| OctoError::UnknownTopic(topic.to_string()))
    }

    /// Grant `perms` on `topic` to `grantee`. Only the owner (or a
    /// principal holding Describe+the permission itself, per self-service
    /// sharing) may grant; we restrict to owner for simplicity, matching
    /// the paper's "users require the ability to self-manage access
    /// control on *their* topics".
    pub fn grant(
        &self,
        topic: &str,
        granter: Uid,
        grantee: Uid,
        perms: &[Permission],
    ) -> OctoResult<()> {
        let mut inner = self.inner.write();
        let acl = inner
            .get_mut(topic)
            .ok_or_else(|| OctoError::UnknownTopic(topic.to_string()))?;
        if acl.owner != granter {
            return Err(OctoError::Unauthorized(format!(
                "only the owner may manage grants on {topic}"
            )));
        }
        acl.grants.entry(grantee).or_default().extend(perms.iter().copied());
        Ok(())
    }

    /// Revoke `perms` on `topic` from `grantee`. Owner-only; the owner's
    /// own grants cannot be revoked (ownership is absolute).
    pub fn revoke(
        &self,
        topic: &str,
        granter: Uid,
        grantee: Uid,
        perms: &[Permission],
    ) -> OctoResult<()> {
        let mut inner = self.inner.write();
        let acl = inner
            .get_mut(topic)
            .ok_or_else(|| OctoError::UnknownTopic(topic.to_string()))?;
        if acl.owner != granter {
            return Err(OctoError::Unauthorized(format!(
                "only the owner may manage grants on {topic}"
            )));
        }
        if grantee == acl.owner {
            return Err(OctoError::Invalid("cannot revoke the owner's access".into()));
        }
        if let Some(set) = acl.grants.get_mut(&grantee) {
            for p in perms {
                set.remove(p);
            }
            if set.is_empty() {
                acl.grants.remove(&grantee);
            }
        }
        Ok(())
    }

    /// Enforcement check: does `principal` hold `perm` on `topic`?
    pub fn check(&self, topic: &str, principal: Uid, perm: Permission) -> OctoResult<()> {
        let inner = self.inner.read();
        let acl = inner
            .get(topic)
            .ok_or_else(|| OctoError::UnknownTopic(topic.to_string()))?;
        let ok = acl.grants.get(&principal).is_some_and(|s| s.contains(&perm));
        if ok {
            Ok(())
        } else {
            Err(OctoError::Unauthorized(format!(
                "principal {principal} lacks {perm:?} on {topic}"
            )))
        }
    }

    /// All topics `principal` can Describe (the `GET /topics` listing).
    pub fn describable_topics(&self, principal: Uid) -> Vec<String> {
        let inner = self.inner.read();
        let mut out: Vec<String> = inner
            .iter()
            .filter(|(_, acl)| {
                acl.grants.get(&principal).is_some_and(|s| s.contains(&Permission::Describe))
            })
            .map(|(t, _)| t.clone())
            .collect();
        out.sort();
        out
    }

    /// The grants table of a topic (owner's view).
    pub fn grants_of(&self, topic: &str) -> OctoResult<Vec<(Uid, Vec<Permission>)>> {
        let inner = self.inner.read();
        let acl = inner
            .get(topic)
            .ok_or_else(|| OctoError::UnknownTopic(topic.to_string()))?;
        let mut out: Vec<(Uid, Vec<Permission>)> = acl
            .grants
            .iter()
            .map(|(u, s)| {
                let mut v: Vec<Permission> = s.iter().copied().collect();
                v.sort_by_key(|p| format!("{p:?}"));
                (*u, v)
            })
            .collect();
        out.sort_by_key(|(u, _)| *u);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALICE: Uid = Uid(1);
    const BOB: Uid = Uid(2);
    const EVE: Uid = Uid(3);

    fn store() -> AclStore {
        let s = AclStore::new();
        s.register_topic("sdl.actions", ALICE).unwrap();
        s
    }

    #[test]
    fn creator_gets_full_access() {
        let s = store();
        for p in Permission::ALL {
            s.check("sdl.actions", ALICE, p).unwrap();
        }
        assert_eq!(s.owner("sdl.actions").unwrap(), ALICE);
    }

    #[test]
    fn others_start_with_nothing() {
        let s = store();
        for p in Permission::ALL {
            assert!(matches!(
                s.check("sdl.actions", BOB, p),
                Err(OctoError::Unauthorized(_))
            ));
        }
    }

    #[test]
    fn registration_is_idempotent_for_owner_conflicts_for_others() {
        let s = store();
        s.register_topic("sdl.actions", ALICE).unwrap(); // retry OK
        assert!(matches!(
            s.register_topic("sdl.actions", BOB),
            Err(OctoError::TopicExists(_))
        ));
    }

    #[test]
    fn grant_and_revoke() {
        let s = store();
        s.grant("sdl.actions", ALICE, BOB, &[Permission::Read, Permission::Describe]).unwrap();
        s.check("sdl.actions", BOB, Permission::Read).unwrap();
        s.check("sdl.actions", BOB, Permission::Describe).unwrap();
        assert!(s.check("sdl.actions", BOB, Permission::Write).is_err());

        s.revoke("sdl.actions", ALICE, BOB, &[Permission::Read]).unwrap();
        assert!(s.check("sdl.actions", BOB, Permission::Read).is_err());
        s.check("sdl.actions", BOB, Permission::Describe).unwrap();
    }

    #[test]
    fn only_owner_manages_grants() {
        let s = store();
        assert!(matches!(
            s.grant("sdl.actions", EVE, EVE, &[Permission::Read]),
            Err(OctoError::Unauthorized(_))
        ));
        s.grant("sdl.actions", ALICE, BOB, &[Permission::Read]).unwrap();
        assert!(matches!(
            s.revoke("sdl.actions", BOB, BOB, &[Permission::Read]),
            Err(OctoError::Unauthorized(_))
        ));
    }

    #[test]
    fn owner_cannot_be_locked_out() {
        let s = store();
        assert!(matches!(
            s.revoke("sdl.actions", ALICE, ALICE, &[Permission::Write]),
            Err(OctoError::Invalid(_))
        ));
    }

    #[test]
    fn describable_listing_is_scoped() {
        let s = store();
        s.register_topic("epi.sources", BOB).unwrap();
        s.grant("epi.sources", BOB, ALICE, &[Permission::Describe]).unwrap();
        assert_eq!(s.describable_topics(ALICE), vec!["epi.sources", "sdl.actions"]);
        assert_eq!(s.describable_topics(BOB), vec!["epi.sources"]);
        assert!(s.describable_topics(EVE).is_empty());
    }

    #[test]
    fn unknown_topic_errors() {
        let s = store();
        assert!(matches!(s.owner("nope"), Err(OctoError::UnknownTopic(_))));
        assert!(s.check("nope", ALICE, Permission::Read).is_err());
        assert!(s.grants_of("nope").is_err());
    }

    #[test]
    fn drop_topic_removes_acl() {
        let s = store();
        s.drop_topic("sdl.actions");
        assert!(!s.topic_exists("sdl.actions"));
        assert!(s.check("sdl.actions", ALICE, Permission::Read).is_err());
    }

    #[test]
    fn grants_table_view() {
        let s = store();
        s.grant("sdl.actions", ALICE, BOB, &[Permission::Read]).unwrap();
        let grants = s.grants_of("sdl.actions").unwrap();
        assert_eq!(grants.len(), 2);
        assert_eq!(grants[0].0, ALICE);
        assert_eq!(grants[0].1.len(), 3);
        assert_eq!(grants[1], (BOB, vec![Permission::Read]));
    }
}
