//! Tiered cold storage for sealed segments.
//!
//! Octopus's long-lived scientific topics accumulate data far past what
//! the hot NVMe tier should hold (§IV-F). Once a segment is sealed (and
//! therefore immutable), its **data file** can be offloaded to a
//! [`ColdStore`] — an object-store-shaped byte sink — while the sparse
//! index stays hot. The segment directory keeps a small `<base>.tier`
//! marker naming the cold object so recovery and fetches know where the
//! bytes went. A fetch that lands on a cold segment hydrates it back
//! (single-flight, see `store::SegmentIo`) and then reads locally.
//!
//! The trait is deliberately minimal — `put`/`get`/`delete` over whole
//! objects — so an S3/Ceph-backed impl slots in without touching the
//! store. The in-tree [`FsColdStore`] targets a local directory and is
//! what tests, chaos drills, and single-node deployments use.

use std::fmt::Debug;
use std::fs;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use octopus_types::{OctoError, OctoResult, Offset};
use serde::{Deserialize, Serialize};

/// Whole-object byte store for offloaded segment data files.
///
/// Implementations must be safe for concurrent use; `put` must be
/// atomic (readers see the old object or the whole new one, never a
/// torn write) and `delete` idempotent.
pub trait ColdStore: Send + Sync + Debug {
    /// Store `bytes` under `key`, replacing any existing object.
    fn put(&self, key: &str, bytes: &[u8]) -> OctoResult<()>;
    /// Fetch the object at `key`; `Ok(None)` when it does not exist.
    fn get(&self, key: &str) -> OctoResult<Option<Vec<u8>>>;
    /// Remove the object at `key` (no-op when absent).
    fn delete(&self, key: &str) -> OctoResult<()>;
}

/// Filesystem-backed [`ColdStore`]: objects are files under a root
/// directory, written via tmp + rename so a crash mid-`put` never
/// leaves a torn object.
#[derive(Debug)]
pub struct FsColdStore {
    root: PathBuf,
    seq: AtomicU64,
}

impl FsColdStore {
    /// Cold store rooted at `root` (created on demand).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        FsColdStore { root: root.into(), seq: AtomicU64::new(0) }
    }

    /// Root directory holding the cold objects.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn object_path(&self, key: &str) -> OctoResult<PathBuf> {
        // keys are slash-separated relative paths; refuse anything that
        // could escape the root
        if key.is_empty()
            || key.starts_with('/')
            || key.split('/').any(|c| c.is_empty() || c == "." || c == "..")
        {
            return Err(OctoError::Invalid(format!("invalid cold-store key {key:?}")));
        }
        Ok(self.root.join(key))
    }
}

impl ColdStore for FsColdStore {
    fn put(&self, key: &str, bytes: &[u8]) -> OctoResult<()> {
        let path = self.object_path(key)?;
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_extension(format!("put-{}-{n}.tmp", std::process::id()));
        fs::write(&tmp, bytes)?;
        let file = fs::File::open(&tmp)?;
        file.sync_data()?;
        drop(file);
        if let Err(err) = fs::rename(&tmp, &path) {
            let _ = fs::remove_file(&tmp);
            return Err(err.into());
        }
        Ok(())
    }

    fn get(&self, key: &str) -> OctoResult<Option<Vec<u8>>> {
        let path = self.object_path(key)?;
        match fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(err) if err.kind() == ErrorKind::NotFound => Ok(None),
            Err(err) => Err(err.into()),
        }
    }

    fn delete(&self, key: &str) -> OctoResult<()> {
        let path = self.object_path(key)?;
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(err) if err.kind() == ErrorKind::NotFound => Ok(()),
            Err(err) => Err(err.into()),
        }
    }
}

/// On-disk `<base>.tier` marker left in the segment directory when the
/// data file has been offloaded: names the cold object and the exact
/// byte length hydration must get back.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierMarker {
    /// Cold-store object key holding the segment data file.
    pub key: String,
    /// Exact data file length in bytes.
    pub data_len: u64,
}

/// Path of the tier marker for segment `base`.
pub(crate) fn marker_path(dir: &Path, base: Offset) -> PathBuf {
    dir.join(format!("{base:020}.tier"))
}

/// Read and parse the tier marker, if present and well-formed. A
/// malformed marker is treated as absent (the caller then decides
/// whether the hot file makes the segment whole).
pub(crate) fn read_marker(dir: &Path, base: Offset) -> Option<TierMarker> {
    let bytes = fs::read(marker_path(dir, base)).ok()?;
    serde_json::from_slice(&bytes).ok()
}

/// Atomically write the tier marker (tmp + rename + fsync).
pub(crate) fn write_marker(dir: &Path, base: Offset, marker: &TierMarker) -> OctoResult<()> {
    let path = marker_path(dir, base);
    let tmp = path.with_extension("tier.tmp");
    let json = serde_json::to_vec(marker)
        .map_err(|e| OctoError::Serde(format!("tier marker encode: {e}")))?;
    fs::write(&tmp, &json)?;
    let file = fs::File::open(&tmp)?;
    file.sync_data()?;
    drop(file);
    fs::rename(&tmp, &path)?;
    Ok(())
}

/// Remove the tier marker (idempotent).
pub(crate) fn remove_marker(dir: &Path, base: Offset) {
    let _ = fs::remove_file(marker_path(dir, base));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TempDir;

    #[test]
    fn fs_cold_store_put_get_delete_roundtrip() {
        let tmp = TempDir::new("octopus-cold");
        let store = FsColdStore::new(tmp.path());
        assert_eq!(store.get("a/b/seg").unwrap(), None);
        store.put("a/b/seg", b"hello cold world").unwrap();
        assert_eq!(store.get("a/b/seg").unwrap().as_deref(), Some(&b"hello cold world"[..]));
        store.put("a/b/seg", b"v2").unwrap();
        assert_eq!(store.get("a/b/seg").unwrap().as_deref(), Some(&b"v2"[..]));
        store.delete("a/b/seg").unwrap();
        store.delete("a/b/seg").unwrap();
        assert_eq!(store.get("a/b/seg").unwrap(), None);
    }

    #[test]
    fn traversal_keys_are_rejected() {
        let tmp = TempDir::new("octopus-cold");
        let store = FsColdStore::new(tmp.path());
        for key in ["", "/abs", "a//b", "../escape", "a/./b", "a/../b"] {
            assert!(store.put(key, b"x").is_err(), "key {key:?} accepted");
        }
    }

    #[test]
    fn marker_roundtrip_and_malformed_marker_ignored() {
        let tmp = TempDir::new("octopus-data-tier");
        let marker = TierMarker { key: "t/0/seg".into(), data_len: 4096 };
        write_marker(tmp.path(), 42, &marker).unwrap();
        assert_eq!(read_marker(tmp.path(), 42), Some(marker));
        fs::write(marker_path(tmp.path(), 42), b"not json").unwrap();
        assert_eq!(read_marker(tmp.path(), 42), None);
        remove_marker(tmp.path(), 42);
        remove_marker(tmp.path(), 42);
        assert_eq!(read_marker(tmp.path(), 42), None);
    }
}
