//! IPv4 CIDR block matching for `{"cidr": "10.0.0.0/24"}` patterns.

use std::fmt;
use std::str::FromStr;

/// An IPv4 CIDR block, e.g. `192.168.0.0/16`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cidr {
    base: u32,
    prefix_len: u8,
}

impl Cidr {
    /// Parse `a.b.c.d/len`. The base address is masked to the prefix, so
    /// `10.0.0.7/24` is accepted and normalized to `10.0.0.0/24`.
    pub fn parse(s: &str) -> Option<Cidr> {
        let (addr, len) = s.split_once('/')?;
        let prefix_len: u8 = len.parse().ok()?;
        if prefix_len > 32 {
            return None;
        }
        let base = parse_ipv4(addr)?;
        let mask = Cidr { base: 0, prefix_len }.mask();
        Some(Cidr { base: base & mask, prefix_len })
    }

    fn mask(&self) -> u32 {
        if self.prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - self.prefix_len as u32)
        }
    }

    /// Whether the dotted-quad string `ip` falls inside this block.
    pub fn contains_str(&self, ip: &str) -> bool {
        parse_ipv4(ip).is_some_and(|a| self.contains(a))
    }

    /// Whether the numeric address falls inside this block.
    pub fn contains(&self, addr: u32) -> bool {
        (addr & self.mask()) == self.base
    }
}

impl FromStr for Cidr {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Cidr::parse(s).ok_or_else(|| format!("invalid CIDR: {s}"))
    }
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.base;
        write!(
            f,
            "{}.{}.{}.{}/{}",
            b >> 24,
            (b >> 16) & 0xff,
            (b >> 8) & 0xff,
            b & 0xff,
            self.prefix_len
        )
    }
}

fn parse_ipv4(s: &str) -> Option<u32> {
    let mut out: u32 = 0;
    let mut parts = 0;
    for part in s.split('.') {
        if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let v: u32 = part.parse().ok()?;
        if v > 255 {
            return None;
        }
        out = (out << 8) | v;
        parts += 1;
    }
    (parts == 4).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_contain() {
        let c = Cidr::parse("10.0.0.0/24").unwrap();
        assert!(c.contains_str("10.0.0.1"));
        assert!(c.contains_str("10.0.0.255"));
        assert!(!c.contains_str("10.0.1.0"));
        assert!(!c.contains_str("11.0.0.1"));
    }

    #[test]
    fn base_is_normalized() {
        let c = Cidr::parse("10.0.0.77/24").unwrap();
        assert_eq!(c.to_string(), "10.0.0.0/24");
        assert!(c.contains_str("10.0.0.1"));
    }

    #[test]
    fn zero_prefix_matches_everything() {
        let c = Cidr::parse("0.0.0.0/0").unwrap();
        assert!(c.contains_str("255.255.255.255"));
        assert!(c.contains_str("1.2.3.4"));
    }

    #[test]
    fn slash_32_is_exact() {
        let c = Cidr::parse("192.168.1.5/32").unwrap();
        assert!(c.contains_str("192.168.1.5"));
        assert!(!c.contains_str("192.168.1.6"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "10.0.0.0",      // no prefix
            "10.0.0.0/33",   // prefix too long
            "10.0.0/24",     // too few octets
            "10.0.0.0.0/8",  // too many octets
            "256.0.0.0/8",   // octet out of range
            "a.b.c.d/8",     // not numeric
            "10.0.0.-1/8",   // negative
            "10.0.0.0/ 8",   // whitespace
        ] {
            assert!(Cidr::parse(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn non_ip_strings_do_not_match() {
        let c = Cidr::parse("10.0.0.0/8").unwrap();
        assert!(!c.contains_str("not an ip"));
        assert!(!c.contains_str(""));
    }
}
