//! The common error type shared by all Octopus crates.

use std::fmt;

/// Convenient result alias used across the workspace.
pub type OctoResult<T> = Result<T, OctoError>;

/// Errors produced anywhere in the Octopus stack.
///
/// A single error enum keeps cross-crate plumbing simple: the SDK can
/// surface a broker-side authorization failure to an application without
/// each layer defining its own wrapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OctoError {
    /// The named topic does not exist.
    UnknownTopic(String),
    /// The named partition does not exist within the topic.
    UnknownPartition(String, u32),
    /// A topic with this name already exists.
    TopicExists(String),
    /// The caller is not authenticated (missing/expired/invalid token).
    Unauthenticated(String),
    /// The caller is authenticated but lacks permission for the operation.
    Unauthorized(String),
    /// A requested offset is out of the retained range.
    OffsetOutOfRange { requested: u64, earliest: u64, latest: u64 },
    /// The broker (or a quorum of replicas) is unavailable.
    Unavailable(String),
    /// Communication timed out.
    Timeout(String),
    /// A produce was rejected because fewer than `min.insync.replicas`
    /// replicas are in sync.
    NotEnoughReplicas { in_sync: usize, required: usize },
    /// The addressed broker is not (or is no longer) the leader for
    /// this partition. `leader` hints the current leader's broker id so
    /// clients can refresh metadata and re-route instead of retrying
    /// the same endpoint.
    NotLeader { topic: String, partition: u32, leader: u32 },
    /// Consumer group coordination failed (e.g. stale generation).
    RebalanceInProgress(String),
    /// Input failed validation (bad config value, malformed pattern, ...).
    Invalid(String),
    /// An internal invariant was violated; indicates a bug.
    Internal(String),
    /// The operation conflicted with a concurrent update (version mismatch).
    Conflict(String),
    /// A resource quota or rate limit was exceeded.
    RateLimited(String),
    /// Serialization / deserialization failure.
    Serde(String),
    /// A client-side buffer is full (producer `buffer.memory` exhausted).
    BufferFull { capacity_bytes: usize },
    /// The referenced entity (trigger, key, session, ...) was not found.
    NotFound(String),
    /// A filesystem / storage-engine failure (durable log, checkpoints).
    Io(String),
}

impl fmt::Display for OctoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OctoError::UnknownTopic(t) => write!(f, "unknown topic: {t}"),
            OctoError::UnknownPartition(t, p) => write!(f, "unknown partition {p} of topic {t}"),
            OctoError::TopicExists(t) => write!(f, "topic already exists: {t}"),
            OctoError::Unauthenticated(m) => write!(f, "unauthenticated: {m}"),
            OctoError::Unauthorized(m) => write!(f, "unauthorized: {m}"),
            OctoError::OffsetOutOfRange { requested, earliest, latest } => write!(
                f,
                "offset {requested} out of range [{earliest}, {latest})"
            ),
            OctoError::Unavailable(m) => write!(f, "unavailable: {m}"),
            OctoError::Timeout(m) => write!(f, "timeout: {m}"),
            OctoError::NotEnoughReplicas { in_sync, required } => {
                write!(f, "not enough in-sync replicas: {in_sync} < {required}")
            }
            OctoError::NotLeader { topic, partition, leader } => {
                write!(f, "not leader for {topic}/{partition} (current leader: broker {leader})")
            }
            OctoError::RebalanceInProgress(m) => write!(f, "rebalance in progress: {m}"),
            OctoError::Invalid(m) => write!(f, "invalid input: {m}"),
            OctoError::Internal(m) => write!(f, "internal error: {m}"),
            OctoError::Conflict(m) => write!(f, "conflict: {m}"),
            OctoError::RateLimited(m) => write!(f, "rate limited: {m}"),
            OctoError::Serde(m) => write!(f, "serde error: {m}"),
            OctoError::BufferFull { capacity_bytes } => {
                write!(f, "producer buffer full ({capacity_bytes} bytes)")
            }
            OctoError::NotFound(m) => write!(f, "not found: {m}"),
            OctoError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for OctoError {}

impl OctoError {
    /// Whether a client may safely retry the failed operation.
    ///
    /// Mirrors the paper's §IV-F: the SDK producer retries transient
    /// failures a configurable number of times before surfacing them.
    pub fn is_retriable(&self) -> bool {
        matches!(
            self,
            OctoError::Unavailable(_)
                | OctoError::Timeout(_)
                | OctoError::NotEnoughReplicas { .. }
                | OctoError::NotLeader { .. }
                | OctoError::RebalanceInProgress(_)
                | OctoError::RateLimited(_)
        )
    }
}

impl From<serde_json::Error> for OctoError {
    fn from(e: serde_json::Error) -> Self {
        OctoError::Serde(e.to_string())
    }
}

impl From<std::io::Error> for OctoError {
    fn from(e: std::io::Error) -> Self {
        OctoError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = OctoError::UnknownTopic("fsmon.events".into());
        assert_eq!(e.to_string(), "unknown topic: fsmon.events");
        let e = OctoError::OffsetOutOfRange { requested: 9, earliest: 10, latest: 20 };
        assert!(e.to_string().contains("[10, 20)"));
    }

    #[test]
    fn retriability_classification() {
        assert!(OctoError::Timeout("t".into()).is_retriable());
        assert!(OctoError::Unavailable("broker down".into()).is_retriable());
        assert!(OctoError::NotEnoughReplicas { in_sync: 1, required: 2 }.is_retriable());
        assert!(OctoError::NotLeader { topic: "t".into(), partition: 0, leader: 2 }
            .is_retriable());
        assert!(OctoError::RateLimited("identity".into()).is_retriable());
        assert!(!OctoError::Unauthorized("no WRITE".into()).is_retriable());
        assert!(!OctoError::UnknownTopic("t".into()).is_retriable());
        assert!(!OctoError::Invalid("bad".into()).is_retriable());
    }

    #[test]
    fn from_serde_json() {
        let bad: Result<serde_json::Value, _> = serde_json::from_str("{not json");
        let err: OctoError = bad.unwrap_err().into();
        assert!(matches!(err, OctoError::Serde(_)));
    }
}
