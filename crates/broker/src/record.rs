//! Stored records and batches.
//!
//! A [`Record`] is an [`Event`] plus its log coordinates (offset, append
//! time). Producers ship [`RecordBatch`]es; batching is the fabric's main
//! throughput lever (it is why 32 B events reach millions/s in Table III
//! while 4 KB events are bandwidth-bound). Each batch carries a CRC32C
//! over its payload bytes, verified on append.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use octopus_types::{Event, Header, Offset, Timestamp};

const POLY: u32 = 0x82F6_3B78; // reflected Castagnoli polynomial

/// 8 × 256 lookup tables for slicing-by-8. Table 0 is the classic
/// one-byte table; table k folds a byte that sits k positions deeper in
/// the stream, so eight bytes can be folded per iteration with eight
/// independent loads instead of an eight-long dependency chain.
static TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();

fn tables() -> &'static [[u32; 256]; 8] {
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *slot = crc;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xff) as usize];
            }
        }
        t
    })
}

/// Incremental CRC32C (Castagnoli) hasher, slicing-by-8.
///
/// Streaming form of [`crc32c`]: feed discontiguous slices (record key
/// then payload, batch payloads one by one) without concatenating them
/// into a scratch buffer first. `Crc32c::new().update(a).update(b)
/// .finalize()` equals `crc32c(a ++ b)`.
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// Start a fresh checksum.
    pub fn new() -> Self {
        Crc32c { state: !0u32 }
    }

    /// Fold `data` into the checksum; returns `&mut self` for chaining.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        let t = tables();
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
            crc = t[7][(lo & 0xff) as usize]
                ^ t[6][((lo >> 8) & 0xff) as usize]
                ^ t[5][((lo >> 16) & 0xff) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][chunk[4] as usize]
                ^ t[2][chunk[5] as usize]
                ^ t[1][chunk[6] as usize]
                ^ t[0][chunk[7] as usize];
        }
        for &b in chunks.remainder() {
            crc = t[0][((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
        }
        self.state = crc;
        self
    }

    /// Finish and return the checksum.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

/// CRC32C (Castagnoli) over a contiguous slice, as used by Kafka record
/// batches. Slicing-by-8; see [`Crc32c`] for the streaming form.
pub fn crc32c(data: &[u8]) -> u32 {
    Crc32c::new().update(data).finalize()
}

/// The identity an idempotent producer stamps into a batch: a
/// controller-assigned producer id, the epoch that fences zombies, and
/// the partition-local sequence number of the batch's *first* record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProducerStamp {
    /// Controller-assigned producer id.
    pub pid: u64,
    /// Epoch of the id; a re-registration bumps it, fencing the old
    /// holder's in-flight batches.
    pub epoch: u32,
    /// Sequence number of the first record in the batch, monotone per
    /// `(pid, partition)`. Record `i` of the batch carries `seq + i`.
    pub seq: u64,
}

/// A transaction control marker, written through the log as a control
/// record when a transaction resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlMarker {
    /// Everything the transaction wrote before this offset is committed.
    Commit,
    /// Everything the transaction wrote before this offset is aborted;
    /// read-committed consumers drop it.
    Abort,
}

/// Per-record exactly-once metadata, stamped at append time from the
/// batch-level [`ProducerStamp`] and persisted with the record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordEos {
    /// Producer id.
    pub pid: u64,
    /// Producer epoch at append time.
    pub epoch: u32,
    /// This record's sequence number within `(pid, partition)`.
    pub seq: u64,
    /// Whether the record is part of an open transaction (invisible to
    /// read-committed consumers until its marker lands).
    pub txn: bool,
    /// Present on control records only.
    pub control: Option<ControlMarker>,
}

/// A record at rest in a partition log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Offset within the partition (assigned at append).
    pub offset: Offset,
    /// Broker append time.
    pub append_time: Timestamp,
    /// Producer key (partitioning / compaction key).
    pub key: Option<Bytes>,
    /// Payload.
    pub value: Bytes,
    /// Event headers (provenance, codec markers, trace ids).
    pub headers: Vec<Header>,
    /// Producer timestamp.
    pub producer_time: Timestamp,
    /// CRC32C over key + payload, stamped at append. Restart-time
    /// recovery truncates the log at the first mismatch (torn tail
    /// writes), like Kafka's log recovery.
    pub crc: u32,
    /// Exactly-once metadata (`None` for plain at-least-once records,
    /// and for every record written before EOS existed).
    pub eos: Option<RecordEos>,
}

impl Record {
    /// The checksum the record should carry given its current contents.
    /// Streams over key then payload — no scratch buffer.
    pub fn compute_crc(&self) -> u32 {
        let mut h = Crc32c::new();
        if let Some(k) = &self.key {
            h.update(k);
        }
        h.update(&self.value).finalize()
    }

    /// Whether the stored checksum matches the contents.
    pub fn verify(&self) -> bool {
        self.crc == self.compute_crc()
    }

    /// Approximate wire size (key + value + headers).
    pub fn wire_size(&self) -> usize {
        let headers: usize = self.headers.iter().map(|h| h.key.len() + h.value.len()).sum();
        self.key.as_ref().map(|k| k.len()).unwrap_or(0) + self.value.len() + headers
    }

    /// Convert back into an [`Event`] for delivery.
    pub fn to_event(&self) -> Event {
        Event {
            key: self.key.clone(),
            payload: self.value.clone(),
            headers: self.headers.clone(),
            timestamp: self.producer_time,
        }
    }
}

/// A batch of events headed for one partition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordBatch {
    /// The events, in producer order.
    pub events: Vec<Event>,
    /// CRC32C over the concatenated payloads (integrity check).
    pub crc: u32,
    /// Idempotent-producer identity; `None` for at-least-once batches.
    /// The checksum intentionally excludes it: a retry re-sends the
    /// same payload bytes under the same stamp.
    pub producer: Option<ProducerStamp>,
    /// Whether the batch belongs to an open transaction.
    pub txn: bool,
    /// Present on transaction control batches (one empty event carrying
    /// the marker).
    pub control: Option<ControlMarker>,
}

impl RecordBatch {
    /// Build a batch, computing its checksum.
    pub fn new(events: Vec<Event>) -> Self {
        let crc = Self::checksum(&events);
        RecordBatch { events, crc, producer: None, txn: false, control: None }
    }

    /// Stamp an idempotent-producer identity onto the batch. `txn`
    /// marks the batch as part of an open transaction.
    pub fn with_producer(mut self, stamp: ProducerStamp, txn: bool) -> Self {
        self.producer = Some(stamp);
        self.txn = txn;
        self
    }

    /// A transaction control batch: one empty record carrying `marker`
    /// for the transaction owned by `(pid, epoch)`. Control records
    /// occupy a log offset but are dropped by read-committed fetches.
    pub fn control_batch(pid: u64, epoch: u32, marker: ControlMarker) -> Self {
        let mut b = Self::new(vec![Event::from_bytes(Vec::new())]);
        b.producer = Some(ProducerStamp { pid, epoch, seq: 0 });
        b.txn = true;
        b.control = Some(marker);
        b
    }

    fn checksum(events: &[Event]) -> u32 {
        let mut h = Crc32c::new();
        for e in events {
            if let Some(k) = &e.key {
                h.update(k);
            }
            h.update(&e.payload);
        }
        h.finalize()
    }

    /// Verify the checksum against the current contents.
    pub fn verify(&self) -> bool {
        Self::checksum(&self.events) == self.crc
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total payload bytes.
    pub fn wire_size(&self) -> usize {
        self.events.iter().map(|e| e.wire_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 / common test vectors for CRC-32C
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62A8_AB43);
    }

    /// Bit-at-a-time reference implementation (no tables) — ground
    /// truth for the slicing-by-8 kernel.
    fn crc32c_bitwise(data: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
        }
        !crc
    }

    #[test]
    fn slicing_matches_bitwise_reference() {
        // lengths straddling the 8-byte slicing boundary + odd tails
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 255, 1024, 1031] {
            let data: Vec<u8> = (0..len).map(|i| (i * 131 + 17) as u8).collect();
            assert_eq!(crc32c(&data), crc32c_bitwise(&data), "len {len}");
        }
    }

    #[test]
    fn streaming_equals_oneshot_at_any_split() {
        let data: Vec<u8> = (0..100u8).collect();
        let whole = crc32c(&data);
        for split in 0..=data.len() {
            let (a, b) = data.split_at(split);
            let mut h = Crc32c::new();
            h.update(a).update(b);
            assert_eq!(h.finalize(), whole, "split {split}");
        }
        // three-way split with an empty middle
        let mut h = Crc32c::new();
        h.update(&data[..40]).update(&[]).update(&data[40..]);
        assert_eq!(h.finalize(), whole);
    }

    #[test]
    fn batch_checksum_detects_corruption() {
        let mut batch = RecordBatch::new(vec![
            Event::from_bytes(&b"hello"[..]),
            Event::builder().key("k").payload(&b"world"[..]).build(),
        ]);
        assert!(batch.verify());
        batch.events[0].payload = Bytes::from_static(b"hellO");
        assert!(!batch.verify());
    }

    #[test]
    fn batch_accounting() {
        let batch = RecordBatch::new(vec![
            Event::from_bytes(vec![0u8; 10]),
            Event::from_bytes(vec![0u8; 22]),
        ]);
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        assert_eq!(batch.wire_size(), 32);
        assert!(RecordBatch::new(vec![]).is_empty());
    }

    #[test]
    fn record_event_roundtrip() {
        let mut r = Record {
            offset: 5,
            append_time: Timestamp::from_millis(10),
            key: Some(Bytes::from_static(b"k")),
            value: Bytes::from_static(b"v"),
            headers: vec![Header { key: "hk".into(), value: b"hv".to_vec() }],
            producer_time: Timestamp::from_millis(9),
            crc: 0,
            eos: None,
        };
        r.crc = r.compute_crc();
        assert!(r.verify());
        let e = r.to_event();
        assert_eq!(e.key.as_deref(), Some(&b"k"[..]));
        assert_eq!(&e.payload[..], b"v");
        assert_eq!(e.timestamp, Timestamp::from_millis(9));
        assert_eq!(e.headers, r.headers);
        assert_eq!(r.wire_size(), 2 + 4);
    }

    #[test]
    fn producer_stamp_rides_outside_the_checksum() {
        let plain = RecordBatch::new(vec![Event::from_bytes(&b"x"[..])]);
        let stamped = RecordBatch::new(vec![Event::from_bytes(&b"x"[..])])
            .with_producer(ProducerStamp { pid: 7, epoch: 2, seq: 40 }, false);
        // a retry re-sends the same payload under the same stamp; the
        // integrity checksum covers the payload only
        assert_eq!(plain.crc, stamped.crc);
        assert!(stamped.verify());
        assert_eq!(stamped.producer.unwrap().seq, 40);
        assert!(!stamped.txn);
    }

    #[test]
    fn control_batch_shape() {
        let b = RecordBatch::control_batch(9, 3, ControlMarker::Abort);
        assert_eq!(b.len(), 1);
        assert!(b.txn);
        assert_eq!(b.control, Some(ControlMarker::Abort));
        assert_eq!(b.producer.unwrap().pid, 9);
        assert!(b.verify());
    }

    #[test]
    fn serde_roundtrips_eos_fields() {
        // The durable surfaces (frame codec, checkpoint body) have their
        // own legacy handling; here just assert the in-memory types
        // survive a serde round trip with and without a stamp.
        for batch in [
            RecordBatch::new(vec![Event::from_bytes(&b"x"[..])]),
            RecordBatch::new(vec![Event::from_bytes(&b"x"[..])])
                .with_producer(ProducerStamp { pid: 3, epoch: 1, seq: 7 }, true),
            RecordBatch::control_batch(4, 2, ControlMarker::Commit),
        ] {
            let json = serde_json::to_string(&batch).unwrap();
            let back: RecordBatch = serde_json::from_str(&json).unwrap();
            assert_eq!(back, batch);
        }
    }
}
