//! Property-based tests of the ZAB-style replicated store: agreement
//! and durability under arbitrary operation sequences interleaved with
//! arbitrary crash/restart schedules.

use proptest::prelude::*;

use octopus_zoo::znode::{CreateMode, Txn, TxnResult};
use octopus_zoo::{Ensemble, NodeId};

/// A step of a randomized schedule.
#[derive(Debug, Clone)]
enum Step {
    Create(u8),
    Set(u8, u8),
    Delete(u8),
    Kill(u8),
    Restart(u8),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (0u8..20).prop_map(Step::Create),
        3 => ((0u8..20), any::<u8>()).prop_map(|(p, v)| Step::Set(p, v)),
        1 => (0u8..20).prop_map(Step::Delete),
        1 => (0u8..5).prop_map(Step::Kill),
        2 => (0u8..5).prop_map(Step::Restart),
    ]
}

fn assert_agreement(e: &Ensemble) {
    let logs: Vec<_> = (0..e.len()).map(|i| e.node(NodeId(i)).committed_log()).collect();
    for pair in logs.windows(2) {
        let shorter = pair[0].len().min(pair[1].len());
        assert_eq!(pair[0][..shorter], pair[1][..shorter], "committed prefixes diverge");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Agreement: no matter the operation mix and failure schedule,
    /// committed prefixes never diverge across replicas, and every
    /// acknowledged write is durable (readable afterwards while quorum
    /// holds).
    #[test]
    fn zab_agreement_under_failures(steps in proptest::collection::vec(arb_step(), 1..60)) {
        let n = 5;
        let mut e = Ensemble::new(n);
        e.propose(Txn::Create {
            path: "/r".into(),
            data: vec![],
            mode: CreateMode::Persistent,
            session: 0,
        }).unwrap();
        // model of acknowledged state: path -> data
        let mut model: std::collections::HashMap<String, Vec<u8>> = std::collections::HashMap::new();
        for step in steps {
            match step {
                Step::Create(p) => {
                    let path = format!("/r/n{p}");
                    if let Ok(r) = e.propose(Txn::Create {
                        path: path.clone(),
                        data: vec![0],
                        mode: CreateMode::Persistent,
                        session: 0,
                    }) {
                        if matches!(r, TxnResult::Created(_)) {
                            model.insert(path, vec![0]);
                        }
                    }
                }
                Step::Set(p, v) => {
                    let path = format!("/r/n{p}");
                    if let Ok(TxnResult::Set(_)) = e.propose(Txn::SetData {
                        path: path.clone(),
                        data: vec![v],
                        expected_version: None,
                    }) {
                        model.insert(path, vec![v]);
                    }
                }
                Step::Delete(p) => {
                    let path = format!("/r/n{p}");
                    if let Ok(TxnResult::Deleted) = e.propose(Txn::Delete {
                        path: path.clone(),
                        expected_version: None,
                    }) {
                        model.remove(&path);
                    }
                }
                Step::Kill(i) => {
                    // never kill below quorum: acknowledged writes must
                    // stay readable for the durability check
                    if e.live_count() > e.quorum() {
                        e.kill(NodeId(i as usize % n));
                    }
                }
                Step::Restart(i) => {
                    let _ = e.restart(NodeId(i as usize % n));
                }
            }
            assert_agreement(&e);
        }
        // durability: every acknowledged write is visible
        for (path, data) in &model {
            let read = e.read(|t| t.get(path).map(|z| z.data.clone()).ok()).unwrap();
            prop_assert_eq!(read.as_ref(), Some(data), "lost acknowledged write to {}", path);
        }
        // and nothing deleted came back
        let children = e.read(|t| t.children("/r").unwrap()).unwrap();
        prop_assert_eq!(children.len(), model.len());
    }

    /// Sequential creates are strictly ordered even across leader
    /// failovers: the sequence numbers assigned are exactly 0..n.
    #[test]
    fn sequential_nodes_strictly_ordered_across_failover(
        kill_points in proptest::collection::btree_set(0usize..30, 0..3),
    ) {
        let mut e = Ensemble::new(3);
        e.propose(Txn::Create {
            path: "/q".into(), data: vec![], mode: CreateMode::Persistent, session: 0,
        }).unwrap();
        let mut created = Vec::new();
        for i in 0..30usize {
            if kill_points.contains(&i) {
                let leader = e.leader();
                e.kill(leader);
                // restart it later so quorum never collapses
                let _ = e.restart(leader);
            }
            if let Ok(TxnResult::Created(path)) = e.propose(Txn::Create {
                path: "/q/item-".into(),
                data: vec![],
                mode: CreateMode::PersistentSequential,
                session: 0,
            }) {
                created.push(path);
            }
        }
        // sequence numbers are strictly increasing in creation order
        let mut sorted = created.clone();
        sorted.sort();
        prop_assert_eq!(&created, &sorted, "sequential paths out of order");
        // and dense from zero
        for (i, path) in created.iter().enumerate() {
            prop_assert!(path.ends_with(&format!("{i:010}")), "{path} at index {i}");
        }
    }
}
