//! Criterion benches for the storage substrates: partition-log append/
//! read/compaction and coordination-service operations (topic metadata
//! writes go through ZAB consensus on every OWS mutation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use octopus_broker::{PartitionLog, RecordBatch};
use octopus_types::{Event, Timestamp};
use octopus_zoo::{CreateMode, ZooService};

fn log_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_append");
    for size in [32usize, 1024] {
        let batch =
            RecordBatch::new((0..100).map(|_| Event::from_bytes(vec![0u8; size])).collect());
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            let mut log = PartitionLog::new();
            let now = Timestamp::now();
            b.iter(|| log.append(&batch, now).unwrap());
        });
    }
    group.finish();
}

fn log_read(c: &mut Criterion) {
    let mut log = PartitionLog::new();
    let batch = RecordBatch::new((0..100).map(|_| Event::from_bytes(vec![0u8; 128])).collect());
    for _ in 0..100 {
        log.append(&batch, Timestamp::now()).unwrap();
    }
    let mut group = c.benchmark_group("log_read");
    group.throughput(Throughput::Elements(500));
    group.bench_function("mid_log_500", |b| {
        let mut offset = 0u64;
        b.iter(|| {
            let recs = log.read(offset, 500).unwrap();
            offset = (offset + 500) % 9000;
            recs.len()
        });
    });
    group.finish();
}

fn log_compaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_compaction");
    group.bench_function("10k_records_100_keys", |b| {
        b.iter_with_setup(
            || {
                let mut log = PartitionLog::with_segment_bytes(4096);
                for i in 0..10_000u32 {
                    let e = Event::builder()
                        .key(format!("key-{}", i % 100))
                        .payload(vec![0u8; 64])
                        .build();
                    log.append(&RecordBatch::new(vec![e]), Timestamp::now()).unwrap();
                }
                log
            },
            |mut log| log.compact(),
        );
    });
    group.finish();
}

fn zoo_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("zoo_ops");
    for replicas in [1usize, 3, 5] {
        group.bench_with_input(
            BenchmarkId::new("create", replicas),
            &replicas,
            |b, &replicas| {
                let zk = ZooService::new(replicas);
                zk.ensure_path("/bench").unwrap();
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    zk.create(&format!("/bench/n{i}"), b"v", CreateMode::Persistent, None)
                        .unwrap()
                });
            },
        );
    }
    let zk = ZooService::new(3);
    zk.ensure_path("/bench").unwrap();
    zk.create("/bench/hot", b"v", CreateMode::Persistent, None).unwrap();
    group.bench_function("read_3_replicas", |b| {
        b.iter(|| zk.get("/bench/hot").unwrap());
    });
    group.bench_function("set_3_replicas", |b| {
        b.iter(|| zk.set("/bench/hot", b"v2", None).unwrap());
    });
    group.finish();
}

criterion_group!(benches, log_append, log_read, log_compaction, zoo_ops);
criterion_main!(benches);
