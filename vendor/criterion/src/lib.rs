//! Hermetic stand-in for `criterion`.
//!
//! Provides the `Criterion`/`BenchmarkGroup`/`Bencher` API surface
//! the workspace's benches use, with a deliberately small measurement
//! budget (a short calibration run then a fixed-time measurement) so
//! `cargo bench` finishes quickly and offline. No statistical
//! analysis, plots, or baselines — just median-ish timings to stderr.

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Runs closures and measures them.
pub struct Bencher {
    /// Total measured time of the last `iter` call.
    elapsed: Duration,
    /// Iterations executed by the last `iter` call.
    iters: u64,
    measure_for: Duration,
}

impl Bencher {
    /// Measure `f` repeatedly within the time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up / calibration: estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(20) && warm_iters < 1_000_000 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().checked_div(warm_iters as u32).unwrap_or_default();
        let target = if per_iter.is_zero() {
            10_000
        } else {
            (self.measure_for.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        let start = Instant::now();
        for _ in 0..target {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = target;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput annotation.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Configure measurement time (accepted, loosely honoured).
    pub fn measurement_time(&mut self, time: Duration) {
        self.criterion.measure_for = time.min(Duration::from_millis(500));
    }

    /// Configure sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) {}

    /// Benchmark `f` against `input`.
    pub fn bench_with_input<I, D, F>(&mut self, id: D, input: &I, mut f: F)
    where
        D: fmt::Display,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher =
            Bencher { elapsed: Duration::ZERO, iters: 0, measure_for: self.criterion.measure_for };
        f(&mut bencher, input);
        self.report(&id.to_string(), &bencher);
    }

    /// Benchmark `f` with no input.
    pub fn bench_function<D, F>(&mut self, id: D, mut f: F)
    where
        D: fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let mut bencher =
            Bencher { elapsed: Duration::ZERO, iters: 0, measure_for: self.criterion.measure_for };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher);
    }

    /// Finish the group (prints nothing extra; parity with criterion).
    pub fn finish(self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        if bencher.iters == 0 {
            return;
        }
        let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
        let mut line = format!(
            "{}/{id}: {:.1} ns/iter ({} iters)",
            self.name, per_iter, bencher.iters
        );
        match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                let eps = n as f64 * 1e9 / per_iter;
                line.push_str(&format!(", {eps:.0} elem/s"));
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                let bps = n as f64 * 1e9 / per_iter;
                line.push_str(&format!(", {:.1} MiB/s", bps / (1024.0 * 1024.0)));
            }
            _ => {}
        }
        eprintln!("{line}");
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measure_for: Duration::from_millis(60) }
    }
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Benchmark `f` outside any group.
    pub fn bench_function<D, F>(&mut self, id: D, f: F)
    where
        D: fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        let mut count = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &x| {
            b.iter(|| {
                count = count.wrapping_add(x as u64);
                count
            });
        });
        group.bench_function("plain", |b| b.iter(|| 2 + 2));
        group.finish();
        assert!(count > 0);
    }
}
