//! The consumer-group consumer.
//!
//! "Consumers can consume messages either from the latest or the
//! earliest offset, or after a certain timestamp ... By default,
//! consumers periodically commit consuming offsets, which provides an
//! at-least-once delivery guarantee. The commit window is adjustable and
//! consumers can manually invoke the commit API" (§IV-F). All of that
//! surface lives here.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use octopus_broker::Cluster;
use octopus_wire::{InProcessTransport, Transport};
use octopus_types::obs::{now_ns, Stage, TraceContext};
use octopus_types::{
    DeliveredEvent, OctoError, OctoResult, Offset, PartitionId, Timestamp, TopicName, Uid,
};

/// Where a fresh consumer (no committed offset) starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OffsetReset {
    /// Start from the earliest retained record.
    #[default]
    Earliest,
    /// Start from the log end (only new records).
    Latest,
}

/// Consumer configuration.
#[derive(Debug, Clone)]
pub struct ConsumerConfig {
    /// Consumer group id.
    pub group: String,
    /// Auto-commit cadence; `None` disables auto-commit (manual only).
    pub auto_commit_interval: Option<Duration>,
    /// Max records returned by one `poll`.
    pub max_poll_records: usize,
    /// Max bytes returned by one `poll` (`receive.buffer.bytes` — the
    /// paper raises it to 2 MB, §V-B).
    pub receive_buffer_bytes: usize,
    /// Where to start without a committed offset.
    pub offset_reset: OffsetReset,
    /// Transactional isolation: only deliver records below the last
    /// stable offset, and drop records of aborted transactions. Off
    /// (`read_uncommitted`) by default, matching Kafka.
    pub read_committed: bool,
}

impl Default for ConsumerConfig {
    fn default() -> Self {
        ConsumerConfig {
            group: "default".into(),
            auto_commit_interval: Some(Duration::from_secs(5)),
            max_poll_records: 500,
            receive_buffer_bytes: 2 * 1024 * 1024,
            offset_reset: OffsetReset::Earliest,
            read_committed: false,
        }
    }
}

impl ConsumerConfig {
    /// A configuration with transactional isolation on: the consumer
    /// buffers past open transactions (last-stable-offset) and never
    /// sees aborted records.
    pub fn read_committed() -> Self {
        ConsumerConfig { read_committed: true, ..Default::default() }
    }
}

/// A consumer participating in a consumer group.
pub struct Consumer {
    transport: Arc<dyn Transport>,
    config: ConsumerConfig,
    member_id: String,
    principal: Option<Uid>,
    subscriptions: Vec<TopicName>,
    generation: u64,
    /// Shared so `poll` can iterate it without deep-cloning every topic
    /// name each call; rebalances swap in a fresh Arc.
    assignment: Arc<[(TopicName, PartitionId)]>,
    /// Next offset to fetch, per topic then partition. Nested so the
    /// per-poll hot path looks topics up by `&str` instead of
    /// allocating a `(String, u32)` key per partition per poll.
    positions: HashMap<TopicName, HashMap<PartitionId, Offset>>,
    /// Positions not yet committed (survives rebalances).
    dirty: HashMap<TopicName, HashMap<PartitionId, Offset>>,
    last_commit: Instant,
    round_robin_start: usize,
}

impl Consumer {
    /// A consumer over `cluster` (no broker-side principal).
    pub fn new(cluster: Cluster, config: ConsumerConfig) -> Self {
        Self::with_principal(cluster, config, None)
    }

    /// A consumer whose reads are authorized as `principal`.
    pub fn with_principal(cluster: Cluster, config: ConsumerConfig, principal: Option<Uid>) -> Self {
        Self::over(Arc::new(InProcessTransport::new(cluster)), config, principal)
    }

    /// A consumer reading through any [`Transport`] — in-process or a
    /// TCP connection to a remote wire server. Over TCP, `principal`
    /// is advisory only: the server authorizes against the handshake
    /// identity.
    pub fn over(
        transport: Arc<dyn Transport>,
        config: ConsumerConfig,
        principal: Option<Uid>,
    ) -> Self {
        let member_id = format!("member-{}", Uid::fresh());
        Consumer {
            transport,
            config,
            member_id,
            principal,
            subscriptions: Vec::new(),
            generation: 0,
            assignment: Arc::from(Vec::new()),
            positions: HashMap::new(),
            dirty: HashMap::new(),
            last_commit: Instant::now(),
            round_robin_start: 0,
        }
    }

    /// This consumer's member id within its group.
    pub fn member_id(&self) -> &str {
        &self.member_id
    }

    /// The current partition assignment.
    pub fn assignment(&self) -> &[(TopicName, PartitionId)] {
        &self.assignment
    }

    fn partition_counts(&self) -> HashMap<TopicName, u32> {
        self.subscriptions
            .iter()
            .filter_map(|t| self.transport.partition_count(t).ok().map(|n| (t.clone(), n)))
            .collect()
    }

    /// Subscribe to topics, joining the consumer group (triggers a
    /// rebalance).
    pub fn subscribe(&mut self, topics: &[&str]) -> OctoResult<()> {
        for t in topics {
            if !self.transport.topic_exists(t) {
                return Err(OctoError::UnknownTopic(t.to_string()));
            }
            self.transport.authorize(t, self.principal, octopus_auth::Permission::Read)?;
        }
        self.subscriptions = topics.iter().map(|t| t.to_string()).collect();
        self.rejoin()
    }

    fn rejoin(&mut self) -> OctoResult<()> {
        let counts = self.partition_counts();
        let a = self.transport.group_join(
            &self.config.group,
            &self.member_id,
            self.subscriptions.clone(),
            &counts,
        )?;
        self.generation = a.generation;
        self.assignment = a.partitions.into();
        self.positions.clear();
        Ok(())
    }

    fn refresh_assignment_if_stale(&mut self) {
        if let Ok(Some(a)) =
            self.transport.group_assignment(&self.config.group, &self.member_id)
        {
            if a.generation != self.generation {
                self.generation = a.generation;
                self.assignment = a.partitions.into();
                self.positions.clear();
            }
        }
    }

    fn position(&mut self, topic: &str, partition: PartitionId) -> OctoResult<Offset> {
        if let Some(&p) = self.positions.get(topic).and_then(|m| m.get(&partition)) {
            return Ok(p);
        }
        let committed =
            self.transport.offset_committed(&self.config.group, topic, partition)?;
        let start = match committed {
            Some(o) => o.max(self.transport.earliest_offset(topic, partition)?),
            None => match self.config.offset_reset {
                OffsetReset::Earliest => self.transport.earliest_offset(topic, partition)?,
                OffsetReset::Latest => self.transport.latest_offset(topic, partition)?,
            },
        };
        self.positions.entry(topic.to_string()).or_default().insert(partition, start);
        Ok(start)
    }

    /// Raise `map[topic][partition]` to at least `next`, allocating a
    /// topic key only the first time the topic is seen.
    fn bump(
        map: &mut HashMap<TopicName, HashMap<PartitionId, Offset>>,
        topic: &str,
        partition: PartitionId,
        next: Offset,
    ) {
        match map.get_mut(topic) {
            Some(parts) => {
                let slot = parts.entry(partition).or_insert(next);
                *slot = (*slot).max(next);
            }
            None => {
                map.entry(topic.to_string()).or_default().insert(partition, next);
            }
        }
    }

    /// Fetch a batch of records from the assigned partitions. Returns
    /// immediately with whatever is available (possibly empty). Runs the
    /// auto-commit clock.
    pub fn poll(&mut self) -> OctoResult<Vec<DeliveredEvent>> {
        self.refresh_assignment_if_stale();
        let mut out = Vec::new();
        let mut bytes = 0usize;
        // refcount bump, not a deep clone of every topic name
        let assignment = Arc::clone(&self.assignment);
        if assignment.is_empty() {
            self.maybe_auto_commit();
            return Ok(out);
        }
        // rotate the starting partition for fairness
        let n = assignment.len();
        self.round_robin_start = (self.round_robin_start + 1) % n;
        for i in 0..n {
            let (topic, partition) = &assignment[(self.round_robin_start + i) % n];
            if out.len() >= self.config.max_poll_records
                || bytes >= self.config.receive_buffer_bytes
            {
                break;
            }
            let pos = match self.position(topic, *partition) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let budget = self.config.max_poll_records - out.len();
            let (mut records, next_hint) = match self.fetch_checked(topic, *partition, pos, budget) {
                Ok(r) => r,
                Err(OctoError::OffsetOutOfRange { earliest, .. }) => {
                    // retention passed us by: jump forward (records lost,
                    // consistent with at-least-once + finite retention)
                    self.positions.entry(topic.clone()).or_default().insert(*partition, earliest);
                    continue;
                }
                Err(_) => continue,
            };
            if self.config.read_committed {
                // broker-side redelivery (fetch rewind under fault
                // injection) serves records below the position; a
                // read-committed consumer promises each offset at most
                // once, so drop anything already delivered
                records.retain(|r| r.offset >= pos);
            }
            if records.is_empty() {
                // read-committed fetches may return an empty page with a
                // forward cursor (a fully-aborted span was skipped);
                // advance so the consumer does not stall on it
                if let Some(next) = next_hint {
                    Self::bump(&mut self.positions, topic, *partition, next);
                    Self::bump(&mut self.dirty, topic, *partition, next);
                }
                continue;
            }
            // A fetch may serve records below the requested position
            // (broker-side redelivery under fault injection). Deliver
            // them again — at-least-once allows it — but never move the
            // cursor backwards: explicit `seek_*` is the only sanctioned
            // way to rewind, so commit progress stays monotonic.
            let next = (records.last().expect("non-empty").offset + 1)
                .max(next_hint.unwrap_or(0));
            Self::bump(&mut self.positions, topic, *partition, next);
            Self::bump(&mut self.dirty, topic, *partition, next);
            for r in records {
                bytes += r.wire_size();
                let mut event = r.to_event();
                // transparent decompression of producer-compressed
                // payloads (marked with the codec header)
                if let Some(idx) = event
                    .headers
                    .iter()
                    .position(|h| h.key == crate::producer::CODEC_HEADER)
                {
                    match octopus_types::codec::decompress(&event.payload) {
                        Ok(plain) => {
                            event.payload = plain.into();
                            event.headers.remove(idx);
                        }
                        Err(_) => { /* deliver as-is; the app sees raw bytes */ }
                    }
                }
                // deliver latency: produce-time (trace header) → now.
                // End-to-end across threads, so wall-clock based.
                if let Some(tc) = TraceContext::from_headers(&event.headers) {
                    let end = now_ns();
                    self.transport.stage_metrics().record(Stage::Deliver, tc.elapsed_ns(end));
                    // the deliver span covers produce-time → hand-off,
                    // closing the causal tree for sampled traces
                    self.transport.span_sink().record_stage(&tc, Stage::Deliver, tc.produced_ns, end);
                }
                out.push(DeliveredEvent {
                    topic: topic.clone(),
                    partition: *partition,
                    offset: r.offset,
                    append_time: r.append_time,
                    event,
                });
                if bytes >= self.config.receive_buffer_bytes {
                    break;
                }
            }
        }
        self.maybe_auto_commit();
        Ok(out)
    }

    /// Fetch under the configured isolation level. Read-committed
    /// fetches also return the broker's next-offset cursor, which can
    /// run ahead of the last delivered record when aborted spans or
    /// control markers were filtered out.
    fn fetch_checked(
        &self,
        topic: &str,
        partition: PartitionId,
        offset: Offset,
        max: usize,
    ) -> OctoResult<(Vec<octopus_broker::Record>, Option<Offset>)> {
        if self.config.read_committed {
            self.transport.authorize(topic, self.principal, octopus_auth::Permission::Read)?;
            let (records, next) =
                self.transport.fetch_committed(topic, partition, offset, max)?;
            return Ok((records, Some(next)));
        }
        let records = self.transport.fetch(topic, partition, offset, max, self.principal)?;
        Ok((records, None))
    }

    fn maybe_auto_commit(&mut self) {
        if let Some(interval) = self.config.auto_commit_interval {
            if self.last_commit.elapsed() >= interval {
                let _ = self.commit_sync();
            }
        }
    }

    /// Commit the positions of everything returned by `poll` so far.
    pub fn commit_sync(&mut self) -> OctoResult<()> {
        let dirty = std::mem::take(&mut self.dirty);
        for (topic, parts) in dirty {
            for (partition, offset) in parts {
                match self.transport.offset_commit(
                    &self.config.group,
                    self.generation,
                    &topic,
                    partition,
                    offset,
                ) {
                    Ok(()) => {}
                    Err(OctoError::RebalanceInProgress(_)) => {
                        // stale generation: rejoin; uncommitted records
                        // will be redelivered (at-least-once)
                        let _ = self.rejoin();
                        return Err(OctoError::RebalanceInProgress(self.config.group.clone()));
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        self.last_commit = Instant::now();
        Ok(())
    }

    /// Seek every assigned partition of `topic` to its earliest offset.
    pub fn seek_to_beginning(&mut self, topic: &str) -> OctoResult<()> {
        let assignment = Arc::clone(&self.assignment);
        for (t, p) in assignment.iter() {
            if t == topic {
                let o = self.transport.earliest_offset(t, *p)?;
                self.positions.entry(t.clone()).or_default().insert(*p, o);
            }
        }
        Ok(())
    }

    /// Seek every assigned partition of `topic` to the log end.
    pub fn seek_to_end(&mut self, topic: &str) -> OctoResult<()> {
        let assignment = Arc::clone(&self.assignment);
        for (t, p) in assignment.iter() {
            if t == topic {
                let o = self.transport.latest_offset(t, *p)?;
                self.positions.entry(t.clone()).or_default().insert(*p, o);
            }
        }
        Ok(())
    }

    /// Seek every assigned partition of `topic` to the first record at
    /// or after `ts`.
    pub fn seek_to_timestamp(&mut self, topic: &str, ts: Timestamp) -> OctoResult<()> {
        let assignment = Arc::clone(&self.assignment);
        for (t, p) in assignment.iter() {
            if t == topic {
                let o = self.transport.offset_for_timestamp(t, *p, ts)?;
                self.positions.entry(t.clone()).or_default().insert(*p, o);
            }
        }
        Ok(())
    }

    /// Leave the group (triggers a rebalance for survivors).
    pub fn close(mut self) {
        let _ = self.commit_sync();
        self.leave();
    }

    fn leave(&mut self) {
        if self.subscriptions.is_empty() {
            return;
        }
        let counts = self.partition_counts();
        let _ = self.transport.group_leave(&self.config.group, &self.member_id, &counts);
        self.subscriptions.clear();
    }
}

impl Drop for Consumer {
    /// Dropping a consumer leaves its group *without* committing, so
    /// uncommitted records are redelivered to the next member
    /// (at-least-once). A real deployment would also evict crashed
    /// members via session timeouts; in-process, drop is the hook.
    fn drop(&mut self) {
        self.leave();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_broker::{AckLevel, TopicConfig};
    use octopus_types::Event;

    fn ev(s: &str) -> Event {
        Event::from_bytes(s.as_bytes().to_vec())
    }

    fn setup(partitions: u32) -> Cluster {
        let c = Cluster::new(2);
        c.create_topic("t", TopicConfig::default().with_partitions(partitions)).unwrap();
        c
    }

    fn consumer(c: &Cluster, group: &str) -> Consumer {
        Consumer::new(
            c.clone(),
            ConsumerConfig { group: group.into(), auto_commit_interval: None, ..Default::default() },
        )
    }

    #[test]
    fn consume_from_earliest() {
        let c = setup(2);
        for i in 0..20 {
            c.produce("t", ev(&format!("{i}")), AckLevel::Leader).unwrap();
        }
        let mut consumer = consumer(&c, "g1");
        consumer.subscribe(&["t"]).unwrap();
        assert_eq!(consumer.assignment().len(), 2);
        let mut got = Vec::new();
        while got.len() < 20 {
            let batch = consumer.poll().unwrap();
            if batch.is_empty() {
                break;
            }
            got.extend(batch);
        }
        assert_eq!(got.len(), 20);
    }

    #[test]
    fn latest_reset_skips_history() {
        let c = setup(1);
        for _ in 0..10 {
            c.produce("t", ev("old"), AckLevel::Leader).unwrap();
        }
        let mut consumer = Consumer::new(
            c.clone(),
            ConsumerConfig {
                group: "g".into(),
                offset_reset: OffsetReset::Latest,
                auto_commit_interval: None,
                ..Default::default()
            },
        );
        consumer.subscribe(&["t"]).unwrap();
        assert!(consumer.poll().unwrap().is_empty(), "no history delivered");
        c.produce("t", ev("new"), AckLevel::Leader).unwrap();
        let batch = consumer.poll().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(&batch[0].event.payload[..], b"new");
    }

    #[test]
    fn committed_offsets_survive_restart_at_least_once() {
        let c = setup(1);
        for i in 0..10 {
            c.produce("t", ev(&format!("{i}")), AckLevel::Leader).unwrap();
        }
        let mut c1 = consumer(&c, "g");
        c1.subscribe(&["t"]).unwrap();
        let first = c1.poll().unwrap();
        assert_eq!(first.len(), 10);
        c1.commit_sync().unwrap();
        for i in 10..15 {
            c.produce("t", ev(&format!("{i}")), AckLevel::Leader).unwrap();
        }
        drop(c1); // crash without leaving the group cleanly
        let mut c2 = consumer(&c, "g");
        c2.subscribe(&["t"]).unwrap();
        let second = c2.poll().unwrap();
        // only the uncommitted tail is redelivered
        assert_eq!(second.len(), 5);
        assert_eq!(&second[0].event.payload[..], b"10");
    }

    #[test]
    fn uncommitted_records_are_redelivered() {
        let c = setup(1);
        for i in 0..5 {
            c.produce("t", ev(&format!("{i}")), AckLevel::Leader).unwrap();
        }
        {
            let mut c1 = consumer(&c, "g");
            c1.subscribe(&["t"]).unwrap();
            let got = c1.poll().unwrap();
            assert_eq!(got.len(), 5);
            // no commit: crash
        }
        let mut c2 = consumer(&c, "g");
        c2.subscribe(&["t"]).unwrap();
        assert_eq!(c2.poll().unwrap().len(), 5, "at-least-once redelivery");
    }

    #[test]
    fn independent_groups_see_all_events() {
        let c = setup(1);
        for _ in 0..7 {
            c.produce("t", ev("x"), AckLevel::Leader).unwrap();
        }
        let mut a = consumer(&c, "ga");
        let mut b = consumer(&c, "gb");
        a.subscribe(&["t"]).unwrap();
        b.subscribe(&["t"]).unwrap();
        assert_eq!(a.poll().unwrap().len(), 7);
        assert_eq!(b.poll().unwrap().len(), 7);
    }

    #[test]
    fn group_members_split_partitions() {
        let c = setup(4);
        for i in 0..40 {
            c.produce_batch(
                "t",
                (i % 4) as u32,
                octopus_broker::RecordBatch::new(vec![ev(&format!("{i}"))]),
                AckLevel::Leader,
            )
            .unwrap();
        }
        let mut m1 = consumer(&c, "g");
        m1.subscribe(&["t"]).unwrap();
        let mut m2 = consumer(&c, "g");
        m2.subscribe(&["t"]).unwrap();
        // m1 must refresh its assignment after m2's join
        let mut got1 = Vec::new();
        let mut got2 = Vec::new();
        for _ in 0..10 {
            got1.extend(m1.poll().unwrap());
            got2.extend(m2.poll().unwrap());
        }
        assert_eq!(m1.assignment().len(), 2);
        assert_eq!(m2.assignment().len(), 2);
        assert_eq!(got1.len() + got2.len(), 40);
        // disjoint offsets per partition
        let mut seen = std::collections::HashSet::new();
        for d in got1.iter().chain(got2.iter()) {
            assert!(seen.insert((d.partition, d.offset)), "duplicate delivery");
        }
    }

    #[test]
    fn seek_apis() {
        let c = setup(1);
        let t0 = Timestamp::now();
        for i in 0..5 {
            c.produce("t", ev(&format!("{i}")), AckLevel::Leader).unwrap();
        }
        let mut cons = consumer(&c, "g");
        cons.subscribe(&["t"]).unwrap();
        assert_eq!(cons.poll().unwrap().len(), 5);
        cons.seek_to_beginning("t").unwrap();
        assert_eq!(cons.poll().unwrap().len(), 5, "replay after seek");
        cons.seek_to_end("t").unwrap();
        assert!(cons.poll().unwrap().is_empty());
        cons.seek_to_timestamp("t", t0).unwrap();
        assert_eq!(cons.poll().unwrap().len(), 5);
        cons.seek_to_timestamp("t", Timestamp::from_millis(u64::MAX / 2)).unwrap();
        assert!(cons.poll().unwrap().is_empty());
    }

    #[test]
    fn close_leaves_group_and_commits() {
        let c = setup(2);
        for _ in 0..4 {
            c.produce("t", ev("x"), AckLevel::Leader).unwrap();
        }
        let mut m1 = consumer(&c, "g");
        m1.subscribe(&["t"]).unwrap();
        let mut m2 = consumer(&c, "g");
        m2.subscribe(&["t"]).unwrap();
        let mut got = Vec::new();
        for _ in 0..5 {
            got.extend(m1.poll().unwrap());
            got.extend(m2.poll().unwrap());
        }
        assert_eq!(got.len(), 4);
        m1.close();
        assert_eq!(c.coordinator().member_count("g"), 1);
        // m2 inherits everything on the next generation
        m2.poll().unwrap();
        assert_eq!(m2.assignment().len(), 2);
    }

    #[test]
    fn subscribe_guards() {
        let c = setup(1);
        let mut cons = consumer(&c, "g");
        assert!(matches!(cons.subscribe(&["ghost"]), Err(OctoError::UnknownTopic(_))));
    }

    #[test]
    fn max_poll_records_respected() {
        let c = setup(1);
        for _ in 0..100 {
            c.produce("t", ev("x"), AckLevel::Leader).unwrap();
        }
        let mut cons = Consumer::new(
            c,
            ConsumerConfig {
                group: "g".into(),
                max_poll_records: 10,
                auto_commit_interval: None,
                ..Default::default()
            },
        );
        cons.subscribe(&["t"]).unwrap();
        assert_eq!(cons.poll().unwrap().len(), 10);
    }

    #[test]
    fn receive_buffer_bytes_respected() {
        let c = setup(1);
        for _ in 0..100 {
            c.produce("t", Event::from_bytes(vec![0u8; 1000]), AckLevel::Leader).unwrap();
        }
        let mut cons = Consumer::new(
            c,
            ConsumerConfig {
                group: "g".into(),
                receive_buffer_bytes: 5_000,
                auto_commit_interval: None,
                ..Default::default()
            },
        );
        cons.subscribe(&["t"]).unwrap();
        let batch = cons.poll().unwrap();
        assert!(batch.len() <= 6, "got {}", batch.len());
    }

    #[test]
    fn read_committed_consumer_skips_aborted_transactions() {
        let c = setup(1);
        let id = c.register_producer("txp").unwrap();
        c.produce("t", ev("plain"), AckLevel::Leader).unwrap();
        c.txn_begin("txp", id).unwrap();
        c.txn_produce("txp", id, "t", 0, vec![ev("rolled-back")]).unwrap();
        c.txn_abort("txp", id).unwrap();
        c.txn_begin("txp", id).unwrap();
        c.txn_produce("txp", id, "t", 0, vec![ev("committed")]).unwrap();
        c.txn_commit("txp", id).unwrap();
        let mut cons = Consumer::new(
            c.clone(),
            ConsumerConfig {
                group: "g".into(),
                auto_commit_interval: None,
                ..ConsumerConfig::read_committed()
            },
        );
        cons.subscribe(&["t"]).unwrap();
        let mut got = Vec::new();
        for _ in 0..5 {
            got.extend(cons.poll().unwrap());
        }
        let payloads: Vec<_> =
            got.iter().map(|d| String::from_utf8_lossy(&d.event.payload).to_string()).collect();
        assert_eq!(payloads, vec!["plain", "committed"], "aborted + control records hidden");
    }

    #[test]
    fn read_committed_buffers_past_open_transaction() {
        let c = setup(1);
        let id = c.register_producer("txp").unwrap();
        c.txn_begin("txp", id).unwrap();
        c.txn_produce("txp", id, "t", 0, vec![ev("pending")]).unwrap();
        let mut cons = Consumer::new(
            c.clone(),
            ConsumerConfig {
                group: "g".into(),
                auto_commit_interval: None,
                ..ConsumerConfig::read_committed()
            },
        );
        cons.subscribe(&["t"]).unwrap();
        assert!(
            cons.poll().unwrap().is_empty(),
            "records above the last stable offset are invisible"
        );
        // a read_uncommitted consumer in another group sees it already
        let mut dirty_reader = consumer(&c, "g2");
        dirty_reader.subscribe(&["t"]).unwrap();
        assert_eq!(dirty_reader.poll().unwrap().len(), 1);
        c.txn_commit("txp", id).unwrap();
        let mut got = Vec::new();
        for _ in 0..5 {
            got.extend(cons.poll().unwrap());
        }
        assert_eq!(got.len(), 1, "commit releases the buffered record");
        assert_eq!(&got[0].event.payload[..], b"pending");
    }

    #[test]
    fn acl_enforced_consumer() {
        use octopus_auth::AclStore;
        let acl = AclStore::new();
        let alice = Uid(1);
        acl.register_topic("private", alice).unwrap();
        let c = Cluster::builder(2).acl(acl).build();
        c.create_topic("private", TopicConfig::default()).unwrap();
        let mut bob_consumer = Consumer::with_principal(
            c.clone(),
            ConsumerConfig { group: "g".into(), ..Default::default() },
            Some(Uid(2)),
        );
        assert!(matches!(
            bob_consumer.subscribe(&["private"]),
            Err(OctoError::Unauthorized(_))
        ));
        let mut alice_consumer = Consumer::with_principal(
            c,
            ConsumerConfig { group: "g2".into(), ..Default::default() },
            Some(alice),
        );
        alice_consumer.subscribe(&["private"]).unwrap();
    }
}
