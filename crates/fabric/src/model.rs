//! Calibrated service-cost constants.
//!
//! The model decomposes a produce request's fabric-side cost into:
//!
//! 1. a **serial broker path** (network thread, socket handling) —
//!    per-request, bounded by `InstanceType::serial_requests_per_sec`;
//!    the Amdahl term that keeps scale-up (#7) gains modest;
//! 2. a **parallel CPU pool** (`vcpus` servers) — per-request +
//!    per-event + per-byte costs (validation, copy, index update);
//! 3. a **per-partition single-writer append queue** — partitions are
//!    the unit of write parallelism; this is why adding partitions (#6)
//!    helps and why one-partition topics saturate early (Fig. 5);
//! 4. **replication**: each follower replays a fraction of the CPU cost
//!    on its broker (RF-fold write amplification, #9); `acks=all`
//!    additionally serializes an ISR round into the partition queue
//!    (#4's 3× throughput drop and +100 ms median latency);
//! 5. the **read path**: bigger fetch batches and cheaper per-byte costs
//!    (no replication; page-cache serves) — the paper's consistent ~2×
//!    read/write throughput ratio.
//!
//! Client-side: producers batch up to `batch_bytes` per request (the
//! lever that lets 32 B events reach millions/s) and keep at most
//! `max_inflight` requests outstanding — at WAN RTTs this pipeline bound
//! is what separates remote from local results.
//!
//! Constants were calibrated analytically against Table III rows 1–2
//! (baseline, acks=0: 32 B → ~4.2 M ev/s produce; 1 KB → ~195 K/174 K
//! produce and ~356 K consume) and checked against rows 3–9; see
//! EXPERIMENTS.md for the paper-vs-measured table.

use serde::{Deserialize, Serialize};

/// Tunable cost constants for the fabric model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Client batch size in bytes (Kafka `batch.size`-like; the paper
    /// tunes producer buffers, §V-B).
    pub batch_bytes: usize,
    /// Max in-flight requests per producer (Kafka default 5).
    pub max_inflight: usize,
    /// Pipelined fetches per consumer.
    pub consumer_inflight: usize,
    /// Write path, parallel pool: cost per request, seconds.
    pub cpu_per_request: f64,
    /// Write path, parallel pool: cost per event, seconds.
    pub cpu_per_event: f64,
    /// Write path, parallel pool: cost per byte, seconds.
    pub cpu_per_byte: f64,
    /// Fraction of the leader CPU cost a follower pays to replay an
    /// appended batch.
    pub follower_cpu_factor: f64,
    /// Partition append cost per request, seconds.
    pub partition_per_request: f64,
    /// Partition append cost per byte, seconds.
    pub partition_per_byte: f64,
    /// Inter-broker one-way latency, seconds (same-region AZ pair).
    pub inter_broker_latency: f64,
    /// Extra partition-queue serialization per request under acks=all
    /// (follower fetch + ack round), seconds.
    pub isr_round: f64,
    /// Read path, parallel pool: cost per request, seconds.
    pub read_per_request: f64,
    /// Read path, parallel pool: cost per event, seconds.
    pub read_per_event: f64,
    /// Read path, parallel pool: cost per byte, seconds.
    pub read_per_byte: f64,
    /// Partition read cost per request, seconds.
    pub partition_read_per_request: f64,
    /// Partition read cost per byte, seconds.
    pub partition_read_per_byte: f64,
    /// Consumer fetch size in bytes (`receive.buffer.bytes`-scale).
    pub fetch_bytes: usize,
    /// Request/response framing overhead in bytes.
    pub frame_overhead: usize,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            batch_bytes: 28 * 1024,
            max_inflight: 5,
            consumer_inflight: 3,
            cpu_per_request: 90e-6,
            cpu_per_event: 0.6e-6,
            cpu_per_byte: 6e-9,
            follower_cpu_factor: 0.8,
            partition_per_request: 60e-6,
            partition_per_byte: 7e-9,
            inter_broker_latency: 0.4e-3,
            isr_round: 0.6e-3,
            read_per_request: 90e-6,
            read_per_event: 0.2e-6,
            read_per_byte: 4e-9,
            partition_read_per_request: 60e-6,
            partition_read_per_byte: 5e-9,
            fetch_bytes: 220 * 1024,
            frame_overhead: 200,
        }
    }
}

impl Calibration {
    /// Events per produce request for a given event size.
    pub fn batch_events(&self, event_size: usize) -> usize {
        (self.batch_bytes / event_size.max(1)).max(1)
    }

    /// Write-path parallel-pool service seconds for a request of
    /// `events` events totalling `bytes` payload bytes.
    pub fn cpu_service(&self, events: usize, bytes: usize) -> f64 {
        self.cpu_per_request + events as f64 * self.cpu_per_event + bytes as f64 * self.cpu_per_byte
    }

    /// Partition append service seconds.
    pub fn partition_service(&self, bytes: usize, acks_all: bool) -> f64 {
        let base = self.partition_per_request + bytes as f64 * self.partition_per_byte;
        if acks_all {
            base + self.isr_round
        } else {
            base
        }
    }

    /// Read-path parallel-pool service seconds.
    pub fn read_service(&self, events: usize, bytes: usize) -> f64 {
        self.read_per_request
            + events as f64 * self.read_per_event
            + bytes as f64 * self.read_per_byte
    }

    /// Partition read service seconds.
    pub fn partition_read_service(&self, bytes: usize) -> f64 {
        self.partition_read_per_request + bytes as f64 * self.partition_read_per_byte
    }

    /// Serial-path service seconds on a broker with the given capacity.
    pub fn serial_service(&self, serial_requests_per_sec: f64) -> f64 {
        1.0 / serial_requests_per_sec
    }

    /// Events per fetch response.
    pub fn fetch_events(&self, event_size: usize) -> usize {
        (self.fetch_bytes / event_size.max(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_amortizes_small_events() {
        let c = Calibration::default();
        assert!(c.batch_events(32) > 500);
        assert_eq!(c.batch_events(1024), 28);
        assert_eq!(c.batch_events(4096), 7);
        assert_eq!(c.batch_events(10 * 1024 * 1024), 1); // huge events still ship
    }

    #[test]
    fn per_event_cost_increases_with_size() {
        let c = Calibration::default();
        let b32 = c.batch_events(32);
        let b4k = c.batch_events(4096);
        let small = c.cpu_service(b32, b32 * 32) / b32 as f64;
        let large = c.cpu_service(b4k, b4k * 4096) / b4k as f64;
        assert!(large > 3.0 * small, "4KB events cost much more per event than 32B");
    }

    #[test]
    fn acks_all_adds_isr_round() {
        let c = Calibration::default();
        let without = c.partition_service(28 * 1024, false);
        let with = c.partition_service(28 * 1024, true);
        assert!((with - without - c.isr_round).abs() < 1e-12);
    }

    #[test]
    fn read_path_is_cheaper_per_byte() {
        let c = Calibration::default();
        assert!(c.read_per_byte < c.cpu_per_byte);
        assert!(c.partition_read_per_byte < c.partition_per_byte);
        assert!(c.fetch_bytes > c.batch_bytes, "consumers fetch bigger batches");
    }

    #[test]
    fn analytic_capacity_sanity() {
        // baseline cluster, 1 KB, 2 partitions: the serial path binds at
        // 2 brokers x 3600 req/s x 28 events = ~201K ev/s — the right
        // ballpark for Table III row 2 (195K local produce).
        let c = Calibration::default();
        let serial_cap = 2.0 * 3600.0 * c.batch_events(1024) as f64;
        assert!((150_000.0..=260_000.0).contains(&serial_cap), "cap {serial_cap}");
    }
}
