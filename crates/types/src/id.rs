//! Process-unique identifiers.
//!
//! Octopus assigns identifiers to users, identities, topics, triggers,
//! sessions, and experiments. We use a 128-bit id composed of a
//! per-process random-ish seed and a monotone counter, formatted like a
//! UUID for familiarity, without pulling in a crypto RNG dependency.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn process_seed() -> u64 {
    // Mix wall-clock nanos with the address of a static for per-process
    // uniqueness. This is an identifier, not a security token; the auth
    // crate generates secrets with a real RNG.
    static ANCHOR: u8 = 0;
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let addr = &ANCHOR as *const u8 as u64;
    splitmix64(nanos ^ addr.rotate_left(32))
}

/// The 64-bit finalizer from SplitMix64; good avalanche, no deps.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A 128-bit process-unique identifier.
///
/// ```
/// use octopus_types::Uid;
/// let a = Uid::fresh();
/// let b = Uid::fresh();
/// assert_ne!(a, b);
/// let s = a.to_string();
/// assert_eq!(s.len(), 36); // uuid-like formatting
/// assert_eq!(Uid::parse(&s).unwrap(), a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Uid(pub u128);

impl Uid {
    /// Generate a fresh identifier, unique within this process and very
    /// likely unique across processes.
    pub fn fresh() -> Self {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let hi = process_seed() ^ splitmix64(n);
        let lo = splitmix64(hi ^ n.rotate_left(17));
        Uid(((hi as u128) << 64) | lo as u128)
    }

    /// Build a deterministic id from raw parts (used by simulations that
    /// must be reproducible across runs).
    pub fn from_parts(hi: u64, lo: u64) -> Self {
        Uid(((hi as u128) << 64) | lo as u128)
    }

    /// The zero id; useful as a sentinel in tests.
    pub const NIL: Uid = Uid(0);

    /// Parse the canonical `8-4-4-4-12` hex form produced by `Display`.
    pub fn parse(s: &str) -> Result<Self, crate::OctoError> {
        let hex: String = s.chars().filter(|c| *c != '-').collect();
        if hex.len() != 32 || s.len() != 36 {
            return Err(crate::OctoError::Invalid(format!("malformed uid: {s}")));
        }
        u128::from_str_radix(&hex, 16)
            .map(Uid)
            .map_err(|_| crate::OctoError::Invalid(format!("malformed uid: {s}")))
    }
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
            (b >> 96) as u32,
            ((b >> 80) & 0xffff) as u16,
            ((b >> 64) & 0xffff) as u16,
            ((b >> 48) & 0xffff) as u16,
            b & 0xffff_ffff_ffff
        )
    }
}

impl fmt::Debug for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Uid({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fresh_ids_are_unique() {
        let ids: HashSet<Uid> = (0..10_000).map(|_| Uid::fresh()).collect();
        assert_eq!(ids.len(), 10_000);
    }

    #[test]
    fn display_roundtrip() {
        for _ in 0..100 {
            let id = Uid::fresh();
            assert_eq!(Uid::parse(&id.to_string()).unwrap(), id);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Uid::parse("").is_err());
        assert!(Uid::parse("not-a-uid").is_err());
        assert!(Uid::parse("00000000-0000-0000-0000-00000000000g").is_err());
        // right char count, wrong dash placement still parses the hex
        // (dashes are stripped); it must at least not panic
        let _ = Uid::parse("000000000-000-0000-0000-000000000000");
    }

    #[test]
    fn nil_formats_as_zeros() {
        assert_eq!(Uid::NIL.to_string(), "00000000-0000-0000-0000-000000000000");
    }

    #[test]
    fn from_parts_is_deterministic() {
        assert_eq!(Uid::from_parts(1, 2), Uid::from_parts(1, 2));
        assert_ne!(Uid::from_parts(1, 2), Uid::from_parts(2, 1));
    }

    #[test]
    fn splitmix_avalanche() {
        // single-bit input changes should flip roughly half the output bits
        let a = splitmix64(0);
        let b = splitmix64(1);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "flipped {flipped}");
    }
}
