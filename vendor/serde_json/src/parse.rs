//! Recursive-descent JSON parser producing [`Value`] trees.

use crate::Error;
use serde::value::{Map, Number, Value};

pub(crate) fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn consume_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.consume_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.consume_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.consume_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        // Surrogate pair handling for non-BMP chars.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if !self.consume_literal("\\u") {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined =
                                0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return Err(self.err("invalid UTF-8")),
                        };
                        let end = start + width;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated UTF-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated unicode escape"))?;
            let digit = (b as char).to_digit(16).ok_or_else(|| self.err("invalid hex digit"))?;
            cp = cp * 16 + digit;
        }
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from(i)));
            }
        }
        let f: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        Number::from_f64(f)
            .map(Value::Number)
            .ok_or_else(|| self.err("non-finite number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12").unwrap().as_i64(), Some(-12));
        assert_eq!(parse("3.25").unwrap().as_f64(), Some(3.25));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert!(v["a"][1]["b"].is_null());
        assert_eq!(v["c"], "x");
    }

    #[test]
    fn escapes_and_unicode() {
        assert_eq!(parse(r#""a\nb\t\"c\"""#).unwrap(), "a\nb\t\"c\"");
        assert_eq!(parse(r#""é""#).unwrap(), "é");
        assert_eq!(parse(r#""😀""#).unwrap(), "😀");
        assert_eq!(parse("\"caf\u{00e9}\"").unwrap(), "café");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }
}
