//! The Octopus trigger runtime — the in-process equivalent of the
//! AWS Lambda + EventBridge machinery of §IV-D.
//!
//! A *trigger* binds a topic to a user function. The runtime gives each
//! trigger its own consumer group (so triggers never steal events from
//! other consumers), applies an optional EventBridge-style filter
//! pattern before invocation, batches events (up to 10 000 events or
//! 6 MB per invocation, the paper's limits), retries failed invocations,
//! dead-letters poison batches, scales concurrency from *processing
//! pressure* (topic lag, evaluated at a fixed cadence — 1 minute on
//! Lambda), and meters invocations for billing.
//!
//! Triggers must be (§IV-D) *robust* (retries + DLQ), *scalable*
//! (autoscaler + worker pool), *polyvalent* (functions are arbitrary
//! `Fn` values), and *empowered* (functions receive a delegated identity
//! context).

pub mod autoscaler;
pub mod billing;
pub mod function;
pub mod runtime;
pub mod timer;

pub use autoscaler::{Autoscaler, AutoscalerConfig};
pub use billing::{BillingMeter, CostModel};
pub use function::{FunctionConfig, FunctionContext, InvocationOutcome, TriggerFunction};
pub use runtime::{InvocationRecord, TriggerRuntime, TriggerSpec, TriggerStatus};
pub use timer::{TimerHandle, TimerSource};
