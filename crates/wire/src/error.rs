//! Wire-level errors and the on-wire error code space.
//!
//! Two distinct error families live here:
//!
//! - [`WireError`] describes a *framing or codec* failure: bytes that
//!   could not be parsed into a frame or a frame whose payload could
//!   not be decoded. These are connection-fatal — the peer is either
//!   broken or hostile — and are never retried.
//! - [`ErrorCode`] is the *application-level* error space carried in
//!   error response frames. It is a stable `u16` enumeration with a
//!   lossless round-trip to [`OctoError`], so a broker-side failure
//!   surfaces to a remote SDK exactly as it would in process.

use std::fmt;

use octopus_types::OctoError;

/// A framing or codec failure.
///
/// Every variant is produced by a bounds-checked decode path: the
/// decoder never panics on attacker-controlled bytes, it returns one of
/// these and the server closes the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream did not start with the protocol magic.
    BadMagic(u16),
    /// The frame declared a protocol version we do not speak.
    UnsupportedVersion(u8),
    /// The frame declared a payload larger than the negotiated cap.
    /// Rejected *before* any allocation is attempted.
    FrameTooLarge { declared: u32, cap: u32 },
    /// The payload CRC32C did not match the header checksum.
    CrcMismatch { expected: u32, actual: u32 },
    /// The buffer ended before the declared structure was complete.
    Truncated { needed: usize, have: usize },
    /// The frame named an API key this endpoint does not implement.
    UnknownApiKey(u16),
    /// The payload parsed structurally but carried an invalid value
    /// (bad enum tag, over-long collection, non-UTF-8 string, ...).
    Malformed(String),
    /// The underlying socket failed or was closed by the peer.
    Io(String),
    /// The peer closed the connection cleanly.
    Closed,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic 0x{m:04x}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::FrameTooLarge { declared, cap } => {
                write!(f, "declared payload {declared} bytes exceeds cap {cap}")
            }
            WireError::CrcMismatch { expected, actual } => {
                write!(f, "payload crc mismatch: header 0x{expected:08x}, computed 0x{actual:08x}")
            }
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            WireError::UnknownApiKey(k) => write!(f, "unknown api key {k}"),
            WireError::Malformed(m) => write!(f, "malformed payload: {m}"),
            WireError::Io(m) => write!(f, "wire io error: {m}"),
            WireError::Closed => write!(f, "connection closed by peer"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => WireError::Closed,
            _ => WireError::Io(e.to_string()),
        }
    }
}

impl From<WireError> for OctoError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(m) => OctoError::Io(m),
            WireError::Closed => OctoError::Unavailable("connection closed".into()),
            other => OctoError::Serde(other.to_string()),
        }
    }
}

/// Stable application-level error codes carried in error frames.
///
/// The numeric values are part of the protocol: once assigned they are
/// never reused. New codes append; old decoders map unknown codes to
/// [`ErrorCode::Unknown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    /// Catch-all for codes minted by a newer peer.
    Unknown = 0,
    /// An internal broker invariant failed.
    Internal = 1,
    UnknownTopic = 2,
    UnknownPartition = 3,
    TopicExists = 4,
    /// Authentication failed: bad SCRAM proof, revoked/expired token,
    /// or a request sent before the handshake completed.
    AuthFailed = 5,
    Unauthorized = 6,
    OffsetOutOfRange = 7,
    Unavailable = 8,
    Timeout = 9,
    NotEnoughReplicas = 10,
    RebalanceInProgress = 11,
    Invalid = 12,
    Conflict = 13,
    RateLimited = 14,
    Serde = 15,
    BufferFull = 16,
    NotFound = 17,
    Io = 18,
    /// The request frame could not be decoded by the server.
    MalformedRequest = 19,
    /// The addressed broker is not the leader for the partition; the
    /// client should refresh metadata and re-route.
    NotLeader = 20,
}

impl ErrorCode {
    /// Decode a `u16` from the wire; unknown values map to `Unknown`.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => ErrorCode::Internal,
            2 => ErrorCode::UnknownTopic,
            3 => ErrorCode::UnknownPartition,
            4 => ErrorCode::TopicExists,
            5 => ErrorCode::AuthFailed,
            6 => ErrorCode::Unauthorized,
            7 => ErrorCode::OffsetOutOfRange,
            8 => ErrorCode::Unavailable,
            9 => ErrorCode::Timeout,
            10 => ErrorCode::NotEnoughReplicas,
            11 => ErrorCode::RebalanceInProgress,
            12 => ErrorCode::Invalid,
            13 => ErrorCode::Conflict,
            14 => ErrorCode::RateLimited,
            15 => ErrorCode::Serde,
            16 => ErrorCode::BufferFull,
            17 => ErrorCode::NotFound,
            18 => ErrorCode::Io,
            19 => ErrorCode::MalformedRequest,
            20 => ErrorCode::NotLeader,
            _ => ErrorCode::Unknown,
        }
    }
}

/// The application error payload of an error response frame.
///
/// `aux` carries the structured fields of [`OctoError`] variants that
/// have them (offset ranges, replica counts, buffer capacities) so the
/// round trip through the wire is lossless.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFault {
    pub code: ErrorCode,
    pub message: String,
    pub aux: [u64; 3],
}

impl WireFault {
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireFault { code, message: message.into(), aux: [0; 3] }
    }
}

impl From<&OctoError> for WireFault {
    fn from(e: &OctoError) -> Self {
        let (code, aux) = match e {
            OctoError::UnknownTopic(_) => (ErrorCode::UnknownTopic, [0; 3]),
            OctoError::UnknownPartition(_, p) => (ErrorCode::UnknownPartition, [*p as u64, 0, 0]),
            OctoError::TopicExists(_) => (ErrorCode::TopicExists, [0; 3]),
            OctoError::Unauthenticated(_) => (ErrorCode::AuthFailed, [0; 3]),
            OctoError::Unauthorized(_) => (ErrorCode::Unauthorized, [0; 3]),
            OctoError::OffsetOutOfRange { requested, earliest, latest } => {
                (ErrorCode::OffsetOutOfRange, [*requested, *earliest, *latest])
            }
            OctoError::Unavailable(_) => (ErrorCode::Unavailable, [0; 3]),
            OctoError::Timeout(_) => (ErrorCode::Timeout, [0; 3]),
            OctoError::NotEnoughReplicas { in_sync, required } => {
                (ErrorCode::NotEnoughReplicas, [*in_sync as u64, *required as u64, 0])
            }
            OctoError::RebalanceInProgress(_) => (ErrorCode::RebalanceInProgress, [0; 3]),
            OctoError::Invalid(_) => (ErrorCode::Invalid, [0; 3]),
            OctoError::Internal(_) => (ErrorCode::Internal, [0; 3]),
            OctoError::Conflict(_) => (ErrorCode::Conflict, [0; 3]),
            OctoError::RateLimited(_) => (ErrorCode::RateLimited, [0; 3]),
            OctoError::Serde(_) => (ErrorCode::Serde, [0; 3]),
            OctoError::BufferFull { capacity_bytes } => {
                (ErrorCode::BufferFull, [*capacity_bytes as u64, 0, 0])
            }
            OctoError::NotFound(_) => (ErrorCode::NotFound, [0; 3]),
            OctoError::Io(_) => (ErrorCode::Io, [0; 3]),
            OctoError::NotLeader { partition, leader, .. } => {
                (ErrorCode::NotLeader, [*partition as u64, *leader as u64, 0])
            }
        };
        WireFault { code, message: e.to_string(), aux }
    }
}

impl From<WireFault> for OctoError {
    fn from(w: WireFault) -> Self {
        let m = w.message;
        match w.code {
            ErrorCode::UnknownTopic => OctoError::UnknownTopic(m),
            ErrorCode::UnknownPartition => OctoError::UnknownPartition(m, w.aux[0] as u32),
            ErrorCode::TopicExists => OctoError::TopicExists(m),
            ErrorCode::AuthFailed => OctoError::Unauthenticated(m),
            ErrorCode::Unauthorized => OctoError::Unauthorized(m),
            ErrorCode::OffsetOutOfRange => OctoError::OffsetOutOfRange {
                requested: w.aux[0],
                earliest: w.aux[1],
                latest: w.aux[2],
            },
            ErrorCode::Unavailable => OctoError::Unavailable(m),
            ErrorCode::Timeout => OctoError::Timeout(m),
            ErrorCode::NotEnoughReplicas => OctoError::NotEnoughReplicas {
                in_sync: w.aux[0] as usize,
                required: w.aux[1] as usize,
            },
            ErrorCode::RebalanceInProgress => OctoError::RebalanceInProgress(m),
            ErrorCode::Invalid => OctoError::Invalid(m),
            ErrorCode::Conflict => OctoError::Conflict(m),
            ErrorCode::RateLimited => OctoError::RateLimited(m),
            ErrorCode::Serde => OctoError::Serde(m),
            ErrorCode::BufferFull => OctoError::BufferFull { capacity_bytes: w.aux[0] as usize },
            ErrorCode::NotFound => OctoError::NotFound(m),
            ErrorCode::Io => OctoError::Io(m),
            ErrorCode::NotLeader => OctoError::NotLeader {
                topic: m,
                partition: w.aux[0] as u32,
                leader: w.aux[1] as u32,
            },
            ErrorCode::MalformedRequest => OctoError::Serde(m),
            ErrorCode::Internal | ErrorCode::Unknown => OctoError::Internal(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_code_u16_roundtrip() {
        for v in 0u16..=25 {
            let code = ErrorCode::from_u16(v);
            if v <= 20 {
                assert_eq!(code as u16, v, "code {v} must round-trip");
            } else {
                assert_eq!(code, ErrorCode::Unknown);
            }
        }
    }

    #[test]
    fn octo_error_survives_the_wire() {
        let cases = vec![
            OctoError::OffsetOutOfRange { requested: 9, earliest: 10, latest: 20 },
            OctoError::NotEnoughReplicas { in_sync: 1, required: 3 },
            OctoError::BufferFull { capacity_bytes: 4096 },
            OctoError::Unauthenticated("revoked".into()),
            OctoError::Unavailable("broker 2 down".into()),
            OctoError::NotLeader { topic: "t".into(), partition: 3, leader: 2 },
        ];
        for e in cases {
            let fault = WireFault::from(&e);
            let back: OctoError = fault.into();
            // structured fields are preserved exactly; message-bearing
            // variants carry the rendered message instead
            match (&e, &back) {
                (OctoError::OffsetOutOfRange { .. }, _) => assert_eq!(e, back),
                (
                    OctoError::NotEnoughReplicas { .. } | OctoError::BufferFull { .. },
                    _,
                ) => assert_eq!(e, back),
                _ => assert_eq!(
                    std::mem::discriminant(&e),
                    std::mem::discriminant(&back)
                ),
            }
        }
    }

    #[test]
    fn not_leader_preserves_routing_hint() {
        let fault =
            WireFault::from(&OctoError::NotLeader { topic: "t".into(), partition: 3, leader: 7 });
        assert_eq!(fault.code, ErrorCode::NotLeader);
        let back: OctoError = fault.into();
        match back {
            OctoError::NotLeader { partition, leader, .. } => {
                assert_eq!(partition, 3);
                assert_eq!(leader, 7);
            }
            other => panic!("expected NotLeader, got {other:?}"),
        }
    }

    #[test]
    fn revoked_token_maps_to_auth_failed() {
        let fault = WireFault::from(&OctoError::Unauthenticated("token revoked".into()));
        assert_eq!(fault.code, ErrorCode::AuthFailed);
    }
}
