//! The networked data plane: a versioned, length-prefixed binary wire
//! protocol carrying the Octopus event fabric over TCP (§IV-A takes
//! the fabric out of a single address space).
//!
//! Layers, bottom up:
//!
//! - [`frame`]: the transport framing — a fixed 22-byte header (magic,
//!   version, flags, api key, correlation id, payload length, payload
//!   CRC32C) followed by the payload. Decoding is allocation-safe
//!   against hostile input: declared lengths are capped before any
//!   buffer is reserved, and corruption surfaces as a typed
//!   [`WireError`], never a panic.
//! - [`codec`]: the request/response schema — one [`codec::ApiKey`]
//!   per operation (produce, fetch, metadata, consumer groups, offset
//!   commit, and the exactly-once APIs), hand-rolled little-endian
//!   encoding with bounds-checked reads.
//! - [`transport`]: the [`Transport`] trait the SDK clients speak —
//!   implemented by [`InProcessTransport`] (direct cluster calls; the
//!   DES and chaos layers keep their determinism) and by
//!   [`TcpTransport`].
//! - [`server`]: [`WireServer`], a threaded acceptor serving the
//!   protocol from a [`octopus_broker::Cluster`], with a
//!   handshake-first auth gate (anonymous / bearer token / SCRAM),
//!   per-connection reader and writer threads, request pipelining by
//!   correlation id, idle timeouts, and bounded-queue backpressure
//!   against slow consumers. Chaos integration: a severed link in the
//!   fault injector shuts down the server's live sockets.
//! - [`tcp`]: [`TcpTransport`], the client — one multiplexed
//!   connection, transparent re-dial with re-authentication after a
//!   cut, retriable errors for everything the SDK's retry/idempotence
//!   machinery can absorb.
//! - [`scrape`]: the network observatory — [`FleetPoller`] polls many
//!   brokers' `DescribeMetrics`/`DescribeHealth` api keys and merges
//!   the per-broker registry snapshots into one fleet-wide view.
//!
//! Distributed tracing rides the framing: a produce frame may carry a
//! [`frame::WireTrace`] payload prefix (flagged by
//! [`frame::FLAG_TRACE`]) so the serving broker's spans join the
//! client's trace id — pre-extension v1 frames decode unchanged.

pub mod codec;
pub mod error;
pub mod frame;
pub mod scrape;
pub mod server;
pub mod tcp;
pub mod transport;

pub use codec::{ApiKey, HandshakeRequest, HandshakeResponse, OffsetSpec, Request, Response, TopicMeta};
pub use error::{ErrorCode, WireError, WireFault};
pub use frame::{Frame, WireTrace, DEFAULT_MAX_PAYLOAD, FLAG_TRACE, HEADER_LEN, MAGIC, TRACE_EXT_LEN, VERSION};
pub use scrape::{BrokerObservation, FleetPoller, FleetView};
pub use server::{Authenticator, WireServer, WireServerConfig};
pub use tcp::{Credentials, RemoteHealth, RemoteMetrics, TcpTransport, TcpTransportConfig};
pub use transport::{InProcessTransport, Transport};
