//! Multi-tenancy: many users, many topics, strict isolation — the
//! §III-B fine-grained access control requirement, plus per-identity
//! rate limiting (§VII-C).

use octopus::prelude::*;

#[test]
fn tenants_only_see_their_own_topics() {
    let octo = Octopus::launch().unwrap();
    let mut sessions = Vec::new();
    for i in 0..5 {
        let user = format!("user{i}@uchicago.edu");
        octo.register_user(&user, "pw").unwrap();
        let s = octo.login(&user, "pw").unwrap();
        s.client()
            .register_topic(&format!("tenant{i}.data"), serde_json::Value::Null)
            .unwrap();
        sessions.push(s);
    }
    for (i, s) in sessions.iter().enumerate() {
        assert_eq!(
            s.client().list_topics().unwrap(),
            vec![format!("tenant{i}.data")],
            "tenant {i} sees exactly its own topic"
        );
    }
    // the fabric knows all of them
    assert_eq!(octo.cluster().topics().len(), 5);
}

#[test]
fn cross_tenant_reads_and_writes_are_denied_at_the_broker() {
    let octo = Octopus::launch().unwrap();
    octo.register_user("alice@uchicago.edu", "pw").unwrap();
    octo.register_user("eve@uchicago.edu", "pw").unwrap();
    let alice = octo.login("alice@uchicago.edu", "pw").unwrap();
    let eve = octo.login("eve@uchicago.edu", "pw").unwrap();
    alice.client().register_topic("secrets", serde_json::Value::Null).unwrap();
    alice
        .producer()
        .send_sync("secrets", Event::from_bytes(&b"classified"[..]))
        .unwrap();

    // eve cannot write
    assert!(matches!(
        eve.producer().send_sync("secrets", Event::from_bytes(&b"spam"[..])),
        Err(OctoError::Unauthorized(_))
    ));
    // eve cannot read
    let mut ec = eve.consumer("eve");
    assert!(matches!(ec.subscribe(&["secrets"]), Err(OctoError::Unauthorized(_))));
    // eve cannot manage
    assert!(matches!(
        eve.client().set_partitions("secrets", 8),
        Err(OctoError::Unauthorized(_))
    ));
    assert!(matches!(
        eve.client().topic_config("secrets"),
        Err(OctoError::Unauthorized(_))
    ));
}

#[test]
fn sharing_grants_exactly_the_named_permissions() {
    let octo = Octopus::launch().unwrap();
    octo.register_user("alice@uchicago.edu", "pw").unwrap();
    octo.register_user("bob@uchicago.edu", "pw").unwrap();
    let alice = octo.login("alice@uchicago.edu", "pw").unwrap();
    let bob = octo.login("bob@uchicago.edu", "pw").unwrap();
    alice.client().register_topic("shared", serde_json::Value::Null).unwrap();
    alice.client().grant("shared", bob.identity(), &["read", "describe"]).unwrap();

    // read works
    let mut bc = bob.consumer("bob");
    bc.subscribe(&["shared"]).unwrap();
    // write still denied
    assert!(matches!(
        bob.producer().send_sync("shared", Event::from_bytes(&b"x"[..])),
        Err(OctoError::Unauthorized(_))
    ));
    // granting write completes the pair
    alice.client().grant("shared", bob.identity(), &["write"]).unwrap();
    bob.producer().send_sync("shared", Event::from_bytes(&b"x"[..])).unwrap();
    // only the owner can grant
    assert!(bob.client().grant("shared", bob.identity(), &["write"]).is_err());
}

#[test]
fn per_identity_rate_limit_throttles_only_the_noisy_tenant() {
    let octo = Octopus::builder().rate_limit(0.001, 3.0).build().unwrap();
    octo.register_provider("uchicago.edu", "UChicago");
    octo.register_user("noisy@uchicago.edu", "pw").unwrap();
    octo.register_user("quiet@uchicago.edu", "pw").unwrap();
    let noisy = octo.login("noisy@uchicago.edu", "pw").unwrap();
    let quiet = octo.login("quiet@uchicago.edu", "pw").unwrap();

    // noisy burns its burst
    let mut throttled = false;
    for i in 0..10 {
        match noisy.client().register_topic(&format!("n{i}"), serde_json::Value::Null) {
            Ok(_) => {}
            Err(OctoError::RateLimited(_)) => {
                throttled = true;
                break;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(throttled, "noisy tenant must hit the limiter");
    // quiet is unaffected
    quiet.client().register_topic("q", serde_json::Value::Null).unwrap();
}

#[test]
fn many_tenants_share_the_fabric_without_interference() {
    let octo = Octopus::builder().brokers(4).build().unwrap();
    octo.register_provider("uchicago.edu", "UChicago");
    // 8 tenants, each with a topic and 50 events
    let mut sessions = Vec::new();
    for i in 0..8 {
        let user = format!("t{i}@uchicago.edu");
        octo.register_user(&user, "pw").unwrap();
        let s = octo.login(&user, "pw").unwrap();
        s.client()
            .register_topic(&format!("stream{i}"), serde_json::json!({"partitions": 1}))
            .unwrap();
        sessions.push(s);
    }
    let handles: Vec<_> = sessions
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let producer = s.producer();
            std::thread::spawn(move || {
                for j in 0..50 {
                    producer
                        .send_sync(
                            &format!("stream{i}"),
                            Event::from_bytes(format!("{j}").into_bytes()),
                        )
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // each tenant reads back exactly its own 50 events
    for (i, s) in sessions.iter().enumerate() {
        let mut c = s.consumer(&format!("reader{i}"));
        c.subscribe(&[&format!("stream{i}")]).unwrap();
        let mut seen = 0;
        loop {
            let batch = c.poll().unwrap();
            if batch.is_empty() {
                break;
            }
            seen += batch.len();
        }
        assert_eq!(seen, 50, "tenant {i}");
    }
}
