//! Discrete-event simulation (DES) kernel for the Octopus reproduction.
//!
//! The paper evaluates Octopus on a wide-area deployment: MSK brokers in
//! AWS `us-east-1`, "local" clients on EC2 in the same region (~1 ms RTT)
//! and "remote" clients on Chameleon Cloud at TACC (46–47 ms RTT). We
//! cannot run that testbed, so `octopus-fabric` models it on this kernel:
//! a deterministic virtual clock, an ordered event queue, latency- and
//! bandwidth-modelled network links, queueing resources for broker CPU
//! capacity, and HDR-style histograms for latency percentiles.
//!
//! Determinism: given the same seed, a simulation produces byte-identical
//! results. Events scheduled for the same instant fire in scheduling
//! order (a strictly increasing sequence number breaks ties).

pub mod engine;
pub mod metrics;
pub mod net;
pub mod resource;
pub mod rng;
pub mod time;

pub use engine::{EventHandle, Simulation};
pub use metrics::{Counter, Histogram, TimeSeries};
pub use net::{Link, LinkId, Network};
pub use resource::ServerQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
