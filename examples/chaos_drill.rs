//! Chaos drill: run a seeded fault schedule against a live deployment
//! while producer / consumer / trigger traffic flows, then check the
//! resilience invariants (§IV-F: no committed-record loss, at-least-once
//! delivery, ZAB prefix agreement, ISR re-convergence).
//!
//! Run with: `cargo run --example chaos_drill`

use octopus::chaos::{ChaosHarness, FaultKind, FaultPlan, PlanProfile};
use octopus::prelude::*;

fn main() -> OctoResult<()> {
    // 1. A hand-written scenario: leader crash, partition + heal, a
    //    slow broker, and follower log corruption — the paper's
    //    headline failure modes in one 160 ms window.
    let plan = FaultPlan::new(0xC0FFEE)
        .at(10, FaultKind::BrokerCrash { broker: 0 })
        .at(30, FaultKind::SlowBroker { broker: 1, multiplier_pct: 300 })
        .at(50, FaultKind::NetworkPartition { a: 1, b: 2 })
        .at(90, FaultKind::NetworkHeal)
        .at(110, FaultKind::BrokerRestart { broker: 0 })
        .at(130, FaultKind::LogTailCorruption { records: 2 })
        .at(150, FaultKind::SlowBroker { broker: 1, multiplier_pct: 100 });

    let report = ChaosHarness::new(plan.clone()).run();
    println!("executed {} faults:", report.trace.entries.len());
    for e in &report.trace.entries {
        println!("  t+{:>3}ms {:<20} {}", e.at.as_millis(), e.kind.label(), e.outcome);
    }
    println!(
        "acked {} records at acks=all, delivered {} ({} duplicates), trigger saw {}",
        report.acked.len(),
        report.delivered.len(),
        report.duplicates(),
        report.trigger_events,
    );
    println!(
        "ISR {}/{}, zoo commits {:?}, violations: {:?}",
        report.final_isr, report.replication_factor, report.zoo_commits, report.violations
    );
    report.assert_invariants();

    // 2. Determinism: the same seed replays the exact same chaos.
    let replay = ChaosHarness::new(plan.clone()).run();
    assert_eq!(report.trace.signature(), replay.trace.signature());
    println!("replay with seed {:#x}: identical fault trace", plan.seed());

    // 3. Seeded fuzzing: generate a schedule from a seed and survive it.
    let fuzzed = FaultPlan::generate(42, PlanProfile::default());
    println!("generated plan (seed 42): {} faults, {} kinds", fuzzed.len(), fuzzed.distinct_kinds());
    ChaosHarness::new(fuzzed).run().assert_invariants();

    // 4. The deployment builder carries a plan for app-driven drills.
    let octo = Octopus::builder().brokers(3).with_chaos(
        FaultPlan::new(1)
            .at(0, FaultKind::BrokerCrash { broker: 1 })
            .at(10, FaultKind::BrokerRestart { broker: 1 }),
    ).build()?;
    octo.cluster().create_topic("drill", TopicConfig::default().with_partitions(1))?;
    let trace = octo.run_chaos("drill").expect("plan attached");
    println!("builder-attached plan ran {} faults against the deployment", trace.entries.len());

    println!("all invariants held");
    Ok(())
}
