//! Remote fleet scraping: poll many brokers' `DescribeMetrics` /
//! `DescribeHealth` endpoints over TCP and merge the results into one
//! fleet-wide view.
//!
//! Each target is an independent [`TcpTransport`] (its own socket,
//! auth, and retry behavior), so one unreachable broker degrades the
//! merged view instead of failing the poll: its label lands in
//! [`FleetView::unreachable`] and the remaining snapshots still merge.
//! Counter/gauge merges are additive and histograms bucket-merge, so
//! the fleet view reads exactly like a single broker's registry —
//! `octopus_wire_requests_total` in the merged snapshot is the fleet
//! total.

//! A target that fails repeatedly is never dropped: it enters a
//! capped exponential backoff (skipped polls report it as unreachable
//! with a backoff note, without burning a dial timeout) and re-enters
//! the merged view on its first successful scrape — a broker that was
//! down during a rolling restart rejoins the dashboard by itself.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

use octopus_types::{OctoError, OctoResult, RegistrySnapshot};

use crate::tcp::{RemoteHealth, RemoteMetrics, TcpTransport, TcpTransportConfig};

/// One broker's scrape result, labeled by the poller's target name.
#[derive(Debug, Clone)]
pub struct BrokerObservation {
    /// The label the target was registered under (usually `host:port`).
    pub source: String,
    pub metrics: RemoteMetrics,
    pub health: RemoteHealth,
}

/// The merged result of polling every registered target once.
#[derive(Debug, Clone)]
pub struct FleetView {
    /// Per-broker observations, in registration order.
    pub brokers: Vec<BrokerObservation>,
    /// All reachable brokers' registry snapshots, merged.
    pub merged: RegistrySnapshot,
    /// Targets that failed this poll, with the error message.
    pub unreachable: Vec<(String, String)>,
}

impl FleetView {
    /// A merged counter's fleet-wide total (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.merged.counters.get(name).copied().unwrap_or(0)
    }

    /// A merged histogram's p99, in the recorded unit (0 if absent).
    pub fn p99(&self, name: &str) -> u64 {
        self.merged.histograms.get(name).map(|h| h.p99()).unwrap_or(0)
    }
}

/// Per-target retry state: consecutive failures and the deadline
/// before which polls skip the target instead of re-dialing it.
#[derive(Debug, Default)]
struct BackoffState {
    consecutive_failures: u32,
    retry_at: Option<Instant>,
}

impl BackoffState {
    /// Whether a poll at `now` should dial this target.
    fn should_attempt(&self, now: Instant) -> bool {
        self.retry_at.map(|at| now >= at).unwrap_or(true)
    }

    /// Record a failed scrape: the next attempt is delayed by
    /// `base * 2^(failures-1)`, capped at `cap`.
    fn record_failure(&mut self, now: Instant, base: Duration, cap: Duration) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let exp = self.consecutive_failures.saturating_sub(1).min(16);
        let delay = base.saturating_mul(1u32 << exp).min(cap);
        self.retry_at = Some(now + delay);
    }

    /// Record a successful scrape: the target is healthy again.
    fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.retry_at = None;
    }
}

struct FleetTarget {
    label: String,
    transport: TcpTransport,
    backoff: Mutex<BackoffState>,
}

/// Polls a set of brokers and merges their scrapes into a [`FleetView`].
pub struct FleetPoller {
    targets: Vec<FleetTarget>,
    include_spans: bool,
    /// First-retry delay after a scrape failure.
    backoff_base: Duration,
    /// Ceiling on the exponential backoff delay.
    backoff_cap: Duration,
}

impl Default for FleetPoller {
    fn default() -> Self {
        FleetPoller {
            targets: Vec::new(),
            include_spans: false,
            backoff_base: Duration::from_millis(500),
            backoff_cap: Duration::from_secs(30),
        }
    }
}

impl FleetPoller {
    pub fn new() -> Self {
        FleetPoller::default()
    }

    /// Also pull span snapshots on every poll (heavier; for tracing
    /// tools rather than dashboards).
    pub fn with_spans(mut self) -> Self {
        self.include_spans = true;
        self
    }

    /// Override the failure backoff window (first retry after `base`,
    /// doubling up to `cap`). Tests shrink this to keep polls fast.
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap.max(base);
        self
    }

    /// Register a broker endpoint, dialing with `config`. The label
    /// names the broker in [`FleetView`] results.
    pub fn add_endpoint(
        &mut self,
        label: impl Into<String>,
        addr: impl Into<String>,
        config: TcpTransportConfig,
    ) {
        self.add_transport(label, TcpTransport::connect(addr, config));
    }

    /// Register a broker behind an existing transport (lets tests and
    /// tools share a connection with other traffic).
    pub fn add_transport(&mut self, label: impl Into<String>, transport: TcpTransport) {
        self.targets.push(FleetTarget {
            label: label.into(),
            transport,
            backoff: Mutex::new(BackoffState::default()),
        });
    }

    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Scrape every target once. Per-target failures are collected,
    /// not fatal; the call itself only errors when *no* target was
    /// reachable (a dashboard over a dead fleet should say so). A
    /// target inside its failure backoff window is skipped (reported
    /// as unreachable without a dial attempt) and retried once the
    /// window elapses, so a broker down across several polls rejoins
    /// the view automatically when it comes back.
    pub fn poll(&self) -> OctoResult<FleetView> {
        let mut brokers = Vec::with_capacity(self.targets.len());
        let mut merged = RegistrySnapshot::default();
        let mut unreachable = Vec::new();
        for t in &self.targets {
            let now = Instant::now();
            {
                let backoff = t.backoff.lock();
                if !backoff.should_attempt(now) {
                    unreachable.push((
                        t.label.clone(),
                        format!(
                            "in backoff after {} consecutive failures",
                            backoff.consecutive_failures
                        ),
                    ));
                    continue;
                }
            }
            let scraped = t
                .transport
                .describe_metrics(self.include_spans)
                .and_then(|m| t.transport.describe_health().map(|h| (m, h)));
            match scraped {
                Ok((metrics, health)) => {
                    t.backoff.lock().record_success();
                    merged.merge(&metrics.snapshot);
                    brokers.push(BrokerObservation {
                        source: t.label.clone(),
                        metrics,
                        health,
                    });
                }
                Err(e) => {
                    t.backoff.lock().record_failure(
                        Instant::now(),
                        self.backoff_base,
                        self.backoff_cap,
                    );
                    unreachable.push((t.label.clone(), e.to_string()));
                }
            }
        }
        if brokers.is_empty() && !self.targets.is_empty() {
            let detail = unreachable
                .iter()
                .map(|(l, e)| format!("{l}: {e}"))
                .collect::<Vec<_>>()
                .join("; ");
            return Err(OctoError::Unavailable(format!("no broker reachable ({detail})")));
        }
        Ok(FleetView { brokers, merged, unreachable })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_delays_grow_and_cap() {
        let mut s = BackoffState::default();
        let t0 = Instant::now();
        let base = Duration::from_millis(100);
        let cap = Duration::from_millis(350);
        assert!(s.should_attempt(t0), "a fresh target is always attempted");

        s.record_failure(t0, base, cap);
        assert!(!s.should_attempt(t0), "inside the window: skip");
        assert!(s.should_attempt(t0 + Duration::from_millis(100)));

        s.record_failure(t0, base, cap); // 200ms
        assert!(!s.should_attempt(t0 + Duration::from_millis(150)));
        assert!(s.should_attempt(t0 + Duration::from_millis(200)));

        for _ in 0..10 {
            s.record_failure(t0, base, cap);
        }
        // capped: even after many failures the delay never exceeds cap
        assert!(s.should_attempt(t0 + cap));

        s.record_success();
        assert_eq!(s.consecutive_failures, 0);
        assert!(s.should_attempt(t0), "success clears the window entirely");
    }

    #[test]
    fn backoff_shift_does_not_overflow() {
        let mut s = BackoffState::default();
        let t0 = Instant::now();
        for _ in 0..100 {
            s.record_failure(t0, Duration::from_millis(1), Duration::from_secs(1));
        }
        assert!(s.should_attempt(t0 + Duration::from_secs(1)));
    }

    #[test]
    fn failed_target_backs_off_and_recovers() {
        use crate::server::{Authenticator, WireServer, WireServerConfig};
        use crate::tcp::TcpTransportConfig;
        use octopus_broker::Cluster;

        // reserve a port, then free it so the first polls fail
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
            l.local_addr().expect("addr").to_string()
        };
        let mut poller = FleetPoller::new()
            .with_backoff(Duration::from_millis(50), Duration::from_millis(100));
        poller.add_endpoint(
            "b0",
            addr.clone(),
            TcpTransportConfig {
                request_timeout: Duration::from_millis(500),
                ..Default::default()
            },
        );

        // first poll: a real dial failure (and the only target → error)
        let err = poller.poll().expect_err("dead fleet must error");
        assert!(err.to_string().contains("no broker reachable"), "got {err}");

        // second poll, inside the window: skipped, labeled as backoff
        let err = poller.poll().expect_err("still dead");
        assert!(err.to_string().contains("in backoff"), "got {err}");

        // the broker comes back on the same address
        let cluster = Cluster::new(1);
        let _server = WireServer::bind(
            cluster,
            Authenticator::open(),
            addr.as_str(),
            WireServerConfig::default(),
        )
        .expect("rebind broker port");

        // after the window elapses the target is retried and rejoins
        std::thread::sleep(Duration::from_millis(120));
        let view = poller.poll().expect("fleet reachable again");
        assert_eq!(view.brokers.len(), 1, "recovered target rejoined the view");
        assert!(view.unreachable.is_empty());

        // and stays healthy on the next poll (backoff state reset)
        let view = poller.poll().expect("still reachable");
        assert_eq!(view.brokers.len(), 1);
    }
}
