//! Exactly-once semantics: producer-id allocation, broker-side
//! sequence-dedup windows, and the transaction coordinator.
//!
//! The division of labour (DESIGN.md §12):
//!
//! - [`PidAllocator`] hands out `(pid, epoch)` identities. With a
//!   [`ZooService`] attached the registry lives in znodes (CAS-versioned,
//!   so it survives controller failover); a local mirror backs the
//!   offset checkpoint so identities also survive cold restarts with no
//!   zoo.
//! - [`DedupTable`] remembers the last few appended sequence windows per
//!   `(pid, topic, partition)`. The check-and-record runs inside the
//!   leader's log lock, so replicas inherit dedup for free via the
//!   replication executors. The table is a cache over the *leader's
//!   log*: failover, resync, and cold restart all rebuild it from the
//!   current leader's records, never from a snapshot — a window the new
//!   leader's log cannot corroborate would falsely ack a lost retry.
//! - [`TxnCoordinator`] runs the Kafka-style transaction state machine
//!   (Empty → Ongoing → PrepareCommit/PrepareAbort → Complete) with
//!   transactional-id fencing, persisting transitions to znodes when a
//!   zoo is attached.
//! - [`TxnIndex`] tracks open transactions and aborted ranges per
//!   partition, giving fetches the last-stable-offset (LSO) and the
//!   aborted-record filter read-committed consumers rely on.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use octopus_types::{OctoError, OctoResult, Offset, PartitionId, TopicName};
use octopus_zoo::{CreateMode, ZooService};

use crate::record::{ControlMarker, ProducerStamp, Record};
use crate::store::{ProducerCheckpoint, ProducerCkptEntry};

/// How many appended sequence windows the broker remembers per
/// `(pid, partition)` — Kafka's `max.in.flight` dedup horizon.
pub const DEDUP_WINDOWS: usize = 5;

/// Bounded CAS retries against the zoo registry before giving up.
const ZOO_CAS_RETRIES: usize = 16;

const ZOO_EOS_ROOT: &str = "/octopus/eos";
const ZOO_PRODUCERS: &str = "/octopus/eos/producers";
const ZOO_NEXT_PID: &str = "/octopus/eos/next-pid";
const ZOO_TXN_ROOT: &str = "/octopus/eos/txn";

/// A controller-assigned producer identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProducerIdentity {
    /// Producer id, unique per registered name.
    pub pid: u64,
    /// Fencing epoch; bumped on every re-registration of the name.
    pub epoch: u32,
}

// ---------------------------------------------------------------------------
// pid allocation
// ---------------------------------------------------------------------------

#[derive(Default)]
struct PidLocal {
    next_pid: u64,
    by_name: HashMap<String, ProducerIdentity>,
}

/// Controller-side producer-id registry. Clones share state.
#[derive(Clone, Default)]
pub struct PidAllocator {
    inner: Arc<Mutex<PidLocal>>,
}

impl PidAllocator {
    /// Register (or re-register) a producer name, returning its
    /// identity. Re-registering bumps the epoch, fencing any previous
    /// holder's in-flight batches. With a zoo attached the registry is
    /// CAS-updated in znodes so it survives controller failover; the
    /// local mirror feeds the offset checkpoint either way.
    pub fn register(&self, name: &str, zoo: Option<&ZooService>) -> OctoResult<ProducerIdentity> {
        let id = match zoo {
            Some(zoo) => self.register_zoo(name, zoo)?,
            None => {
                let mut local = self.inner.lock();
                match local.by_name.get(name).copied() {
                    Some(mut id) => {
                        id.epoch += 1;
                        id
                    }
                    None => {
                        let pid = local.next_pid;
                        local.next_pid += 1;
                        ProducerIdentity { pid, epoch: 0 }
                    }
                }
            }
        };
        let mut local = self.inner.lock();
        local.by_name.insert(name.to_string(), id);
        local.next_pid = local.next_pid.max(id.pid + 1);
        Ok(id)
    }

    fn register_zoo(&self, name: &str, zoo: &ZooService) -> OctoResult<ProducerIdentity> {
        zoo.ensure_path(ZOO_EOS_ROOT)?;
        zoo.ensure_path(ZOO_PRODUCERS)?;
        let node = format!("{ZOO_PRODUCERS}/{name}");
        for _ in 0..ZOO_CAS_RETRIES {
            match zoo.get(&node) {
                Ok((bytes, stat)) => {
                    let mut id: ProducerIdentity = serde_json::from_slice(&bytes)
                        .map_err(|e| OctoError::Serde(e.to_string()))?;
                    id.epoch += 1;
                    let blob =
                        serde_json::to_vec(&id).map_err(|e| OctoError::Serde(e.to_string()))?;
                    match zoo.set(&node, &blob, Some(stat.version)) {
                        Ok(_) => return Ok(id),
                        Err(OctoError::Conflict(_)) => continue,
                        Err(e) => return Err(e),
                    }
                }
                Err(OctoError::NotFound(_)) => {
                    let pid = self.alloc_pid_zoo(zoo)?;
                    let id = ProducerIdentity { pid, epoch: 0 };
                    let blob =
                        serde_json::to_vec(&id).map_err(|e| OctoError::Serde(e.to_string()))?;
                    match zoo.create(&node, &blob, CreateMode::Persistent, None) {
                        Ok(_) => return Ok(id),
                        Err(OctoError::Conflict(_)) => continue, // raced a concurrent register
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(OctoError::Unavailable(format!(
            "pid registration for {name:?} lost {ZOO_CAS_RETRIES} CAS races"
        )))
    }

    fn alloc_pid_zoo(&self, zoo: &ZooService) -> OctoResult<u64> {
        for _ in 0..ZOO_CAS_RETRIES {
            match zoo.get(ZOO_NEXT_PID) {
                Ok((bytes, stat)) => {
                    let cur: u64 = std::str::from_utf8(&bytes)
                        .ok()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| OctoError::Serde("bad next-pid counter".into()))?;
                    match zoo.set(ZOO_NEXT_PID, (cur + 1).to_string().as_bytes(), Some(stat.version))
                    {
                        Ok(_) => return Ok(cur),
                        Err(OctoError::Conflict(_)) => continue,
                        Err(e) => return Err(e),
                    }
                }
                Err(OctoError::NotFound(_)) => {
                    // seed past anything the local mirror restored, so a
                    // fresh zoo never re-issues a checkpointed pid
                    let base = self.inner.lock().next_pid;
                    match zoo.create(
                        ZOO_NEXT_PID,
                        (base + 1).to_string().as_bytes(),
                        CreateMode::Persistent,
                        None,
                    ) {
                        Ok(_) => return Ok(base),
                        Err(OctoError::Conflict(_)) => continue,
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(OctoError::Unavailable(format!(
            "pid counter lost {ZOO_CAS_RETRIES} CAS races"
        )))
    }

    /// The newest epoch registered for a pid, if known.
    pub fn epoch_of_pid(&self, pid: u64) -> Option<u32> {
        self.inner.lock().by_name.values().find(|id| id.pid == pid).map(|id| id.epoch)
    }

    /// Snapshot the registry for the offset checkpoint.
    pub fn snapshot(&self) -> ProducerCheckpoint {
        let local = self.inner.lock();
        let mut producers: Vec<ProducerCkptEntry> = local
            .by_name
            .iter()
            .map(|(name, id)| ProducerCkptEntry {
                name: name.clone(),
                pid: id.pid,
                epoch: id.epoch,
            })
            .collect();
        producers.sort_by_key(|a| a.pid);
        ProducerCheckpoint { next_pid: local.next_pid, producers }
    }

    /// Restore a checkpointed registry (cold restart). Existing entries
    /// win: a live zoo registry is newer than any checkpoint.
    pub fn restore(&self, ckpt: ProducerCheckpoint) {
        let mut local = self.inner.lock();
        local.next_pid = local.next_pid.max(ckpt.next_pid);
        for entry in ckpt.producers {
            local.next_pid = local.next_pid.max(entry.pid + 1);
            local
                .by_name
                .entry(entry.name)
                .or_insert(ProducerIdentity { pid: entry.pid, epoch: entry.epoch });
        }
    }
}

// ---------------------------------------------------------------------------
// dedup windows
// ---------------------------------------------------------------------------

/// Verdict of the append-time dedup check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupVerdict {
    /// Never seen: append it.
    Fresh,
    /// Exact re-send of an already-appended batch: ack without
    /// appending, pointing at where the original landed.
    Duplicate {
        /// Base offset of the original append.
        base_offset: Offset,
        /// Record count of the original append.
        count: usize,
    },
    /// The stamp's epoch is older than the newest registered/observed
    /// epoch for the pid: a zombie producer, rejected outright.
    Fenced,
}

#[derive(Debug, Clone, Copy)]
struct SeqWindow {
    epoch: u32,
    first_seq: u64,
    count: u64,
    base_offset: Offset,
}

#[derive(Default)]
struct PartitionDedup {
    windows: HashMap<u64, VecDeque<SeqWindow>>,
}

/// Last-few-sequence-windows dedup state per partition. A cache over
/// the current leader's log: see the module docs for the rebuild rules.
#[derive(Clone, Default)]
pub struct DedupTable {
    inner: Arc<Mutex<HashMap<(TopicName, PartitionId), PartitionDedup>>>,
}

impl DedupTable {
    /// Append-time check. `registered_epoch` is the controller's newest
    /// epoch for the pid, when known — anything older is fenced even if
    /// this partition never saw the pid.
    pub fn check(
        &self,
        topic: &str,
        partition: PartitionId,
        stamp: ProducerStamp,
        len: usize,
        registered_epoch: Option<u32>,
    ) -> DedupVerdict {
        if let Some(epoch) = registered_epoch {
            if stamp.epoch < epoch {
                return DedupVerdict::Fenced;
            }
        }
        let inner = self.inner.lock();
        let Some(windows) = inner
            .get(&(topic.to_string(), partition))
            .and_then(|p| p.windows.get(&stamp.pid))
        else {
            return DedupVerdict::Fresh;
        };
        if windows.iter().any(|w| w.epoch > stamp.epoch) {
            return DedupVerdict::Fenced;
        }
        for w in windows {
            // Containment, not equality: a rebuild coalesces contiguous
            // appends into one window (batch boundaries are not
            // recoverable from per-record stamps), so a retried batch
            // matches as a sub-range. The records sit at the same
            // relative offsets, so the original base is recoverable.
            if w.epoch == stamp.epoch
                && stamp.seq >= w.first_seq
                && stamp.seq + len as u64 <= w.first_seq + w.count
            {
                return DedupVerdict::Duplicate {
                    base_offset: w.base_offset + (stamp.seq - w.first_seq),
                    count: len,
                };
            }
        }
        DedupVerdict::Fresh
    }

    /// Record an appended batch's window (called under the leader's log
    /// lock, right after the append). A newer epoch evicts the old
    /// epoch's windows: sequences restart at 0 per epoch.
    pub fn record(
        &self,
        topic: &str,
        partition: PartitionId,
        stamp: ProducerStamp,
        len: usize,
        base_offset: Offset,
    ) {
        let mut inner = self.inner.lock();
        let windows = inner
            .entry((topic.to_string(), partition))
            .or_default()
            .windows
            .entry(stamp.pid)
            .or_default();
        if windows.iter().any(|w| w.epoch < stamp.epoch) {
            windows.retain(|w| w.epoch >= stamp.epoch);
        }
        windows.push_back(SeqWindow {
            epoch: stamp.epoch,
            first_seq: stamp.seq,
            count: len as u64,
            base_offset,
        });
        while windows.len() > DEDUP_WINDOWS {
            windows.pop_front();
        }
    }

    /// Drop and rebuild one partition's windows from the current
    /// leader's records (failover / resync / cold restart).
    pub fn rebuild_partition<'a>(
        &self,
        topic: &str,
        partition: PartitionId,
        records: impl IntoIterator<Item = &'a Record>,
    ) {
        let mut fresh = PartitionDedup::default();
        // coalesce contiguous per-record stamps back into append windows
        let mut run: Option<(ProducerStamp, u64, Offset, Offset)> = None;
        let flush = |r: &mut Option<(ProducerStamp, u64, Offset, Offset)>,
                         dedup: &mut PartitionDedup| {
            if let Some((stamp, count, base, _)) = r.take() {
                let windows = dedup.windows.entry(stamp.pid).or_default();
                if windows.iter().any(|w| w.epoch < stamp.epoch) {
                    windows.retain(|w| w.epoch >= stamp.epoch);
                }
                windows.push_back(SeqWindow {
                    epoch: stamp.epoch,
                    first_seq: stamp.seq,
                    count,
                    base_offset: base,
                });
                while windows.len() > DEDUP_WINDOWS {
                    windows.pop_front();
                }
            }
        };
        for rec in records {
            let Some(eos) = &rec.eos else {
                flush(&mut run, &mut fresh);
                continue;
            };
            if eos.control.is_some() {
                flush(&mut run, &mut fresh);
                continue;
            }
            match &mut run {
                Some((stamp, count, _, last))
                    if stamp.pid == eos.pid
                        && stamp.epoch == eos.epoch
                        && eos.seq == stamp.seq + *count
                        && rec.offset == *last + 1 =>
                {
                    *count += 1;
                    *last = rec.offset;
                }
                _ => {
                    flush(&mut run, &mut fresh);
                    run = Some((
                        ProducerStamp { pid: eos.pid, epoch: eos.epoch, seq: eos.seq },
                        1,
                        rec.offset,
                        rec.offset,
                    ));
                }
            }
        }
        flush(&mut run, &mut fresh);
        self.inner.lock().insert((topic.to_string(), partition), fresh);
    }

    /// Forget one partition's windows (the partition is gone).
    pub fn forget_partition(&self, topic: &str, partition: PartitionId) {
        self.inner.lock().remove(&(topic.to_string(), partition));
    }
}

// ---------------------------------------------------------------------------
// transaction index (per-partition LSO + aborted ranges)
// ---------------------------------------------------------------------------

#[derive(Default)]
struct PartitionTxn {
    /// First offset of each open transaction, by pid.
    open: HashMap<u64, Offset>,
    /// Aborted `[start, end)` ranges per pid; a record is dropped only
    /// if its own pid matches (interleaved committed records survive).
    aborted: Vec<(u64, Offset, Offset)>,
}

/// Per-partition transactional metadata: which transactions are open
/// (bounding the LSO) and which offset ranges were aborted.
#[derive(Clone, Default)]
pub struct TxnIndex {
    inner: Arc<Mutex<HashMap<(TopicName, PartitionId), PartitionTxn>>>,
}

impl TxnIndex {
    /// A transactional data batch landed at `base_offset`.
    pub fn note_data(&self, topic: &str, partition: PartitionId, pid: u64, base_offset: Offset) {
        let mut inner = self.inner.lock();
        inner
            .entry((topic.to_string(), partition))
            .or_default()
            .open
            .entry(pid)
            .or_insert(base_offset);
    }

    /// A control marker landed at `offset`, resolving pid's transaction
    /// on this partition.
    pub fn note_marker(
        &self,
        topic: &str,
        partition: PartitionId,
        pid: u64,
        marker: ControlMarker,
        offset: Offset,
    ) {
        let mut inner = self.inner.lock();
        let p = inner.entry((topic.to_string(), partition)).or_default();
        if let Some(first) = p.open.remove(&pid) {
            if marker == ControlMarker::Abort {
                p.aborted.push((pid, first, offset));
            }
        }
    }

    /// Last stable offset: the high watermark bounded by the earliest
    /// still-open transaction. Read-committed fetches stop here.
    pub fn last_stable_offset(&self, topic: &str, partition: PartitionId, hwm: Offset) -> Offset {
        let inner = self.inner.lock();
        inner
            .get(&(topic.to_string(), partition))
            .and_then(|p| p.open.values().min().copied())
            .map_or(hwm, |first| first.min(hwm))
    }

    /// Whether a transactional record at `offset` from `pid` was
    /// aborted.
    pub fn is_aborted(&self, topic: &str, partition: PartitionId, pid: u64, offset: Offset) -> bool {
        let inner = self.inner.lock();
        inner
            .get(&(topic.to_string(), partition))
            .map(|p| {
                p.aborted
                    .iter()
                    .any(|(apid, start, end)| *apid == pid && offset >= *start && offset < *end)
            })
            .unwrap_or(false)
    }

    /// Drop and rebuild one partition's transactional metadata from the
    /// current leader's records.
    pub fn rebuild_partition<'a>(
        &self,
        topic: &str,
        partition: PartitionId,
        records: impl IntoIterator<Item = &'a Record>,
    ) {
        let mut fresh = PartitionTxn::default();
        for rec in records {
            let Some(eos) = &rec.eos else { continue };
            match eos.control {
                Some(marker) => {
                    if let Some(first) = fresh.open.remove(&eos.pid) {
                        if marker == ControlMarker::Abort {
                            fresh.aborted.push((eos.pid, first, rec.offset));
                        }
                    }
                }
                None if eos.txn => {
                    fresh.open.entry(eos.pid).or_insert(rec.offset);
                }
                None => {}
            }
        }
        self.inner.lock().insert((topic.to_string(), partition), fresh);
    }

    /// Forget one partition's metadata.
    pub fn forget_partition(&self, topic: &str, partition: PartitionId) {
        self.inner.lock().remove(&(topic.to_string(), partition));
    }
}

// ---------------------------------------------------------------------------
// transaction coordinator
// ---------------------------------------------------------------------------

/// Transaction state machine states (Kafka's, minus timeouts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnState {
    /// Registered, no transaction open.
    Empty,
    /// `begin` ran; produces and offset-sends accumulate.
    Ongoing,
    /// `commit` ran; markers are being written.
    PrepareCommit,
    /// `abort` ran; markers are being written.
    PrepareAbort,
    /// Markers written, offsets applied (commit) or dropped (abort).
    Complete,
}

/// One buffered consumed-offset commit riding in a transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnOffset {
    /// Consumer group the offset belongs to.
    pub group: String,
    /// Topic.
    pub topic: TopicName,
    /// Partition.
    pub partition: PartitionId,
    /// Next offset the group will consume.
    pub offset: Offset,
}

/// What a prepared transaction hands back for resolution: the pid,
/// the touched partitions (marker targets), and the buffered offsets
/// (applied on commit, dropped on abort).
pub type PreparedTxn = (u64, Vec<(TopicName, PartitionId)>, Vec<TxnOffset>);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct TxnRecord {
    pid: u64,
    epoch: u32,
    state: TxnState,
    partitions: Vec<(TopicName, PartitionId)>,
    offsets: Vec<TxnOffset>,
}

/// Coordinator for transactional producers. State transitions persist
/// to `/octopus/eos/txn/<id>` znodes when a zoo is attached, so a new
/// controller can observe in-flight transactions after failover.
#[derive(Clone, Default)]
pub struct TxnCoordinator {
    inner: Arc<Mutex<HashMap<String, TxnRecord>>>,
}

impl TxnCoordinator {
    /// Begin a transaction for `name` under `(pid, epoch)`. Fences
    /// stale epochs; rejects double-begins.
    pub fn begin(
        &self,
        name: &str,
        pid: u64,
        epoch: u32,
        zoo: Option<&ZooService>,
    ) -> OctoResult<()> {
        let record = {
            let mut inner = self.inner.lock();
            let entry = inner.entry(name.to_string()).or_insert(TxnRecord {
                pid,
                epoch,
                state: TxnState::Empty,
                partitions: Vec::new(),
                offsets: Vec::new(),
            });
            if epoch < entry.epoch {
                return Err(OctoError::Conflict(format!(
                    "transactional id {name:?} fenced: epoch {epoch} < {}",
                    entry.epoch
                )));
            }
            if entry.state == TxnState::Ongoing && epoch == entry.epoch {
                return Err(OctoError::Conflict(format!(
                    "transactional id {name:?} already has an open transaction"
                )));
            }
            entry.pid = pid;
            entry.epoch = epoch;
            entry.state = TxnState::Ongoing;
            entry.partitions.clear();
            entry.offsets.clear();
            entry.clone()
        };
        self.persist(name, &record, zoo);
        Ok(())
    }

    /// Add a partition to the open transaction.
    pub fn add_partition(
        &self,
        name: &str,
        epoch: u32,
        topic: &str,
        partition: PartitionId,
    ) -> OctoResult<()> {
        let mut inner = self.inner.lock();
        let entry = self_check(&mut inner, name, epoch)?;
        let key = (topic.to_string(), partition);
        if !entry.partitions.contains(&key) {
            entry.partitions.push(key);
        }
        Ok(())
    }

    /// Buffer a consumed-offset commit inside the open transaction.
    pub fn add_offsets(&self, name: &str, epoch: u32, offsets: Vec<TxnOffset>) -> OctoResult<()> {
        let mut inner = self.inner.lock();
        let entry = self_check(&mut inner, name, epoch)?;
        entry.offsets.extend(offsets);
        Ok(())
    }

    /// Move the open transaction to PrepareCommit/PrepareAbort and hand
    /// back what must be resolved: the touched partitions and (for
    /// commits) the buffered offsets.
    pub fn prepare(
        &self,
        name: &str,
        epoch: u32,
        commit: bool,
        zoo: Option<&ZooService>,
    ) -> OctoResult<PreparedTxn> {
        let target = if commit { TxnState::PrepareCommit } else { TxnState::PrepareAbort };
        let (record, out) = {
            let mut inner = self.inner.lock();
            let entry = inner
                .get_mut(name)
                .ok_or_else(|| OctoError::NotFound(format!("transactional id {name:?}")))?;
            if epoch < entry.epoch {
                return Err(OctoError::Conflict(format!(
                    "transactional id {name:?} fenced: epoch {epoch} < {}",
                    entry.epoch
                )));
            }
            // Ongoing starts the resolution; a matching Prepare state is
            // a retry after a failed marker write and may run again.
            if entry.state != TxnState::Ongoing && entry.state != target {
                return Err(OctoError::Invalid(format!(
                    "transactional id {name:?} has no open transaction (state {:?})",
                    entry.state
                )));
            }
            entry.state = target;
            let out = (entry.pid, entry.partitions.clone(), entry.offsets.clone());
            (entry.clone(), out)
        };
        self.persist(name, &record, zoo);
        Ok(out)
    }

    /// Markers are written (and offsets applied): transaction complete.
    pub fn complete(&self, name: &str, epoch: u32, zoo: Option<&ZooService>) -> OctoResult<()> {
        let record = {
            let mut inner = self.inner.lock();
            let entry = inner
                .get_mut(name)
                .ok_or_else(|| OctoError::NotFound(format!("transactional id {name:?}")))?;
            if epoch < entry.epoch {
                return Err(OctoError::Conflict(format!("transactional id {name:?} fenced")));
            }
            entry.state = TxnState::Complete;
            entry.partitions.clear();
            entry.offsets.clear();
            entry.clone()
        };
        self.persist(name, &record, zoo);
        Ok(())
    }

    /// Current state of a transactional id, if known.
    pub fn state(&self, name: &str) -> Option<TxnState> {
        self.inner.lock().get(name).map(|r| r.state)
    }

    fn persist(&self, name: &str, record: &TxnRecord, zoo: Option<&ZooService>) {
        let Some(zoo) = zoo else { return };
        // best-effort durable record: the in-process map is authoritative
        // for this incarnation; the znode is what a successor reads
        let Ok(blob) = serde_json::to_vec(record) else { return };
        let _ = zoo.ensure_path(ZOO_EOS_ROOT);
        let _ = zoo.ensure_path(ZOO_TXN_ROOT);
        let node = format!("{ZOO_TXN_ROOT}/{name}");
        match zoo.set(&node, &blob, None) {
            Ok(_) => {}
            Err(_) => {
                let _ = zoo.create(&node, &blob, CreateMode::Persistent, None);
            }
        }
    }
}

fn self_check<'a>(
    inner: &'a mut HashMap<String, TxnRecord>,
    name: &str,
    epoch: u32,
) -> OctoResult<&'a mut TxnRecord> {
    let entry = inner
        .get_mut(name)
        .ok_or_else(|| OctoError::NotFound(format!("transactional id {name:?}")))?;
    if epoch < entry.epoch {
        return Err(OctoError::Conflict(format!(
            "transactional id {name:?} fenced: epoch {epoch} < {}",
            entry.epoch
        )));
    }
    if entry.state != TxnState::Ongoing {
        return Err(OctoError::Invalid(format!(
            "transactional id {name:?} has no open transaction (state {:?})",
            entry.state
        )));
    }
    Ok(entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordEos;
    use bytes::Bytes;
    use octopus_types::Timestamp;

    fn stamped(offset: Offset, pid: u64, epoch: u32, seq: u64, txn: bool) -> Record {
        let mut r = Record {
            offset,
            append_time: Timestamp::from_millis(0),
            key: None,
            value: Bytes::from_static(b"v"),
            headers: Vec::new(),
            producer_time: Timestamp::from_millis(0),
            crc: 0,
            eos: Some(RecordEos { pid, epoch, seq, txn, control: None }),
        };
        r.crc = r.compute_crc();
        r
    }

    fn marker(offset: Offset, pid: u64, epoch: u32, m: ControlMarker) -> Record {
        let mut r = stamped(offset, pid, epoch, 0, true);
        r.eos = Some(RecordEos { pid, epoch, seq: 0, txn: true, control: Some(m) });
        r
    }

    #[test]
    fn local_allocator_assigns_and_fences() {
        let pids = PidAllocator::default();
        let a = pids.register("a", None).unwrap();
        let b = pids.register("b", None).unwrap();
        assert_ne!(a.pid, b.pid);
        assert_eq!(a.epoch, 0);
        let a2 = pids.register("a", None).unwrap();
        assert_eq!(a2.pid, a.pid);
        assert_eq!(a2.epoch, a.epoch + 1);
        assert_eq!(pids.epoch_of_pid(a.pid), Some(a2.epoch));
    }

    #[test]
    fn allocator_snapshot_restore_roundtrip() {
        let pids = PidAllocator::default();
        pids.register("a", None).unwrap();
        pids.register("b", None).unwrap();
        pids.register("b", None).unwrap(); // epoch 1
        let snap = pids.snapshot();
        let restored = PidAllocator::default();
        restored.restore(snap.clone());
        assert_eq!(restored.snapshot(), snap);
        // a fresh name after restore never reuses a pid
        let c = restored.register("c", None).unwrap();
        assert!(snap.producers.iter().all(|p| p.pid != c.pid));
    }

    #[test]
    fn dedup_exact_resend_is_duplicate_and_zombie_is_fenced() {
        let dedup = DedupTable::default();
        let stamp = ProducerStamp { pid: 1, epoch: 1, seq: 10 };
        assert_eq!(dedup.check("t", 0, stamp, 3, Some(1)), DedupVerdict::Fresh);
        dedup.record("t", 0, stamp, 3, 40);
        assert_eq!(
            dedup.check("t", 0, stamp, 3, Some(1)),
            DedupVerdict::Duplicate { base_offset: 40, count: 3 }
        );
        // a different batch from the same producer is fresh
        let next = ProducerStamp { pid: 1, epoch: 1, seq: 13 };
        assert_eq!(dedup.check("t", 0, next, 1, Some(1)), DedupVerdict::Fresh);
        // a zombie with an older epoch is fenced, by registry or window
        let zombie = ProducerStamp { pid: 1, epoch: 0, seq: 10 };
        assert_eq!(dedup.check("t", 0, zombie, 3, Some(1)), DedupVerdict::Fenced);
        assert_eq!(dedup.check("t", 0, zombie, 3, None), DedupVerdict::Fenced);
    }

    #[test]
    fn dedup_window_is_bounded() {
        let dedup = DedupTable::default();
        for i in 0..10u64 {
            dedup.record("t", 0, ProducerStamp { pid: 7, epoch: 0, seq: i * 2 }, 2, i * 2);
        }
        // oldest windows evicted: only the last DEDUP_WINDOWS survive
        let old = ProducerStamp { pid: 7, epoch: 0, seq: 0 };
        assert_eq!(dedup.check("t", 0, old, 2, None), DedupVerdict::Fresh);
        let recent = ProducerStamp { pid: 7, epoch: 0, seq: 18 };
        assert!(matches!(dedup.check("t", 0, recent, 2, None), DedupVerdict::Duplicate { .. }));
    }

    #[test]
    fn dedup_rebuild_coalesces_batches_from_records() {
        let dedup = DedupTable::default();
        // two batches from pid 1 (seq 0..3, then 3..5) and one from pid 2
        let records = vec![
            stamped(0, 1, 0, 0, false),
            stamped(1, 1, 0, 1, false),
            stamped(2, 1, 0, 2, false),
            stamped(3, 2, 0, 0, false),
            stamped(4, 1, 0, 3, false),
            stamped(5, 1, 0, 4, false),
        ];
        dedup.rebuild_partition("t", 0, &records);
        assert_eq!(
            dedup.check("t", 0, ProducerStamp { pid: 1, epoch: 0, seq: 0 }, 3, None),
            DedupVerdict::Duplicate { base_offset: 0, count: 3 }
        );
        assert_eq!(
            dedup.check("t", 0, ProducerStamp { pid: 1, epoch: 0, seq: 3 }, 2, None),
            DedupVerdict::Duplicate { base_offset: 4, count: 2 }
        );
        assert_eq!(
            dedup.check("t", 0, ProducerStamp { pid: 2, epoch: 0, seq: 0 }, 1, None),
            DedupVerdict::Duplicate { base_offset: 3, count: 1 }
        );
        // rebuild replaces: a window recorded before the rebuild is gone
        dedup.record("t", 0, ProducerStamp { pid: 9, epoch: 0, seq: 0 }, 1, 99);
        dedup.rebuild_partition("t", 0, &records[..1]);
        assert_eq!(
            dedup.check("t", 0, ProducerStamp { pid: 9, epoch: 0, seq: 0 }, 1, None),
            DedupVerdict::Fresh
        );
    }

    #[test]
    fn retry_of_one_batch_matches_inside_a_coalesced_window() {
        // Single-record batches at contiguous sequences coalesce into
        // ONE window on rebuild — batch boundaries are not recoverable
        // from per-record stamps. A retry of any original batch must
        // still dedup as a sub-range of that window (exact-match
        // semantics here let a retried tail append a duplicate after a
        // mid-stream rebuild; caught by the eos_smoke chaos drill).
        let dedup = DedupTable::default();
        let records: Vec<Record> =
            (0..27u64).map(|i| stamped(i, 0, 0, i, false)).collect();
        dedup.rebuild_partition("t", 0, &records);
        // the ambiguous-acked tail batch retries as (seq 26, len 1)
        assert_eq!(
            dedup.check("t", 0, ProducerStamp { pid: 0, epoch: 0, seq: 26 }, 1, None),
            DedupVerdict::Duplicate { base_offset: 26, count: 1 }
        );
        // a mid-window batch re-acks at its own offset, not the window's
        assert_eq!(
            dedup.check("t", 0, ProducerStamp { pid: 0, epoch: 0, seq: 10 }, 4, None),
            DedupVerdict::Duplicate { base_offset: 10, count: 4 }
        );
        // a batch running past the window end is NOT contained: the
        // suffix was never appended, so the whole batch must re-append
        assert_eq!(
            dedup.check("t", 0, ProducerStamp { pid: 0, epoch: 0, seq: 26 }, 2, None),
            DedupVerdict::Fresh
        );
    }

    #[test]
    fn txn_index_lso_and_aborted_ranges() {
        let idx = TxnIndex::default();
        idx.note_data("t", 0, 1, 5);
        idx.note_data("t", 0, 2, 7);
        assert_eq!(idx.last_stable_offset("t", 0, 10), 5);
        idx.note_marker("t", 0, 1, ControlMarker::Abort, 8);
        assert_eq!(idx.last_stable_offset("t", 0, 10), 7);
        idx.note_marker("t", 0, 2, ControlMarker::Commit, 9);
        assert_eq!(idx.last_stable_offset("t", 0, 10), 10);
        // pid 1's records in [5, 8) are aborted; pid 2's interleaved
        // committed records are not
        assert!(idx.is_aborted("t", 0, 1, 5));
        assert!(idx.is_aborted("t", 0, 1, 6));
        assert!(!idx.is_aborted("t", 0, 1, 8));
        assert!(!idx.is_aborted("t", 0, 2, 7));
    }

    #[test]
    fn txn_index_rebuilds_from_records() {
        let idx = TxnIndex::default();
        let records = vec![
            stamped(0, 1, 0, 0, true),
            stamped(1, 2, 0, 0, true),
            marker(2, 1, 0, ControlMarker::Abort),
            stamped(3, 2, 0, 1, true),
        ];
        idx.rebuild_partition("t", 0, &records);
        assert!(idx.is_aborted("t", 0, 1, 0));
        assert!(!idx.is_aborted("t", 0, 2, 1));
        // pid 2 still open: LSO pinned at its first offset
        assert_eq!(idx.last_stable_offset("t", 0, 4), 1);
    }

    #[test]
    fn coordinator_state_machine_and_fencing() {
        let txns = TxnCoordinator::default();
        txns.begin("app", 1, 1, None).unwrap();
        assert_eq!(txns.state("app"), Some(TxnState::Ongoing));
        txns.add_partition("app", 1, "t", 0).unwrap();
        txns.add_offsets(
            "app",
            1,
            vec![TxnOffset { group: "g".into(), topic: "t".into(), partition: 0, offset: 5 }],
        )
        .unwrap();
        // double-begin at the same epoch is a conflict
        assert!(matches!(txns.begin("app", 1, 1, None), Err(OctoError::Conflict(_))));
        // a zombie at an older epoch is fenced everywhere
        assert!(matches!(txns.add_partition("app", 0, "t", 0), Err(OctoError::Conflict(_))));
        let (pid, parts, offsets) = txns.prepare("app", 1, true, None).unwrap();
        assert_eq!(pid, 1);
        assert_eq!(parts, vec![("t".to_string(), 0)]);
        assert_eq!(offsets.len(), 1);
        txns.complete("app", 1, None).unwrap();
        assert_eq!(txns.state("app"), Some(TxnState::Complete));
        // a new epoch (re-registration) can begin again
        txns.begin("app", 1, 2, None).unwrap();
        let (_, parts, offsets) = txns.prepare("app", 2, false, None).unwrap();
        assert!(parts.is_empty() && offsets.is_empty());
        txns.complete("app", 2, None).unwrap();
    }
}
