//! Authentication, authorization, and access control for Octopus.
//!
//! The paper builds on **Globus Auth** (a standards-compliant OAuth 2.0
//! implementation with federated identity providers and a delegation
//! model) and **AWS IAM + SCRAM** for broker-level authentication
//! (§IV-C). This crate reproduces those mechanisms in-process:
//!
//! - [`sha`]: SHA-256 and HMAC-SHA256 implemented from scratch (no
//!   crypto dependency), verified against RFC 6234 / RFC 4231 vectors.
//! - [`token`]: bearer access tokens with scopes, expiry, refresh.
//! - [`globus`]: an OAuth2-style authorization server with federated
//!   identity providers and *dependent token* delegation, mirroring the
//!   Globus Auth flows Octopus relies on.
//! - [`iam`]: IAM-style identities with access key/secret pairs and
//!   HMAC request signing, as used by MSK's IAM authentication.
//! - [`acl`]: per-topic READ/WRITE/DESCRIBE access control lists with
//!   self-service management, the paper's "fine-grained access control".
//! - [`scram`]: SCRAM-SHA-256-style salted challenge-response, the
//!   password mechanism the wire protocol carries in its handshake.

pub mod acl;
pub mod globus;
pub mod iam;
pub mod scram;
pub mod sha;
pub mod token;

pub use acl::{AclStore, Permission};
pub use globus::{AuthServer, ClientRegistration, IdentityProvider};
pub use iam::{AccessKey, IamService, SignedRequest};
pub use scram::ScramStore;
pub use token::{AccessToken, Scope, TokenInfo, TokenStatus};
