//! Property tests for the LZ4-style block codec.
//!
//! The decoder runs against bytes read back from disk or hydrated from
//! a cold tier, so its contract is the same as the wire decoder's
//! (DESIGN.md §13): round-trips are exact, and arbitrary corruption —
//! bit flips, truncation, or fully random input — produces a typed
//! error or wrong-but-bounded output, never a panic and never more
//! than the declared output length.

use proptest::prelude::*;

use octopus_compression::{compress, decompress};

/// Inputs mixing noise with repeated structure, so the generator hits
/// both the literal-heavy and match-heavy encoder paths.
fn payload_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..2048),
        (proptest::collection::vec(any::<u8>(), 1..32), 1usize..200)
            .prop_map(|(unit, reps)| unit.repeat(reps)),
        (any::<u64>(), 1usize..300).prop_map(|(seed, n)| {
            (0..n)
                .flat_map(|i| format!("{{\"seed\":{seed},\"seq\":{i}}}").into_bytes())
                .collect()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_is_exact(data in payload_strategy()) {
        let block = compress(&data);
        let back = decompress(&block, data.len()).expect("roundtrip");
        prop_assert_eq!(back, data);
    }

    #[test]
    fn corrupted_blocks_never_panic_or_overflow(
        data in payload_strategy(),
        flip_at in any::<usize>(),
        flip_bit in 0u32..8,
        cut in any::<usize>(),
    ) {
        let block = compress(&data);
        if !block.is_empty() {
            let mut bad = block.clone();
            let i = flip_at % bad.len();
            bad[i] ^= 1 << flip_bit;
            bad.truncate(cut % (bad.len() + 1));
            // typed error or bounded output -- both acceptable, panics are not
            if let Ok(out) = decompress(&bad, data.len()) {
                prop_assert!(out.len() == data.len());
            }
        }
    }

    #[test]
    fn random_bytes_as_block_never_panic(
        junk in proptest::collection::vec(any::<u8>(), 0..512),
        declared in 0usize..4096,
    ) {
        if let Ok(out) = decompress(&junk, declared) {
            prop_assert!(out.len() == declared);
        }
    }
}
