//! A broker node: passive host of partition replica logs.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use std::sync::MutexGuard;
use serde::{Deserialize, Serialize};

use octopus_types::{OctoResult, PartitionId, TopicName};

use crate::config::StorageSpec;
use crate::log::{LogSnapshot, PartitionLog, SnapshotSlot};
use crate::store::{FlushPolicy, RecoveryStats, StoreMetrics, StoreOptions};
use crate::tier::ColdStore;

/// Shared configuration for every durable partition a broker hosts.
#[derive(Debug, Clone)]
pub struct StoreContext {
    /// Cluster data directory (brokers get per-id subdirectories).
    pub root: PathBuf,
    /// When appends are fsynced.
    pub policy: FlushPolicy,
    /// Shared-registry instruments for the storage engine.
    pub metrics: StoreMetrics,
    /// Cold tier for sealed segment data files, if the cluster has one.
    pub cold: Option<Arc<dyn ColdStore>>,
}

impl StoreContext {
    /// Directory for one partition replica on one broker:
    /// `root/broker-<id>/<topic>/<partition>`.
    fn partition_dir(&self, broker: BrokerId, topic: &str, partition: PartitionId) -> PathBuf {
        self.root.join(format!("broker-{}", broker.0)).join(topic).join(format!("{partition:05}"))
    }
}

/// Identifies a broker within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BrokerId(pub u32);

impl std::fmt::Display for BrokerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "broker-{}", self.0)
    }
}

/// A shareable handle to one partition replica's log.
///
/// Writers take the mutex via [`LogHandle::lock`]; readers call
/// [`LogHandle::snapshot`] and never contend with appends (DESIGN.md
/// §11). The snapshot slot is captured from the log at construction,
/// so both paths observe the same publications.
pub type SharedLog = Arc<LogHandle>;

/// Mutex-guarded partition log plus its lock-free snapshot slot.
#[derive(Debug)]
pub struct LogHandle {
    log: Mutex<PartitionLog>,
    snap: SnapshotSlot,
}

impl LogHandle {
    /// Wrap a log for shared use.
    pub fn new(log: PartitionLog) -> Self {
        let snap = log.snapshot_slot();
        LogHandle { log: Mutex::new(log), snap }
    }

    /// Exclusive access for mutations (append, retention, recovery).
    pub fn lock(&self) -> MutexGuard<'_, PartitionLog> {
        self.log.lock()
    }

    /// The latest published read view; never blocks on the log mutex.
    pub fn snapshot(&self) -> Arc<LogSnapshot> {
        self.snap.lock().clone()
    }
}

/// A broker node. Brokers are passive: clients and the cluster routing
/// layer drive them, and per-partition mutexes make partitions the unit
/// of parallelism (Kafka's design point).
pub struct Broker {
    id: BrokerId,
    alive: AtomicBool,
    /// Incarnation counter, bumped on every kill. Replication jobs
    /// capture it at submission; the executor refuses jobs from an
    /// earlier incarnation, so a batch queued before a crash can never
    /// replay onto the resynced log of the restarted broker.
    epoch: AtomicU64,
    /// Permanently removed from the cluster (decommissioned). Retired
    /// brokers never host replicas again, are excluded from health
    /// rollups, and keep their slot in the broker table so ids stay
    /// stable indices.
    retired: AtomicBool,
    partitions: RwLock<HashMap<(TopicName, PartitionId), SharedLog>>,
    store: Option<Arc<StoreContext>>,
}

impl Broker {
    /// A live broker with no partitions (volatile logs).
    pub fn new(id: BrokerId) -> Self {
        Broker {
            id,
            alive: AtomicBool::new(true),
            epoch: AtomicU64::new(0),
            retired: AtomicBool::new(false),
            partitions: RwLock::new(HashMap::new()),
            store: None,
        }
    }

    /// A live broker whose partitions persist under `ctx.root`.
    pub fn with_store(id: BrokerId, ctx: Arc<StoreContext>) -> Self {
        Broker {
            id,
            alive: AtomicBool::new(true),
            epoch: AtomicU64::new(0),
            retired: AtomicBool::new(false),
            partitions: RwLock::new(HashMap::new()),
            store: Some(ctx),
        }
    }

    /// The durable-store context, if this broker persists its logs.
    pub fn store_context(&self) -> Option<&Arc<StoreContext>> {
        self.store.as_ref()
    }

    /// This broker's id.
    pub fn id(&self) -> BrokerId {
        self.id
    }

    /// Whether the broker is up.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Current incarnation (bumped on every kill; see the field doc).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Crash the broker (its logs survive, like disk state). Bumps the
    /// incarnation epoch so in-flight replication jobs from before the
    /// crash are fenced off (see [`Broker::epoch`]).
    pub fn kill(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.alive.store(false, Ordering::Release);
    }

    /// Bring the broker back up. The cluster re-syncs its replicas.
    /// Retired brokers stay down: decommissioning is permanent.
    pub fn restart(&self) {
        if self.is_retired() {
            return;
        }
        self.alive.store(true, Ordering::Release);
    }

    /// Permanently remove the broker from the cluster. Implies a kill
    /// (epoch bump fences in-flight replication jobs) and blocks any
    /// future restart.
    pub fn retire(&self) {
        self.retired.store(true, Ordering::Release);
        self.kill();
    }

    /// Whether the broker has been decommissioned.
    pub fn is_retired(&self) -> bool {
        self.retired.load(Ordering::Acquire)
    }

    /// Host a replica of a partition. Volatile brokers start it empty;
    /// durable brokers open the partition's directory and recover
    /// whatever a previous incarnation persisted. Re-hosting an
    /// already-hosted partition keeps the existing log. Returns the
    /// recovery stats (zeroed for volatile or already-hosted replicas).
    pub fn host_partition(
        &self,
        topic: &str,
        partition: PartitionId,
        segment_bytes: usize,
    ) -> OctoResult<RecoveryStats> {
        self.host_partition_with(
            topic,
            partition,
            &StorageSpec { segment_bytes, ..StorageSpec::default() },
        )
    }

    /// [`Broker::host_partition`] with the full storage spec: segment
    /// roll size plus the sparse-index interval, compression codec, and
    /// cold-tier threshold a topic was configured with.
    pub fn host_partition_with(
        &self,
        topic: &str,
        partition: PartitionId,
        spec: &StorageSpec,
    ) -> OctoResult<RecoveryStats> {
        let key = (topic.to_string(), partition);
        let mut partitions = self.partitions.write();
        if partitions.contains_key(&key) {
            return Ok(RecoveryStats::default());
        }
        let (log, stats) = match &self.store {
            Some(ctx) => PartitionLog::open_durable_with(
                spec.segment_bytes,
                ctx.partition_dir(self.id, topic, partition),
                ctx.policy,
                ctx.metrics.clone(),
                StoreOptions {
                    index_interval_bytes: spec.index_interval_bytes,
                    compression: spec.compression,
                    cold: ctx.cold.clone(),
                    cold_after_bytes: spec.cold_after_bytes,
                },
            )?,
            None => {
                (PartitionLog::with_segment_bytes(spec.segment_bytes), RecoveryStats::default())
            }
        };
        partitions.insert(key, Arc::new(LogHandle::new(log)));
        Ok(stats)
    }

    /// Drop a replica; a durable broker also deletes its files (topic
    /// deletion is permanent in Kafka too).
    pub fn drop_partition(&self, topic: &str, partition: PartitionId) {
        self.partitions.write().remove(&(topic.to_string(), partition));
        if let Some(ctx) = &self.store {
            let _ = std::fs::remove_dir_all(ctx.partition_dir(self.id, topic, partition));
        }
    }

    /// The replica log for a partition, if hosted here.
    pub fn log(&self, topic: &str, partition: PartitionId) -> Option<SharedLog> {
        self.partitions.read().get(&(topic.to_string(), partition)).cloned()
    }

    /// Number of replicas hosted.
    pub fn partition_count(&self) -> usize {
        self.partitions.read().len()
    }

    /// All (topic, partition) pairs hosted.
    pub fn hosted_partitions(&self) -> Vec<(TopicName, PartitionId)> {
        self.partitions.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordBatch;
    use octopus_types::{Event, Timestamp};

    #[test]
    fn lifecycle_and_hosting() {
        let b = Broker::new(BrokerId(3));
        assert_eq!(b.id(), BrokerId(3));
        assert!(b.is_alive());
        assert_eq!(b.to_string_id(), "broker-3");

        b.host_partition("t", 0, 1024).unwrap();
        b.host_partition("t", 1, 1024).unwrap();
        assert_eq!(b.partition_count(), 2);
        assert!(b.log("t", 0).is_some());
        assert!(b.log("t", 9).is_none());
        assert!(b.log("other", 0).is_none());

        b.kill();
        assert!(!b.is_alive());
        b.restart();
        assert!(b.is_alive());

        b.drop_partition("t", 1);
        assert_eq!(b.partition_count(), 1);
    }

    #[test]
    fn retirement_is_permanent() {
        let b = Broker::new(BrokerId(1));
        let epoch_before = b.epoch();
        b.retire();
        assert!(b.is_retired());
        assert!(!b.is_alive());
        assert!(b.epoch() > epoch_before, "retire must fence in-flight replication");
        b.restart();
        assert!(!b.is_alive(), "retired brokers never come back");
    }

    #[test]
    fn logs_survive_kill() {
        let b = Broker::new(BrokerId(0));
        b.host_partition("t", 0, 1024).unwrap();
        let log = b.log("t", 0).unwrap();
        log.lock()
            .append(&RecordBatch::new(vec![Event::from_bytes(&b"x"[..])]), Timestamp::now())
            .unwrap();
        b.kill();
        b.restart();
        assert_eq!(b.log("t", 0).unwrap().lock().len(), 1);
    }

    impl Broker {
        fn to_string_id(&self) -> String {
            self.id.to_string()
        }
    }
}
