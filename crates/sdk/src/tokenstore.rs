//! A small durable key-value store for tokens and secrets.
//!
//! The Python SDK keeps "tokens and MSK secrets ... in a local SQLite
//! database" (§IV-E). Here we implement a crash-safe file store: an
//! append-only JSON-lines log, replayed on open and compacted via an
//! atomic temp-file + rename when it grows. An in-memory mode backs
//! tests and ephemeral clients.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use octopus_types::{OctoError, OctoResult};

#[derive(Debug, Serialize, Deserialize)]
enum LogEntry {
    Put { key: String, value: String },
    Delete { key: String },
}

enum Backing {
    Memory,
    File { path: PathBuf, appender: File, entries_since_compact: usize },
}

/// Durable (or in-memory) token/secret storage.
pub struct TokenStore {
    map: Mutex<BTreeMap<String, String>>,
    backing: Mutex<Backing>,
}

/// Compact once the log holds this many entries beyond the live set.
const COMPACT_THRESHOLD: usize = 1024;

impl TokenStore {
    /// An in-memory store (nothing persists).
    pub fn in_memory() -> Self {
        TokenStore { map: Mutex::new(BTreeMap::new()), backing: Mutex::new(Backing::Memory) }
    }

    /// Open (or create) a file-backed store at `path`, replaying any
    /// existing log. Partial trailing lines (torn writes) are ignored.
    pub fn open(path: impl AsRef<Path>) -> OctoResult<Self> {
        let path = path.as_ref().to_path_buf();
        let mut map = BTreeMap::new();
        if path.exists() {
            let file = File::open(&path)
                .map_err(|e| OctoError::Internal(format!("open {path:?}: {e}")))?;
            for line in BufReader::new(file).lines() {
                let Ok(line) = line else { break };
                match serde_json::from_str::<LogEntry>(&line) {
                    Ok(LogEntry::Put { key, value }) => {
                        map.insert(key, value);
                    }
                    Ok(LogEntry::Delete { key }) => {
                        map.remove(&key);
                    }
                    Err(_) => break, // torn tail
                }
            }
        }
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)
                    .map_err(|e| OctoError::Internal(format!("mkdir {parent:?}: {e}")))?;
            }
        }
        let appender = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| OctoError::Internal(format!("append {path:?}: {e}")))?;
        Ok(TokenStore {
            map: Mutex::new(map),
            backing: Mutex::new(Backing::File { path, appender, entries_since_compact: 0 }),
        })
    }

    fn append(&self, entry: &LogEntry) -> OctoResult<()> {
        let mut backing = self.backing.lock();
        if let Backing::File { appender, entries_since_compact, .. } = &mut *backing {
            let line = serde_json::to_string(entry)?;
            appender
                .write_all(line.as_bytes())
                .and_then(|_| appender.write_all(b"\n"))
                .and_then(|_| appender.flush())
                .map_err(|e| OctoError::Internal(format!("write token store: {e}")))?;
            *entries_since_compact += 1;
            if *entries_since_compact >= COMPACT_THRESHOLD {
                let map = self.map.lock().clone();
                Self::compact_locked(&mut backing, &map)?;
            }
        }
        Ok(())
    }

    fn compact_locked(backing: &mut Backing, map: &BTreeMap<String, String>) -> OctoResult<()> {
        let Backing::File { path, appender, entries_since_compact } = backing else {
            return Ok(());
        };
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)
                .map_err(|e| OctoError::Internal(format!("create {tmp:?}: {e}")))?;
            for (key, value) in map {
                let line = serde_json::to_string(&LogEntry::Put {
                    key: key.clone(),
                    value: value.clone(),
                })?;
                f.write_all(line.as_bytes())
                    .and_then(|_| f.write_all(b"\n"))
                    .map_err(|e| OctoError::Internal(format!("compact write: {e}")))?;
            }
            f.sync_all().map_err(|e| OctoError::Internal(format!("sync: {e}")))?;
        }
        fs::rename(&tmp, &*path).map_err(|e| OctoError::Internal(format!("rename: {e}")))?;
        *appender = OpenOptions::new()
            .append(true)
            .open(&*path)
            .map_err(|e| OctoError::Internal(format!("reopen: {e}")))?;
        *entries_since_compact = 0;
        Ok(())
    }

    /// Store a value.
    pub fn put(&self, key: &str, value: &str) -> OctoResult<()> {
        self.map.lock().insert(key.to_string(), value.to_string());
        self.append(&LogEntry::Put { key: key.to_string(), value: value.to_string() })
    }

    /// Fetch a value.
    pub fn get(&self, key: &str) -> Option<String> {
        self.map.lock().get(key).cloned()
    }

    /// Remove a value.
    pub fn delete(&self, key: &str) -> OctoResult<()> {
        self.map.lock().remove(key);
        self.append(&LogEntry::Delete { key: key.to_string() })
    }

    /// All keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        self.map.lock().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("octo-tokenstore-{}-{name}.jsonl", std::process::id()));
        let _ = fs::remove_file(&p);
        p
    }

    #[test]
    fn memory_store_crud() {
        let s = TokenStore::in_memory();
        assert!(s.get("a").is_none());
        s.put("a", "1").unwrap();
        s.put("b", "2").unwrap();
        assert_eq!(s.get("a").as_deref(), Some("1"));
        assert_eq!(s.keys(), vec!["a", "b"]);
        s.delete("a").unwrap();
        assert!(s.get("a").is_none());
    }

    #[test]
    fn file_store_persists_across_reopen() {
        let p = tmp_path("persist");
        {
            let s = TokenStore::open(&p).unwrap();
            s.put("access_token", "at_123").unwrap();
            s.put("refresh_token", "rt_456").unwrap();
            s.put("access_token", "at_789").unwrap(); // overwrite
            s.delete("refresh_token").unwrap();
        }
        let s = TokenStore::open(&p).unwrap();
        assert_eq!(s.get("access_token").as_deref(), Some("at_789"));
        assert!(s.get("refresh_token").is_none());
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn torn_tail_is_ignored() {
        let p = tmp_path("torn");
        {
            let s = TokenStore::open(&p).unwrap();
            s.put("good", "1").unwrap();
        }
        // simulate a crash mid-write
        let mut f = OpenOptions::new().append(true).open(&p).unwrap();
        f.write_all(b"{\"Put\":{\"key\":\"bad\"").unwrap();
        drop(f);
        let s = TokenStore::open(&p).unwrap();
        assert_eq!(s.get("good").as_deref(), Some("1"));
        assert!(s.get("bad").is_none());
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn compaction_shrinks_the_log() {
        let p = tmp_path("compact");
        {
            let s = TokenStore::open(&p).unwrap();
            for i in 0..(COMPACT_THRESHOLD + 10) {
                s.put("hot-key", &format!("v{i}")).unwrap();
            }
        }
        let size = fs::metadata(&p).unwrap().len();
        assert!(size < 10_000, "log should have compacted, size {size}");
        let s = TokenStore::open(&p).unwrap();
        assert_eq!(s.get("hot-key").as_deref(), Some(&*format!("v{}", COMPACT_THRESHOLD + 9)));
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn concurrent_writers_do_not_corrupt() {
        let p = tmp_path("concurrent");
        let s = std::sync::Arc::new(TokenStore::open(&p).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    s.put(&format!("k{t}-{i}"), "v").unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.keys().len(), 200);
        drop(s);
        let s = TokenStore::open(&p).unwrap();
        assert_eq!(s.keys().len(), 200);
        let _ = fs::remove_file(&p);
    }
}
