//! The event model.
//!
//! An [`Event`] is what producers publish: an optional partitioning key,
//! a binary payload (often JSON — scientific events carry flexible
//! schemata, §III-B "Diversity of event schemata"), headers, and a client
//! timestamp. A [`DeliveredEvent`] is what consumers receive: the event
//! plus its fabric-assigned coordinates (topic, partition, offset) and
//! broker append time.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::{Offset, PartitionId, Timestamp, TopicName};

/// A key/value header attached to an event (provenance, content type,
/// experiment ids, ...).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Header {
    /// Header name.
    pub key: String,
    /// Header value (UTF-8 by convention, but not required).
    pub value: Vec<u8>,
}

/// An event as published by a producer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Optional partitioning key. Events with the same key land in the
    /// same partition and are therefore strictly ordered relative to one
    /// another.
    pub key: Option<Bytes>,
    /// The payload. Octopus imposes no schema; triggers that filter by
    /// content expect JSON.
    pub payload: Bytes,
    /// Headers (provenance, schema hints, trace ids).
    pub headers: Vec<Header>,
    /// Producer-side creation time.
    pub timestamp: Timestamp,
}

impl Event {
    /// Event with a raw binary payload and no key.
    pub fn from_bytes(payload: impl Into<Bytes>) -> Self {
        Event { key: None, payload: payload.into(), headers: Vec::new(), timestamp: Timestamp::now() }
    }

    /// Event whose payload is the JSON serialization of `value`.
    pub fn from_json<T: Serialize>(value: &T) -> Result<Self, crate::OctoError> {
        let payload = serde_json::to_vec(value)?;
        Ok(Event::from_bytes(payload))
    }

    /// Parse the payload as JSON.
    pub fn json(&self) -> Result<serde_json::Value, crate::OctoError> {
        Ok(serde_json::from_slice(&self.payload)?)
    }

    /// Deserialize the payload into `T`.
    pub fn parse<T: Deserialize>(&self) -> Result<T, crate::OctoError> {
        Ok(serde_json::from_slice(&self.payload)?)
    }

    /// Total wire size: key + payload + headers. Used for batching
    /// limits, buffer accounting, and the DES byte-cost model.
    pub fn wire_size(&self) -> usize {
        let key = self.key.as_ref().map(|k| k.len()).unwrap_or(0);
        let headers: usize =
            self.headers.iter().map(|h| h.key.len() + h.value.len()).sum();
        key + self.payload.len() + headers
    }

    /// Start building an event fluently.
    pub fn builder() -> EventBuilder {
        EventBuilder::default()
    }
}

/// Fluent builder for [`Event`].
///
/// ```
/// use octopus_types::Event;
/// let e = Event::builder()
///     .key("experiment-7")
///     .json(&serde_json::json!({"event_type": "created", "path": "/data/run7.h5"}))
///     .unwrap()
///     .header("source", b"fsmon")
///     .build();
/// assert_eq!(e.headers.len(), 1);
/// assert!(e.json().unwrap()["event_type"] == "created");
/// ```
#[derive(Debug, Default, Clone)]
pub struct EventBuilder {
    key: Option<Bytes>,
    payload: Bytes,
    headers: Vec<Header>,
    timestamp: Option<Timestamp>,
}

impl EventBuilder {
    /// Set the partitioning key.
    pub fn key(mut self, key: impl Into<String>) -> Self {
        self.key = Some(Bytes::from(key.into().into_bytes()));
        self
    }

    /// Set a raw binary payload.
    pub fn payload(mut self, payload: impl Into<Bytes>) -> Self {
        self.payload = payload.into();
        self
    }

    /// Set the payload to the JSON serialization of `value`.
    pub fn json<T: Serialize>(mut self, value: &T) -> Result<Self, crate::OctoError> {
        self.payload = Bytes::from(serde_json::to_vec(value)?);
        Ok(self)
    }

    /// Append a header.
    pub fn header(mut self, key: impl Into<String>, value: impl AsRef<[u8]>) -> Self {
        self.headers.push(Header { key: key.into(), value: value.as_ref().to_vec() });
        self
    }

    /// Override the producer timestamp (simulations use virtual time).
    pub fn timestamp(mut self, t: Timestamp) -> Self {
        self.timestamp = Some(t);
        self
    }

    /// Finish building.
    pub fn build(self) -> Event {
        Event {
            key: self.key,
            payload: self.payload,
            headers: self.headers,
            timestamp: self.timestamp.unwrap_or_else(Timestamp::now),
        }
    }
}

/// An event as delivered to a consumer, with its fabric coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveredEvent {
    /// Topic the event was read from.
    pub topic: TopicName,
    /// Partition within the topic.
    pub partition: PartitionId,
    /// Offset within the partition.
    pub offset: Offset,
    /// Broker append time (log-append timestamp).
    pub append_time: Timestamp,
    /// The event itself.
    pub event: Event,
}

impl DeliveredEvent {
    /// Parse the payload as JSON (convenience passthrough).
    pub fn json(&self) -> Result<serde_json::Value, crate::OctoError> {
        self.event.json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_accounts_for_all_parts() {
        let e = Event::builder()
            .key("k") // 1 byte
            .payload(vec![0u8; 100]) // 100 bytes
            .header("hk", b"hv") // 2 + 2 bytes
            .build();
        assert_eq!(e.wire_size(), 1 + 100 + 4);
    }

    #[test]
    fn json_roundtrip() {
        #[derive(Serialize, Deserialize, PartialEq, Debug)]
        struct Reading {
            instrument: String,
            value: f64,
        }
        let r = Reading { instrument: "xrd-beamline".into(), value: 1.25 };
        let e = Event::from_json(&r).unwrap();
        assert_eq!(e.parse::<Reading>().unwrap(), r);
    }

    #[test]
    fn json_parse_failure_is_serde_error() {
        let e = Event::from_bytes(&b"\xff\xfe not json"[..]);
        assert!(matches!(e.json(), Err(crate::OctoError::Serde(_))));
    }

    #[test]
    fn builder_defaults() {
        let e = Event::builder().build();
        assert!(e.key.is_none());
        assert!(e.payload.is_empty());
        assert!(e.headers.is_empty());
    }

    #[test]
    fn delivered_event_serde_roundtrip() {
        let d = DeliveredEvent {
            topic: "sdl.actions".into(),
            partition: 3,
            offset: 42,
            append_time: Timestamp::from_millis(5),
            event: Event::from_bytes(&b"x"[..]),
        };
        let s = serde_json::to_string(&d).unwrap();
        let back: DeliveredEvent = serde_json::from_str(&s).unwrap();
        assert_eq!(back, d);
    }
}
