//! Property-based tests for the auth substrate: hash/MAC invariants and
//! ACL algebra.

use proptest::prelude::*;

use octopus_auth::sha::{ct_eq, hmac_sha256, sha256, Sha256};
use octopus_auth::{AclStore, IamService, Permission};
use octopus_types::{Timestamp, Uid};

proptest! {
    /// Incremental hashing equals one-shot hashing for any chunking.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2000),
        chunk in 1usize..257,
    ) {
        let mut h = Sha256::new();
        for c in data.chunks(chunk) {
            h.update(c);
        }
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Distinct single-byte flips change the digest (second-preimage
    /// smoke test) and ct_eq agrees with ==.
    #[test]
    fn sha256_sensitivity(data in proptest::collection::vec(any::<u8>(), 1..500), idx in 0usize..500) {
        let idx = idx % data.len();
        let mut flipped = data.clone();
        flipped[idx] ^= 0x01;
        let a = sha256(&data);
        let b = sha256(&flipped);
        prop_assert_ne!(a, b);
        prop_assert!(ct_eq(&a, &a));
        prop_assert!(!ct_eq(&a, &b));
    }

    /// HMAC differs under different keys and different messages.
    #[test]
    fn hmac_key_and_message_sensitivity(
        key in proptest::collection::vec(any::<u8>(), 1..100),
        msg in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mac = hmac_sha256(&key, &msg);
        let mut key2 = key.clone();
        key2[0] ^= 1;
        prop_assert_ne!(mac, hmac_sha256(&key2, &msg));
        let mut msg2 = msg.clone();
        msg2.push(0);
        prop_assert_ne!(mac, hmac_sha256(&key, &msg2));
    }

    /// IAM signatures verify exactly when nothing was tampered with.
    #[test]
    fn iam_signature_soundness(
        op in "[a-z]{1,10}",
        resource in "[a-z./-]{1,20}",
        tamper_op in "[a-z]{1,10}",
    ) {
        let iam = IamService::new();
        let principal = Uid(42);
        let key = iam.create_key(principal);
        let now = Timestamp::now();
        let req = IamService::sign(&key, &op, &resource, now);
        prop_assert_eq!(iam.verify(&req).unwrap(), principal);
        if tamper_op != op {
            let mut bad = req.clone();
            bad.operation = tamper_op;
            prop_assert!(iam.verify(&bad).is_err());
        }
    }

    /// ACL algebra: grant then check succeeds; revoke then check fails;
    /// grants never leak to other principals or permissions.
    #[test]
    fn acl_grant_revoke_algebra(
        grants in proptest::collection::vec((1u64..10, 0usize..3), 1..30),
    ) {
        let perms = [Permission::Read, Permission::Write, Permission::Describe];
        let owner = Uid(0);
        let acl = AclStore::new();
        acl.register_topic("t", owner).unwrap();
        let mut model: std::collections::HashSet<(u64, usize)> = Default::default();
        for (user, p) in &grants {
            acl.grant("t", owner, Uid(*user as u128), &[perms[*p]]).unwrap();
            model.insert((*user, *p));
        }
        // checks agree with the model
        for user in 1u64..10 {
            for (pi, perm) in perms.iter().enumerate() {
                let expect = model.contains(&(user, pi));
                prop_assert_eq!(acl.check("t", Uid(user as u128), *perm).is_ok(), expect);
            }
        }
        // revoke everything and verify the slate is clean
        for (user, p) in &grants {
            acl.revoke("t", owner, Uid(*user as u128), &[perms[*p]]).unwrap();
        }
        for user in 1u64..10 {
            for perm in perms {
                prop_assert!(acl.check("t", Uid(user as u128), perm).is_err());
            }
        }
        // the owner is untouched throughout
        for perm in perms {
            prop_assert!(acl.check("t", owner, perm).is_ok());
        }
    }
}
