//! Unit + property tests for the pattern language, including the
//! documented examples from the EventBridge content-filtering guide the
//! paper cites ([30]) and Listing 1 from the paper itself.

use proptest::prelude::*;
use serde_json::{json, Value};

use crate::{Pattern, PatternError};

fn p(doc: Value) -> Pattern {
    Pattern::parse(&doc).unwrap()
}

fn perr(doc: Value) -> PatternError {
    Pattern::parse(&doc).unwrap_err()
}

#[test]
fn listing_1_from_paper() {
    // Fig/Listing 1: invoke the Trigger only when event_type is "created".
    let pat = p(json!({"event_type": ["created"]}));
    assert!(pat.matches(&json!({"event_type": "created", "path": "/pfs/exp/run.h5"})));
    assert!(!pat.matches(&json!({"event_type": "modified"})));
    assert!(!pat.matches(&json!({"other": 1})));
}

#[test]
fn exact_scalars_of_all_types() {
    assert!(p(json!({"a": [1]})).matches(&json!({"a": 1})));
    assert!(p(json!({"a": [1]})).matches(&json!({"a": 1.0}))); // numeric coercion
    assert!(p(json!({"a": [true]})).matches(&json!({"a": true})));
    assert!(p(json!({"a": [null]})).matches(&json!({"a": null})));
    assert!(!p(json!({"a": ["1"]})).matches(&json!({"a": 1}))); // no cross-type coercion
}

#[test]
fn leaf_array_is_or() {
    let pat = p(json!({"event_type": ["created", "modified"]}));
    assert!(pat.matches(&json!({"event_type": "created"})));
    assert!(pat.matches(&json!({"event_type": "modified"})));
    assert!(!pat.matches(&json!({"event_type": "deleted"})));
}

#[test]
fn fields_are_and() {
    let pat = p(json!({"a": [1], "b": [2]}));
    assert!(pat.matches(&json!({"a": 1, "b": 2})));
    assert!(!pat.matches(&json!({"a": 1})));
    assert!(!pat.matches(&json!({"a": 1, "b": 3})));
}

#[test]
fn nested_objects_recurse() {
    let pat = p(json!({"detail": {"state": ["running"], "node": {"rack": [7]}}}));
    assert!(pat.matches(&json!({"detail": {"state": "running", "node": {"rack": 7}}})));
    assert!(!pat.matches(&json!({"detail": {"state": "running", "node": {"rack": 8}}})));
    assert!(!pat.matches(&json!({"detail": {"state": "running"}})));
    assert!(!pat.matches(&json!({"detail": "running"})));
}

#[test]
fn event_array_fields_match_any_element() {
    let pat = p(json!({"tags": ["gpu"]}));
    assert!(pat.matches(&json!({"tags": ["cpu", "gpu", "hbm"]})));
    assert!(!pat.matches(&json!({"tags": ["cpu"]})));
    assert!(!pat.matches(&json!({"tags": []})));
}

#[test]
fn prefix_suffix_wildcard() {
    assert!(p(json!({"path": [{"prefix": "/pfs/"}]})).matches(&json!({"path": "/pfs/run1"})));
    assert!(!p(json!({"path": [{"prefix": "/pfs/"}]})).matches(&json!({"path": "/scratch/x"})));
    assert!(p(json!({"f": [{"suffix": ".h5"}]})).matches(&json!({"f": "a.h5"})));
    assert!(!p(json!({"f": [{"suffix": ".h5"}]})).matches(&json!({"f": "a.csv"})));
    let w = p(json!({"f": [{"wildcard": "run-*.csv"}]}));
    assert!(w.matches(&json!({"f": "run-2024-07.csv"})));
    assert!(!w.matches(&json!({"f": "run-2024-07.tsv"})));
    // string matchers never match non-strings
    assert!(!w.matches(&json!({"f": 7})));
}

#[test]
fn equals_ignore_case() {
    let pat = p(json!({"lab": [{"equals-ignore-case": "ANL"}]}));
    assert!(pat.matches(&json!({"lab": "anl"})));
    assert!(pat.matches(&json!({"lab": "AnL"})));
    assert!(!pat.matches(&json!({"lab": "ORNL"})));
}

#[test]
fn anything_but_scalar_and_list() {
    let pat = p(json!({"event_type": [{"anything-but": "deleted"}]}));
    assert!(pat.matches(&json!({"event_type": "created"})));
    assert!(!pat.matches(&json!({"event_type": "deleted"})));
    // absent field does NOT match anything-but
    assert!(!pat.matches(&json!({"x": 1})));

    let pat = p(json!({"n": [{"anything-but": [1, 2]}]}));
    assert!(pat.matches(&json!({"n": 3})));
    assert!(!pat.matches(&json!({"n": 1})));
    assert!(!pat.matches(&json!({"n": 2.0}))); // numeric coercion applies
}

#[test]
fn anything_but_prefix() {
    let pat = p(json!({"path": [{"anything-but": {"prefix": "/tmp"}}]}));
    assert!(pat.matches(&json!({"path": "/pfs/x"})));
    assert!(!pat.matches(&json!({"path": "/tmp/x"})));
    assert!(!pat.matches(&json!({"path": 5}))); // non-string never matches
}

#[test]
fn numeric_ranges() {
    let pat = p(json!({"size": [{"numeric": [">", 0, "<=", 1048576]}]}));
    assert!(pat.matches(&json!({"size": 1})));
    assert!(pat.matches(&json!({"size": 1048576})));
    assert!(!pat.matches(&json!({"size": 0})));
    assert!(!pat.matches(&json!({"size": 1048577})));
    assert!(!pat.matches(&json!({"size": "big"})));
    let ne = p(json!({"v": [{"numeric": ["!=", 3]}]}));
    assert!(ne.matches(&json!({"v": 2})));
    assert!(!ne.matches(&json!({"v": 3.0})));
}

#[test]
fn exists_true_and_false() {
    let has = p(json!({"error": [{"exists": true}]}));
    assert!(has.matches(&json!({"error": "boom"})));
    assert!(has.matches(&json!({"error": null}))); // present-but-null exists
    assert!(!has.matches(&json!({"ok": 1})));

    let not = p(json!({"error": [{"exists": false}]}));
    assert!(not.matches(&json!({"ok": 1})));
    assert!(!not.matches(&json!({"error": "boom"})));
}

#[test]
fn exists_false_inside_missing_parent() {
    // If `detail` itself is absent, `detail.error exists:false` holds.
    let pat = p(json!({"detail": {"error": [{"exists": false}]}}));
    assert!(pat.matches(&json!({"other": 1})));
    assert!(pat.matches(&json!({"detail": {}})));
    assert!(!pat.matches(&json!({"detail": {"error": 1}})));
}

#[test]
fn cidr_matching() {
    let pat = p(json!({"source_ip": [{"cidr": "10.0.0.0/24"}]}));
    assert!(pat.matches(&json!({"source_ip": "10.0.0.55"})));
    assert!(!pat.matches(&json!({"source_ip": "10.0.1.55"})));
    assert!(!pat.matches(&json!({"source_ip": "garbage"})));
}

#[test]
fn or_combinator() {
    let pat = p(json!({"$or": [
        {"event_type": ["created"]},
        {"size": [{"numeric": [">", 1000000]}]}
    ]}));
    assert!(pat.matches(&json!({"event_type": "created"})));
    assert!(pat.matches(&json!({"event_type": "modified", "size": 2000000})));
    assert!(!pat.matches(&json!({"event_type": "modified", "size": 10})));
}

#[test]
fn matches_str_and_bytes() {
    let pat = p(json!({"a": [1]}));
    assert!(pat.matches_str(r#"{"a": 1}"#));
    assert!(!pat.matches_str("not json"));
    assert!(pat.matches_bytes(br#"{"a": 1}"#));
    assert!(!pat.matches_bytes(b"\xff\xff"));
}

#[test]
fn validation_errors_name_the_path() {
    assert!(perr(json!({})).message.contains("at least one"));
    assert!(perr(json!(["a"])).message.contains("object"));
    assert_eq!(perr(json!({"a": "scalar"})).path, "a");
    assert_eq!(perr(json!({"a": []})).path, "a");
    assert_eq!(perr(json!({"a": {"b": []}})).path, "a.b");
    assert_eq!(perr(json!({"a": [{"bogus-kw": 1}]})).path, "a[0]");
    assert_eq!(perr(json!({"a": [[1]]})).path, "a[0]");
    assert!(perr(json!({"a": [{"numeric": [">"]}]})).message.contains("even-length"));
    assert!(perr(json!({"a": [{"numeric": ["~", 1]}]})).message.contains("unknown numeric"));
    assert!(perr(json!({"a": [{"cidr": "10.0.0.0/99"}]})).message.contains("CIDR"));
    assert!(perr(json!({"a": [{"exists": "yes"}]})).message.contains("boolean"));
    assert!(perr(json!({"$or": [{"a": [1]}]})).message.contains(">= 2"));
    assert!(perr(json!({"$or": [{"a": [1]}, {"b": [2]}], "c": [3]}))
        .message
        .contains("sibling"));
    assert!(perr(json!({"a": [{"prefix": "x", "suffix": "y"}]}))
        .message
        .contains("exactly one"));
    assert!(perr(json!({"a": [{"anything-but": []}]})).message.contains("not be empty"));
    assert!(PatternError { path: String::new(), message: "m".into() }.to_string().contains("m"));
    assert!(Pattern::parse_str("{oops").is_err());
}

#[test]
fn source_roundtrip() {
    let doc = json!({"event_type": ["created"], "size": [{"numeric": [">", 0]}]});
    let pat = Pattern::parse(&doc).unwrap();
    assert_eq!(pat.source(), &doc);
    // reparse of source yields an equal pattern
    assert_eq!(Pattern::parse(pat.source()).unwrap().root(), pat.root());
}

// ---------- property tests ----------

/// Strategy for JSON scalars.
fn scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::from),
        any::<i32>().prop_map(Value::from),
        "[a-z]{0,8}".prop_map(Value::from),
        Just(Value::Null),
    ]
}

/// Strategy for flat JSON objects with scalar fields.
fn flat_object() -> impl Strategy<Value = Value> {
    proptest::collection::btree_map("[a-c]", scalar(), 1..4).prop_map(|m| {
        Value::Object(m.into_iter().collect())
    })
}

proptest! {
    /// A pattern demanding exact equality on every field of an event
    /// always matches that event.
    #[test]
    fn exact_pattern_matches_its_source(event in flat_object()) {
        let obj = event.as_object().unwrap();
        let pat_doc: Value = Value::Object(
            obj.iter().map(|(k, v)| (k.clone(), json!([v]))).collect()
        );
        let pat = Pattern::parse(&pat_doc).unwrap();
        prop_assert!(pat.matches(&event));
    }

    /// `anything-but` on a scalar is the complement of exact matching,
    /// for present scalar fields.
    #[test]
    fn anything_but_complements_exact(v in scalar(), w in scalar()) {
        prop_assume!(!matches!(v, Value::Null) && !matches!(w, Value::Null));
        let exact = Pattern::parse(&json!({"x": [v]})).unwrap();
        let but = Pattern::parse(&json!({"x": [{"anything-but": v}]})).unwrap();
        let event = json!({"x": w});
        prop_assert_eq!(exact.matches(&event), !but.matches(&event));
    }

    /// `exists: true` and `exists: false` partition all events.
    #[test]
    fn exists_partitions(event in flat_object()) {
        let has = Pattern::parse(&json!({"a": [{"exists": true}]})).unwrap();
        let not = Pattern::parse(&json!({"a": [{"exists": false}]})).unwrap();
        prop_assert_ne!(has.matches(&event), not.matches(&event));
    }

    /// Adding an alternative to a leaf array never removes matches
    /// (monotonicity of OR).
    #[test]
    fn leaf_or_is_monotone(event in flat_object(), v in scalar(), extra in scalar()) {
        let narrow = Pattern::parse(&json!({"a": [v]})).unwrap();
        let wide = Pattern::parse(&json!({"a": [v, extra]})).unwrap();
        if narrow.matches(&event) {
            prop_assert!(wide.matches(&event));
        }
    }

    /// Wildcard `*` matches every string; a literal pattern (no
    /// metacharacters) matches exactly itself.
    #[test]
    fn wildcard_star_and_literal(s in "[a-zA-Z0-9/._-]{0,20}") {
        prop_assert!(crate::wildcard_match("*", &s));
        prop_assert!(crate::wildcard_match(&s, &s));
        let trailing = format!("{s}*");
        let leading = format!("*{s}");
        prop_assert!(crate::wildcard_match(&trailing, &s));
        prop_assert!(crate::wildcard_match(&leading, &s));
    }

    /// Numeric `=` agrees with exact matching for integers.
    #[test]
    fn numeric_eq_agrees_with_exact(x in -1000i64..1000, y in -1000i64..1000) {
        let exact = Pattern::parse(&json!({"n": [x]})).unwrap();
        let num = Pattern::parse(&json!({"n": [{"numeric": ["=", x]}]})).unwrap();
        let ev = json!({"n": y});
        prop_assert_eq!(exact.matches(&ev), num.matches(&ev));
    }

    /// Parsing never panics on arbitrary flat documents.
    #[test]
    fn parse_is_total(doc in flat_object()) {
        let _ = Pattern::parse(&doc);
    }
}
