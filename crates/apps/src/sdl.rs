//! Self-driving laboratory monitoring (§VI-A).
//!
//! "The SDL uses Octopus to create a global log of distributed actions
//! spanning robotic devices, HPC resources, and data resources",
//! enabling real-time insight, provenance trace-back, and dashboards.
//!
//! [`LabRunner`] simulates a campaign: each experiment walks the stages
//! design → synthesize → characterize → analyze, each stage performed by
//! an instrument/robot that emits an event (~0.5 KB, Table I) into the
//! `sdl.actions` topic. [`ProvenanceLog`] consumes the topic and can
//! reconstruct any experiment's full lineage and keeps
//! the per-stage live counts administrators watch.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use octopus_broker::Cluster;
use octopus_sdk::{Consumer, ConsumerConfig, Producer, ProducerConfig};
use octopus_types::{Event, OctoResult, Timestamp};

/// Workflow stages of one experiment.
pub const STAGES: [&str; 4] = ["design", "synthesize", "characterize", "analyze"];

/// One action record in the global lab log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabAction {
    /// Experiment id (the provenance key).
    pub experiment: String,
    /// Stage name.
    pub stage: String,
    /// Instrument or robot performing the action.
    pub instrument: String,
    /// Action description.
    pub action: String,
    /// Measured/produced value, if the stage yields one.
    pub result: Option<f64>,
    /// Event time.
    pub timestamp_ms: u64,
}

/// Drives a simulated campaign and publishes its action log.
pub struct LabRunner {
    producer: Producer,
    topic: String,
    rng: SmallRng,
    experiment_counter: u64,
    instruments: Vec<String>,
}

impl LabRunner {
    /// A runner publishing to `topic` (must exist) on `cluster`.
    pub fn new(cluster: Cluster, topic: &str, instruments: &[&str], seed: u64) -> Self {
        LabRunner {
            producer: Producer::new(cluster, ProducerConfig::default()),
            topic: topic.to_string(),
            rng: SmallRng::seed_from_u64(seed),
            experiment_counter: 0,
            instruments: instruments.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Run one experiment through all stages at `now`; returns its id.
    /// Each stage emits one event, keyed by experiment id so the
    /// experiment's history is totally ordered.
    pub fn run_experiment(&mut self, now: Timestamp) -> OctoResult<String> {
        let id = format!("exp-{:06}", self.experiment_counter);
        self.experiment_counter += 1;
        for (i, stage) in STAGES.iter().enumerate() {
            let instrument = self.instruments[self.rng.gen_range(0..self.instruments.len())].clone();
            let action = LabAction {
                experiment: id.clone(),
                stage: stage.to_string(),
                instrument,
                action: format!("{stage} step for {id}"),
                result: (*stage == "characterize").then(|| self.rng.gen::<f64>() * 100.0),
                timestamp_ms: now.as_millis() + i as u64,
            };
            let event = Event::builder()
                .key(id.clone())
                .json(&action)?
                .timestamp(Timestamp::from_millis(action.timestamp_ms))
                .build();
            self.producer.send(&self.topic, event)?;
        }
        Ok(id)
    }

    /// Flush pending events to the fabric.
    pub fn flush(&self) {
        self.producer.flush();
    }
}

/// The consumed global log: provenance queries + dashboard state.
pub struct ProvenanceLog {
    consumer: Consumer,
    by_experiment: HashMap<String, Vec<LabAction>>,
    stage_counts: HashMap<String, u64>,
}

impl ProvenanceLog {
    /// Subscribe to the lab's action topic.
    pub fn new(cluster: Cluster, topic: &str) -> OctoResult<Self> {
        let mut consumer = Consumer::new(
            cluster,
            ConsumerConfig { group: "sdl-provenance".into(), ..Default::default() },
        );
        consumer.subscribe(&[topic])?;
        Ok(ProvenanceLog {
            consumer,
            by_experiment: HashMap::new(),
            stage_counts: HashMap::new(),
        })
    }

    /// Ingest newly published actions; returns how many arrived.
    pub fn sync(&mut self) -> OctoResult<usize> {
        let mut n = 0;
        loop {
            let batch = self.consumer.poll()?;
            if batch.is_empty() {
                break;
            }
            for d in batch {
                let action: LabAction = d.event.parse()?;
                *self.stage_counts.entry(action.stage.clone()).or_insert(0) += 1;
                self.by_experiment.entry(action.experiment.clone()).or_default().push(action);
                n += 1;
            }
        }
        Ok(n)
    }

    /// Full lineage of one experiment, in stage order ("trace back
    /// through the decision-making and experiment processes").
    pub fn lineage(&self, experiment: &str) -> Option<&[LabAction]> {
        self.by_experiment.get(experiment).map(|v| v.as_slice())
    }

    /// Dashboard: events seen per stage.
    pub fn stage_counts(&self) -> &HashMap<String, u64> {
        &self.stage_counts
    }

    /// Dashboard: experiments with a complete stage sequence.
    pub fn completed_experiments(&self) -> usize {
        self.by_experiment.values().filter(|v| v.len() == STAGES.len()).count()
    }

    /// Campaign throughput: completed experiments per hour given the
    /// observed time span.
    pub fn throughput_per_hour(&self) -> f64 {
        let times: Vec<u64> = self
            .by_experiment
            .values()
            .flatten()
            .map(|a| a.timestamp_ms)
            .collect();
        let (Some(&min), Some(&max)) = (times.iter().min(), times.iter().max()) else {
            return 0.0;
        };
        let span_hours = ((max - min).max(1)) as f64 / 3_600_000.0;
        self.completed_experiments() as f64 / span_hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_broker::TopicConfig;

    fn setup() -> (Cluster, LabRunner) {
        let cluster = Cluster::new(2);
        cluster.create_topic("sdl.actions", TopicConfig::default()).unwrap();
        let runner = LabRunner::new(
            cluster.clone(),
            "sdl.actions",
            &["ur5-arm", "xrd", "uv-vis", "hplc"],
            7,
        );
        (cluster, runner)
    }

    #[test]
    fn experiments_produce_one_event_per_stage() {
        let (cluster, mut runner) = setup();
        let id = runner.run_experiment(Timestamp::from_millis(0)).unwrap();
        runner.flush();
        let mut log = ProvenanceLog::new(cluster, "sdl.actions").unwrap();
        assert_eq!(log.sync().unwrap(), 4);
        let lineage = log.lineage(&id).unwrap();
        assert_eq!(lineage.len(), 4);
        let stages: Vec<&str> = lineage.iter().map(|a| a.stage.as_str()).collect();
        assert_eq!(stages, STAGES.to_vec(), "lineage preserves stage order");
    }

    #[test]
    fn characterize_stage_carries_results() {
        let (cluster, mut runner) = setup();
        let id = runner.run_experiment(Timestamp::from_millis(0)).unwrap();
        runner.flush();
        let mut log = ProvenanceLog::new(cluster, "sdl.actions").unwrap();
        log.sync().unwrap();
        let lineage = log.lineage(&id).unwrap();
        for a in lineage {
            assert_eq!(a.result.is_some(), a.stage == "characterize");
        }
    }

    #[test]
    fn dashboard_counts_campaign() {
        let (cluster, mut runner) = setup();
        for i in 0..10 {
            runner.run_experiment(Timestamp::from_millis(i * 36_000)).unwrap();
        }
        runner.flush();
        let mut log = ProvenanceLog::new(cluster, "sdl.actions").unwrap();
        assert_eq!(log.sync().unwrap(), 40);
        assert_eq!(log.completed_experiments(), 10);
        for stage in STAGES {
            assert_eq!(log.stage_counts()[stage], 10);
        }
        // 10 experiments over 0.09 hours ≈ 110/hour
        let thr = log.throughput_per_hour();
        assert!(thr > 50.0 && thr < 200.0, "throughput {thr}");
    }

    #[test]
    fn incremental_sync_only_sees_new_events() {
        let (cluster, mut runner) = setup();
        runner.run_experiment(Timestamp::from_millis(0)).unwrap();
        runner.flush();
        let mut log = ProvenanceLog::new(cluster, "sdl.actions").unwrap();
        assert_eq!(log.sync().unwrap(), 4);
        assert_eq!(log.sync().unwrap(), 0);
        runner.run_experiment(Timestamp::from_millis(10)).unwrap();
        runner.flush();
        assert_eq!(log.sync().unwrap(), 4);
    }

    #[test]
    fn unknown_experiment_has_no_lineage() {
        let (cluster, _runner) = setup();
        let log = ProvenanceLog::new(cluster, "sdl.actions").unwrap();
        assert!(log.lineage("exp-999999").is_none());
        assert_eq!(log.completed_experiments(), 0);
        assert_eq!(log.throughput_per_hour(), 0.0);
    }
}
