//! Online task scheduling (§VI-C): resource monitors publish RAPL-style
//! power and utilization telemetry through Octopus; a FaaS scheduler
//! consumes it and places tasks. Compares round-robin against
//! energy-aware placement on a heterogeneous fleet.
//!
//! Run with: `cargo run --example online_scheduling`

use octopus::apps::sched::{FaasScheduler, Resource, ResourceMonitor, SchedulingPolicy};
use octopus::prelude::*;
use octopus::types::Timestamp;

fn fleet() -> Vec<Resource> {
    vec![
        Resource::new("edge-pi-0", 4, 5.0, 10.0),
        Resource::new("edge-pi-1", 4, 5.0, 10.0),
        Resource::new("campus-a", 32, 80.0, 200.0),
        Resource::new("campus-b", 32, 80.0, 200.0),
        Resource::new("hpc-node", 128, 300.0, 900.0),
    ]
}

fn run_policy(policy: SchedulingPolicy, tasks: usize) -> OctoResult<(f64, Vec<(String, u32)>)> {
    let cluster = Cluster::new(2);
    cluster.create_topic("sched.telemetry", TopicConfig::default())?;
    let monitor = ResourceMonitor::new(cluster.clone(), "sched.telemetry");
    let mut scheduler = FaasScheduler::new(cluster, "sched.telemetry", policy)?;
    let mut resources = fleet();

    // warm the telemetry stream with one task on each resource so the
    // scheduler can learn marginal costs
    for r in &mut resources {
        r.running = 1;
    }
    let mut t = 0u64;
    for r in &resources {
        monitor.publish(&r.sample(Timestamp::from_millis(t)))?;
    }
    monitor.flush();
    scheduler.sync()?;

    // place tasks in telemetry rounds (Table I: ~10,000 events/hour/resource)
    for round in 0..tasks / 10 {
        for _ in 0..10 {
            if let Some(name) = scheduler.place() {
                let r = resources.iter_mut().find(|r| r.name == name).expect("known");
                r.running += 1;
            }
        }
        t += 3_600;
        let _ = round;
        for r in &resources {
            monitor.publish(&r.sample(Timestamp::from_millis(t)))?;
        }
        monitor.flush();
        scheduler.sync()?;
    }
    let watts: f64 = resources.iter().map(|r| r.watts()).sum();
    let placements = resources.iter().map(|r| (r.name.clone(), r.running - 1)).collect();
    Ok((watts, placements))
}

fn main() -> OctoResult<()> {
    let tasks = 60;
    println!("placing {tasks} tasks on a 5-resource fleet\n");
    for policy in [SchedulingPolicy::RoundRobin, SchedulingPolicy::EnergyAware] {
        let (watts, placements) = run_policy(policy, tasks)?;
        println!("{policy:?}: fleet draw {watts:.0} W");
        for (name, n) in &placements {
            println!("  {name:12} {n:>3} tasks");
        }
        println!();
    }
    let (rr, _) = run_policy(SchedulingPolicy::RoundRobin, tasks)?;
    let (ea, _) = run_policy(SchedulingPolicy::EnergyAware, tasks)?;
    println!(
        "energy-aware placement saves {:.0} W ({:.0}%) at this load",
        rr - ea,
        (rr - ea) / rr * 100.0
    );
    assert!(ea <= rr);
    println!("\nonline_scheduling OK");
    Ok(())
}
