//! Property-based tests for the DES kernel: histogram quantile bounds
//! and merge-equivalence, server-queue conservation laws, link FIFO
//! ordering, and engine determinism.

use proptest::prelude::*;

use octopus_sim::{Histogram, Link, ServerQueue, SimDuration, SimRng, SimTime, Simulation};

proptest! {
    /// Quantiles are bounded by [min, max], monotone in q, and within
    /// the documented ~1.6% relative bucket error of the exact value.
    #[test]
    fn histogram_quantile_bounds(values in proptest::collection::vec(1u64..1_000_000_000, 1..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let est = h.quantile(q);
            prop_assert!(est >= h.min() && est <= h.max(), "q{q}: {est} outside [{}, {}]", h.min(), h.max());
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = sorted[rank - 1];
            let err = (est as f64 - exact as f64).abs() / exact as f64;
            prop_assert!(err <= 0.05, "q{q}: est {est} vs exact {exact} (err {err})");
        }
        // monotone
        prop_assert!(h.quantile(0.25) <= h.quantile(0.5));
        prop_assert!(h.quantile(0.5) <= h.quantile(0.99));
    }

    /// Merging histograms is equivalent to recording everything into one.
    #[test]
    fn histogram_merge_equivalence(
        a in proptest::collection::vec(1u64..1_000_000, 0..200),
        b in proptest::collection::vec(1u64..1_000_000, 0..200),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hall = Histogram::new();
        for &v in &a { ha.record(v); hall.record(v); }
        for &v in &b { hb.record(v); hall.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hall.count());
        prop_assert_eq!(ha.min(), hall.min());
        prop_assert_eq!(ha.max(), hall.max());
        for q in [0.1, 0.5, 0.9] {
            prop_assert_eq!(ha.quantile(q), hall.quantile(q));
        }
    }

    /// Server-queue conservation: completions never precede arrivals,
    /// total busy time equals the sum of submitted service, and with one
    /// server completions are strictly ordered.
    #[test]
    fn server_queue_conservation(
        jobs in proptest::collection::vec((0u64..1_000_000, 1u64..10_000), 1..100),
        servers in 1usize..4,
    ) {
        let mut q = ServerQueue::new(servers);
        let mut arrivals: Vec<(SimTime, SimDuration)> = jobs
            .iter()
            .map(|&(t, s)| (SimTime(t), SimDuration::from_nanos(s)))
            .collect();
        arrivals.sort_by_key(|(t, _)| *t);
        let mut total_service = 0u64;
        let mut prev_completion = SimTime::ZERO;
        for (arrive, service) in arrivals {
            let done = q.submit(arrive, service);
            total_service += service.as_nanos();
            prop_assert!(done >= arrive + service, "completion before arrival+service");
            if servers == 1 {
                prop_assert!(done >= prev_completion, "single server must serialize");
                prev_completion = done;
            }
        }
        prop_assert_eq!(q.busy_time().as_nanos(), total_service);
        prop_assert_eq!(q.completed() as usize, jobs.len());
    }

    /// Links deliver FIFO: arrival times are non-decreasing in send
    /// order regardless of message sizes.
    #[test]
    fn link_fifo(msgs in proptest::collection::vec((0u64..1_000_000, 1usize..100_000), 1..100)) {
        let mut link = Link::new(SimDuration::from_millis(5), 1e6);
        let mut rng = SimRng::seeded(1);
        let mut sends: Vec<(SimTime, usize)> =
            msgs.iter().map(|&(t, s)| (SimTime(t), s)).collect();
        sends.sort_by_key(|(t, _)| *t);
        let mut prev = SimTime::ZERO;
        for (t, size) in sends {
            let arrival = link.transmit(t, size, &mut rng).unwrap();
            prop_assert!(arrival >= prev, "FIFO violated");
            prop_assert!(arrival >= t + SimDuration::from_millis(5), "faster than light");
            prev = arrival;
        }
    }

    /// The engine is deterministic: the same schedule produces the same
    /// world, and events fire in exactly time order.
    #[test]
    fn engine_determinism(delays in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let run = |delays: &[u64]| {
            let mut sim = Simulation::new(Vec::new());
            for &d in delays {
                sim.schedule_at(SimTime(d), move |_, log: &mut Vec<u64>| log.push(d));
            }
            sim.run()
        };
        let a = run(&delays);
        let b = run(&delays);
        prop_assert_eq!(&a, &b);
        // fired in time order
        let mut sorted = a.clone();
        sorted.sort_unstable();
        prop_assert_eq!(a, sorted);
    }
}
