//! Live-path observability: a thread-safe metrics registry and causal
//! trace propagation for the event fabric.
//!
//! The paper's evaluation (Figs. 3–8, Tables I/III) is stated entirely
//! in median/p99 latencies and throughputs, so the live threaded stack
//! needs the same instrumentation the DES crate has — but shared across
//! threads and free of locks on the hot path. This module provides:
//!
//! * [`Histogram`] — the log-linear (HdrHistogram-style) bucketed
//!   histogram promoted from `octopus-sim`, now serving as the plain,
//!   mergeable snapshot form.
//! * [`AtomicHistogram`] — the same bucketing over a fixed array of
//!   atomic counters: `record` is wait-free (a handful of relaxed
//!   atomic RMWs), so produce/fetch paths never contend on a mutex.
//! * [`Counter`] / [`Gauge`] — plain atomic scalars.
//! * [`MetricsRegistry`] — name → instrument map. Registration takes a
//!   lock once; callers hold `Arc` handles afterwards, so steady-state
//!   recording touches no lock at all. Snapshots are mergeable and
//!   render to a Prometheus-flavoured text exposition.
//! * [`Stage`] / [`StageMetrics`] — the fixed set of event-path stages
//!   (produce→ack, append, replicate, fetch, deliver, trigger run,
//!   DLQ, mirror copy, OWS dispatch) with pre-resolved handles.
//! * [`TraceContext`] — a (trace id, produce wall-clock ns) pair
//!   stamped into record headers at produce time and read back at
//!   delivery, yielding end-to-end per-record latency without any
//!   side-channel state.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

use crate::event::Header;

/// Wall-clock nanoseconds since the Unix epoch. `Timestamp` is
/// millisecond-resolution; latency tracing needs nanoseconds.
pub fn now_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Trace context
// ---------------------------------------------------------------------------

/// Header key under which the trace context travels with a record.
pub const TRACE_HEADER: &str = "octopus-trace";

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Causal trace context stamped into record headers at produce time.
///
/// Sixteen bytes on the wire: little-endian `trace_id` then
/// `produced_ns`. The id groups every hop of one record; the timestamp
/// lets any downstream stage compute produce→here latency with a single
/// subtraction, no lookup table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// Process-unique trace id.
    pub trace_id: u64,
    /// Wall-clock nanoseconds at produce time.
    pub produced_ns: u64,
}

impl TraceContext {
    /// A fresh context stamped with the current wall clock.
    pub fn fresh() -> Self {
        TraceContext {
            trace_id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
            produced_ns: now_ns(),
        }
    }

    /// Wire encoding (16 bytes, little-endian).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&self.trace_id.to_le_bytes());
        out.extend_from_slice(&self.produced_ns.to_le_bytes());
        out
    }

    /// Decode from the wire form; `None` if the bytes are malformed.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 16 {
            return None;
        }
        Some(TraceContext {
            trace_id: u64::from_le_bytes(bytes[..8].try_into().ok()?),
            produced_ns: u64::from_le_bytes(bytes[8..].try_into().ok()?),
        })
    }

    /// The context as a record header.
    pub fn to_header(&self) -> Header {
        Header { key: TRACE_HEADER.to_string(), value: self.encode() }
    }

    /// Extract the context from a header list, if present.
    pub fn from_headers(headers: &[Header]) -> Option<Self> {
        headers.iter().find(|h| h.key == TRACE_HEADER).and_then(|h| Self::decode(&h.value))
    }

    /// Elapsed nanoseconds between produce time and `now_ns` (saturating:
    /// clock skew between stamp and read must not underflow).
    pub fn elapsed_ns(&self, now_ns: u64) -> u64 {
        now_ns.saturating_sub(self.produced_ns)
    }
}

// ---------------------------------------------------------------------------
// Plain histogram (promoted from octopus-sim)
// ---------------------------------------------------------------------------

const SUB_BUCKET_BITS: u32 = 6; // 64 sub-buckets per power of two ≈ 1.6% error
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// Log-linear histogram of `u64` values (e.g. latency in nanoseconds).
///
/// Values are bucketed into 64 linear sub-buckets per power of two,
/// bounding relative quantile error at ~1/64. Recording is O(1); memory
/// is a few KB regardless of value range. This is the plain,
/// single-threaded form; [`AtomicHistogram`] shares the exact bucket
/// math and snapshots into this type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    // A derived Default would set `min: 0`, silently disagreeing with
    // `new()` (`min: u64::MAX`) and pinning the reported minimum of any
    // default-constructed histogram at zero forever.
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: Vec::new(), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    pub(crate) fn bucket_index(value: u64) -> usize {
        let v = value.max(1);
        let msb = 63 - v.leading_zeros();
        if msb < SUB_BUCKET_BITS {
            v as usize
        } else {
            let shift = msb - SUB_BUCKET_BITS;
            let sub = (v >> shift) as usize; // in [2^6, 2^7)
            ((shift as usize + 1) << SUB_BUCKET_BITS) + (sub - SUB_BUCKETS)
        }
    }

    pub(crate) fn bucket_value(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            index as u64
        } else {
            let shift = (index >> SUB_BUCKET_BITS) - 1;
            let sub = (index & (SUB_BUCKETS - 1)) + SUB_BUCKETS;
            // representative: midpoint of the bucket
            ((sub as u64) << shift) + (1u64 << shift) / 2
        }
    }

    /// Record a value.
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in \[0,1\]. Returns 0 for an empty histogram.
    /// Result is exact to within the bucket width (~1.6% relative).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // `ceil` of the scaled rank can exceed `count` through float
        // rounding at q=1 on large counts; clamp both ends so q=0 maps
        // to the first recorded value and q=1 to the last.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_value(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median, i.e. `quantile(0.5)`.
    pub fn median(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Number of recorded values at or below `value`, to bucket
    /// resolution: the whole bucket containing `value` counts, so the
    /// result may overshoot by up to one bucket width (~1.6% of
    /// `value`). This is the "good events" side of a latency SLO
    /// (`count_below(threshold) / count()`).
    pub fn count_below(&self, value: u64) -> u64 {
        let idx = Self::bucket_index(value);
        self.buckets.iter().take(idx + 1).sum()
    }

    /// Merge another histogram into this one. Merging an empty histogram
    /// is a no-op (in particular it must not disturb min/max).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &n) in other.buckets.iter().enumerate() {
            self.buckets[i] += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

// ---------------------------------------------------------------------------
// Atomic instruments
// ---------------------------------------------------------------------------

/// Total bucket count needed to cover all of `u64` with the bucket math
/// above: `bucket_index(u64::MAX) == 3775`.
const ATOMIC_BUCKETS: usize = ((64 - SUB_BUCKET_BITS as usize) << SUB_BUCKET_BITS) - 1;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An atomic gauge (a value that can go up and down).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the gauge to an absolute value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjust the gauge by a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A thread-safe histogram over a fixed array of atomic buckets.
///
/// `record` performs only relaxed atomic RMW operations — no locks, no
/// allocation — so it is safe on the broker's produce/fetch hot paths.
/// The bucket layout is identical to [`Histogram`]; `snapshot()`
/// produces the plain mergeable form. Concurrent snapshots are
/// best-effort consistent (counts racing with in-flight records may be
/// off by the in-flight records), which is the standard metrics trade.
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicHistogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl AtomicHistogram {
    /// Empty histogram (~30 KB of zeroed buckets, allocated once).
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..ATOMIC_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        AtomicHistogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record a value. Wait-free: five relaxed atomic RMWs.
    pub fn record(&self, value: u64) {
        let idx = Histogram::bucket_index(value).min(self.buckets.len() - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Time a closure and record its duration in nanoseconds.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(start.elapsed().as_nanos() as u64);
        out
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A plain, mergeable snapshot of the current state.
    pub fn snapshot(&self) -> Histogram {
        let mut last_nonzero = 0usize;
        let mut buckets = vec![0u64; self.buckets.len()];
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                last_nonzero = i + 1;
            }
            buckets[i] = n;
        }
        buckets.truncate(last_nonzero);
        let count = buckets.iter().sum();
        Histogram {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed) as u128,
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

// The registry maps are std RwLocks; recover from poison rather than
// cascading a panic from one thread into every metrics user (the same
// discipline `CircuitBreaker` applies).
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|p| p.into_inner())
}

fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|p| p.into_inner())
}

/// A shared name → instrument registry.
///
/// Locks guard only the name maps: `counter()`/`gauge()`/`histogram()`
/// take them once to register, and return `Arc` handles that record
/// with pure atomics thereafter. Typical use resolves handles at
/// construction time (see [`StageMetrics`]) so the steady state never
/// touches the registry locks at all.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<AtomicHistogram>>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry behind an `Arc`, ready to share.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
        if let Some(found) = read_lock(map).get(name) {
            return Arc::clone(found);
        }
        Arc::clone(write_lock(map).entry(name.to_string()).or_default())
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Self::get_or_insert(&self.counters, name)
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Self::get_or_insert(&self.gauges, name)
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<AtomicHistogram> {
        Self::get_or_insert(&self.histograms, name)
    }

    /// A point-in-time snapshot of every registered instrument.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: read_lock(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: read_lock(&self.gauges).iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: read_lock(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            annotations: Vec::new(),
        }
    }

    /// Text exposition of the current state (see
    /// [`RegistrySnapshot::render_text`]).
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

/// A mergeable, serializable snapshot of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram state by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Free-form annotations (e.g. chaos fault windows active while the
    /// metrics were collected).
    pub annotations: Vec<String>,
}

impl RegistrySnapshot {
    /// Merge another snapshot into this one: counters add, gauges add,
    /// histograms merge bucket-wise, annotations concatenate.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        self.annotations.extend(other.annotations.iter().cloned());
    }

    /// Attach a free-form annotation line.
    pub fn annotate(&mut self, note: impl Into<String>) {
        self.annotations.push(note.into());
    }

    /// Prometheus text exposition (deterministic and spec-clean):
    /// samples are grouped by metric *family* (the name before any
    /// `{label}` set), each family gets exactly one `# TYPE` line,
    /// families and samples are stable-sorted, and label values are
    /// escaped per the exposition format (`\\`, `\"`, `\n`).
    /// Histograms render as `{name}{stat="count|min|p50|p99|max|mean"}`
    /// summary sample lines; a labelled histogram keeps its own labels
    /// with `stat` appended. The output round-trips through
    /// [`parse_exposition`].
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for note in &self.annotations {
            out.push_str(&format!("# annotation: {note}\n"));
        }
        render_grouped(
            &mut out,
            "counter",
            self.counters.iter().map(|(k, v)| (k.clone(), v.to_string())),
        );
        render_grouped(
            &mut out,
            "gauge",
            self.gauges.iter().map(|(k, v)| (k.clone(), v.to_string())),
        );
        let summary_samples = self.histograms.iter().flat_map(|(name, h)| {
            [
                (with_label(name, "stat", "count"), h.count().to_string()),
                (with_label(name, "stat", "min"), h.min().to_string()),
                (with_label(name, "stat", "p50"), h.median().to_string()),
                (with_label(name, "stat", "p99"), h.p99().to_string()),
                (with_label(name, "stat", "max"), h.max().to_string()),
                (with_label(name, "stat", "mean"), format!("{:.1}", h.mean())),
            ]
        });
        render_grouped(&mut out, "summary", summary_samples);
        out
    }
}

// ---------------------------------------------------------------------------
// Text exposition helpers
// ---------------------------------------------------------------------------

/// The family of a (possibly labelled) sample name: everything before
/// the `{` that opens its label set.
pub fn metric_family(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double quote, and newline get backslash escapes.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Build a labelled sample name: `base{k1="v1",k2="v2"}` with keys
/// stable-sorted and values escaped. With no labels, returns `base`
/// unchanged. This is the one sanctioned way to register per-entity
/// instruments (per-group lag gauges, per-topic counters) so every
/// producer of labelled names agrees on ordering and escaping.
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort_by_key(|(k, _)| *k);
    let body: Vec<String> =
        pairs.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))).collect();
    format!("{base}{{{}}}", body.join(","))
}

/// Append one more label to a (possibly already labelled) sample name.
fn with_label(name: &str, key: &str, value: &str) -> String {
    match name.strip_suffix('}') {
        Some(stripped) if name.contains('{') => {
            format!("{stripped},{key}=\"{}\"}}", escape_label_value(value))
        }
        _ => format!("{name}{{{key}=\"{}\"}}", escape_label_value(value)),
    }
}

/// Group samples by family, emit one `# TYPE` line per family and the
/// stable-sorted samples beneath it.
fn render_grouped(
    out: &mut String,
    kind: &str,
    samples: impl Iterator<Item = (String, String)>,
) {
    let mut families: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
    for (name, value) in samples {
        families.entry(metric_family(&name).to_string()).or_default().push((name, value));
    }
    for (family, mut lines) in families {
        out.push_str(&format!("# TYPE {family} {kind}\n"));
        lines.sort();
        for (name, value) in lines {
            out.push_str(&format!("{name} {value}\n"));
        }
    }
}

/// One parsed sample of a text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpositionSample {
    /// Metric family name (no labels).
    pub name: String,
    /// Label key/value pairs in exposition order, values unescaped.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl ExpositionSample {
    /// The value of a label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Parse a Prometheus text exposition back into samples (the round-trip
/// check for [`RegistrySnapshot::render_text`], and the assertion
/// vocabulary for scrape-endpoint tests). Comment lines (`# ...`) are
/// skipped; malformed sample lines are errors, not silently dropped.
pub fn parse_exposition(text: &str) -> Result<Vec<ExpositionSample>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |m: &str| format!("line {}: {m}: {line:?}", lineno + 1);
        let (name_part, value_part) =
            line.rsplit_once(' ').ok_or_else(|| err("missing value"))?;
        let value: f64 = value_part.parse().map_err(|_| err("unparseable value"))?;
        let (name, labels) = match name_part.find('{') {
            None => (name_part.to_string(), Vec::new()),
            Some(i) => {
                let body = name_part[i + 1..]
                    .strip_suffix('}')
                    .ok_or_else(|| err("unbalanced label braces"))?;
                (name_part[..i].to_string(), parse_labels(body).map_err(|m| err(&m))?)
            }
        };
        out.push(ExpositionSample { name, labels, value });
    }
    Ok(out)
}

/// Parse the inside of a `{...}` label set, unescaping values.
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    while chars.peek().is_some() {
        let mut key = String::new();
        let mut saw_eq = false;
        for c in chars.by_ref() {
            if c == '=' {
                saw_eq = true;
                break;
            }
            key.push(c);
        }
        if !saw_eq {
            return Err(format!("label {key:?}: missing `=`"));
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key:?}: expected opening quote"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("label {key:?}: bad escape {other:?}")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(format!("label {key:?}: unterminated value")),
            }
        }
        if chars.peek() == Some(&',') {
            chars.next();
        }
        labels.push((key, value));
    }
    Ok(labels)
}

// ---------------------------------------------------------------------------
// Event-path stages
// ---------------------------------------------------------------------------

/// The instrumented stages of the event path, in causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Producer dispatch → broker acknowledgement (includes retries).
    ProduceAck,
    /// Leader log append (CRC, segment write).
    Append,
    /// ISR replication fan-out for one batch.
    Replicate,
    /// Broker-side fetch (read path) for one call.
    Fetch,
    /// Produce-time → consumer/trigger hand-off, from the trace header.
    Deliver,
    /// One trigger function invocation (a single attempt).
    TriggerRun,
    /// Dead-letter enqueue after retries are exhausted.
    Dlq,
    /// One mirror-maker copy pass for a partition.
    MirrorCopy,
    /// One OWS service dispatch.
    OwsDispatch,
}

impl Stage {
    /// All stages, in causal order.
    pub const ALL: [Stage; 9] = [
        Stage::ProduceAck,
        Stage::Append,
        Stage::Replicate,
        Stage::Fetch,
        Stage::Deliver,
        Stage::TriggerRun,
        Stage::Dlq,
        Stage::MirrorCopy,
        Stage::OwsDispatch,
    ];

    /// Registry name of this stage's latency histogram (nanoseconds).
    pub fn metric_name(self) -> &'static str {
        match self {
            Stage::ProduceAck => "octopus_stage_produce_ack_ns",
            Stage::Append => "octopus_stage_append_ns",
            Stage::Replicate => "octopus_stage_replicate_ns",
            Stage::Fetch => "octopus_stage_fetch_ns",
            Stage::Deliver => "octopus_stage_deliver_ns",
            Stage::TriggerRun => "octopus_stage_trigger_run_ns",
            Stage::Dlq => "octopus_stage_dlq_ns",
            Stage::MirrorCopy => "octopus_stage_mirror_copy_ns",
            Stage::OwsDispatch => "octopus_stage_ows_dispatch_ns",
        }
    }

    /// Short human label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Stage::ProduceAck => "produce→ack",
            Stage::Append => "append",
            Stage::Replicate => "replicate",
            Stage::Fetch => "fetch",
            Stage::Deliver => "deliver",
            Stage::TriggerRun => "trigger run",
            Stage::Dlq => "dlq",
            Stage::MirrorCopy => "mirror copy",
            Stage::OwsDispatch => "ows dispatch",
        }
    }
}

/// Pre-resolved per-stage histogram handles over a shared registry.
///
/// Resolving the `Arc` handles once at construction keeps every
/// `record()` call on the hot path free of the registry's name-map
/// locks.
#[derive(Debug, Clone)]
pub struct StageMetrics {
    registry: Arc<MetricsRegistry>,
    stages: [Arc<AtomicHistogram>; 9],
}

impl StageMetrics {
    /// Resolve handles for every stage against `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        let stages = Stage::ALL.map(|s| registry.histogram(s.metric_name()));
        StageMetrics { registry, stages }
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    fn slot(&self, stage: Stage) -> &AtomicHistogram {
        &self.stages[Stage::ALL.iter().position(|s| *s == stage).unwrap_or(0)]
    }

    /// Record a latency sample (nanoseconds) for `stage`. Wait-free.
    pub fn record(&self, stage: Stage, ns: u64) {
        self.slot(stage).record(ns);
    }

    /// Time a closure and record its duration under `stage`.
    pub fn time<T>(&self, stage: Stage, f: impl FnOnce() -> T) -> T {
        self.slot(stage).time(f)
    }

    /// Snapshot of one stage's histogram.
    pub fn stage_snapshot(&self, stage: Stage) -> Histogram {
        self.slot(stage).snapshot()
    }
}

impl Default for StageMetrics {
    fn default() -> Self {
        Self::new(MetricsRegistry::shared())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    // -- plain histogram: promoted behaviour ------------------------------

    #[test]
    fn histogram_exact_for_small_values() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 5);
        assert_eq!(h.median(), 3);
        assert_eq!(h.mean(), 3.0);
    }

    #[test]
    fn histogram_quantiles_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let med = h.median() as f64;
        assert!((med - 50_000.0).abs() / 50_000.0 < 0.02, "median {med}");
        let p99 = h.p99() as f64;
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.02, "p99 {p99}");
    }

    // -- satellite: quantile/merge edge cases -----------------------------

    #[test]
    fn default_matches_new() {
        // Regression: a derived Default used to leave `min: 0`.
        let mut d = Histogram::default();
        let mut n = Histogram::new();
        d.record(500);
        n.record(500);
        assert_eq!(d.min(), 500);
        assert_eq!(d.min(), n.min());
    }

    #[test]
    fn empty_histogram_behaviour() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(42);
        let before = (a.count(), a.min(), a.max(), a.mean());
        a.merge(&Histogram::new());
        assert_eq!(before, (a.count(), a.min(), a.max(), a.mean()));
        // And min must not collapse to 0 / max must not inherit garbage.
        assert_eq!(a.min(), 42);
        assert_eq!(a.max(), 42);
    }

    #[test]
    fn merge_empty_with_nonempty() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        b.record(7);
        b.record(9_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 7);
        assert_eq!(a.max(), 9_000_000);
    }

    #[test]
    fn merge_two_empties_stays_empty() {
        let mut a = Histogram::new();
        a.merge(&Histogram::new());
        assert_eq!(a.count(), 0);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 0);
    }

    #[test]
    fn merge_disjoint_ranges() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=50u64 {
            a.record(v);
        }
        for v in 51..=100u64 {
            b.record(v * 1000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 100_000);
    }

    #[test]
    fn quantile_extremes_clamp_to_min_max() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        assert_eq!(h.quantile(0.0), 1_000_000);
        assert_eq!(h.quantile(1.0), 1_000_000);
        // Out-of-range q clamps instead of panicking or extrapolating.
        assert_eq!(h.quantile(-3.0), 1_000_000);
        assert_eq!(h.quantile(17.0), 1_000_000);
    }

    #[test]
    fn quantile_zero_hits_first_recorded_bucket() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(1_000_000);
        let q0 = h.quantile(0.0);
        assert!(q0 >= 100 && q0 <= 102, "q0 {q0} should sit in the min bucket");
        let q1 = h.quantile(1.0) as f64;
        assert!((q1 - 1_000_000.0).abs() / 1_000_000.0 < 0.02, "q1 {q1}");
    }

    #[test]
    fn bucket_boundary_values_round_trip() {
        // Values straddling the linear→log boundary (63, 64) and
        // power-of-two edges must land in monotonically ordered buckets
        // and quantile back within bucket error.
        let edges =
            [1u64, 62, 63, 64, 65, 127, 128, 129, 255, 256, 1023, 1024, 1 << 30, u64::MAX >> 1];
        let mut last = 0usize;
        for &v in &edges {
            let idx = Histogram::bucket_index(v);
            assert!(idx >= last, "bucket index must be monotone at {v}");
            last = idx;
            let mut h = Histogram::new();
            h.record(v);
            let got = h.median() as f64;
            let err = (got - v as f64).abs() / (v as f64);
            assert!(err < 0.02, "value {v} quantiled to {got} (err {err})");
        }
    }

    #[test]
    fn bucket_value_is_within_its_own_bucket() {
        for idx in 0..2048usize {
            let rep = Histogram::bucket_value(idx);
            assert_eq!(
                Histogram::bucket_index(rep),
                idx.max(1),
                "representative of bucket {idx} must map back to it"
            );
        }
    }

    #[test]
    fn quantile_monotone_in_q() {
        let mut h = Histogram::new();
        for v in [1u64, 10, 100, 1_000, 10_000, 100_000] {
            for _ in 0..10 {
                h.record(v);
            }
        }
        let mut last = 0;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.quantile(q);
            assert!(v >= last, "quantile must be monotone: q={q} gave {v} < {last}");
            last = v;
        }
    }

    // -- atomic histogram --------------------------------------------------

    #[test]
    fn atomic_histogram_snapshot_matches_plain() {
        let ah = AtomicHistogram::new();
        let mut plain = Histogram::new();
        for v in [3u64, 77, 4096, 1_000_000, u64::MAX >> 4] {
            ah.record(v);
            plain.record(v);
        }
        let snap = ah.snapshot();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.min(), plain.min());
        assert_eq!(snap.max(), plain.max());
        assert_eq!(snap.median(), plain.median());
        assert_eq!(snap.p99(), plain.p99());
    }

    #[test]
    fn atomic_histogram_concurrent_records_all_land() {
        // Lock-freedom proof for the acceptance criterion: 8 threads
        // hammer one histogram with no mutex anywhere; every record
        // must be visible in the final snapshot with exact count/sum.
        let ah = Arc::new(AtomicHistogram::new());
        let threads = 8;
        let per = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ah = Arc::clone(&ah);
                thread::spawn(move || {
                    for i in 0..per {
                        ah.record(1 + t * per + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = ah.snapshot();
        assert_eq!(snap.count(), threads * per);
        assert_eq!(snap.min(), 1);
        assert_eq!(snap.max(), threads * per);
        let expected_sum: u128 = (1..=threads * per).map(|v| v as u128).sum();
        assert_eq!(snap.mean(), expected_sum as f64 / (threads * per) as f64);
    }

    #[test]
    fn atomic_histogram_extreme_values_do_not_overflow_buckets() {
        let ah = AtomicHistogram::new();
        ah.record(0);
        ah.record(u64::MAX);
        let snap = ah.snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), u64::MAX);
    }

    // -- registry ----------------------------------------------------------

    #[test]
    fn registry_handles_are_shared() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("c");
        let b = reg.counter("c");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("c").get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn registry_snapshot_and_merge() {
        let reg = MetricsRegistry::new();
        reg.counter("events_total").add(10);
        reg.gauge("backlog").set(-2);
        reg.histogram("lat_ns").record(1000);

        let mut s1 = reg.snapshot();
        reg.counter("events_total").add(5);
        reg.histogram("lat_ns").record(3000);
        let s2 = reg.snapshot();

        s1.merge(&s2);
        assert_eq!(s1.counters["events_total"], 25);
        assert_eq!(s1.gauges["backlog"], -4);
        assert_eq!(s1.histograms["lat_ns"].count(), 3);
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let reg = MetricsRegistry::new();
        reg.counter("c").inc();
        reg.histogram("h").record(12345);
        let mut snap = reg.snapshot();
        snap.annotate("fault: broker-kill @5s");
        let json = serde_json::to_string(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.counters["c"], 1);
        assert_eq!(back.histograms["h"].count(), 1);
        assert_eq!(back.annotations, vec!["fault: broker-kill @5s".to_string()]);
    }

    #[test]
    fn render_text_exposition() {
        let reg = MetricsRegistry::new();
        reg.counter("octopus_events_total").add(7);
        reg.gauge("octopus_backlog").set(3);
        reg.histogram("octopus_lat_ns").record(100);
        let text = reg.render_text();
        assert!(text.contains("# TYPE octopus_events_total counter"));
        assert!(text.contains("octopus_events_total 7"));
        assert!(text.contains("octopus_backlog 3"));
        assert!(text.contains("octopus_lat_ns{stat=\"count\"} 1"));
        assert!(text.contains("octopus_lat_ns{stat=\"p99\"}"));
    }

    // -- satellite: deterministic, spec-clean exposition -------------------

    #[test]
    fn exposition_round_trips_through_parser() {
        let reg = MetricsRegistry::new();
        reg.counter("octopus_events_total").add(7);
        reg.counter(&labeled("octopus_consumer_lag", &[("group", "g1"), ("topic", "t")]))
            .add(3);
        reg.gauge(&labeled("octopus_consumer_lag_gauge", &[("group", "a\"b\\c\nd")])).set(-5);
        reg.histogram("octopus_lat_ns").record(1000);
        reg.histogram(&labeled("octopus_part_ns", &[("partition", "0")])).record(50);
        let text = reg.render_text();
        let samples = parse_exposition(&text).unwrap();

        let plain = samples.iter().find(|s| s.name == "octopus_events_total").unwrap();
        assert!(plain.labels.is_empty());
        assert_eq!(plain.value, 7.0);

        let lag = samples.iter().find(|s| s.name == "octopus_consumer_lag").unwrap();
        assert_eq!(lag.label("group"), Some("g1"));
        assert_eq!(lag.label("topic"), Some("t"));
        assert_eq!(lag.value, 3.0);

        // hostile label value survives escape → unescape unchanged
        let hostile = samples.iter().find(|s| s.name == "octopus_consumer_lag_gauge").unwrap();
        assert_eq!(hostile.label("group"), Some("a\"b\\c\nd"));
        assert_eq!(hostile.value, -5.0);

        // a labelled histogram keeps its labels and gains `stat`
        let part_count = samples
            .iter()
            .find(|s| s.name == "octopus_part_ns" && s.label("stat") == Some("count"))
            .unwrap();
        assert_eq!(part_count.label("partition"), Some("0"));
        assert_eq!(part_count.value, 1.0);

        // every histogram family exposes all six stats
        for stat in ["count", "min", "p50", "p99", "max", "mean"] {
            assert!(samples
                .iter()
                .any(|s| s.name == "octopus_lat_ns" && s.label("stat") == Some(stat)));
        }
    }

    #[test]
    fn exposition_is_deterministic_and_family_grouped() {
        let reg = MetricsRegistry::new();
        // registration order is deliberately scrambled
        reg.counter(&labeled("octopus_lag", &[("group", "zeta")])).add(2);
        reg.counter("octopus_lag_zz_other").add(9);
        reg.counter(&labeled("octopus_lag", &[("group", "alpha")])).add(1);
        let a = reg.render_text();
        let b = reg.render_text();
        assert_eq!(a, b, "exposition must be byte-for-byte deterministic");
        // one TYPE line per family, samples grouped beneath it
        assert_eq!(a.matches("# TYPE octopus_lag counter").count(), 1);
        let type_pos = a.find("# TYPE octopus_lag counter").unwrap();
        let alpha = a.find("octopus_lag{group=\"alpha\"}").unwrap();
        let zeta = a.find("octopus_lag{group=\"zeta\"}").unwrap();
        let other_type = a.find("# TYPE octopus_lag_zz_other counter").unwrap();
        assert!(type_pos < alpha && alpha < zeta, "samples sorted under their TYPE line");
        assert!(zeta < other_type, "other families must not interleave the group");
    }

    #[test]
    fn labeled_sorts_keys_and_escapes() {
        assert_eq!(labeled("m", &[]), "m");
        assert_eq!(
            labeled("m", &[("topic", "t"), ("group", "g")]),
            "m{group=\"g\",topic=\"t\"}"
        );
        assert_eq!(labeled("m", &[("k", "a\"b")]), "m{k=\"a\\\"b\"}");
        assert_eq!(metric_family("m{k=\"v\"}"), "m");
        assert_eq!(metric_family("m"), "m");
    }

    #[test]
    fn parse_exposition_rejects_malformed_lines() {
        assert!(parse_exposition("name_without_value\n").is_err());
        assert!(parse_exposition("name not_a_number\n").is_err());
        assert!(parse_exposition("name{k=\"unterminated 1\n").is_err());
        assert!(parse_exposition("name{k=novalue} 1\n").is_err());
        assert!(parse_exposition("# a comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn count_below_tracks_threshold() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40_000, 50_000] {
            h.record(v);
        }
        assert_eq!(h.count_below(30), 3);
        assert_eq!(h.count_below(5), 0);
        assert_eq!(h.count_below(u64::MAX), 5);
        // within one bucket width of the threshold
        let below = h.count_below(40_000);
        assert!((3..=4).contains(&below), "bucket-resolution overshoot only: {below}");
    }

    #[test]
    fn registry_survives_poisoned_lock() {
        // A panicking thread holding the registration lock must not
        // wedge other threads (satellite: no poison cascades).
        let reg = Arc::new(MetricsRegistry::new());
        let reg2 = Arc::clone(&reg);
        let _ = thread::spawn(move || {
            let _guard = reg2.counters.write().unwrap();
            panic!("chaos");
        })
        .join();
        reg.counter("after_poison").inc();
        assert_eq!(reg.snapshot().counters["after_poison"], 1);
    }

    // -- stages & tracing --------------------------------------------------

    #[test]
    fn stage_metrics_record_and_snapshot() {
        let sm = StageMetrics::default();
        sm.record(Stage::Append, 1_000);
        sm.record(Stage::Append, 2_000);
        sm.time(Stage::Fetch, || std::thread::yield_now());
        assert_eq!(sm.stage_snapshot(Stage::Append).count(), 2);
        assert_eq!(sm.stage_snapshot(Stage::Fetch).count(), 1);
        let snap = sm.registry().snapshot();
        assert_eq!(snap.histograms["octopus_stage_append_ns"].count(), 2);
    }

    #[test]
    fn trace_context_round_trip() {
        let tc = TraceContext::fresh();
        let hdr = tc.to_header();
        assert_eq!(hdr.key, TRACE_HEADER);
        let back = TraceContext::from_headers(std::slice::from_ref(&hdr)).unwrap();
        assert_eq!(back, tc);
        assert!(TraceContext::decode(&[1, 2, 3]).is_none());
    }

    #[test]
    fn trace_ids_are_unique() {
        let a = TraceContext::fresh();
        let b = TraceContext::fresh();
        assert_ne!(a.trace_id, b.trace_id);
    }

    #[test]
    fn trace_elapsed_saturates() {
        let tc = TraceContext { trace_id: 1, produced_ns: 1_000 };
        assert_eq!(tc.elapsed_ns(1_500), 500);
        assert_eq!(tc.elapsed_ns(500), 0, "clock skew must not underflow");
    }
}
