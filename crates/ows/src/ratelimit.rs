//! Per-identity token-bucket rate limiting.
//!
//! §VII-C names per-identity rate limiting as the first cost-mitigation
//! lever: "The Octopus service can rate limit invocations on a
//! per-identity basis". This is the standard token bucket: capacity
//! `burst`, refill `rate_per_sec`, one token per request.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use octopus_types::{Clock, OctoError, OctoResult, Timestamp, Uid};

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last_refill: Timestamp,
}

/// A shared per-identity rate limiter.
#[derive(Clone)]
pub struct RateLimiter {
    buckets: Arc<Mutex<HashMap<Uid, Bucket>>>,
    rate_per_sec: f64,
    burst: f64,
    clock: Arc<dyn Clock>,
}

impl RateLimiter {
    /// A limiter allowing `rate_per_sec` sustained requests with bursts
    /// up to `burst`.
    pub fn new(rate_per_sec: f64, burst: f64, clock: Arc<dyn Clock>) -> Self {
        assert!(rate_per_sec > 0.0 && burst >= 1.0);
        RateLimiter { buckets: Arc::new(Mutex::new(HashMap::new())), rate_per_sec, burst, clock }
    }

    /// Admit or reject one request from `identity`.
    pub fn check(&self, identity: Uid) -> OctoResult<()> {
        let now = self.clock.now();
        let mut buckets = self.buckets.lock();
        let b = buckets
            .entry(identity)
            .or_insert(Bucket { tokens: self.burst, last_refill: now });
        let elapsed = now.since(b.last_refill).as_secs_f64();
        b.tokens = (b.tokens + elapsed * self.rate_per_sec).min(self.burst);
        b.last_refill = now;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            Ok(())
        } else {
            Err(OctoError::RateLimited(format!("identity {identity}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_types::ManualClock;
    use std::time::Duration;

    fn limiter(rate: f64, burst: f64) -> (RateLimiter, ManualClock) {
        let clock = ManualClock::new(Timestamp::from_millis(0));
        (RateLimiter::new(rate, burst, Arc::new(clock.clone())), clock)
    }

    #[test]
    fn burst_then_reject() {
        let (rl, _clock) = limiter(1.0, 3.0);
        let id = Uid(1);
        assert!(rl.check(id).is_ok());
        assert!(rl.check(id).is_ok());
        assert!(rl.check(id).is_ok());
        assert!(matches!(rl.check(id), Err(OctoError::RateLimited(_))));
    }

    #[test]
    fn refill_over_time() {
        let (rl, clock) = limiter(2.0, 2.0);
        let id = Uid(1);
        rl.check(id).unwrap();
        rl.check(id).unwrap();
        assert!(rl.check(id).is_err());
        clock.advance(Duration::from_millis(500)); // +1 token
        assert!(rl.check(id).is_ok());
        assert!(rl.check(id).is_err());
    }

    #[test]
    fn identities_are_independent() {
        let (rl, _clock) = limiter(1.0, 1.0);
        assert!(rl.check(Uid(1)).is_ok());
        assert!(rl.check(Uid(2)).is_ok());
        assert!(rl.check(Uid(1)).is_err());
        assert!(rl.check(Uid(2)).is_err());
    }

    #[test]
    fn tokens_cap_at_burst() {
        let (rl, clock) = limiter(100.0, 2.0);
        let id = Uid(1);
        clock.advance(Duration::from_secs(60)); // long idle: still only 2
        assert!(rl.check(id).is_ok());
        assert!(rl.check(id).is_ok());
        assert!(rl.check(id).is_err());
    }
}
