//! Cluster health model: partition classification, ISR transition
//! counting, and a Green/Yellow/Red rollup with a queryable timeline.
//!
//! The paper's operators watch MSK cluster health dashboards to keep
//! five live applications running (§IV–V); this module is the
//! in-process equivalent. Each partition is classified from the same
//! metadata the produce path uses (replica set, ISR, broker liveness):
//!
//! * **Healthy** — every assigned replica is in the ISR and alive.
//! * **UnderReplicated** — a live ISR exists but is smaller than the
//!   replica set (a replica is dead or evicted).
//! * **Offline** — no live ISR member: the partition cannot accept
//!   writes until a broker recovers.
//!
//! The rollup is deliberately coarse — Green (all healthy), Yellow
//! (degraded but every partition writable), Red (at least one offline
//! partition) — because that is the granularity operators act on. Every
//! status change is appended to a bounded timeline so a chaos run can
//! show Green→Red→Green with the fault window that caused it.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use octopus_types::{MetricsRegistry, PartitionId, TopicName};

/// Coarse status an operator (or the chaos oracle) acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HealthStatus {
    /// Every partition fully replicated, every broker alive.
    Green,
    /// Degraded (dead broker or shrunken ISR) but all partitions writable.
    Yellow,
    /// At least one partition has no live replica.
    Red,
}

impl HealthStatus {
    /// Gauge encoding: 0 green, 1 yellow, 2 red.
    pub fn as_gauge(self) -> i64 {
        match self {
            HealthStatus::Green => 0,
            HealthStatus::Yellow => 1,
            HealthStatus::Red => 2,
        }
    }
}

impl std::fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            HealthStatus::Green => "green",
            HealthStatus::Yellow => "yellow",
            HealthStatus::Red => "red",
        };
        f.write_str(s)
    }
}

/// Per-partition classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionHealth {
    /// Full ISR, all replicas alive.
    Healthy,
    /// Live ISR smaller than the replica set.
    UnderReplicated,
    /// No live ISR member; writes are refused.
    Offline,
}

/// What the classifier needs to know about one partition — a plain
/// snapshot of cluster metadata, so the model never holds cluster locks.
#[derive(Debug, Clone)]
pub struct PartitionView {
    /// Topic name.
    pub topic: TopicName,
    /// Partition index.
    pub partition: PartitionId,
    /// Assigned replica broker ids.
    pub replicas: Vec<u32>,
    /// Current in-sync replica broker ids.
    pub isr: Vec<u32>,
}

/// Identifies a partition in reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionRef {
    /// Topic name.
    pub topic: TopicName,
    /// Partition index.
    pub partition: PartitionId,
}

/// One cluster member's liveness, as seen by the caller. Retired
/// (decommissioned) brokers are simply *absent* from the list — they
/// are no longer cluster members, so they neither pin the rollup
/// Yellow nor appear in per-broker rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrokerLiveness {
    /// Broker id.
    pub id: u32,
    /// Whether the broker process is up.
    pub alive: bool,
}

/// One broker's rollup in a report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrokerHealth {
    /// Broker id.
    pub id: u32,
    /// Whether the broker process is up.
    pub alive: bool,
    /// Red when dead, Yellow when it hosts a degraded partition.
    pub status: HealthStatus,
}

/// One edge in the status timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthTransition {
    /// Wall-clock nanoseconds of the observation.
    pub at_ns: u64,
    /// Status before.
    pub from: HealthStatus,
    /// Status after.
    pub to: HealthStatus,
    /// What triggered the refresh (e.g. `"kill_broker(1)"`).
    pub reason: String,
}

/// Queryable health summary (the body of OWS `GET /health`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Cluster-level rollup.
    pub status: HealthStatus,
    /// Per-broker rollups, by id.
    pub brokers: Vec<BrokerHealth>,
    /// Total partitions classified.
    pub partitions_total: usize,
    /// Count of healthy partitions.
    pub healthy: usize,
    /// Partitions with a shrunken (but live) ISR.
    pub under_replicated: Vec<PartitionRef>,
    /// Partitions with no live replica.
    pub offline: Vec<PartitionRef>,
    /// Cumulative ISR shrink transitions observed.
    pub isr_shrinks: u64,
    /// Cumulative ISR expand transitions observed.
    pub isr_expands: u64,
    /// Recent status transitions, oldest first.
    pub timeline: Vec<HealthTransition>,
}

/// Timeline entries kept; chaos runs produce a handful, so this is a
/// guard against a pathological flapping loop, not a tuning knob.
const TIMELINE_CAP: usize = 256;

#[derive(Debug)]
struct HealthState {
    status: HealthStatus,
    prev_isr_len: HashMap<(TopicName, PartitionId), usize>,
    isr_shrinks: u64,
    isr_expands: u64,
    timeline: Vec<HealthTransition>,
}

/// Continuous health classifier. Owned by the cluster; refreshed on
/// every membership-changing operation and on demand by `GET /health`.
#[derive(Debug)]
pub struct ClusterHealth {
    state: Mutex<HealthState>,
    registry: Arc<MetricsRegistry>,
}

impl ClusterHealth {
    /// A model publishing into `registry`. A fresh cluster is Green.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        ClusterHealth {
            state: Mutex::new(HealthState {
                status: HealthStatus::Green,
                prev_isr_len: HashMap::new(),
                isr_shrinks: 0,
                isr_expands: 0,
                timeline: Vec::new(),
            }),
            registry,
        }
    }

    /// Current rollup without recomputing.
    pub fn status(&self) -> HealthStatus {
        self.state.lock().status
    }

    /// Classify the cluster from a metadata snapshot. `members` lists
    /// every *current* cluster member and its liveness (retired brokers
    /// are excluded by the caller); `views` one entry per partition.
    /// Updates gauges, ISR transition counters, and the timeline;
    /// returns the full report.
    pub fn refresh(
        &self,
        now_ns: u64,
        members: &[BrokerLiveness],
        views: &[PartitionView],
        reason: &str,
    ) -> HealthReport {
        let is_alive = |id: u32| members.iter().any(|m| m.id == id && m.alive);

        let mut healthy = 0usize;
        let mut under_replicated = Vec::new();
        let mut offline = Vec::new();
        // brokers hosting a degraded partition (for the per-broker rollup)
        let mut degraded_hosts: Vec<u32> = Vec::new();

        let mut st = self.state.lock();
        for v in views {
            let live_isr = v.isr.iter().filter(|&&b| is_alive(b)).count();
            let class = if live_isr == 0 {
                PartitionHealth::Offline
            } else if live_isr < v.replicas.len() || v.isr.len() < v.replicas.len() {
                PartitionHealth::UnderReplicated
            } else {
                PartitionHealth::Healthy
            };
            match class {
                PartitionHealth::Healthy => healthy += 1,
                PartitionHealth::UnderReplicated => {
                    degraded_hosts.extend(v.replicas.iter().copied());
                    under_replicated
                        .push(PartitionRef { topic: v.topic.clone(), partition: v.partition });
                }
                PartitionHealth::Offline => {
                    degraded_hosts.extend(v.replicas.iter().copied());
                    offline.push(PartitionRef { topic: v.topic.clone(), partition: v.partition });
                }
            }

            // ISR shrink/expand accounting against the last observation
            let key = (v.topic.clone(), v.partition);
            let cur = v.isr.iter().filter(|&&b| is_alive(b)).count();
            match st.prev_isr_len.get(&key) {
                Some(&prev) if cur < prev => st.isr_shrinks += 1,
                Some(&prev) if cur > prev => st.isr_expands += 1,
                _ => {}
            }
            st.prev_isr_len.insert(key, cur);
        }
        // forget partitions that no longer exist (topic deletion)
        st.prev_isr_len
            .retain(|k, _| views.iter().any(|v| v.topic == k.0 && v.partition == k.1));

        let any_dead = members.iter().any(|m| !m.alive);
        let status = if !offline.is_empty() {
            HealthStatus::Red
        } else if !under_replicated.is_empty() || any_dead {
            HealthStatus::Yellow
        } else {
            HealthStatus::Green
        };

        if status != st.status {
            if st.timeline.len() >= TIMELINE_CAP {
                st.timeline.remove(0);
            }
            let from = st.status;
            st.timeline.push(HealthTransition {
                at_ns: now_ns,
                from,
                to: status,
                reason: reason.to_string(),
            });
            st.status = status;
        }

        let brokers: Vec<BrokerHealth> = members
            .iter()
            .map(|m| BrokerHealth {
                id: m.id,
                alive: m.alive,
                status: if !m.alive {
                    HealthStatus::Red
                } else if degraded_hosts.contains(&m.id) {
                    HealthStatus::Yellow
                } else {
                    HealthStatus::Green
                },
            })
            .collect();

        let report = HealthReport {
            status,
            brokers,
            partitions_total: views.len(),
            healthy,
            under_replicated,
            offline,
            isr_shrinks: st.isr_shrinks,
            isr_expands: st.isr_expands,
            timeline: st.timeline.clone(),
        };
        drop(st);

        self.registry.gauge("octopus_cluster_health_status").set(status.as_gauge());
        self.registry
            .gauge("octopus_partitions_under_replicated")
            .set(report.under_replicated.len() as i64);
        self.registry
            .gauge("octopus_partitions_offline")
            .set(report.offline.len() as i64);
        self.sync_counter("octopus_isr_shrink_total", report.isr_shrinks);
        self.sync_counter("octopus_isr_expand_total", report.isr_expands);

        report
    }

    /// Status transitions observed so far, oldest first.
    pub fn timeline(&self) -> Vec<HealthTransition> {
        self.state.lock().timeline.clone()
    }

    /// Counters are monotonic; top the registry counter up to `target`
    /// rather than re-adding the cumulative total every refresh.
    fn sync_counter(&self, name: &str, target: u64) {
        let c = self.registry.counter(name);
        let cur = c.get();
        if target > cur {
            c.add(target - cur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (ClusterHealth, Arc<MetricsRegistry>) {
        let reg = Arc::new(MetricsRegistry::new());
        (ClusterHealth::new(Arc::clone(&reg)), reg)
    }

    fn live(alive: &[bool]) -> Vec<BrokerLiveness> {
        alive
            .iter()
            .enumerate()
            .map(|(i, &a)| BrokerLiveness { id: i as u32, alive: a })
            .collect()
    }

    fn view(topic: &str, p: u32, replicas: &[u32], isr: &[u32]) -> PartitionView {
        PartitionView {
            topic: topic.to_string(),
            partition: p,
            replicas: replicas.to_vec(),
            isr: isr.to_vec(),
        }
    }

    #[test]
    fn all_healthy_is_green() {
        let (h, reg) = model();
        let r = h.refresh(1, &live(&[true, true]), &[view("t", 0, &[0, 1], &[0, 1])], "boot");
        assert_eq!(r.status, HealthStatus::Green);
        assert_eq!(r.healthy, 1);
        assert!(r.timeline.is_empty(), "green→green is not a transition");
        assert_eq!(reg.gauge("octopus_cluster_health_status").get(), 0);
    }

    #[test]
    fn dead_replica_is_yellow_dead_leaderless_is_red() {
        let (h, reg) = model();
        h.refresh(1, &live(&[true, true]), &[view("t", 0, &[0, 1], &[0, 1])], "boot");
        // broker 1 dies: partition under-replicated, cluster yellow
        let r = h.refresh(2, &live(&[true, false]), &[view("t", 0, &[0, 1], &[0, 1])], "kill(1)");
        assert_eq!(r.status, HealthStatus::Yellow);
        assert_eq!(r.under_replicated.len(), 1);
        assert_eq!(r.brokers[1].status, HealthStatus::Red);
        assert_eq!(r.brokers[0].status, HealthStatus::Yellow);
        // broker 0 dies too: no live ISR anywhere → red
        let r = h.refresh(3, &live(&[false, false]), &[view("t", 0, &[0, 1], &[0, 1])], "kill(0)");
        assert_eq!(r.status, HealthStatus::Red);
        assert_eq!(r.offline.len(), 1);
        assert_eq!(reg.gauge("octopus_partitions_offline").get(), 1);
        // recovery back to green, with the full path in the timeline
        let r = h.refresh(4, &live(&[true, true]), &[view("t", 0, &[0, 1], &[0, 1])], "restart");
        assert_eq!(r.status, HealthStatus::Green);
        let path: Vec<(HealthStatus, HealthStatus)> =
            r.timeline.iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            path,
            vec![
                (HealthStatus::Green, HealthStatus::Yellow),
                (HealthStatus::Yellow, HealthStatus::Red),
                (HealthStatus::Red, HealthStatus::Green),
            ]
        );
    }

    #[test]
    fn shrunken_isr_with_live_brokers_is_yellow() {
        let (h, _) = model();
        // both brokers alive but replica 1 fell out of the ISR
        let r = h.refresh(1, &live(&[true, true]), &[view("t", 0, &[0, 1], &[0])], "lag");
        assert_eq!(r.status, HealthStatus::Yellow);
        assert_eq!(r.under_replicated.len(), 1);
    }

    #[test]
    fn isr_transitions_are_counted() {
        let (h, reg) = model();
        h.refresh(1, &live(&[true, true]), &[view("t", 0, &[0, 1], &[0, 1])], "boot");
        h.refresh(2, &live(&[true, true]), &[view("t", 0, &[0, 1], &[0])], "shrink");
        h.refresh(3, &live(&[true, true]), &[view("t", 0, &[0, 1], &[0, 1])], "expand");
        let r = h.refresh(4, &live(&[true, true]), &[view("t", 0, &[0, 1], &[0, 1])], "steady");
        assert_eq!(r.isr_shrinks, 1);
        assert_eq!(r.isr_expands, 1);
        assert_eq!(reg.snapshot().counters["octopus_isr_shrink_total"], 1);
        assert_eq!(reg.snapshot().counters["octopus_isr_expand_total"], 1);
    }

    #[test]
    fn dead_broker_with_no_partitions_is_still_yellow() {
        let (h, _) = model();
        let r = h.refresh(1, &live(&[true, false]), &[], "kill(1)");
        assert_eq!(r.status, HealthStatus::Yellow);
        assert_eq!(r.brokers[1].status, HealthStatus::Red);
    }

    #[test]
    fn retired_brokers_do_not_pin_yellow() {
        let (h, _) = model();
        // broker 2 was decommissioned: it is absent from the member
        // list and from every replica set, so the cluster is Green
        let members =
            [BrokerLiveness { id: 0, alive: true }, BrokerLiveness { id: 1, alive: true }];
        let r = h.refresh(1, &members, &[view("t", 0, &[0, 1], &[0, 1])], "decommission(2)");
        assert_eq!(r.status, HealthStatus::Green);
        assert_eq!(r.brokers.len(), 2);
    }

    #[test]
    fn report_serializes() {
        let (h, _) = model();
        let r = h.refresh(1, &live(&[true]), &[view("t", 0, &[0], &[0])], "boot");
        let json = serde_json::to_string(&r).unwrap();
        let back: HealthReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
