//! The Fig. 8 harness: per-event monitoring overhead, HTEX-DB vs
//! Octopus.
//!
//! Protocol (§VI-E): "performing 128 tasks across eight nodes, varying
//! the number of workers from 1 to 64 and task duration between 0, 10,
//! and 100 ms. We calculate the overhead of each experiment by
//! subtracting the task execution time from the total makespan ... and
//! then divide by the number of events generated in the experiment to
//! determine the per-event cost."

use std::sync::Arc;
use std::time::Duration;

use serde_json::json;

use octopus_broker::{Cluster, TopicConfig};

use crate::dag::independent_tasks;
use crate::htex::{HtexConfig, HtexExecutor};
use crate::monitor::{DbMonitor, Monitor, OctopusMonitor};

/// Which monitoring backend a Fig. 8 run used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorKind {
    /// Stock HTEX monitoring: synchronous central-database writes.
    HtexDb,
    /// Octopus monitoring: async batched event publication.
    Octopus,
}

/// One Fig. 8 measurement.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Monitoring backend.
    pub monitor: MonitorKind,
    /// Worker count.
    pub workers: usize,
    /// Task duration in ms.
    pub task_ms: u64,
    /// Total makespan in ms.
    pub makespan_ms: f64,
    /// Ideal (monitor-free) execution time in ms.
    pub ideal_ms: f64,
    /// Monitoring events generated.
    pub events: u64,
    /// Per-event overhead in microseconds.
    pub overhead_us_per_event: f64,
}

/// Modelled per-row commit cost of the central monitoring database.
pub const DB_WRITE_COST: Duration = Duration::from_micros(400);

/// Run one Fig. 8 cell.
pub fn fig8_cell(
    monitor_kind: MonitorKind,
    tasks: usize,
    workers: usize,
    task_ms: u64,
) -> Fig8Row {
    let monitor: Arc<dyn Monitor> = match monitor_kind {
        MonitorKind::HtexDb => Arc::new(DbMonitor::new(DB_WRITE_COST)),
        MonitorKind::Octopus => {
            let cluster = Cluster::new(2);
            cluster
                .create_topic(
                    "parsl.monitoring",
                    TopicConfig::default().with_partitions(4),
                )
                .expect("fresh cluster");
            Arc::new(OctopusMonitor::new(cluster, "parsl.monitoring"))
        }
    };
    let graph = independent_tasks(tasks, move |_| {
        if task_ms > 0 {
            std::thread::sleep(Duration::from_millis(task_ms));
        }
        Ok(json!(1))
    });
    let exec = HtexExecutor::new(HtexConfig::new(workers), monitor.clone());
    let report = exec.run(&graph);
    let events = monitor.count();
    let waves = tasks.div_ceil(workers);
    let ideal_ms = (waves as u64 * task_ms) as f64;
    let makespan_ms = report.makespan.as_secs_f64() * 1e3;
    let overhead_ms = (makespan_ms - ideal_ms).max(0.0);
    Fig8Row {
        monitor: monitor_kind,
        workers,
        task_ms,
        makespan_ms,
        ideal_ms,
        events,
        overhead_us_per_event: overhead_ms * 1e3 / events.max(1) as f64,
    }
}

/// Run the full Fig. 8 sweep: both monitors × worker counts × task
/// durations, with the paper's 128 tasks.
pub fn fig8(worker_counts: &[usize], task_durations_ms: &[u64]) -> Vec<Fig8Row> {
    let mut rows = Vec::new();
    for &kind in &[MonitorKind::HtexDb, MonitorKind::Octopus] {
        for &d in task_durations_ms {
            for &w in worker_counts {
                rows.push(fig8_cell(kind, 128, w, d));
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octopus_monitor_has_lower_overhead_than_db() {
        // scaled-down cell (32 tasks, 8 workers, 0ms tasks) so the test
        // is fast; the monitoring cost dominates at duration 0
        let db = fig8_cell(MonitorKind::HtexDb, 32, 8, 0);
        let octo = fig8_cell(MonitorKind::Octopus, 32, 8, 0);
        assert_eq!(db.events, 96); // 3 phases per task
        assert_eq!(octo.events, 96);
        assert!(
            octo.overhead_us_per_event < db.overhead_us_per_event,
            "octopus {} < db {}",
            octo.overhead_us_per_event,
            db.overhead_us_per_event
        );
    }

    #[test]
    fn db_overhead_scales_with_serialized_writes() {
        let row = fig8_cell(MonitorKind::HtexDb, 32, 8, 0);
        // 96 serialized 400us writes = at least ~38ms of makespan
        assert!(row.makespan_ms >= 30.0, "makespan {}ms", row.makespan_ms);
    }

    #[test]
    fn ideal_time_computed_from_waves() {
        let row = fig8_cell(MonitorKind::Octopus, 16, 4, 10);
        assert_eq!(row.ideal_ms, 40.0); // 4 waves x 10ms
        assert!(row.makespan_ms >= row.ideal_ms);
    }

    #[test]
    fn sweep_covers_grid() {
        let rows = fig8(&[1, 2], &[0]);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().any(|r| r.monitor == MonitorKind::HtexDb && r.workers == 2));
        assert!(rows.iter().any(|r| r.monitor == MonitorKind::Octopus && r.workers == 1));
    }
}
