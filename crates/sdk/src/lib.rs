//! The Octopus client SDK — the Rust counterpart of the paper's Python
//! SDK (§IV-E).
//!
//! - [`tokenstore`]: a small file-backed store for tokens and MSK
//!   secrets ("tokens and MSK secrets are stored in a local SQLite
//!   database and automatically refreshed as needed").
//! - [`login`]: the login manager performing the auth flow and caching
//!   tokens on the user's behalf, refreshing them when they expire.
//! - [`client`]: a typed wrapper over the OWS REST routes.
//! - [`producer`]: a batching, retrying producer with the paper's
//!   configuration surface (`acks`, retries, `buffer.memory`,
//!   `linger.ms`, batch size).
//! - [`consumer`]: a consumer-group consumer with auto/manual offset
//!   commit, seek to earliest/latest/timestamp, and
//!   `receive.buffer.bytes`-style fetch limits.

pub mod client;
pub mod consumer;
pub mod login;
pub mod producer;
pub mod tokenstore;

pub use client::OctopusClient;
pub use consumer::{Consumer, ConsumerConfig, OffsetReset};
pub use login::LoginManager;
pub use producer::{DeliveryReport, Producer, ProducerConfig};
pub use tokenstore::TokenStore;
