//! The Octopus Web Service (OWS) — the management plane of §IV-B.
//!
//! OWS lets authenticated users provision, configure, and share topics;
//! mint IAM credentials for the event fabric; and deploy triggers. It is
//! "an authorization intermediary between Globus Auth, Amazon IAM
//! authorization, and MSK" (§IV-C): bearer tokens are introspected
//! against the [`octopus_auth::AuthServer`]; identities map to IAM
//! principals; topic ownership is recorded in the replicated
//! [`octopus_zoo::ZooService`] (the "source of truth", §IV-F) and
//! mirrored into the ACL store the brokers enforce.
//!
//! Routes (exactly the paper's surface):
//!
//! | Route | Action |
//! |---|---|
//! | `PUT /topic/<topic>` | register topic, grant creator R/W/D |
//! | `GET /topics` | list topics the caller may describe |
//! | `GET /topic/<topic>` | a topic's configuration |
//! | `POST /topic/<topic>` | set configuration |
//! | `POST /topic/<topic>/partitions` | grow partitions |
//! | `POST /topic/<topic>/user` | grant/revoke an identity |
//! | `GET /create_key` | mint an IAM access key pair |
//! | `PUT /trigger/` | deploy a trigger |
//! | `GET /triggers/` | describe triggers |
//!
//! Plus the fleet-observatory surface (not in the paper, but required
//! to operate it): these share the same auth and rate-limit middleware.
//!
//! | Route | Action |
//! |---|---|
//! | `GET /metrics` | Prometheus text exposition of the shared registry |
//! | `GET /health` | cluster health rollup (JSON, with timeline) |
//! | `GET /lag/<group>` | per-partition consumer lag for a group |
//! | `GET /store` | durability configuration (data dir, flush policy, checkpoint cadence) |
//!
//! Every mutating handler is idempotent, so clients may blindly retry
//! (§IV-F: "API operations on the OWS side are programmed to be
//! idempotent").

pub mod http;
pub mod ratelimit;
pub mod registry;
pub mod service;

pub use http::{Method, Request, Response};
pub use ratelimit::RateLimiter;
pub use registry::FunctionRegistry;
pub use service::{parse_topic_config, OwsConfig, OwsService};

/// The OAuth scope OWS requires on bearer tokens.
pub const OWS_SCOPE: &str = "https://auth.octopus.science/scopes/ows/all";
