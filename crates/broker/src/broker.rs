//! A broker node: passive host of partition replica logs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use octopus_types::{PartitionId, TopicName};

use crate::log::PartitionLog;

/// Identifies a broker within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BrokerId(pub u32);

impl std::fmt::Display for BrokerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "broker-{}", self.0)
    }
}

/// A shareable handle to one partition replica's log.
pub type SharedLog = Arc<Mutex<PartitionLog>>;

/// A broker node. Brokers are passive: clients and the cluster routing
/// layer drive them, and per-partition mutexes make partitions the unit
/// of parallelism (Kafka's design point).
pub struct Broker {
    id: BrokerId,
    alive: AtomicBool,
    partitions: RwLock<HashMap<(TopicName, PartitionId), SharedLog>>,
}

impl Broker {
    /// A live broker with no partitions.
    pub fn new(id: BrokerId) -> Self {
        Broker { id, alive: AtomicBool::new(true), partitions: RwLock::new(HashMap::new()) }
    }

    /// This broker's id.
    pub fn id(&self) -> BrokerId {
        self.id
    }

    /// Whether the broker is up.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Crash the broker (its logs survive, like disk state).
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
    }

    /// Bring the broker back up. The cluster re-syncs its replicas.
    pub fn restart(&self) {
        self.alive.store(true, Ordering::Release);
    }

    /// Host a new (empty) replica of a partition.
    pub fn host_partition(&self, topic: &str, partition: PartitionId, segment_bytes: usize) {
        self.partitions.write().insert(
            (topic.to_string(), partition),
            Arc::new(Mutex::new(PartitionLog::with_segment_bytes(segment_bytes))),
        );
    }

    /// Drop a replica.
    pub fn drop_partition(&self, topic: &str, partition: PartitionId) {
        self.partitions.write().remove(&(topic.to_string(), partition));
    }

    /// The replica log for a partition, if hosted here.
    pub fn log(&self, topic: &str, partition: PartitionId) -> Option<SharedLog> {
        self.partitions.read().get(&(topic.to_string(), partition)).cloned()
    }

    /// Number of replicas hosted.
    pub fn partition_count(&self) -> usize {
        self.partitions.read().len()
    }

    /// All (topic, partition) pairs hosted.
    pub fn hosted_partitions(&self) -> Vec<(TopicName, PartitionId)> {
        self.partitions.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordBatch;
    use octopus_types::{Event, Timestamp};

    #[test]
    fn lifecycle_and_hosting() {
        let b = Broker::new(BrokerId(3));
        assert_eq!(b.id(), BrokerId(3));
        assert!(b.is_alive());
        assert_eq!(b.to_string_id(), "broker-3");

        b.host_partition("t", 0, 1024);
        b.host_partition("t", 1, 1024);
        assert_eq!(b.partition_count(), 2);
        assert!(b.log("t", 0).is_some());
        assert!(b.log("t", 9).is_none());
        assert!(b.log("other", 0).is_none());

        b.kill();
        assert!(!b.is_alive());
        b.restart();
        assert!(b.is_alive());

        b.drop_partition("t", 1);
        assert_eq!(b.partition_count(), 1);
    }

    #[test]
    fn logs_survive_kill() {
        let b = Broker::new(BrokerId(0));
        b.host_partition("t", 0, 1024);
        let log = b.log("t", 0).unwrap();
        log.lock()
            .append(&RecordBatch::new(vec![Event::from_bytes(&b"x"[..])]), Timestamp::now())
            .unwrap();
        b.kill();
        b.restart();
        assert_eq!(b.log("t", 0).unwrap().lock().len(), 1);
    }

    impl Broker {
        fn to_string_id(&self) -> String {
            self.id.to_string()
        }
    }
}
