//! Tier-1 durability drill: cold restarts and power loss against the
//! on-disk storage engine.
//!
//! The storage engine's contract, exercised end to end:
//!
//! * A cold restart (new `Cluster` over the same data dir) recovers
//!   every topic, every `acks=all` record, and every checkpointed
//!   committed offset.
//! * A seeded power-loss fault under `FlushPolicy::PerBatch` loses no
//!   committed record: the torn suffix is bounded to unflushed bytes,
//!   and recovery truncates exactly that.
//! * Offsets stay monotonic across restarts — recovery never rewinds
//!   `end_offset` below what was acknowledged, and committed consumer
//!   offsets never move backwards.
//! * The chaos harness surfaces recovery stats in its report.

use std::collections::HashSet;

use octopus::broker::{
    AckLevel, BrokerId, Cluster, FlushPolicy, RecordBatch, TempDir, TopicConfig,
};
use octopus::chaos::{ChaosConfig, ChaosHarness, FaultKind, FaultPlan};
use octopus::types::Event;
use octopus::Octopus;

fn ev(seq: u64) -> Event {
    Event::from_bytes(seq.to_le_bytes().to_vec())
}

fn seq_of(value: &[u8]) -> u64 {
    u64::from_le_bytes(value[..8].try_into().expect("8-byte payload"))
}

fn durable_cluster(dir: &std::path::Path, policy: FlushPolicy) -> Cluster {
    Cluster::builder(3).data_dir(dir).flush_policy(policy).build()
}

#[test]
fn cold_restart_recovers_records_topics_and_offsets() {
    let tmp = TempDir::new("octopus-data-drill-cold-restart");
    let acked: Vec<u64> = (0..40).collect();
    {
        let c = durable_cluster(tmp.path(), FlushPolicy::PerBatch);
        c.create_topic("t", TopicConfig::default().with_partitions(2).with_replication(2))
            .unwrap();
        for &s in &acked {
            c.produce_batch("t", (s % 2) as u32, RecordBatch::new(vec![ev(s)]), AckLevel::All)
                .unwrap();
        }
        c.coordinator().commit_unchecked("g", "t", 0, 10);
        c.coordinator().commit_unchecked("g", "t", 1, 7);
        // no graceful shutdown call: PerBatch means the acks themselves
        // were the durability barrier
    }

    let c = durable_cluster(tmp.path(), FlushPolicy::PerBatch);
    assert!(c.topic_exists("t"), "topic survives the restart");
    assert_eq!(c.partition_count("t").unwrap(), 2);
    let mut survived = HashSet::new();
    for p in 0..2 {
        for r in c.fetch("t", p, 0, 1000).unwrap() {
            assert!(r.verify(), "recovered record fails its CRC");
            survived.insert(seq_of(&r.value));
        }
    }
    for s in &acked {
        assert!(survived.contains(s), "acks=all record {s} lost across cold restart");
    }
    assert_eq!(c.coordinator().committed("g", "t", 0), Some(10));
    assert_eq!(c.coordinator().committed("g", "t", 1), Some(7));
}

#[test]
fn power_loss_drill_loses_no_committed_record() {
    let tmp = TempDir::new("octopus-data-drill-power-loss");
    let c = durable_cluster(tmp.path(), FlushPolicy::PerBatch);
    c.create_topic("t", TopicConfig::default().with_partitions(1).with_replication(3))
        .unwrap();
    let mut acked = Vec::new();
    for s in 0..25u64 {
        let r = c.produce_batch("t", 0, RecordBatch::new(vec![ev(s)]), AckLevel::All).unwrap();
        if r.persisted {
            acked.push(s);
        }
    }
    let victim = c.leader_broker("t", 0).unwrap();
    let report = c.power_loss_broker(victim, 0xC0FF_EE00_1234_5678).unwrap();
    assert!(report.partitions >= 1, "victim hosted the drill partition");
    // PerBatch fsyncs every acknowledged batch: nothing acked was
    // unflushed, so the tear has nothing committed to bite
    c.restart_broker(victim).unwrap();

    let end = c.latest_offset("t", 0).unwrap();
    assert!(end >= acked.len() as u64, "end offset rewound below the acked count");
    let survived: HashSet<u64> =
        c.fetch("t", 0, 0, 1000).unwrap().iter().map(|r| seq_of(&r.value)).collect();
    for s in &acked {
        assert!(survived.contains(s), "committed record {s} lost to power loss");
    }

    // offsets stay monotonic through a second full-cluster power cycle
    for id in 0..3 {
        let _ = c.power_loss_broker(BrokerId(id), id as u64);
    }
    for id in 0..3 {
        c.restart_broker(BrokerId(id)).unwrap();
    }
    assert!(c.latest_offset("t", 0).unwrap() >= end, "offset rewound after full power cycle");
    let survived: HashSet<u64> =
        c.fetch("t", 0, 0, 1000).unwrap().iter().map(|r| seq_of(&r.value)).collect();
    for s in &acked {
        assert!(survived.contains(s), "record {s} lost to the full-cluster power cycle");
    }
}

#[test]
fn power_loss_drill_is_deterministic_under_a_fixed_seed() {
    let run = |dir: &std::path::Path| -> (u64, Vec<u64>) {
        let c = durable_cluster(dir, FlushPolicy::IntervalMs(10_000));
        c.create_topic("t", TopicConfig::default().with_partitions(1).with_replication(1))
            .unwrap();
        for s in 0..30u64 {
            c.produce_batch("t", 0, RecordBatch::new(vec![ev(s)]), AckLevel::Leader).unwrap();
        }
        let report = c.power_loss_broker(BrokerId(0), 42).unwrap();
        c.restart_broker(BrokerId(0)).unwrap();
        let survivors =
            c.fetch("t", 0, 0, 1000).map(|v| v.iter().map(|r| seq_of(&r.value)).collect()).unwrap_or_default();
        (report.bytes_torn, survivors)
    };
    let tmp_a = TempDir::new("octopus-data-drill-seed-a");
    let tmp_b = TempDir::new("octopus-data-drill-seed-b");
    let a = run(tmp_a.path());
    let b = run(tmp_b.path());
    assert_eq!(a, b, "same seed, same workload: the tear must be identical");
    // with a 10s flush interval and no sync, the tear had unflushed
    // bytes to bite — otherwise this test is vacuous
    assert!(a.0 > 0, "expected a non-empty unflushed suffix to tear");
}

#[test]
fn chaos_report_carries_recovery_stats() {
    let tmp = TempDir::new("octopus-data-drill-chaos-recovery");
    let plan = FaultPlan::new(5)
        .at(25, FaultKind::PowerLoss { broker: 2, entropy: 99 })
        .at(80, FaultKind::BrokerRestart { broker: 2 });
    let report = ChaosHarness::new(plan)
        .with_config(ChaosConfig {
            data_dir: Some(tmp.path().to_path_buf()),
            flush_policy: FlushPolicy::PerBatch,
            drain_timeout: std::time::Duration::from_secs(10),
            ..ChaosConfig::default()
        })
        .run();
    report.assert_invariants();
    assert!(report.recovery.flushes > 0, "PerBatch deployment never fsynced");
    assert!(
        report.recovery.records_recovered > 0,
        "the post-power-loss restart recovered no records: {:?}",
        report.recovery
    );
    assert!(
        report.trace.entries.iter().any(|e| e.outcome.contains("power loss")),
        "power-loss fault never applied: {:?}",
        report.trace.entries
    );
}

#[test]
fn durable_deployment_via_octopus_builder_and_ows() {
    let tmp = TempDir::new("octopus-data-drill-octopus");
    let octo = Octopus::builder().data_dir(tmp.path()).flush_policy(FlushPolicy::PerBatch).build().unwrap();
    octo.register_provider("uchicago.edu", "University of Chicago");
    octo.register_user("alice@uchicago.edu", "pw").unwrap();
    let session = octo.login("alice@uchicago.edu", "pw").unwrap();
    session.client().register_topic("persisted", serde_json::Value::Null).unwrap();
    let producer = session.producer();
    producer.send_sync("persisted", Event::from_bytes(&b"survives"[..])).unwrap();

    // the OWS surface reports the durable configuration
    let info = octo.cluster().durability().expect("durable cluster");
    assert_eq!(info.flush_policy, FlushPolicy::PerBatch);
    assert_eq!(info.data_dir, tmp.path().display().to_string());

    // a fresh fabric over the same dir still has the record
    drop(producer);
    drop(octo);
    let c = Cluster::builder(2).data_dir(tmp.path()).build();
    assert!(c.topic_exists("persisted"));
    let recs = c.fetch("persisted", 0, 0, 10).unwrap();
    assert_eq!(&recs[0].value[..], b"survives");
}
