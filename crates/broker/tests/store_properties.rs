//! Property tests for the durable storage engine.
//!
//! Two properties anchor the recovery contract:
//!
//! 1. **Idempotence** — `recover ∘ recover == recover`. Running the
//!    recovery scan over an already-recovered partition must change
//!    nothing: no further truncation, identical records, identical
//!    bytes on disk. Without this, every restart would erode the log.
//! 2. **Exact torn-tail truncation** — for *every* byte length the
//!    final segment file can be cut to, recovery keeps precisely the
//!    records whose frames are fully contained in the surviving prefix
//!    and truncates the file to exactly that frame boundary. Not one
//!    byte more (no garbage served), not one record fewer (no committed
//!    data thrown away).

use std::fs;
use std::path::Path;

use proptest::prelude::*;

use octopus_broker::log::PartitionLog;
use octopus_broker::store::PartitionStore;
use octopus_broker::{Compression, FlushPolicy, SeekMode, StoreMetrics, StoreOptions, TempDir};
use octopus_broker::RecordBatch;
use octopus_types::{Event, MetricsRegistry, Timestamp};

fn metrics() -> StoreMetrics {
    StoreMetrics::new(&MetricsRegistry::shared())
}

/// Everything observable about a recovered partition: the in-memory
/// view plus the exact bytes of every segment file.
fn state_of(log: &PartitionLog, dir: &Path) -> (usize, u64, u64, Vec<(String, Vec<u8>)>) {
    let mut files = Vec::new();
    for entry in fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) == Some("seg") {
            files.push((
                path.file_name().unwrap().to_string_lossy().into_owned(),
                fs::read(&path).unwrap(),
            ));
        }
    }
    files.sort();
    (log.len(), log.start_offset(), log.end_offset(), files)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// recover ∘ recover == recover, under arbitrary record shapes and
    /// an arbitrary power-loss tear point.
    #[test]
    fn recovery_is_idempotent(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..24),
        entropy in any::<u64>(),
    ) {
        let tmp = TempDir::new("octopus-data-idem");
        let dir = tmp.path().join("p");
        // small roll size + OsManaged: multiple segments, nothing
        // fsynced on the active one -> the tear has room to bite
        let (mut log, _) =
            PartitionLog::open_durable(256, &dir, FlushPolicy::OsManaged, metrics()).unwrap();
        for p in &payloads {
            log.append(&RecordBatch::new(vec![Event::from_bytes(p.clone())]), Timestamp::now())
                .unwrap();
        }
        log.power_loss(entropy).unwrap();

        let first = log.recover().unwrap();
        let after_first = state_of(&log, &dir);
        let second = log.recover().unwrap();
        let after_second = state_of(&log, &dir);

        prop_assert_eq!(second.records_truncated, 0, "second recovery truncated records");
        prop_assert_eq!(second.bytes_truncated, 0, "second recovery truncated bytes");
        prop_assert_eq!(second.records_recovered, first.records_recovered);
        prop_assert_eq!(after_first, after_second, "state changed across recoveries");
    }

    /// After recovery the log still appends at the right offset: the
    /// next record lands at `end_offset`, and a fresh reopen sees it.
    #[test]
    fn recovered_log_stays_appendable(
        n in 1usize..16,
        entropy in any::<u64>(),
    ) {
        let tmp = TempDir::new("octopus-data-append");
        let dir = tmp.path().join("p");
        let (mut log, _) =
            PartitionLog::open_durable(512, &dir, FlushPolicy::OsManaged, metrics()).unwrap();
        for i in 0..n {
            log.append(&RecordBatch::new(vec![Event::from_bytes(vec![i as u8; 8])]), Timestamp::now())
                .unwrap();
        }
        log.power_loss(entropy).unwrap();
        log.recover().unwrap();
        let end = log.end_offset();
        let got = log
            .append(&RecordBatch::new(vec![Event::from_bytes(&b"post-recovery"[..])]), Timestamp::now())
            .unwrap();
        prop_assert_eq!(got, end);
        log.sync_store().unwrap();
        drop(log);
        let (reopened, _) =
            PartitionLog::open_durable(512, &dir, FlushPolicy::OsManaged, metrics()).unwrap();
        prop_assert_eq!(reopened.end_offset(), end + 1);
        let recs = reopened.read(end, 10).unwrap();
        prop_assert_eq!(&recs[0].value[..], b"post-recovery");
    }

    /// Sparse-index seeks agree with the linear-scan baseline and with
    /// an in-memory reference, for arbitrary payloads, segment roll
    /// sizes, index densities, codecs, and read positions.
    #[test]
    fn indexed_seeks_match_linear_scan_and_reference(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..96), 1..40),
        segment_bytes in 128usize..2048,
        index_interval in 64u64..1024,
        lz4 in any::<bool>(),
        from_salt in any::<u64>(),
        max in 1usize..64,
    ) {
        let tmp = TempDir::new("octopus-data-seek");
        let dir = tmp.path().join("p");
        let opts = StoreOptions {
            index_interval_bytes: index_interval,
            compression: if lz4 { Compression::Lz4 } else { Compression::None },
            ..StoreOptions::default()
        };
        let (mut log, _) = PartitionLog::open_durable_with(
            segment_bytes, &dir, FlushPolicy::PerBatch, metrics(), opts,
        ).unwrap();
        let mut reference = Vec::new();
        for p in &payloads {
            let off = log.append(
                &RecordBatch::new(vec![Event::from_bytes(p.clone())]), Timestamp::now(),
            ).unwrap();
            reference.push((off, p.clone()));
        }
        log.sync_store().unwrap();
        let store = log.store().expect("durable log has a store");
        let n = reference.len() as u64;
        // probe below, inside, at, and past the live range
        for from in [0, from_salt % n, n.saturating_sub(1), n, n + 7] {
            let indexed = store.read_records(from, max, SeekMode::Indexed).unwrap();
            let linear = store.read_records(from, max, SeekMode::LinearScan).unwrap();
            prop_assert_eq!(&indexed, &linear, "seek modes diverged at from={}", from);
            let expect: Vec<_> =
                reference.iter().filter(|(o, _)| *o >= from).take(max).collect();
            prop_assert_eq!(indexed.len(), expect.len());
            for (got, (off, payload)) in indexed.iter().zip(&expect) {
                prop_assert_eq!(got.offset, *off);
                prop_assert_eq!(&got.value[..], &payload[..]);
                prop_assert!(got.verify());
            }
        }
    }

    /// Arbitrary byte corruption of a compressed segment file never
    /// panics recovery and never serves a record that fails its CRC:
    /// the scan keeps a clean prefix and truncates the rest.
    #[test]
    fn corrupted_compressed_segment_never_panics_or_serves_garbage(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..16),
        flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8),
    ) {
        let tmp = TempDir::new("octopus-data-corrupt");
        let dir = tmp.path().join("p");
        let opts = StoreOptions { compression: Compression::Lz4, ..StoreOptions::default() };
        {
            let (mut store, _, _) = PartitionStore::open_with(
                &dir, FlushPolicy::PerBatch, metrics(), opts.clone(),
            ).unwrap();
            let records: Vec<_> = payloads.iter().enumerate().map(|(i, p)| {
                let mut r = octopus_broker::Record {
                    offset: i as u64,
                    append_time: Timestamp::from_millis(i as u64),
                    key: None,
                    value: p.clone().into(),
                    headers: Vec::new(),
                    producer_time: Timestamp::from_millis(i as u64),
                    crc: 0,
                    eos: None,
                };
                r.crc = r.compute_crc();
                r
            }).collect();
            store.append_batch(&records, 0).unwrap();
            store.commit_batch().unwrap();
        }
        let seg = dir.join(format!("{:020}.seg", 0));
        let mut bytes = fs::read(&seg).unwrap();
        if !bytes.is_empty() {
            for (pos, mask) in &flips {
                let len = bytes.len();
                bytes[*pos as usize % len] ^= mask | 1; // never a no-op flip
            }
            fs::write(&seg, &bytes).unwrap();
            let (store, recovered, _) = PartitionStore::open_with(
                &dir, FlushPolicy::PerBatch, metrics(), opts,
            ).unwrap();
            // whatever survived is a dense CRC-clean prefix
            let records = store.read_records(0, usize::MAX, SeekMode::Indexed).unwrap();
            prop_assert!(records.len() <= payloads.len());
            for (i, r) in records.iter().enumerate() {
                prop_assert_eq!(r.offset, i as u64);
                prop_assert!(r.verify(), "corrupt record served after byte flips");
                prop_assert_eq!(&r.value[..], &payloads[i][..]);
            }
            let total: u64 = recovered.iter().map(|s| s.record_count()).sum();
            prop_assert_eq!(total as usize, records.len());
        }
    }
}

/// Exhaustive, not sampled: cut the final segment at *every* byte
/// length and check recovery keeps exactly the fully-framed prefix.
#[test]
fn torn_tail_truncation_exact_at_every_byte_cut() {
    let tmp = TempDir::new("octopus-data-cut");
    let dir = tmp.path().join("p");
    {
        let (mut log, _) =
            PartitionLog::open_durable(1 << 20, &dir, FlushPolicy::PerBatch, metrics()).unwrap();
        for i in 0..6u8 {
            log.append(
                &RecordBatch::new(vec![Event::from_bytes(vec![i; 5 + i as usize])]),
                Timestamp::now(),
            )
            .unwrap();
        }
        // Drop syncs: the file is complete on disk
    }
    let seg = dir.join(format!("{:020}.seg", 0));
    let full = fs::read(&seg).unwrap();

    // Frame boundaries from the wire format: [magic][len u32 LE][crc u32 LE][payload]
    let mut bounds = vec![0usize];
    let mut pos = 0usize;
    while pos + 9 <= full.len() {
        let len = u32::from_le_bytes(full[pos + 1..pos + 5].try_into().unwrap()) as usize;
        pos += 9 + len;
        bounds.push(pos);
    }
    assert_eq!(pos, full.len(), "file is a whole number of frames");
    assert_eq!(bounds.len() - 1, 6, "one frame per record");

    for cut in 0..=full.len() {
        fs::write(&seg, &full[..cut]).unwrap();
        let (log, stats) =
            PartitionLog::open_durable(1 << 20, &dir, FlushPolicy::PerBatch, metrics()).unwrap();
        let keep = bounds.iter().filter(|b| **b <= cut).count() - 1;
        assert_eq!(log.len(), keep, "cut at {cut}: wrong surviving record count");
        assert_eq!(log.end_offset(), keep as u64, "cut at {cut}: wrong end offset");
        let disk = fs::metadata(&seg).unwrap().len() as usize;
        assert_eq!(disk, bounds[keep], "cut at {cut}: not truncated to the frame boundary");
        assert_eq!(
            stats.bytes_truncated,
            (cut - bounds[keep]) as u64,
            "cut at {cut}: truncation stats disagree with the cut"
        );
        if keep > 0 {
            let recs = log.read(0, 100).unwrap();
            assert!(recs.iter().all(|r| r.verify()), "cut at {cut}: corrupt record served");
            assert_eq!(recs.len(), keep);
        }
        drop(log);
    }
}

/// A torn byte *inside* the file (not just a short tail) also stops
/// recovery at the damage, for every byte position.
#[test]
fn flipped_byte_truncates_from_damaged_frame() {
    let tmp = TempDir::new("octopus-data-flip");
    let dir = tmp.path().join("p");
    {
        let (mut log, _) =
            PartitionLog::open_durable(1 << 20, &dir, FlushPolicy::PerBatch, metrics()).unwrap();
        for i in 0..4u8 {
            log.append(&RecordBatch::new(vec![Event::from_bytes(vec![i; 9])]), Timestamp::now())
                .unwrap();
        }
    }
    let seg = dir.join(format!("{:020}.seg", 0));
    let full = fs::read(&seg).unwrap();
    let mut bounds = vec![0usize];
    let mut pos = 0usize;
    while pos + 9 <= full.len() {
        let len = u32::from_le_bytes(full[pos + 1..pos + 5].try_into().unwrap()) as usize;
        pos += 9 + len;
        bounds.push(pos);
    }

    for flip in 0..full.len() {
        let mut bytes = full.clone();
        bytes[flip] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();
        let (log, _) =
            PartitionLog::open_durable(1 << 20, &dir, FlushPolicy::PerBatch, metrics()).unwrap();
        // every record before the damaged frame survives; nothing after
        // the damage is served
        let damaged_frame = bounds.iter().filter(|b| **b <= flip).count() - 1;
        assert_eq!(log.len(), damaged_frame, "flip at {flip}: wrong surviving count");
        if damaged_frame > 0 {
            assert!(log.read(0, 100).unwrap().iter().all(|r| r.verify()));
        }
        drop(log);
    }
}
