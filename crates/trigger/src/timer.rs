//! Timer event sources.
//!
//! The epidemic platform uses "timer-based events to retrieve updates
//! periodically from the various data sources" (§VI-D) — the
//! EventBridge-schedule analogue. A [`TimerSource`] publishes a
//! `timer_tick` event to a topic on a fixed period; triggers subscribed
//! to that topic become periodic jobs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use octopus_broker::{AckLevel, Cluster};
use octopus_types::{Event, OctoResult};

/// A periodic event source bound to a topic.
pub struct TimerSource {
    cluster: Cluster,
    topic: String,
    name: String,
    ticks: Arc<AtomicU64>,
}

impl TimerSource {
    /// A timer named `name` publishing to `topic` (must exist).
    pub fn new(cluster: Cluster, topic: &str, name: &str) -> Self {
        TimerSource {
            cluster,
            topic: topic.to_string(),
            name: name.to_string(),
            ticks: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Publish one tick now (deterministic driving for tests and
    /// simulations). Returns the tick number.
    pub fn fire_once(&self) -> OctoResult<u64> {
        let tick = self.ticks.fetch_add(1, Ordering::SeqCst);
        let event = Event::builder()
            .key(self.name.clone())
            .json(&serde_json::json!({
                "event_type": "timer_tick",
                "timer": self.name,
                "tick": tick,
            }))?
            .build();
        self.cluster.produce(&self.topic, event, AckLevel::Leader)?;
        Ok(tick)
    }

    /// Ticks fired so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::SeqCst)
    }

    /// Spawn a background thread firing every `period`. The returned
    /// handle stops the timer when dropped or explicitly stopped.
    pub fn start(self, period: Duration) -> TimerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let ticks = self.ticks.clone();
        let join = std::thread::spawn(move || {
            while !stop2.load(Ordering::Acquire) {
                let _ = self.fire_once();
                std::thread::park_timeout(period);
            }
        });
        TimerHandle { stop, join: Some(join), ticks }
    }
}

/// Handle to a running timer.
pub struct TimerHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
    ticks: Arc<AtomicU64>,
}

impl TimerHandle {
    /// Ticks fired so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::SeqCst)
    }

    /// Stop the timer and wait for the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(j) = self.join.take() {
            j.thread().unpark();
            let _ = j.join();
        }
    }
}

impl Drop for TimerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AutoscalerConfig, FunctionConfig, TriggerRuntime, TriggerSpec};
    use octopus_broker::TopicConfig;
    use octopus_pattern::Pattern;
    use octopus_types::Uid;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn fire_once_publishes_tick_events() {
        let cluster = Cluster::new(2);
        cluster.create_topic("timers", TopicConfig::default()).unwrap();
        let timer = TimerSource::new(cluster.clone(), "timers", "daily-ingest");
        assert_eq!(timer.fire_once().unwrap(), 0);
        assert_eq!(timer.fire_once().unwrap(), 1);
        assert_eq!(timer.ticks(), 2);
        let total: usize =
            (0..2).map(|p| cluster.fetch("timers", p, 0, 100).unwrap().len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn timer_drives_a_periodic_trigger() {
        let cluster = Cluster::new(2);
        cluster.create_topic("timers", TopicConfig::default()).unwrap();
        let rt = TriggerRuntime::new(cluster.clone());
        let runs = Arc::new(AtomicUsize::new(0));
        let runs2 = runs.clone();
        rt.deploy(TriggerSpec {
            name: "periodic-ingest".into(),
            topic: "timers".into(),
            pattern: Some(
                Pattern::parse(&serde_json::json!({
                    "event_type": ["timer_tick"], "timer": ["daily-ingest"]
                }))
                .unwrap(),
            ),
            config: FunctionConfig::default(),
            function: Arc::new(move |_ctx, batch| {
                runs2.fetch_add(batch.len(), Ordering::SeqCst);
                Ok(())
            }),
            acting_as: Uid(1),
            autoscaler: AutoscalerConfig::default(),
        })
        .unwrap();
        let timer = TimerSource::new(cluster.clone(), "timers", "daily-ingest");
        // another timer on the same topic is filtered out by the pattern
        let other = TimerSource::new(cluster, "timers", "hourly-cleanup");
        for _ in 0..3 {
            timer.fire_once().unwrap();
            other.fire_once().unwrap();
        }
        rt.poll_once("periodic-ingest").unwrap();
        assert_eq!(runs.load(Ordering::SeqCst), 3, "only the matching timer's ticks run");
    }

    #[test]
    fn background_timer_fires_and_stops() {
        let cluster = Cluster::new(2);
        cluster.create_topic("timers", TopicConfig::default()).unwrap();
        let timer = TimerSource::new(cluster, "timers", "fast");
        let handle = timer.start(Duration::from_millis(3));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while handle.ticks() < 3 {
            assert!(std::time::Instant::now() < deadline, "timer did not fire");
            std::thread::sleep(Duration::from_millis(2));
        }
        let at_stop = handle.ticks();
        handle.stop();
        assert!(at_stop >= 3);
    }
}
