//! §IV-F delivery semantics under failure injection: producer retries
//! across broker outages, at-least-once consumption across consumer
//! crashes, acks=all durability across leader failover.

use std::time::Duration;

use octopus::broker::{
    AckLevel, BrokerId, FlushPolicy, ProducerStamp, RecordBatch, TempDir,
};
use octopus::prelude::*;
use octopus::sdk::{Consumer, ConsumerConfig, Producer, ProducerConfig};

fn ev(s: &str) -> Event {
    Event::from_bytes(s.as_bytes().to_vec())
}

#[test]
fn producer_retries_through_total_outage() {
    let cluster = Cluster::new(2);
    cluster.create_topic("t", TopicConfig::default().with_partitions(1)).unwrap();
    let producer = Producer::new(
        cluster.clone(),
        ProducerConfig {
            retries: 100,
            retry_backoff: Duration::from_millis(2),
            ..Default::default()
        },
    );
    cluster.kill_broker(BrokerId(0)).unwrap();
    cluster.kill_broker(BrokerId(1)).unwrap();
    let healer = {
        let cluster = cluster.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            cluster.restart_broker(BrokerId(0)).unwrap();
            cluster.restart_broker(BrokerId(1)).unwrap();
        })
    };
    let receipt = producer.send_sync("t", ev("survives"));
    healer.join().unwrap();
    assert!(receipt.is_ok(), "retries outlast the outage: {receipt:?}");
    assert_eq!(cluster.fetch("t", 0, 0, 10).unwrap().len(), 1);
}

#[test]
fn at_least_once_across_consumer_crash() {
    let cluster = Cluster::new(2);
    cluster.create_topic("t", TopicConfig::default().with_partitions(1)).unwrap();
    for i in 0..20 {
        cluster.produce("t", ev(&format!("{i}")), AckLevel::Leader).unwrap();
    }
    let config = || ConsumerConfig {
        group: "g".into(),
        auto_commit_interval: None, // manual commit only
        max_poll_records: 10,
        ..Default::default()
    };
    // consumer 1 reads 10, commits, reads 10 more, crashes uncommitted
    {
        let mut c1 = Consumer::new(cluster.clone(), config());
        c1.subscribe(&["t"]).unwrap();
        assert_eq!(c1.poll().unwrap().len(), 10);
        c1.commit_sync().unwrap();
        assert_eq!(c1.poll().unwrap().len(), 10);
        // drop without commit: crash
    }
    // consumer 2 resumes from the committed offset: the 10 uncommitted
    // records are redelivered (at-least-once), none are lost
    let mut c2 = Consumer::new(cluster.clone(), config());
    c2.subscribe(&["t"]).unwrap();
    let redelivered = c2.poll().unwrap();
    assert_eq!(redelivered.len(), 10);
    assert_eq!(&redelivered[0].event.payload[..], b"10");
}

#[test]
fn acks_all_data_survives_leader_failure() {
    let cluster = Cluster::new(2);
    cluster
        .create_topic("t", TopicConfig::default().with_partitions(1).with_min_insync(2))
        .unwrap();
    for i in 0..10 {
        cluster
            .produce_batch("t", 0, RecordBatch::new(vec![ev(&format!("{i}"))]), AckLevel::All)
            .unwrap();
    }
    let leader = cluster.leader_broker("t", 0).unwrap();
    cluster.kill_broker(leader).unwrap();
    // the follower has everything; reads fail over transparently
    let records = cluster.fetch("t", 0, 0, 100).unwrap();
    assert_eq!(records.len(), 10, "acks=all data survives losing the leader");
    assert_ne!(cluster.leader_broker("t", 0).unwrap(), leader);
}

#[test]
fn acks_zero_can_lose_what_acks_all_cannot() {
    // the durability contrast the paper's acks experiments (#2 vs #4)
    // trade throughput for
    let cluster = Cluster::new(2);
    cluster.create_topic("t", TopicConfig::default().with_partitions(1)).unwrap();
    cluster.kill_broker(BrokerId(0)).unwrap();
    cluster.kill_broker(BrokerId(1)).unwrap();
    // acks=0 swallows the loss silently
    let r = cluster
        .produce_batch("t", 0, RecordBatch::new(vec![ev("ghost")]), AckLevel::None)
        .unwrap();
    assert!(!r.persisted);
    // acks=all reports it
    assert!(cluster
        .produce_batch("t", 0, RecordBatch::new(vec![ev("x")]), AckLevel::All)
        .is_err());
    cluster.restart_broker(BrokerId(0)).unwrap();
    cluster.restart_broker(BrokerId(1)).unwrap();
    assert_eq!(cluster.fetch("t", 0, 0, 10).unwrap().len(), 0, "the acks=0 event is gone");
}

#[test]
fn consumer_group_rebalance_loses_nothing() {
    let cluster = Cluster::new(2);
    cluster.create_topic("t", TopicConfig::default().with_partitions(4)).unwrap();
    for i in 0..100 {
        cluster.produce("t", ev(&format!("{i}")), AckLevel::Leader).unwrap();
    }
    let config = |_m: &str| ConsumerConfig {
        group: "g".into(),
        auto_commit_interval: None,
        max_poll_records: 7,
        ..Default::default()
    };
    let mut c1 = Consumer::new(cluster.clone(), config("m1"));
    c1.subscribe(&["t"]).unwrap();
    // consume a bit solo, commit
    let mut seen: Vec<(u32, u64)> = Vec::new();
    for _ in 0..3 {
        for d in c1.poll().unwrap() {
            seen.push((d.partition, d.offset));
        }
        c1.commit_sync().unwrap();
    }
    // a second member joins mid-stream: rebalance
    let mut c2 = Consumer::new(cluster.clone(), config("m2"));
    c2.subscribe(&["t"]).unwrap();
    for _ in 0..60 {
        for d in c1.poll().unwrap() {
            seen.push((d.partition, d.offset));
        }
        let _ = c1.commit_sync();
        for d in c2.poll().unwrap() {
            seen.push((d.partition, d.offset));
        }
        let _ = c2.commit_sync();
        if seen.len() >= 100 {
            break;
        }
    }
    // every record was delivered at least once
    let unique: std::collections::HashSet<(u32, u64)> = seen.iter().copied().collect();
    assert_eq!(unique.len(), 100, "all 100 records delivered (saw {} total)", seen.len());
}

#[test]
fn exactly_once_across_power_loss_and_restart() {
    // The §IV-F upgrade from at-least-once to exactly-once: an
    // idempotent producer keeps retrying through an ambiguous ack and
    // a mid-stream power loss, and every sent event is delivered to a
    // read-committed consumer exactly once. Three fixed seeds vary the
    // power-loss victim and torn-tail entropy; each must reproduce.
    for seed in [0xA1u64, 0xB2, 0xC3] {
        let tmp = TempDir::new("octopus-data-eos");
        let cluster = Cluster::builder(3)
            .data_dir(tmp.path().to_path_buf())
            .flush_policy(FlushPolicy::PerBatch)
            .build();
        cluster
            .create_topic(
                "t",
                TopicConfig::default().with_partitions(1).with_replication(3).with_min_insync(2),
            )
            .unwrap();
        let producer = Producer::new(
            cluster.clone(),
            ProducerConfig {
                retries: 60,
                retry_backoff: Duration::from_millis(2),
                client_id: Some(format!("eos-{seed:#x}")),
                ..ProducerConfig::idempotent()
            },
        );
        let total = 60u64;
        let victim = BrokerId((seed % 3) as u32);
        let mut acked = 0u64;
        for i in 0..total {
            match i {
                // ambiguous ack: the append lands, the ack is lost,
                // the producer's retry must be deduplicated
                20 => {
                    let leader = cluster.leader_broker("t", 0).unwrap();
                    cluster.fault_injector().inject_ack_drop(leader, 1);
                }
                // power loss mid-stream; acks=all + min_isr=2 keeps
                // the fabric writable on the surviving pair
                40 => {
                    cluster.power_loss_broker(victim, seed).unwrap();
                }
                50 => {
                    cluster.restart_broker(victim).unwrap();
                    let _ = cluster.resync_broker(victim);
                }
                _ => {}
            }
            if producer.send_sync("t", ev(&format!("seq-{i:04}"))).is_ok() {
                acked += 1;
            }
        }
        producer.close();
        assert_eq!(acked, total, "seed {seed:#x}: every send eventually acked");
        let mut consumer = Consumer::new(
            cluster.clone(),
            ConsumerConfig {
                group: "eos-audit".into(),
                auto_commit_interval: None,
                ..ConsumerConfig::read_committed()
            },
        );
        consumer.subscribe(&["t"]).unwrap();
        let mut delivered: Vec<String> = Vec::new();
        for _ in 0..100 {
            let batch = consumer.poll().unwrap();
            if batch.is_empty() && delivered.len() >= total as usize {
                break;
            }
            delivered.extend(
                batch.iter().map(|d| String::from_utf8_lossy(&d.event.payload).into_owned()),
            );
        }
        let unique: std::collections::HashSet<&String> = delivered.iter().collect();
        assert_eq!(
            delivered.len(),
            total as usize,
            "seed {seed:#x}: delivered == sent (got {delivered:?})"
        );
        assert_eq!(unique.len(), total as usize, "seed {seed:#x}: zero duplicates");
    }
}

#[test]
fn dedup_state_survives_leader_power_loss_mid_retry() {
    // The sharpest EOS edge: the ack for a durable append is lost, and
    // the leader that holds the dedup window dies before the retry
    // arrives. The window must be rebuilt from the surviving log —
    // answering the retry with "already appended", not a second copy.
    let tmp = TempDir::new("octopus-data-eosdrill");
    let cluster = Cluster::builder(3)
        .data_dir(tmp.path().to_path_buf())
        .flush_policy(FlushPolicy::PerBatch)
        .build();
    cluster
        .create_topic(
            "t",
            TopicConfig::default().with_partitions(1).with_replication(3).with_min_insync(2),
        )
        .unwrap();
    let id = cluster.register_producer("drill").unwrap();
    let stamped = RecordBatch::new(vec![ev("once-and-only-once")]).with_producer(
        ProducerStamp { pid: id.pid, epoch: id.epoch, seq: 0 },
        false,
    );
    let leader = cluster.leader_broker("t", 0).unwrap();
    cluster.fault_injector().inject_ack_drop(leader, 1);
    let err = cluster.produce_batch("t", 0, stamped.clone(), AckLevel::All).unwrap_err();
    assert!(matches!(err, OctoError::Timeout(_)), "ambiguous ack surfaced as timeout: {err:?}");
    // leader dies (power loss) before the retry; a replica takes over
    cluster.power_loss_broker(leader, 0xFEED_FACE).unwrap();
    cluster.restart_broker(leader).unwrap();
    let _ = cluster.resync_broker(leader);
    let receipt = cluster.produce_batch("t", 0, stamped, AckLevel::All).unwrap();
    assert!(receipt.deduplicated, "retry answered from dedup state rebuilt off the new leader");
    assert_eq!(receipt.base_offset, 0);
    let records = cluster.fetch("t", 0, 0, 10).unwrap();
    assert_eq!(records.len(), 1, "exactly one copy in the log");
    assert_eq!(&records[0].value[..], b"once-and-only-once");
}

#[test]
fn retention_expired_consumer_skips_forward_not_crashes() {
    let mut config = TopicConfig::default().with_partitions(1);
    config.segment_bytes = 64;
    config.retention.retention_ms = Some(0);
    let cluster = Cluster::new(2);
    cluster.create_topic("t", config).unwrap();
    for i in 0..50 {
        cluster.produce("t", ev(&format!("event-{i:04}")), AckLevel::Leader).unwrap();
    }
    std::thread::sleep(Duration::from_millis(5));
    let removed = cluster.run_maintenance();
    assert!(removed > 0, "retention must have dropped old segments");
    let mut consumer = Consumer::new(
        cluster.clone(),
        ConsumerConfig { group: "late".into(), auto_commit_interval: None, ..Default::default() },
    );
    consumer.subscribe(&["t"]).unwrap();
    // the consumer starts at the (advanced) earliest offset and reads
    // the retained tail without error
    let batch = consumer.poll().unwrap();
    assert!(!batch.is_empty());
    assert!(batch[0].offset > 0, "history before offset {} was reclaimed", batch[0].offset);
}
