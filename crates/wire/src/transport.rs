//! The client-side transport abstraction.
//!
//! [`Transport`] is the seam between the SDK clients (producer,
//! consumer, admin) and the fabric they speak to. Two implementations
//! exist:
//!
//! - [`InProcessTransport`] wraps a [`Cluster`] handle directly — the
//!   path every pre-existing test, the DES, and the chaos harness use.
//!   It adds zero indirection beyond a vtable call, preserving the
//!   determinism those layers depend on.
//! - [`crate::TcpTransport`] speaks the binary protocol over a real
//!   socket to a [`crate::WireServer`].
//!
//! The trait surface is exactly the set of cluster calls the SDK makes
//! today; it deliberately does not expose chaos controls, broker
//! lifecycle, or other operator-side APIs — those stay in-process.

use std::collections::HashMap;
use std::sync::Arc;

use octopus_auth::Permission;
use octopus_broker::{
    AckLevel, Cluster, MemberAssignment, ProduceReceipt, ProducerIdentity, Record, RecordBatch,
    TopicConfig, TxnOffset,
};
use octopus_types::{
    Event, MetricsRegistry, OctoResult, Offset, PartitionId, SpanSink, StageMetrics, Timestamp,
    TopicName, Uid,
};

/// How SDK clients reach the event fabric: in-process or over a wire.
///
/// All methods are `&self` and thread-safe; the SDK shares one
/// transport between its worker threads behind an `Arc`.
pub trait Transport: Send + Sync {
    /// Human-readable endpoint description for diagnostics.
    fn describe(&self) -> String;

    // ----- topic metadata / admin -----

    fn topic_exists(&self, topic: &str) -> bool;
    fn topics(&self) -> OctoResult<Vec<TopicName>>;
    fn topic_config(&self, topic: &str) -> OctoResult<TopicConfig>;
    fn create_topic(&self, topic: &str, config: TopicConfig) -> OctoResult<()>;
    fn delete_topic(&self, topic: &str) -> OctoResult<()>;
    fn partition_count(&self, topic: &str) -> OctoResult<u32>;
    /// Choose a partition for a key (broker-compatible hash) or the
    /// next round-robin slot for keyless events.
    fn partition_for(&self, topic: &str, key: Option<&[u8]>) -> OctoResult<PartitionId>;

    /// Client-side authorization probe. The in-process transport
    /// checks the cluster ACL as `principal`; the TCP transport
    /// returns `Ok` and lets the server enforce against the
    /// authenticated handshake principal (a remote client's claimed
    /// principal is not trustworthy input).
    fn authorize(&self, topic: &str, principal: Option<Uid>, perm: Permission) -> OctoResult<()>;

    // ----- data path -----

    fn produce_batch(
        &self,
        topic: &str,
        partition: PartitionId,
        batch: RecordBatch,
        acks: AckLevel,
    ) -> OctoResult<ProduceReceipt>;

    fn fetch(
        &self,
        topic: &str,
        partition: PartitionId,
        offset: Offset,
        max_records: usize,
        principal: Option<Uid>,
    ) -> OctoResult<Vec<Record>>;

    fn fetch_committed(
        &self,
        topic: &str,
        partition: PartitionId,
        offset: Offset,
        max_records: usize,
    ) -> OctoResult<(Vec<Record>, Offset)>;

    fn earliest_offset(&self, topic: &str, partition: PartitionId) -> OctoResult<Offset>;
    fn latest_offset(&self, topic: &str, partition: PartitionId) -> OctoResult<Offset>;
    fn offset_for_timestamp(
        &self,
        topic: &str,
        partition: PartitionId,
        ts: Timestamp,
    ) -> OctoResult<Offset>;

    // ----- consumer groups -----

    fn group_join(
        &self,
        group: &str,
        member: &str,
        topics: Vec<TopicName>,
        counts: &HashMap<TopicName, u32>,
    ) -> OctoResult<MemberAssignment>;

    fn group_assignment(&self, group: &str, member: &str)
        -> OctoResult<Option<MemberAssignment>>;

    fn group_leave(
        &self,
        group: &str,
        member: &str,
        counts: &HashMap<TopicName, u32>,
    ) -> OctoResult<()>;

    fn offset_commit(
        &self,
        group: &str,
        generation: u64,
        topic: &str,
        partition: PartitionId,
        offset: Offset,
    ) -> OctoResult<()>;

    fn offset_committed(
        &self,
        group: &str,
        topic: &str,
        partition: PartitionId,
    ) -> OctoResult<Option<Offset>>;

    // ----- exactly-once -----

    fn register_producer(&self, name: &str) -> OctoResult<ProducerIdentity>;
    fn txn_begin(&self, name: &str, id: ProducerIdentity) -> OctoResult<()>;
    fn txn_produce(
        &self,
        name: &str,
        id: ProducerIdentity,
        topic: &str,
        partition: PartitionId,
        events: Vec<Event>,
    ) -> OctoResult<ProduceReceipt>;
    fn txn_send_offsets(
        &self,
        name: &str,
        id: ProducerIdentity,
        offsets: Vec<TxnOffset>,
    ) -> OctoResult<()>;
    fn txn_commit(&self, name: &str, id: ProducerIdentity) -> OctoResult<()>;
    fn txn_abort(&self, name: &str, id: ProducerIdentity) -> OctoResult<()>;

    // ----- observability -----

    fn metrics(&self) -> Arc<MetricsRegistry>;
    fn stage_metrics(&self) -> StageMetrics;
    fn span_sink(&self) -> Arc<SpanSink>;
}

/// The zero-network transport: every call goes straight into the
/// [`Cluster`] handle, exactly as the SDK did before the wire layer
/// existed.
#[derive(Clone)]
pub struct InProcessTransport {
    cluster: Cluster,
}

impl InProcessTransport {
    pub fn new(cluster: Cluster) -> Self {
        InProcessTransport { cluster }
    }

    /// The wrapped cluster handle.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }
}

impl Transport for InProcessTransport {
    fn describe(&self) -> String {
        "in-process".to_string()
    }

    fn topic_exists(&self, topic: &str) -> bool {
        self.cluster.topic_exists(topic)
    }

    fn topics(&self) -> OctoResult<Vec<TopicName>> {
        Ok(self.cluster.topics())
    }

    fn topic_config(&self, topic: &str) -> OctoResult<TopicConfig> {
        self.cluster.topic_config(topic)
    }

    fn create_topic(&self, topic: &str, config: TopicConfig) -> OctoResult<()> {
        self.cluster.create_topic(topic, config)
    }

    fn delete_topic(&self, topic: &str) -> OctoResult<()> {
        self.cluster.delete_topic(topic)
    }

    fn partition_count(&self, topic: &str) -> OctoResult<u32> {
        self.cluster.partition_count(topic)
    }

    fn partition_for(&self, topic: &str, key: Option<&[u8]>) -> OctoResult<PartitionId> {
        self.cluster.partition_for(topic, key)
    }

    fn authorize(&self, topic: &str, principal: Option<Uid>, perm: Permission) -> OctoResult<()> {
        match (principal, self.cluster.acl()) {
            (Some(p), Some(acl)) => acl.check(topic, p, perm),
            _ => Ok(()),
        }
    }

    fn produce_batch(
        &self,
        topic: &str,
        partition: PartitionId,
        batch: RecordBatch,
        acks: AckLevel,
    ) -> OctoResult<ProduceReceipt> {
        self.cluster.produce_batch(topic, partition, batch, acks)
    }

    fn fetch(
        &self,
        topic: &str,
        partition: PartitionId,
        offset: Offset,
        max_records: usize,
        principal: Option<Uid>,
    ) -> OctoResult<Vec<Record>> {
        match principal {
            Some(p) => self.cluster.fetch_as(p, topic, partition, offset, max_records),
            None => self.cluster.fetch(topic, partition, offset, max_records),
        }
    }

    fn fetch_committed(
        &self,
        topic: &str,
        partition: PartitionId,
        offset: Offset,
        max_records: usize,
    ) -> OctoResult<(Vec<Record>, Offset)> {
        self.cluster.fetch_committed(topic, partition, offset, max_records)
    }

    fn earliest_offset(&self, topic: &str, partition: PartitionId) -> OctoResult<Offset> {
        self.cluster.earliest_offset(topic, partition)
    }

    fn latest_offset(&self, topic: &str, partition: PartitionId) -> OctoResult<Offset> {
        self.cluster.latest_offset(topic, partition)
    }

    fn offset_for_timestamp(
        &self,
        topic: &str,
        partition: PartitionId,
        ts: Timestamp,
    ) -> OctoResult<Offset> {
        self.cluster.offset_for_timestamp(topic, partition, ts)
    }

    fn group_join(
        &self,
        group: &str,
        member: &str,
        topics: Vec<TopicName>,
        counts: &HashMap<TopicName, u32>,
    ) -> OctoResult<MemberAssignment> {
        Ok(self.cluster.coordinator().join(group, member, topics, counts))
    }

    fn group_assignment(
        &self,
        group: &str,
        member: &str,
    ) -> OctoResult<Option<MemberAssignment>> {
        Ok(self.cluster.coordinator().assignment_of(group, member))
    }

    fn group_leave(
        &self,
        group: &str,
        member: &str,
        counts: &HashMap<TopicName, u32>,
    ) -> OctoResult<()> {
        self.cluster.coordinator().leave(group, member, counts);
        Ok(())
    }

    fn offset_commit(
        &self,
        group: &str,
        generation: u64,
        topic: &str,
        partition: PartitionId,
        offset: Offset,
    ) -> OctoResult<()> {
        self.cluster.coordinator().commit(group, generation, topic, partition, offset)
    }

    fn offset_committed(
        &self,
        group: &str,
        topic: &str,
        partition: PartitionId,
    ) -> OctoResult<Option<Offset>> {
        Ok(self.cluster.coordinator().committed(group, topic, partition))
    }

    fn register_producer(&self, name: &str) -> OctoResult<ProducerIdentity> {
        self.cluster.register_producer(name)
    }

    fn txn_begin(&self, name: &str, id: ProducerIdentity) -> OctoResult<()> {
        self.cluster.txn_begin(name, id)
    }

    fn txn_produce(
        &self,
        name: &str,
        id: ProducerIdentity,
        topic: &str,
        partition: PartitionId,
        events: Vec<Event>,
    ) -> OctoResult<ProduceReceipt> {
        self.cluster.txn_produce(name, id, topic, partition, events)
    }

    fn txn_send_offsets(
        &self,
        name: &str,
        id: ProducerIdentity,
        offsets: Vec<TxnOffset>,
    ) -> OctoResult<()> {
        self.cluster.txn_send_offsets(name, id, offsets)
    }

    fn txn_commit(&self, name: &str, id: ProducerIdentity) -> OctoResult<()> {
        self.cluster.txn_commit(name, id)
    }

    fn txn_abort(&self, name: &str, id: ProducerIdentity) -> OctoResult<()> {
        self.cluster.txn_abort(name, id)
    }

    fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(self.cluster.metrics())
    }

    fn stage_metrics(&self) -> StageMetrics {
        self.cluster.stage_metrics().clone()
    }

    fn span_sink(&self) -> Arc<SpanSink> {
        Arc::clone(self.cluster.span_sink())
    }
}
