//! Stored records and batches.
//!
//! A [`Record`] is an [`Event`] plus its log coordinates (offset, append
//! time). Producers ship [`RecordBatch`]es; batching is the fabric's main
//! throughput lever (it is why 32 B events reach millions/s in Table III
//! while 4 KB events are bandwidth-bound). Each batch carries a CRC32C
//! over its payload bytes, verified on append.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use octopus_types::{Event, Header, Offset, Timestamp};

/// CRC32C (Castagnoli), table-driven, as used by Kafka record batches.
pub fn crc32c(data: &[u8]) -> u32 {
    const POLY: u32 = 0x82F6_3B78; // reflected Castagnoli polynomial
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *entry = crc;
        }
        t
    });
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// A record at rest in a partition log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Offset within the partition (assigned at append).
    pub offset: Offset,
    /// Broker append time.
    pub append_time: Timestamp,
    /// Producer key (partitioning / compaction key).
    pub key: Option<Bytes>,
    /// Payload.
    pub value: Bytes,
    /// Event headers (provenance, codec markers, trace ids).
    pub headers: Vec<Header>,
    /// Producer timestamp.
    pub producer_time: Timestamp,
    /// CRC32C over key + payload, stamped at append. Restart-time
    /// recovery truncates the log at the first mismatch (torn tail
    /// writes), like Kafka's log recovery.
    pub crc: u32,
}

impl Record {
    /// The checksum the record should carry given its current contents.
    pub fn compute_crc(&self) -> u32 {
        let mut input = Vec::with_capacity(
            self.key.as_ref().map(|k| k.len()).unwrap_or(0) + self.value.len(),
        );
        if let Some(k) = &self.key {
            input.extend_from_slice(k);
        }
        input.extend_from_slice(&self.value);
        crc32c(&input)
    }

    /// Whether the stored checksum matches the contents.
    pub fn verify(&self) -> bool {
        self.crc == self.compute_crc()
    }

    /// Approximate wire size (key + value + headers).
    pub fn wire_size(&self) -> usize {
        let headers: usize = self.headers.iter().map(|h| h.key.len() + h.value.len()).sum();
        self.key.as_ref().map(|k| k.len()).unwrap_or(0) + self.value.len() + headers
    }

    /// Convert back into an [`Event`] for delivery.
    pub fn to_event(&self) -> Event {
        Event {
            key: self.key.clone(),
            payload: self.value.clone(),
            headers: self.headers.clone(),
            timestamp: self.producer_time,
        }
    }
}

/// A batch of events headed for one partition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordBatch {
    /// The events, in producer order.
    pub events: Vec<Event>,
    /// CRC32C over the concatenated payloads (integrity check).
    pub crc: u32,
}

impl RecordBatch {
    /// Build a batch, computing its checksum.
    pub fn new(events: Vec<Event>) -> Self {
        let crc = Self::checksum(&events);
        RecordBatch { events, crc }
    }

    fn checksum(events: &[Event]) -> u32 {
        let mut hasher_input = Vec::new();
        for e in events {
            if let Some(k) = &e.key {
                hasher_input.extend_from_slice(k);
            }
            hasher_input.extend_from_slice(&e.payload);
        }
        crc32c(&hasher_input)
    }

    /// Verify the checksum against the current contents.
    pub fn verify(&self) -> bool {
        Self::checksum(&self.events) == self.crc
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total payload bytes.
    pub fn wire_size(&self) -> usize {
        self.events.iter().map(|e| e.wire_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 / common test vectors for CRC-32C
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn batch_checksum_detects_corruption() {
        let mut batch = RecordBatch::new(vec![
            Event::from_bytes(&b"hello"[..]),
            Event::builder().key("k").payload(&b"world"[..]).build(),
        ]);
        assert!(batch.verify());
        batch.events[0].payload = Bytes::from_static(b"hellO");
        assert!(!batch.verify());
    }

    #[test]
    fn batch_accounting() {
        let batch = RecordBatch::new(vec![
            Event::from_bytes(vec![0u8; 10]),
            Event::from_bytes(vec![0u8; 22]),
        ]);
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        assert_eq!(batch.wire_size(), 32);
        assert!(RecordBatch::new(vec![]).is_empty());
    }

    #[test]
    fn record_event_roundtrip() {
        let mut r = Record {
            offset: 5,
            append_time: Timestamp::from_millis(10),
            key: Some(Bytes::from_static(b"k")),
            value: Bytes::from_static(b"v"),
            headers: vec![Header { key: "hk".into(), value: b"hv".to_vec() }],
            producer_time: Timestamp::from_millis(9),
            crc: 0,
        };
        r.crc = r.compute_crc();
        assert!(r.verify());
        let e = r.to_event();
        assert_eq!(e.key.as_deref(), Some(&b"k"[..]));
        assert_eq!(&e.payload[..], b"v");
        assert_eq!(e.timestamp, Timestamp::from_millis(9));
        assert_eq!(e.headers, r.headers);
        assert_eq!(r.wire_size(), 2 + 4);
    }
}
