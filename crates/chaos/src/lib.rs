//! Deterministic chaos injection for Octopus deployments.
//!
//! The paper's operational sections (§IV-F, §V) lean on the claim
//! that the hybrid architecture rides out broker loss, coordination
//! flaps, and cross-site link failure without losing committed work.
//! This crate turns that claim into an executable experiment:
//!
//! * [`FaultPlan`] — a seeded, deterministic schedule of typed faults
//!   ([`FaultKind`]): broker crash/restart, zoo replica flap, network
//!   partition + heal, slow-broker degradation, message drop /
//!   duplicate / delay on a link, log-tail corruption that CRC
//!   recovery must catch, and power loss that tears the unflushed
//!   suffix off a durable broker's on-disk logs.
//! * [`execute_plan`] / [`ChaosTarget`] — maps the abstract plan onto
//!   a live cluster + ensemble and records a [`FaultTrace`] whose
//!   `(at, kind)` signature is reproducible from the seed alone.
//! * [`ChaosHarness`] — builds a real threaded deployment, runs
//!   producer / consumer / trigger traffic *through* the plan, heals,
//!   drains, and evaluates the invariant oracles in [`ChaosReport`]:
//!   no committed-record loss at `acks=all`, at-least-once delivery
//!   with monotonic commits, ZAB committed-prefix agreement, and ISR
//!   re-convergence.
//!
//! ```
//! use octopus_chaos::{ChaosHarness, FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::new(7)
//!     .at(10, FaultKind::BrokerCrash { broker: 1 })
//!     .at(40, FaultKind::NetworkPartition { a: 0, b: 2 })
//!     .at(80, FaultKind::NetworkHeal)
//!     .at(100, FaultKind::BrokerRestart { broker: 1 });
//! ChaosHarness::new(plan).run().assert_invariants();
//! ```

pub mod exec;
pub mod harness;
pub mod plan;

pub use exec::{apply_fault, execute_plan, ChaosTarget, FaultTrace, TraceEntry};
pub use harness::{ChaosConfig, ChaosHarness, ChaosReport, RecoveryTotals};
pub use plan::{FaultKind, FaultPlan, PlanProfile, ScheduledFault};
