//! A ZooKeeper-like coordination service.
//!
//! MSK "employs Apache ZooKeeper to maintain and synchronize state
//! (e.g., topics and access control lists) among cluster resources"
//! (§IV-C), and "the source of truth about which topics are owned by
//! which identities are stored in ZooKeeper" (§IV-F). This crate builds
//! that substrate from scratch:
//!
//! - [`znode`]: the hierarchical znode tree — persistent / ephemeral /
//!   sequential nodes, versioned writes, stat structures.
//! - [`zab`]: a ZAB-style replicated atomic broadcast: an ensemble of
//!   state-machine replicas with leader-assigned zxids, quorum acks,
//!   ordered commit, crash/recovery with epoch bumps and log sync. The
//!   core is a pure (message-in, messages-out) state machine driven by a
//!   deterministic scheduler, so agreement properties are testable.
//! - [`service`]: the client-facing facade (`create`, `get`, `set`,
//!   `delete`, `children`, `exists`, watches, sessions with ephemeral
//!   cleanup) that OWS and the broker controller use.

pub mod service;
pub mod znode;
pub mod zab;

pub use service::{WatchEvent, WatchKind, ZooService, SessionId};
pub use znode::{CreateMode, Stat, Znode, ZnodeTree};
pub use zab::{Ensemble, NodeId, ZabNode};
