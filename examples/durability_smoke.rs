//! Crash-recovery smoke: produce at `acks=all`, lose power mid-flight,
//! reopen the same data dir cold, and verify nothing committed was lost.
//!
//! This is the CI drill for the durable storage engine: a
//! SIGKILL-equivalent (per-partition power loss tearing unflushed bytes
//! off the segment tails, then dropping the cluster with no graceful
//! shutdown), followed by a fresh `Cluster` over the same directory
//! that must recover every topic, record, and committed offset.
//!
//! Run with: `cargo run --release --example durability_smoke`

use std::collections::HashSet;

use octopus::broker::{AckLevel, BrokerId, Cluster, FlushPolicy, RecordBatch, TempDir, TopicConfig};
use octopus::types::Event;

const RECORDS: u64 = 64;

fn ev(seq: u64) -> Event {
    Event::from_bytes(seq.to_le_bytes().to_vec())
}

fn main() {
    let tmp = TempDir::new("octopus-data-smoke");
    println!("data dir: {}", tmp.path().display());

    // 1. Produce at acks=all under PerBatch: every ack is an fsync.
    {
        let c = Cluster::builder(3)
            .data_dir(tmp.path())
            .flush_policy(FlushPolicy::PerBatch)
            .build();
        c.create_topic("smoke", TopicConfig::default().with_partitions(2).with_replication(2))
            .expect("create topic");
        for s in 0..RECORDS {
            c.produce_batch("smoke", (s % 2) as u32, RecordBatch::new(vec![ev(s)]), AckLevel::All)
                .expect("acks=all produce");
        }
        c.coordinator().commit_unchecked("smoke-group", "smoke", 0, 20);
        c.coordinator().commit_unchecked("smoke-group", "smoke", 1, 15);

        // 2. SIGKILL-equivalent: power-lose every broker (tears any
        //    unflushed tail bytes off the on-disk segments), then drop
        //    the cluster with no graceful shutdown or final sync.
        for id in 0..3 {
            let r = c.power_loss_broker(BrokerId(id), 0xBAD5_EED0 + id as u64).expect("power loss");
            println!("broker {id}: power loss tore {} bytes across {} partitions", r.bytes_torn, r.partitions);
        }
    }

    // 3. Cold reopen: a brand-new cluster over the same directory.
    let c = Cluster::builder(3)
        .data_dir(tmp.path())
        .flush_policy(FlushPolicy::PerBatch)
        .build();

    assert!(c.topic_exists("smoke"), "topic lost across the crash");
    let mut survived = HashSet::new();
    for p in 0..2 {
        for r in c.fetch("smoke", p, 0, 10_000).expect("fetch") {
            assert!(r.verify(), "recovered record fails its CRC");
            survived.insert(u64::from_le_bytes(r.value[..8].try_into().expect("8-byte payload")));
        }
    }
    for s in 0..RECORDS {
        assert!(survived.contains(&s), "acks=all record {s} lost across power loss + cold restart");
    }
    assert_eq!(c.coordinator().committed("smoke-group", "smoke", 0), Some(20));
    assert_eq!(c.coordinator().committed("smoke-group", "smoke", 1), Some(15));

    // 4. Recovery stats from the storage-engine counters.
    let snap = c.metrics().snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    println!("recovered records:  {}", counter("octopus_store_records_recovered_total"));
    println!("truncated records:  {}", counter("octopus_store_records_truncated_total"));
    println!("truncated bytes:    {}", counter("octopus_store_bytes_truncated_total"));
    println!("offsets restored:   {}", counter("octopus_store_checkpoint_offsets_restored_total"));
    assert!(counter("octopus_store_records_recovered_total") >= RECORDS, "recovery scan read back fewer records than were acked");

    println!("durability smoke passed: {RECORDS} acks=all records and both committed offsets survived");
}
