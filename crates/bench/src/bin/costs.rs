//! Regenerates the **§VII-C cost analysis**: MSK standing costs, Lambda
//! trigger pricing, egress, and the paper's worked scheduling example
//! (10,000 events/hour x 10 resources => 2.4M lambdas/day ≈ $24/day),
//! plus the mitigation levers.
//!
//! `cargo run --release -p octopus-bench --bin costs`

use octopus_bench::figure_header;
use octopus_trigger::{BillingMeter, CostModel};

fn main() {
    figure_header("§VII-C — Costs of running Octopus as a cloud service", "");
    let m = CostModel::default();

    println!("standing costs:");
    println!(
        "  2x smallest MSK brokers: ${:.4}/hr each -> ${:.0}/month (paper: ~$70)",
        m.broker_hour_usd,
        m.broker_cost(2, 30.0 * 24.0)
    );

    println!("\nper-use costs:");
    println!("  egress: ${:.2}/GB", m.egress_gb_usd);
    println!(
        "  trigger invocation (128MB, 5s): ${:.6} -> ${:.2} per 1M (paper: ~$10)",
        m.invocation_cost(128, 5_000),
        m.invocation_cost(128, 5_000) * 1e6
    );

    println!("\nworked example — scheduling app (Table I): 10,000 ev/hr x 10 resources:");
    let lambdas_per_day = 10_000u64 * 10 * 24;
    let mut meter = BillingMeter::new();
    for _ in 0..1000 {
        meter.record_invocation(128, 5_000);
    }
    let per_invocation = meter.usage_cost(&m) / 1000.0;
    let daily = per_invocation * lambdas_per_day as f64 + m.egress_cost(lambdas_per_day * 4096);
    println!("  {lambdas_per_day} lambdas/day x ${per_invocation:.6} = ${daily:.2}/day (paper: ~$24)");
    println!(
        "  egress at 4KB/event: ${:.2}/day (paper: 'negligible')",
        m.egress_cost(lambdas_per_day * 4096)
    );

    println!("\nmitigations (paper's list, quantified):");
    let aggregated = lambdas_per_day / 100; // hierarchical aggregation, Fig. 7 scale
    println!(
        "  100x edge aggregation -> {aggregated} invocations/day = ${:.2}/day",
        per_invocation * aggregated as f64
    );
    let batched = lambdas_per_day / 1000; // batch 1000 events/invocation
    println!(
        "  1000-event batching   -> {batched} invocations/day = ${:.2}/day",
        per_invocation * batched as f64
    );
    println!(
        "  pattern filtering (process only 'created', ~40% of events) -> ${:.2}/day",
        per_invocation * lambdas_per_day as f64 * 0.4
    );
}
