//! Tier-1 hot-path stress drill: the parallel-replication produce path
//! and the snapshot fetch path under concurrency and chaos.
//!
//! PR 5 rebuilt the data plane — per-broker replication executors,
//! lock-free snapshot fetches, and group-commit fsync — so this drill
//! pins the invariants the overhaul must preserve:
//!
//! * No acknowledged `acks=all` record is ever lost, even while brokers
//!   are killed and restarted under concurrent producers and fetchers.
//! * Offsets are dense and strictly monotonic: every offset in
//!   `[0, end)` holds exactly one record, and fetches return ascending
//!   runs starting at the requested position.
//! * The ISR shrinks exactly to the replicas that replicated (a dead
//!   follower drops out; a restarted one is resynced back in).
//! * Group-commit fsync keeps the `PerBatch` durability barrier: a
//!   power loss after concurrent `acks=all` producers tears nothing
//!   that was acknowledged.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use octopus::broker::{
    AckLevel, BrokerId, Cluster, FlushPolicy, RecordBatch, TempDir, TopicConfig,
};
use octopus::types::Event;

fn ev(tag: &str) -> Event {
    Event::from_bytes(tag.as_bytes().to_vec())
}

/// Produce with bounded retries; returns the payloads that were acked.
/// Retries are legitimate (failovers surface as transient errors), and
/// at-least-once means a retry may duplicate — the assertions below
/// check presence and offset density, not payload uniqueness.
fn produce_acked(
    cluster: &Cluster,
    topic: &str,
    tag: String,
    acks: AckLevel,
) -> Option<String> {
    for _ in 0..50 {
        match cluster.produce_batch(topic, 0, RecordBatch::new(vec![ev(&tag)]), acks) {
            Ok(receipt) if receipt.persisted => return Some(tag),
            Ok(_) => return None,
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    None
}

#[test]
fn concurrent_acks_all_producers_lose_nothing_under_chaos() {
    let cluster = Cluster::new(3);
    cluster
        .create_topic(
            "hot",
            TopicConfig::default().with_partitions(1).with_replication(3).with_min_insync(2),
        )
        .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let acked: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));

    // chaos: kill one broker at a time (min_isr=2 keeps acks=all safe),
    // never the current leader's whole quorum, always restarting before
    // the next victim
    let chaos = {
        let c = cluster.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut victim = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let id = BrokerId(victim % 3);
                if c.kill_broker(id).is_ok() {
                    std::thread::sleep(Duration::from_millis(15));
                    let _ = c.restart_broker(id);
                }
                victim += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };

    // fetchers replay the log while it grows, checking every returned
    // run is ascending and anchored at the requested offset
    let fetchers: Vec<_> = (0..2)
        .map(|_| {
            let c = cluster.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut offset = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match c.fetch("hot", 0, offset, 64) {
                        Ok(records) => {
                            if records.is_empty() {
                                offset = 0; // wrap and replay from the start
                                continue;
                            }
                            let mut expect = records[0].offset;
                            assert!(
                                expect >= offset,
                                "fetch at {offset} returned earlier offset {expect}"
                            );
                            for r in &records {
                                assert_eq!(
                                    r.offset, expect,
                                    "fetch returned a non-contiguous run"
                                );
                                expect += 1;
                            }
                            offset = expect;
                        }
                        Err(_) => {
                            // failover window; retry from the start
                            offset = 0;
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                }
            })
        })
        .collect();

    let producers: Vec<_> = (0..4)
        .map(|t| {
            let c = cluster.clone();
            let acked = Arc::clone(&acked);
            std::thread::spawn(move || {
                for i in 0..120 {
                    if let Some(tag) =
                        produce_acked(&c, "hot", format!("p{t}-{i}"), AckLevel::All)
                    {
                        acked.lock().unwrap().push(tag);
                    }
                }
            })
        })
        .collect();

    for p in producers {
        p.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    chaos.join().unwrap();
    for f in fetchers {
        f.join().unwrap();
    }
    // settle: everyone alive, replicas resynced
    for id in 0..3 {
        let _ = cluster.restart_broker(BrokerId(id));
    }

    let end = cluster.latest_offset("hot", 0).unwrap();
    let mut by_offset: HashMap<u64, String> = HashMap::new();
    let mut offset = 0u64;
    while offset < end {
        let records = cluster.fetch("hot", 0, offset, 256).unwrap();
        assert!(!records.is_empty(), "hole at offset {offset} (end {end})");
        for r in records {
            let tag = String::from_utf8(r.value.to_vec()).unwrap();
            assert!(
                by_offset.insert(r.offset, tag).is_none(),
                "offset {} served twice",
                r.offset
            );
            offset = offset.max(r.offset + 1);
        }
    }
    assert_eq!(by_offset.len() as u64, end, "offsets are dense in [0, end)");

    let survived: HashSet<&String> = by_offset.values().collect();
    let acked = acked.lock().unwrap();
    assert!(!acked.is_empty(), "chaos must not starve every producer");
    for tag in acked.iter() {
        assert!(survived.contains(tag), "acked acks=all record {tag} lost");
    }
}

#[test]
fn isr_shrinks_to_replicators_and_heals_on_restart() {
    let cluster = Cluster::new(3);
    cluster
        .create_topic(
            "isr",
            TopicConfig::default().with_partitions(1).with_replication(3).with_min_insync(1),
        )
        .unwrap();
    cluster
        .produce_batch("isr", 0, RecordBatch::new(vec![ev("warm")]), AckLevel::All)
        .unwrap();
    assert_eq!(cluster.isr_of("isr", 0).unwrap().len(), 3);

    let leader = cluster.leader_broker("isr", 0).unwrap();
    let follower = (0..3).map(BrokerId).find(|b| *b != leader).unwrap();
    cluster.kill_broker(follower).unwrap();

    // the parallel executors must report the dead follower as failed,
    // shrinking the ISR to exactly the replicas that appended
    cluster
        .produce_batch("isr", 0, RecordBatch::new(vec![ev("shrink")]), AckLevel::All)
        .unwrap();
    let isr = cluster.isr_of("isr", 0).unwrap();
    assert!(!isr.contains(&follower), "dead follower stayed in ISR");
    assert!(isr.contains(&leader), "leader fell out of its own ISR");
    assert_eq!(isr.len(), 2);

    // restart resyncs the replica and restores full ISR membership
    cluster.restart_broker(follower).unwrap();
    cluster
        .produce_batch("isr", 0, RecordBatch::new(vec![ev("heal")]), AckLevel::All)
        .unwrap();
    assert_eq!(cluster.isr_of("isr", 0).unwrap().len(), 3, "ISR heals after resync");

    // and the restarted replica converged to the leader's sequence
    let end = cluster.latest_offset("isr", 0).unwrap();
    assert_eq!(end, 3);
    let payloads: Vec<String> = cluster
        .fetch("isr", 0, 0, 16)
        .unwrap()
        .iter()
        .map(|r| String::from_utf8(r.value.to_vec()).unwrap())
        .collect();
    assert_eq!(payloads, vec!["warm", "shrink", "heal"]);
}

#[test]
fn group_commit_keeps_the_perbatch_durability_barrier() {
    let tmp = TempDir::new("octopus-data-hotpath-drill");
    let acked: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let cluster =
            Cluster::builder(2).data_dir(tmp.path()).flush_policy(FlushPolicy::PerBatch).build();
        cluster
            .create_topic(
                "gc",
                TopicConfig::default().with_partitions(1).with_replication(2).with_min_insync(2),
            )
            .unwrap();
        // concurrent producers share fsyncs through the sync gate; every
        // ack must still sit behind a completed fsync
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let c = cluster.clone();
                let acked = Arc::clone(&acked);
                std::thread::spawn(move || {
                    for i in 0..40 {
                        if let Some(tag) =
                            produce_acked(&c, "gc", format!("d{t}-{i}"), AckLevel::All)
                        {
                            acked.lock().unwrap().push(tag);
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        // power-lose every broker: only fsynced bytes survive the tear
        for id in 0..2 {
            let _ = cluster.power_loss_broker(BrokerId(id), 0x5EED ^ (id as u64) << 7);
        }
    }

    let cluster =
        Cluster::builder(2).data_dir(tmp.path()).flush_policy(FlushPolicy::PerBatch).build();
    let survived: HashSet<String> = cluster
        .fetch("gc", 0, 0, 4096)
        .unwrap()
        .iter()
        .map(|r| String::from_utf8(r.value.to_vec()).unwrap())
        .collect();
    let acked = acked.lock().unwrap();
    assert_eq!(acked.len(), 160, "all produces acked on a healthy cluster");
    for tag in acked.iter() {
        assert!(survived.contains(tag), "acked record {tag} torn off by power loss");
    }
}
