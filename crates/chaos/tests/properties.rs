//! Property-based tests for the chaos subsystem.
//!
//! Two properties anchor the subsystem's contract:
//!
//! 1. Plan generation — and therefore the executed fault trace — is a
//!    pure function of the seed: replaying a seed yields an identical
//!    `(at, kind)` signature.
//! 2. Broker-side duplicate delivery (fetch-offset rewind) never moves
//!    a consumer's committed offset backwards, however the rewinds are
//!    interleaved with polls.

use std::time::Duration;

use proptest::prelude::*;

use octopus_broker::{AckLevel, BrokerId, Cluster, DeliveryFault, TopicConfig};
use octopus_chaos::{FaultPlan, PlanProfile};
use octopus_sdk::{Consumer, ConsumerConfig};
use octopus_types::Event;

fn arb_profile() -> impl Strategy<Value = PlanProfile> {
    (50u64..500, 1usize..16, 1u32..6, 1u32..6).prop_map(|(ms, faults, brokers, zoo)| {
        PlanProfile {
            duration: Duration::from_millis(ms),
            faults,
            brokers,
            zoo_replicas: zoo,
        }
    })
}

proptest! {
    /// Same seed, same profile → identical plan signature; a different
    /// seed virtually always diverges (we only assert determinism).
    #[test]
    fn plan_generation_is_a_pure_function_of_the_seed(
        seed in any::<u64>(),
        profile in arb_profile(),
    ) {
        let a = FaultPlan::generate(seed, profile);
        let b = FaultPlan::generate(seed, profile);
        prop_assert_eq!(a.signature(), b.signature());
        prop_assert_eq!(a.seed(), seed);
        // the schedule respects the profile's fault budget (crash and
        // partition faults add a paired recovery fault each)
        prop_assert!(a.len() >= profile.faults);
        prop_assert!(a.len() <= profile.faults * 2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Duplicate-delivery faults redeliver records but never rewind
    /// the group's committed offset: commit progress is monotonic.
    #[test]
    fn duplicate_delivery_preserves_commit_monotonicity(
        rewinds in proptest::collection::vec((1u64..12, 1u32..3), 1..6),
        records in 8usize..40,
    ) {
        let cluster = Cluster::new(1);
        cluster
            .create_topic(
                "t",
                TopicConfig::default().with_partitions(1).with_replication(1).with_min_insync(1),
            )
            .unwrap();
        for i in 0..records {
            cluster
                .produce("t", Event::from_bytes(vec![i as u8]), AckLevel::Leader)
                .unwrap();
        }
        let mut consumer = Consumer::new(
            cluster.clone(),
            ConsumerConfig {
                group: "mono".into(),
                auto_commit_interval: None,
                max_poll_records: 5,
                ..ConsumerConfig::default()
            },
        );
        consumer.subscribe(&["t"]).unwrap();

        let mut delivered = 0usize;
        let mut high_commit = 0u64;
        let mut rewinds = rewinds.into_iter();
        for round in 0.. {
            // interleave a rewind fault every other poll
            if round % 2 == 0 {
                if let Some((rewind, count)) = rewinds.next() {
                    cluster.fault_injector().inject_delivery(
                        BrokerId(0),
                        DeliveryFault::Duplicate { rewind },
                        count,
                    );
                }
            }
            let batch = consumer.poll().unwrap();
            delivered += batch.len();
            consumer.commit_sync().unwrap();
            if let Some(c) = cluster.coordinator().committed("mono", "t", 0) {
                prop_assert!(
                    c >= high_commit,
                    "committed offset went backwards: {} -> {}", high_commit, c
                );
                high_commit = high_commit.max(c);
            }
            if high_commit as usize >= records {
                break;
            }
            prop_assert!(round < 200, "consumer failed to make progress");
        }
        // every record reached the consumer at least once; rewinds may
        // only add deliveries on top
        prop_assert!(delivered >= records);
        prop_assert_eq!(high_commit as usize, records);
    }
}
