//! The closed-loop discrete-event simulation of producers and consumers
//! against the modelled broker fleet.
//!
//! Each producer keeps `max_inflight` request slots busy. A request
//! carries one client-side batch; its lifecycle is
//!
//! ```text
//! client --uplink--> broker serial path -> CPU pool -> partition queue
//!        [replication to followers]      <--downlink-- ack
//! ```
//!
//! and the slot immediately issues the next request when the ack
//! arrives. Consumers run fetch loops against prefilled partitions (the
//! paper populates topics before consumer tests, §V-B). Event latency is
//! measured from (modelled) event creation — spread across the batch
//! accumulation window — to ack receipt, giving the same saturation
//! behaviour the paper reports: client-side batching dominates latency
//! at peak throughput, which is why even local producers see ~50 ms
//! medians.

use octopus_sim::{Histogram, Link, ServerQueue, SimDuration, SimRng, SimTime, Simulation};

use crate::model::Calibration;
use crate::shape::{Acks, ExpConfig};

/// Results of a produce experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProduceStats {
    /// Aggregate producer throughput, events/second.
    pub throughput_eps: f64,
    /// Median event latency, milliseconds.
    pub median_ms: f64,
    /// 99th-percentile event latency, milliseconds.
    pub p99_ms: f64,
}

/// Results of a consume experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsumeStats {
    /// Aggregate consumer throughput, events/second.
    pub throughput_eps: f64,
}

const CLIENT_MACHINES: usize = 2; // two client hosts in every experiment (§V-A)
const LATENCY_SAMPLES_PER_REQUEST: usize = 8;

struct World {
    cal: Calibration,
    cfg: ExpConfig,
    serial: Vec<ServerQueue>,
    cpu: Vec<ServerQueue>,
    parts: Vec<ServerQueue>,
    part_leader: Vec<usize>,
    part_followers: Vec<Vec<usize>>,
    uplink: Vec<Link>,
    downlink: Vec<Link>,
    egress: Vec<Link>,
    rng: SimRng,
    latency: Histogram,
    produced: u64,
    consumed: u64,
    measure_start: SimTime,
    measure_end: SimTime,
    next_partition: usize,
    pending_acks: Vec<usize>,
}

impl World {
    fn new(cfg: ExpConfig, cal: Calibration, seed: u64) -> Self {
        let brokers = cfg.cluster.brokers as usize;
        let inst = cfg.cluster.instance;
        let total_parts = cfg.total_partitions() as usize;
        let mut part_leader = Vec::with_capacity(total_parts);
        let mut part_followers = Vec::with_capacity(total_parts);
        for p in 0..total_parts {
            let leader = p % brokers;
            let mut followers = Vec::new();
            for r in 1..cfg.replication as usize {
                followers.push((p + r) % brokers);
            }
            part_leader.push(leader);
            part_followers.push(followers);
        }
        let one_way = SimDuration::from_millis_f64(cfg.location.one_way_ms());
        let jitter = cfg.location.jitter();
        let bw = cfg.location.machine_bandwidth();
        World {
            cal,
            cfg,
            serial: (0..brokers).map(|_| ServerQueue::new(1)).collect(),
            cpu: (0..brokers).map(|_| ServerQueue::new(inst.vcpus as usize)).collect(),
            parts: (0..total_parts).map(|_| ServerQueue::new(1)).collect(),
            part_leader,
            part_followers,
            uplink: (0..CLIENT_MACHINES).map(|_| Link::new(one_way, bw).with_jitter(jitter)).collect(),
            egress: (0..brokers)
                .map(|_| Link::new(SimDuration::ZERO, inst.egress_bytes_per_sec))
                .collect(),
            downlink: (0..CLIENT_MACHINES)
                .map(|_| Link::new(one_way, bw).with_jitter(jitter))
                .collect(),
            rng: SimRng::seeded(seed),
            latency: Histogram::new(),
            produced: 0,
            consumed: 0,
            measure_start: SimTime::ZERO,
            measure_end: SimTime::ZERO,
            next_partition: 0,
            pending_acks: Vec::new(),
        }
    }

    fn pick_partition(&mut self) -> usize {
        let p = self.next_partition % self.parts.len();
        self.next_partition = self.next_partition.wrapping_add(1);
        p
    }

    /// Stochastic service times (±30% uniform) — real request costs
    /// vary, and deterministic services make closed-loop clients lock
    /// into convoys that understate pipeline utilization.
    fn jittered(&mut self, secs: f64) -> SimDuration {
        SimDuration::from_secs_f64(secs * self.rng.uniform(0.7, 1.3))
    }

    fn in_window(&self, t: SimTime) -> bool {
        t >= self.measure_start && t < self.measure_end
    }
}

fn produce_cycle(
    sim: &mut Simulation<World>,
    w: &mut World,
    machine: usize,
    last_send: SimTime,
) {
    let t0 = sim.now();
    let size = w.cfg.event_size;
    let events = w.cal.batch_events(size);
    let bytes = events * size + w.cal.frame_overhead;
    let Some(arrival) = w.uplink[machine].transmit(t0, bytes, &mut w.rng) else {
        return;
    };
    let p = w.pick_partition();
    // each broker-side stage runs as its own event at its arrival time,
    // so shared queues serve requests in arrival order
    sim.schedule_at(arrival, move |sim, w| serial_stage(sim, w, machine, t0, last_send, p));
}

fn serial_stage(
    sim: &mut Simulation<World>,
    w: &mut World,
    machine: usize,
    t0: SimTime,
    last_send: SimTime,
    p: usize,
) {
    let leader = w.part_leader[p];
    let svc = w.jittered(w.cal.serial_service(w.cfg.cluster.instance.serial_requests_per_sec));
    let serial_done = w.serial[leader].submit(sim.now(), svc);
    if w.cfg.acks == Acks::None {
        // socket-level ack: the response leaves once the serial path has
        // admitted the request (client pacing under acks=0)
        respond(sim, w, machine, t0, last_send, serial_done);
    }
    sim.schedule_at(serial_done, move |sim, w| cpu_stage(sim, w, machine, t0, last_send, p));
}

fn cpu_stage(
    sim: &mut Simulation<World>,
    w: &mut World,
    machine: usize,
    t0: SimTime,
    last_send: SimTime,
    p: usize,
) {
    let leader = w.part_leader[p];
    let size = w.cfg.event_size;
    let events = w.cal.batch_events(size);
    let svc = w.jittered(w.cal.cpu_service(events, events * size));
    let cpu_done = w.cpu[leader].submit(sim.now(), svc);
    sim.schedule_at(cpu_done, move |sim, w| partition_stage(sim, w, machine, t0, last_send, p));
}

fn partition_stage(
    sim: &mut Simulation<World>,
    w: &mut World,
    machine: usize,
    t0: SimTime,
    last_send: SimTime,
    p: usize,
) {
    let size = w.cfg.event_size;
    let events = w.cal.batch_events(size);
    let acks_all = w.cfg.acks == Acks::All;
    let svc = w.jittered(w.cal.partition_service(events * size, acks_all));
    let part_done = w.parts[p].submit(sim.now(), svc);
    sim.schedule_at(part_done, move |sim, w| append_complete(sim, w, machine, t0, last_send, p));
}

fn append_complete(
    sim: &mut Simulation<World>,
    w: &mut World,
    machine: usize,
    t0: SimTime,
    last_send: SimTime,
    p: usize,
) {
    let now = sim.now();
    let size = w.cfg.event_size;
    let events = w.cal.batch_events(size);
    if w.in_window(now) {
        w.produced += events as u64;
    }
    // replication: followers replay the append on their CPU pools
    let followers = w.part_followers[p].clone();
    let hop = SimDuration::from_secs_f64(w.cal.inter_broker_latency);
    let n_followers = followers.len();
    match w.cfg.acks {
        Acks::None => {
            for f in followers {
                sim.schedule_at(now + hop, move |sim, w| follower_stage(sim, w, f, false, 0, machine, t0, last_send));
            }
        }
        Acks::Leader => {
            for f in followers {
                sim.schedule_at(now + hop, move |sim, w| follower_stage(sim, w, f, false, 0, machine, t0, last_send));
            }
            respond(sim, w, machine, t0, last_send, now);
        }
        Acks::All => {
            if n_followers == 0 {
                respond(sim, w, machine, t0, last_send, now);
            } else {
                // the response leaves after the slowest follower acks
                let pending = sim_alloc_pending(w, n_followers);
                for f in followers {
                    sim.schedule_at(now + hop, move |sim, w| {
                        follower_stage(sim, w, f, true, pending, machine, t0, last_send)
                    });
                }
            }
        }
    }
}

/// Allocate a countdown slot for an acks=all request awaiting followers.
fn sim_alloc_pending(w: &mut World, n: usize) -> usize {
    w.pending_acks.push(n);
    w.pending_acks.len() - 1
}

#[allow(clippy::too_many_arguments)]
fn follower_stage(
    sim: &mut Simulation<World>,
    w: &mut World,
    follower: usize,
    acked: bool,
    pending: usize,
    machine: usize,
    t0: SimTime,
    last_send: SimTime,
) {
    let size = w.cfg.event_size;
    let events = w.cal.batch_events(size);
    let cost = w.jittered(w.cal.cpu_service(events, events * size) * w.cal.follower_cpu_factor);
    let done = w.cpu[follower].submit(sim.now(), cost);
    if acked {
        let hop = SimDuration::from_secs_f64(w.cal.inter_broker_latency);
        sim.schedule_at(done + hop, move |sim, w| {
            w.pending_acks[pending] -= 1;
            if w.pending_acks[pending] == 0 {
                let now = sim.now();
                respond(sim, w, machine, t0, last_send, now);
            }
        });
    }
}

/// Send the ack back to the client and start the slot's next request.
fn respond(
    sim: &mut Simulation<World>,
    w: &mut World,
    machine: usize,
    t0: SimTime,
    last_send: SimTime,
    ack_at: SimTime,
) {
    let Some(resp_arrival) = w.downlink[machine].transmit(ack_at, w.cal.frame_overhead, &mut w.rng)
    else {
        return;
    };
    if w.in_window(resp_arrival) {
        // sample event latencies across the batch accumulation window
        let accum = t0.since(last_send);
        for i in 0..LATENCY_SAMPLES_PER_REQUEST {
            let frac = (i as f64 + 0.5) / LATENCY_SAMPLES_PER_REQUEST as f64;
            let created =
                SimTime(t0.as_nanos().saturating_sub((accum.as_nanos() as f64 * frac) as u64));
            w.latency.record(resp_arrival.since(created).as_nanos());
        }
    }
    sim.schedule_at(resp_arrival, move |sim, w| produce_cycle(sim, w, machine, t0));
}

fn consume_cycle(sim: &mut Simulation<World>, w: &mut World, machine: usize, partition: usize) {
    let t0 = sim.now();
    let Some(arrival) = w.uplink[machine].transmit(t0, w.cal.frame_overhead, &mut w.rng) else {
        return;
    };
    sim.schedule_at(arrival, move |sim, w| consume_serial(sim, w, machine, partition));
}

fn consume_serial(sim: &mut Simulation<World>, w: &mut World, machine: usize, partition: usize) {
    let leader = w.part_leader[partition];
    let svc = w.jittered(w.cal.serial_service(w.cfg.cluster.instance.serial_requests_per_sec));
    let done = w.serial[leader].submit(sim.now(), svc);
    sim.schedule_at(done, move |sim, w| consume_cpu(sim, w, machine, partition));
}

fn consume_cpu(sim: &mut Simulation<World>, w: &mut World, machine: usize, partition: usize) {
    let leader = w.part_leader[partition];
    let size = w.cfg.event_size;
    let events = w.cal.fetch_events(size);
    let svc = w.jittered(w.cal.read_service(events, events * size));
    let done = w.cpu[leader].submit(sim.now(), svc);
    sim.schedule_at(done, move |sim, w| consume_partition(sim, w, machine, partition));
}

fn consume_partition(sim: &mut Simulation<World>, w: &mut World, machine: usize, partition: usize) {
    let size = w.cfg.event_size;
    let events = w.cal.fetch_events(size);
    let svc = w.jittered(w.cal.partition_read_service(events * size));
    let part_done = w.parts[partition].submit(sim.now(), svc);
    let leader = w.part_leader[partition];
    sim.schedule_at(part_done, move |sim, w| {
        let now = sim.now();
        if w.in_window(now) {
            w.consumed += w.cal.fetch_events(w.cfg.event_size) as u64;
        }
        let bytes = w.cal.fetch_events(w.cfg.event_size) * w.cfg.event_size
            + w.cal.frame_overhead;
        // the response serializes through the broker's egress NIC, then
        // crosses the WAN/LAN to the client machine
        let Some(egress_done) = w.egress[leader].transmit(now, bytes, &mut w.rng) else {
            return;
        };
        let Some(resp_arrival) = w.downlink[machine].transmit(egress_done, bytes, &mut w.rng)
        else {
            return;
        };
        sim.schedule_at(resp_arrival, move |sim, w| consume_cycle(sim, w, machine, partition));
    });
}

/// Simulated horizon: warmup then measurement.
const WARMUP_SECS: f64 = 1.0;
const MEASURE_SECS: f64 = 4.0;

/// Run a produce experiment.
pub fn run_produce(cfg: ExpConfig, cal: Calibration, seed: u64) -> ProduceStats {
    let mut world = World::new(cfg, cal, seed);
    world.measure_start = SimTime::from_secs_f64(WARMUP_SECS);
    world.measure_end = SimTime::from_secs_f64(WARMUP_SECS + MEASURE_SECS);
    let mut sim = Simulation::new(world);
    // stagger producer slots over the first 10 ms
    for client in 0..cfg.clients as usize {
        let machine = client % CLIENT_MACHINES;
        for slot in 0..cal.max_inflight {
            let jitter_ns = ((client * cal.max_inflight + slot) as u64 * 10_000_000)
                / (cfg.clients as u64 * cal.max_inflight as u64).max(1);
            sim.schedule_at(SimTime(jitter_ns), move |sim, w| {
                produce_cycle(sim, w, machine, SimTime::ZERO)
            });
        }
    }
    let world = sim.run_until(SimTime::from_secs_f64(WARMUP_SECS + MEASURE_SECS));
    ProduceStats {
        throughput_eps: world.produced as f64 / MEASURE_SECS,
        median_ms: world.latency.median() as f64 / 1e6,
        p99_ms: world.latency.p99() as f64 / 1e6,
    }
}

/// Diagnostic variant of [`run_produce`] that also prints per-stage
/// utilizations (calibration tooling).
pub fn run_produce_instrumented(cfg: ExpConfig, cal: Calibration, seed: u64) -> ProduceStats {
    let mut world = World::new(cfg, cal, seed);
    world.measure_start = SimTime::from_secs_f64(WARMUP_SECS);
    world.measure_end = SimTime::from_secs_f64(WARMUP_SECS + MEASURE_SECS);
    let mut sim = Simulation::new(world);
    for client in 0..cfg.clients as usize {
        let machine = client % CLIENT_MACHINES;
        for slot in 0..cal.max_inflight {
            let jitter_ns = ((client * cal.max_inflight + slot) as u64 * 10_000_000)
                / (cfg.clients as u64 * cal.max_inflight as u64).max(1);
            sim.schedule_at(SimTime(jitter_ns), move |sim, w| {
                produce_cycle(sim, w, machine, SimTime::ZERO)
            });
        }
    }
    let end = SimTime::from_secs_f64(WARMUP_SECS + MEASURE_SECS);
    let world = sim.run_until(end);
    for (i, q) in world.serial.iter().enumerate() {
        eprintln!("serial[{i}] util={:.2} completed={}", q.utilization(end), q.completed());
    }
    for (i, q) in world.cpu.iter().enumerate() {
        eprintln!("cpu[{i}]    util={:.2} completed={}", q.utilization(end), q.completed());
    }
    for (i, q) in world.parts.iter().enumerate() {
        eprintln!("part[{i}]   util={:.2} completed={}", q.utilization(end), q.completed());
    }
    ProduceStats {
        throughput_eps: world.produced as f64 / MEASURE_SECS,
        median_ms: world.latency.median() as f64 / 1e6,
        p99_ms: world.latency.p99() as f64 / 1e6,
    }
}

/// Run a consume experiment (topic prefilled; consumers start at the
/// earliest offset and read at their own pace, §V-B).
pub fn run_consume(cfg: ExpConfig, cal: Calibration, seed: u64) -> ConsumeStats {
    let mut world = World::new(cfg, cal, seed);
    world.measure_start = SimTime::from_secs_f64(WARMUP_SECS);
    world.measure_end = SimTime::from_secs_f64(WARMUP_SECS + MEASURE_SECS);
    let total_parts = cfg.total_partitions() as usize;
    let mut sim = Simulation::new(world);
    for client in 0..cfg.clients as usize {
        let machine = client % CLIENT_MACHINES;
        let partition = client % total_parts;
        for slot in 0..cal.consumer_inflight {
            let jitter_ns = ((client * cal.consumer_inflight + slot) as u64 * 10_000_000)
                / (cfg.clients as u64 * cal.consumer_inflight as u64).max(1);
            sim.schedule_at(SimTime(jitter_ns), move |sim, w| {
                consume_cycle(sim, w, machine, partition)
            });
        }
    }
    let world = sim.run_until(SimTime::from_secs_f64(WARMUP_SECS + MEASURE_SECS));
    ConsumeStats { throughput_eps: world.consumed as f64 / MEASURE_SECS }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::{BASELINE, SCALE_OUT, SCALE_UP};
    use crate::instance::ClientLocation;

    fn base() -> ExpConfig {
        ExpConfig::paper_default()
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let a = run_produce(base(), Calibration::default(), 42);
        let b = run_produce(base(), Calibration::default(), 42);
        assert_eq!(a, b);
    }

    #[test]
    fn throughput_in_paper_ballpark_1kb_remote() {
        let s = run_produce(base(), Calibration::default(), 1);
        // paper: 174K ev/s remote produce at 1KB — require same order
        assert!(
            (100_000.0..=320_000.0).contains(&s.throughput_eps),
            "1KB remote produce {} ev/s",
            s.throughput_eps
        );
        // remote median latency at least the RTT
        assert!(s.median_ms >= 40.0, "median {}ms", s.median_ms);
        assert!(s.p99_ms >= s.median_ms);
    }

    #[test]
    fn smaller_events_mean_higher_event_rates() {
        let cal = Calibration::default();
        let t32 = run_produce(ExpConfig { event_size: 32, ..base() }, cal, 1).throughput_eps;
        let t1k = run_produce(base(), cal, 1).throughput_eps;
        let t4k = run_produce(ExpConfig { event_size: 4096, ..base() }, cal, 1).throughput_eps;
        assert!(t32 > 10.0 * t1k, "32B {t32} vs 1KB {t1k}");
        assert!(t1k > 2.0 * t4k, "1KB {t1k} vs 4KB {t4k}");
        // paper magnitudes: 4.2M / 174K / 39K
        assert!(t32 > 1_000_000.0);
        assert!(t4k < 100_000.0);
    }

    #[test]
    fn acks_ordering_none_geq_leader_gt_all() {
        let cal = Calibration::default();
        let a0 = run_produce(base(), cal, 1).throughput_eps;
        let a1 = run_produce(ExpConfig { acks: Acks::Leader, ..base() }, cal, 1).throughput_eps;
        let aall = run_produce(ExpConfig { acks: Acks::All, ..base() }, cal, 1).throughput_eps;
        assert!(a0 >= 0.95 * a1, "acks=0 {a0} vs acks=1 {a1}");
        assert!(a1 > 1.5 * aall, "acks=1 {a1} vs acks=all {aall}");
    }

    #[test]
    fn acks_all_latency_penalty() {
        let cal = Calibration::default();
        let l1 = run_produce(ExpConfig { acks: Acks::Leader, ..base() }, cal, 1).median_ms;
        let lall = run_produce(ExpConfig { acks: Acks::All, ..base() }, cal, 1).median_ms;
        assert!(lall > l1, "acks=all median {lall} should exceed acks=1 {l1}");
    }

    #[test]
    fn cluster_scaling_ordering() {
        let cal = Calibration::default();
        let cfg4 = ExpConfig { partitions: 4, location: ClientLocation::Local, ..base() };
        let b = run_produce(ExpConfig { cluster: BASELINE, ..cfg4 }, cal, 1).throughput_eps;
        let up = run_produce(ExpConfig { cluster: SCALE_UP, ..cfg4 }, cal, 1).throughput_eps;
        let out = run_produce(ExpConfig { cluster: SCALE_OUT, ..cfg4 }, cal, 1).throughput_eps;
        assert!(up > b, "scale-up {up} > baseline {b}");
        assert!(out > up, "scale-out {out} > scale-up {up}");
    }

    #[test]
    fn replication_4_cuts_write_throughput_not_reads() {
        let cal = Calibration::default();
        let cfg = ExpConfig {
            cluster: SCALE_OUT,
            partitions: 4,
            location: ClientLocation::Local,
            ..base()
        };
        let w2 = run_produce(cfg, cal, 1).throughput_eps;
        let w4 = run_produce(ExpConfig { replication: 4, ..cfg }, cal, 1).throughput_eps;
        assert!(w4 < w2, "rep4 write {w4} < rep2 write {w2}");
        let r2 = run_consume(cfg, cal, 1).throughput_eps;
        let r4 = run_consume(ExpConfig { replication: 4, ..cfg }, cal, 1).throughput_eps;
        let ratio = r4 / r2;
        assert!((0.9..=1.1).contains(&ratio), "read throughput barely changes: {ratio}");
    }

    #[test]
    fn reads_are_about_twice_writes() {
        let cal = Calibration::default();
        let w = run_produce(base(), cal, 1).throughput_eps;
        let r = run_consume(base(), cal, 1).throughput_eps;
        let ratio = r / w;
        assert!((1.2..=4.0).contains(&ratio), "read/write ratio {ratio}");
    }

    #[test]
    fn local_clients_see_lower_latency_below_saturation() {
        // At full saturation a closed-loop client's cycle time is fixed
        // by server capacity regardless of RTT, so compare at a load
        // below the saturation knee (20 producers, the low end of the
        // paper's Fig. 3 sweep).
        let cal = Calibration::default();
        let light = ExpConfig { clients: 20, ..base() };
        let remote = run_produce(light, cal, 1);
        let local =
            run_produce(ExpConfig { location: ClientLocation::Local, ..light }, cal, 1);
        assert!(
            local.median_ms < remote.median_ms,
            "local {} < remote {}",
            local.median_ms,
            remote.median_ms
        );
        assert!(local.throughput_eps >= remote.throughput_eps * 0.9);
        // the remote median reflects at least one WAN round trip
        assert!(remote.median_ms >= 46.0);
    }
}
