//! Self-driving laboratory (§VI-A): a campaign of autonomous
//! experiments streams its action log through Octopus; a provenance
//! consumer reconstructs lineages and a dashboard tracks stages.
//!
//! Run with: `cargo run --example self_driving_lab`

use octopus::apps::sdl::{LabRunner, ProvenanceLog};
use octopus::prelude::*;

fn main() -> OctoResult<()> {
    let octo = Octopus::launch()?;
    octo.register_user("lab-operator@anl.gov", "pw")?;
    let session = octo.login("lab-operator@anl.gov", "pw")?;
    session.client().register_topic("sdl.actions", serde_json::json!({"partitions": 2}))?;

    // run a 25-experiment campaign across four instruments
    let mut runner = LabRunner::new(
        octo.cluster().clone(),
        "sdl.actions",
        &["ur5-arm", "xrd-beamline", "uv-vis", "hplc"],
        2024,
    );
    let mut ids = Vec::new();
    for i in 0..25u64 {
        // ~100 events/hour/resource (Table I): one experiment every 2.4 min
        ids.push(runner.run_experiment(Timestamp::from_millis(i * 144_000))?);
    }
    runner.flush();

    // the provenance log consumes the global action stream
    let mut log = ProvenanceLog::new(octo.cluster().clone(), "sdl.actions")?;
    let n = log.sync()?;
    println!("ingested {n} action events");

    // dashboard view
    println!("completed experiments: {}", log.completed_experiments());
    println!("campaign throughput:   {:.1} experiments/hour", log.throughput_per_hour());
    let mut stages: Vec<(&String, &u64)> = log.stage_counts().iter().collect();
    stages.sort();
    for (stage, count) in stages {
        println!("  stage {stage:13} {count} events");
    }

    // provenance trace-back for one experiment
    let target = &ids[7];
    println!("\nlineage of {target}:");
    for action in log.lineage(target).expect("known experiment") {
        println!(
            "  t={:>8}ms {:13} on {:12} {}",
            action.timestamp_ms,
            action.stage,
            action.instrument,
            action.result.map(|r| format!("result={r:.2}")).unwrap_or_default()
        );
    }
    assert_eq!(log.completed_experiments(), 25);
    println!("\nself_driving_lab OK");
    Ok(())
}
