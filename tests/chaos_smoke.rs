//! Chaos smoke test (tier-1): one seeded plan covering the paper's
//! headline failure modes — leader crash, network partition + heal,
//! slow broker, log-tail corruption — injected against a live
//! deployment with producer / consumer / trigger traffic, judged by
//! the four invariant oracles. Budgeted well under 30 seconds.

use std::time::Duration;

use octopus::chaos::{ChaosConfig, ChaosHarness, FaultKind, FaultPlan, PlanProfile};
use octopus::prelude::*;

/// The smoke scenario: broker 0 leads the single chaos partition in a
/// fresh 3-broker deployment, so crashing it is a leader crash.
fn smoke_plan() -> FaultPlan {
    FaultPlan::new(0xC0FFEE)
        .at(10, FaultKind::BrokerCrash { broker: 0 })
        .at(30, FaultKind::SlowBroker { broker: 1, multiplier_pct: 300 })
        .at(50, FaultKind::NetworkPartition { a: 1, b: 2 })
        .at(90, FaultKind::NetworkHeal)
        .at(110, FaultKind::BrokerRestart { broker: 0 })
        .at(130, FaultKind::LogTailCorruption { records: 2 })
        .at(150, FaultKind::SlowBroker { broker: 1, multiplier_pct: 100 })
}

#[test]
fn seeded_chaos_run_passes_all_oracles_and_replays_identically() {
    let plan = smoke_plan();
    assert!(plan.distinct_kinds() >= 5, "scenario spans the taxonomy");

    let run = || {
        ChaosHarness::new(smoke_plan())
            .with_config(ChaosConfig {
                drain_timeout: Duration::from_secs(10),
                ..ChaosConfig::default()
            })
            .run()
    };
    let first = run();
    first.assert_invariants();
    assert!(!first.acked.is_empty(), "producer acked records through the chaos");
    assert_eq!(first.final_isr, first.replication_factor, "ISR re-converged");
    assert_eq!(first.trace.signature(), plan.signature(), "trace matches the plan");

    // Replay: the same seed yields the same fault trace.
    let second = run();
    second.assert_invariants();
    assert_eq!(first.trace.signature(), second.trace.signature(), "seed-identical traces");
}

#[test]
fn generated_plans_are_reproducible_from_the_seed() {
    let profile = PlanProfile::default();
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        let a = FaultPlan::generate(seed, profile);
        let b = FaultPlan::generate(seed, profile);
        assert_eq!(a.signature(), b.signature());
    }
}

#[test]
fn deployment_builder_carries_a_chaos_plan() {
    let plan = FaultPlan::new(9)
        .at(0, FaultKind::BrokerCrash { broker: 1 })
        .at(5, FaultKind::BrokerRestart { broker: 1 });
    let octo = Octopus::builder().brokers(3).with_chaos(plan.clone()).build().unwrap();
    assert_eq!(octo.chaos_plan(), Some(&plan));

    octo.cluster()
        .create_topic("t", TopicConfig::default().with_partitions(1).with_replication(3))
        .unwrap();
    for i in 0..5u8 {
        octo.cluster().produce("t", Event::from_bytes(vec![i]), AckLevel::All).unwrap();
    }
    let trace = octo.run_chaos("t").expect("plan attached");
    assert_eq!(trace.signature(), plan.signature());
    // deployment healthy afterwards: nothing lost, ISR full
    assert_eq!(octo.cluster().fetch("t", 0, 0, 100).unwrap().len(), 5);
    assert_eq!(octo.cluster().isr_of("t", 0).unwrap().len(), 3);
}
